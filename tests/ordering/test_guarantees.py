"""CrashGuarantees.permits: key dispatch first, severity only as fallback.

The bug this pins: with severity checked first, a ``link-count`` or
``stale-data`` finding that a checker books at corruption severity would
be gated by ``allows_corruption`` instead of its dedicated flag -- No
Order (which allows corruption) would absorb a stale-data leak it never
declared safe, and a scheme with ``allows_link_skew=False`` could have
skew findings slip through.  The full severity x key matrix below leaves
no ambiguous cell.
"""

import itertools

import pytest

from repro.integrity.invariants import (
    INVARIANTS,
    Invariant,
    Severity,
    invariant_by_key,
)
from repro.ordering.guarantees import SAFE_DEFAULT, UNSAFE, CrashGuarantees


def all_guarantees():
    """Every corner of the declaration space (16 combinations)."""
    for bits in itertools.product((False, True), repeat=4):
        yield CrashGuarantees(allows_corruption=bits[0],
                              allows_leaks=bits[1],
                              allows_link_skew=bits[2],
                              allows_stale_data=bits[3])


def expected_verdict(guarantees: CrashGuarantees,
                     invariant: Invariant) -> bool:
    """The specification: dedicated flag first, then severity."""
    if invariant.key == "link-count":
        return guarantees.allows_link_skew
    if invariant.key == "stale-data":
        return guarantees.allows_stale_data
    if invariant.severity is Severity.CORRUPTION:
        return guarantees.allows_corruption
    return guarantees.allows_leaks


@pytest.mark.parametrize("invariant", INVARIANTS, ids=lambda i: i.key)
def test_permits_matrix(invariant):
    for guarantees in all_guarantees():
        assert guarantees.permits(invariant) == \
            expected_verdict(guarantees, invariant), \
            f"{invariant.key} mis-gated under {guarantees}"


@pytest.mark.parametrize("severity", list(Severity))
def test_keyed_invariants_ignore_severity(severity):
    """The ambiguous cells: a keyed finding at *any* severity is gated by
    its own flag, never by what the severity fallback would say."""
    for key, flag in (("link-count", "allows_link_skew"),
                      ("stale-data", "allows_stale_data")):
        reclassified = Invariant(key, severity, "reclassified", ())
        for guarantees in all_guarantees():
            assert guarantees.permits(reclassified) == \
                getattr(guarantees, flag)


def test_corruption_severity_needs_allows_corruption():
    dangling = invariant_by_key("dangling-entry")
    assert UNSAFE.permits(dangling)
    assert not SAFE_DEFAULT.permits(dangling)


def test_repairable_severity_falls_back_to_leaks():
    leak = invariant_by_key("leak")
    assert SAFE_DEFAULT.permits(leak)
    assert not CrashGuarantees(allows_leaks=False).permits(leak)


def test_catalogue_has_no_undispatchable_cell():
    """Audit: every catalogued invariant reaches exactly one gate."""
    for invariant in INVARIANTS:
        gates = {True: set(), False: set()}
        for guarantees in all_guarantees():
            gates[guarantees.permits(invariant)].add(guarantees)
        # permits() must be a non-constant function of the declaration
        # (every invariant is allowed under some declaration and denied
        # under another -- no cell is unconditionally swallowed)
        assert gates[True] and gates[False], invariant.key
