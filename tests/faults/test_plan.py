"""Unit tests for the fault plan / injector primitives."""

from repro.faults import (
    EIO,
    EXHAUSTED,
    NOSPARE,
    FaultKind,
    FaultPlan,
    PROFILES,
    is_retryable,
)


def drain_draws(injector, count=200):
    """A fixed call sequence alternating writes and reads."""
    return [injector.draw(lbn=100 + 8 * i, nsectors=8, is_write=i % 2 == 0)
            for i in range(count)]


def test_default_plan_injects_nothing():
    plan = FaultPlan()
    assert not plan.any_faults
    injector = plan.build()
    assert all(fault is None for fault in drain_draws(injector))
    assert injector.injected == 0 and injector.events == []


def test_same_seed_same_fault_sequence():
    plan = PROFILES["mixed"](7)
    a = drain_draws(plan.build())
    b = drain_draws(plan.build())
    assert a == b
    assert any(fault is not None for fault in a)


def test_different_seeds_diverge():
    a = drain_draws(PROFILES["mixed"](1).build())
    b = drain_draws(PROFILES["mixed"](2).build())
    assert a != b


def test_plan_is_frozen_and_picklable():
    import pickle

    plan = PROFILES["defects"](3)
    assert pickle.loads(pickle.dumps(plan)) == plan


def test_torn_write_applies_a_strict_prefix():
    injector = FaultPlan(seed=1, torn_write_rate=1.0).build()
    for _ in range(50):
        fault = injector.draw(lbn=0, nsectors=8, is_write=True)
        assert fault.kind is FaultKind.TORN
        assert 0 <= fault.sectors_applied < 8
    # a single-sector write cannot tear: nothing lands
    fault = injector.draw(lbn=0, nsectors=1, is_write=True)
    assert fault.sectors_applied == 0


def test_grown_defect_sticks_until_reassigned():
    injector = FaultPlan(seed=1, grown_defect_rate=1.0, spares=2).build()
    fault = injector.draw(lbn=64, nsectors=8, is_write=True)
    assert fault.kind is FaultKind.MEDIUM
    assert 64 <= fault.bad_lbn < 72
    assert fault.bad_lbn in injector.bad_sectors
    # every later touch of the range hits the same defect, no new draw
    again = injector.draw(lbn=64, nsectors=8, is_write=False)
    assert again.kind is FaultKind.MEDIUM and again.bad_lbn == fault.bad_lbn
    # REASSIGN BLOCKS heals the address and consumes a spare
    assert injector.reassign(fault.bad_lbn)
    assert fault.bad_lbn not in injector.bad_sectors
    assert injector.spares_left == 1
    assert fault.bad_lbn in injector.reassigned


def test_reassign_fails_when_spares_exhausted():
    injector = FaultPlan(seed=1, spares=1).build()
    assert injector.reassign(10)
    assert not injector.reassign(11)
    assert injector.spares_left == 0


def test_latent_defect_found_by_reads_only():
    injector = FaultPlan(seed=1, latent_defect_rate=1.0).build()
    assert injector.draw(lbn=0, nsectors=4, is_write=True) is None
    fault = injector.draw(lbn=0, nsectors=4, is_write=False)
    assert fault.kind is FaultKind.MEDIUM


def test_only_exhausted_is_retryable():
    assert is_retryable(EXHAUSTED)
    assert not is_retryable(EIO)
    assert not is_retryable(NOSPARE)
    assert not is_retryable(None)


def test_degradations_filters_internal_events():
    injector = FaultPlan().build()
    injector.log(0.0, "inject", "transient at 100")
    injector.log(0.1, "retry", "attempt 1")
    injector.log(0.2, "remap", "lbn 100")
    injector.log(0.3, "read_eio", "daddr 5")
    injector.log(0.4, "lost_write", "daddr 6")
    visible = injector.degradations()
    assert [event.kind for event in visible] == ["read_eio", "lost_write"]


def test_profiles_cover_the_documented_matrix():
    assert set(PROFILES) == {"transient", "defects", "mixed", "none"}
    assert not PROFILES["none"](0).any_faults
    assert PROFILES["transient"](0).latent_defect_rate == 0.0
    assert PROFILES["mixed"](0).latent_defect_rate > 0.0
