#!/usr/bin/env python3
"""Compare all five ordering schemes on a small copy + remove workload.

A miniature of the paper's tables 1 and 2: same machine, same tree, five
schemes; prints elapsed time, CPU time, and disk request counts.

Run:  python examples/scheme_comparison.py
"""

from repro.harness.report import format_table
from repro.harness.runner import (
    STANDARD_SCHEMES,
    run_copy,
    run_remove,
    standard_scheme_config,
)
from repro.workloads.trees import TreeSpec


def main() -> None:
    tree = TreeSpec().scaled(0.05)  # ~27 files, ~700 KB per user
    cache = 2 * 1024 * 1024

    copy_rows, remove_rows = [], []
    for name in STANDARD_SCHEMES:
        result = run_copy(standard_scheme_config(name, cache_bytes=cache),
                          users=2, tree=tree)
        copy_rows.append([name, result.elapsed, result.cpu_time,
                          result.disk_requests])
        result = run_remove(standard_scheme_config(name, cache_bytes=cache),
                            users=2, tree=tree)
        remove_rows.append([name, result.elapsed, result.cpu_time,
                            result.disk_requests])

    print(format_table("2-user copy (simulated seconds)",
                       ["Scheme", "Elapsed", "CPU", "Disk requests"],
                       copy_rows))
    print()
    print(format_table("2-user remove (simulated seconds)",
                       ["Scheme", "Elapsed", "CPU", "Disk requests"],
                       remove_rows))
    print()
    print("Expect: Conventional slowest; Soft Updates tracks No Order and")
    print("needs far fewer disk requests for the removal.")


if __name__ == "__main__":
    main()
