"""Write-ahead metadata journaling (the "logging" alternative of section 6).

Instead of *ordering* the home-location writes, the scheme makes each
structural change atomic: the affected metadata block images are written
into the reserved journal region (:mod:`repro.fs.journal`), a commit
record seals the transaction, and only then are the home blocks scheduled
as ordinary delayed writes.  All three ordering rules ride on the single
commit barrier:

1. the old pointer is only reset in a transaction that also carries the
   new pointer (both recoverable together, or neither),
2. a freed resource's run is REVOKEd in the freeing transaction, so no
   earlier image of it can replay over a later owner,
3. a new structure's initialized image travels in the same transaction as
   the pointer to it (regular-data initialization, which is never
   journaled, is made durable at home *before* the commit).

Checkpointing is lazy: committed images stay in the log and drift home
through the ordinary delayed-write machinery; the scheme only forces them
home ("checkpoint") when the circular log needs space or the file system
drains.  The durable tail in the journal header never advances past a
transaction whose images are not yet home-durable.

Failure handling: if a journal write fails permanently the scheme fences
itself -- it checkpoints every logged transaction, neutralizes the header
(so a crash cannot replay stale images over newer home state), logs a
``journal_degraded`` fault event, and falls back to the conventional
synchronous-write discipline for the rest of the run.

Replay is recovery: :meth:`JournalScheme.mounted` scans the log and writes
the committed overlay to the home locations before the first operation,
so a machine adopting a crash image boots into the recovered state.  The
same scan drives :mod:`repro.integrity.fsck` (a crash image is judged
*with* its committed log) and the online monitor's effective view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.faults import is_retryable
from repro.fs import journal
from repro.ordering.base import AllocContext, OrderingScheme
from repro.ordering.guarantees import CrashGuarantees
from repro.sim.primitives import Lock


@dataclass
class _PendingTxn:
    """One committed-but-unretired transaction (in ring order)."""

    seq: int
    pos: int
    #: log fragments consumed: the record extent plus any end-of-log gap
    #: skipped to start it (the gap frees when this transaction retires)
    ring_cost: int
    entries: list
    #: the IMAGE payloads, as (home daddr, block image bytes)
    images: list


class JournalScheme(OrderingScheme):
    """Write-ahead metadata journaling with lazy checkpointing."""

    name = "Journaling"
    uses_block_copy = True
    #: enforced like soft updates: new-block initialization rides the
    #: commit (metadata) or precedes it (regular data)
    alloc_init = True
    #: the commit barrier keeps every crash state recoverable-by-replay;
    #: delayed checkpoints and bitmap writes still admit repairable wear
    declared_guarantees = CrashGuarantees(allows_corruption=False)
    #: machines size a journal area into the geometry for this scheme
    wants_journal = True

    def __init__(self, alloc_init: Optional[bool] = None) -> None:
        super().__init__(alloc_init=alloc_init)
        self._lock: Optional[Lock] = None
        self._next_seq = 1
        self._head_pos = 0
        self._pending: list[_PendingTxn] = []
        self._used = 0
        self._degraded = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def mounted(self) -> None:
        """Recover: replay the committed log, then start with it empty."""
        geo = self.fs.geometry
        if not geo.journal_frags:
            raise RuntimeError(
                "JournalScheme requires a journal area; build the geometry "
                "with repro.fs.layout.with_journal()")
        disk = self.fs.cache.driver.disk
        spf = self.fs.cache.sectors_per_frag
        result = journal.replay_into(
            lambda daddr, n: disk.read_now(daddr * spf, n * spf),
            lambda daddr, data: disk.write_now(daddr * spf, data),
            geo)
        self._lock = Lock(self.fs.engine)
        self._next_seq = result.head_seq + 1
        self._head_pos = result.head_pos
        self._pending = []
        self._used = 0
        self._degraded = False

    def drain(self) -> Generator:
        """Checkpoint and retire every logged transaction.

        Called by ``fs.sync``/``unmount``.  A quiesced log must be *empty*:
        later unjournaled delayed writes (sizes, times, link counts) can
        make home blocks newer than their logged images, and a replay at
        the next mount must not regress them.
        """
        yield self._lock.acquire()
        try:
            if self._degraded or not self._pending:
                return
            ok = yield from self._retire_all()
            if not ok:
                yield from self._enter_degraded("drain checkpoint failed")
        finally:
            self._lock.release()

    def pending_work(self) -> int:
        """Transactions whose images are not yet home-durable.

        Quiescence (idle driver, clean cache) implies zero: every imaged
        buffer has either flushed its equal-or-newer content or been
        invalidated by a later revoking transaction.  The log itself may
        still hold such retired-by-state records; replaying them is a
        no-op.
        """
        if self.fs is None:
            return 0
        cache = self.fs.cache
        count = 0
        for txn in self._pending:
            for daddr, _data in txn.images:
                buf = cache.peek(daddr)
                if buf is not None and (buf.dirty or buf.write_outstanding):
                    count += 1
                    break
        return count

    # ------------------------------------------------------------------
    # the four structural changes
    # ------------------------------------------------------------------
    def link_added(self, dp, dbuf, offset, ip, new_inode: bool) -> Generator:
        # one transaction carries the initialized inode and the entry
        # pointing at it (rules 3 and 1 collapse into the commit barrier)
        ibuf = yield from self._release_on_error(
            self.fs.load_inode_buf(ip.ino), dbuf)
        self.fs.store_inode(ip, ibuf)
        ok = yield from self._release_on_error(self._ordered_wait(
            self._commit_txn([(ibuf.daddr, bytes(ibuf.data)),
                              (dbuf.daddr, bytes(dbuf.data))], [],
                             "link_added"),
            "journal_commit", point="link_added"), ibuf, dbuf)
        if ok:
            self.fs.cache.bdwrite(ibuf)
            self.fs.cache.bdwrite(dbuf)
            return
        # degraded: the conventional synchronous ordering
        yield from self._release_on_error(self._ordered_wait(
            self.fs.cache.bwrite(ibuf), "sync_stall", point="link_added"),
            dbuf)
        self.fs.cache.bdwrite(dbuf)

    def link_removed(self, dp, dbuf, offset, ip) -> Generator:
        # rule 1: the cleared entry is recoverable before the link count
        # can drop on disk (the drop itself is an unjournaled delayed
        # write; a crash leaves at worst fsck-repairable link skew)
        ok = yield from self._ordered_wait(
            self._commit_txn([(dbuf.daddr, bytes(dbuf.data))], [],
                             "link_removed"),
            "journal_commit", point="link_removed")
        if ok:
            self.fs.cache.bdwrite(dbuf)
        else:
            yield from self._ordered_wait(
                self.fs.cache.bwrite(dbuf), "sync_stall",
                point="link_removed")
        yield from self.fs.drop_link(ip)

    def block_allocated(self, ctx: AllocContext) -> Generator:
        cache = self.fs.cache
        must_init = ctx.is_metadata or self.alloc_init
        moved = bool(ctx.old_daddr) and ctx.old_daddr != ctx.new_daddr
        data_consumed = False
        if must_init and not ctx.is_metadata:
            # rule 3 for regular data: initialization goes to its *home*
            # (bulk data does not belong in the log) and must be durable
            # before the pointer commits
            yield from self._release_on_error(self._ordered_wait(
                cache.bwrite(ctx.data_buf), "sync_stall",
                point="block_init"), ctx.ibuf)
            data_consumed = True
        if ctx.ibuf is None:
            # the pointer lives in the in-core inode: journal its block
            ibuf = yield from self._release_on_error(
                self.fs.load_inode_buf(ctx.ip.ino),
                None if data_consumed else ctx.data_buf)
            self.fs.store_inode(ctx.ip, ibuf)
        else:
            ibuf = ctx.ibuf
        images = [(ibuf.daddr, bytes(ibuf.data))]
        if ctx.is_metadata:
            images.append((ctx.data_buf.daddr, bytes(ctx.data_buf.data)))
        # rule 2: the old run's revoke travels with the new pointer, so
        # neither a stale image can replay over a later owner nor can the
        # pointer move be half-recovered
        revokes = [(ctx.old_daddr, ctx.old_frags)] if moved else []
        ok = yield from self._release_on_error(self._ordered_wait(
            self._commit_txn(images, revokes, "block_allocated"),
            "journal_commit", point="block_allocated"),
            ibuf, None if data_consumed else ctx.data_buf)
        if ok:
            cache.bdwrite(ibuf)
            if ctx.is_metadata:
                cache.bdwrite(ctx.data_buf)
            elif not data_consumed:
                cache.brelse(ctx.data_buf)
        else:
            # degraded: the conventional discipline with the held buffers
            if moved:
                yield from self._release_on_error(self._ordered_wait(
                    cache.bwrite(ibuf), "sync_stall", point="frag_move"),
                    None if data_consumed else ctx.data_buf)
            else:
                cache.bdwrite(ibuf)
            if ctx.is_metadata:
                yield from self._ordered_wait(
                    cache.bwrite(ctx.data_buf), "sync_stall",
                    point="block_init")
            elif not data_consumed:
                cache.brelse(ctx.data_buf)
        if moved:
            cache.invalidate(ctx.old_daddr, ctx.old_frags)
            yield from self.fs.allocator.free_frags(ctx.old_daddr,
                                                    ctx.old_frags)

    def truncated(self, ip, runs: list) -> Generator:
        ibuf = yield from self.fs.load_inode_buf(ip.ino)
        self.fs.store_inode(ip, ibuf)
        ok = yield from self._ordered_wait(
            self._commit_txn([(ibuf.daddr, bytes(ibuf.data))], list(runs),
                             "truncate"),
            "journal_commit", point="truncate")
        if ok:
            self.fs.cache.bdwrite(ibuf)
        else:
            yield from self._ordered_wait(
                self.fs.cache.bwrite(ibuf), "sync_stall", point="truncate")
        yield from self.fs.free_block_list(runs)

    def release_inode(self, ip) -> Generator:
        # rule 2: one transaction zeroes the inode and revokes its runs;
        # after the commit both the blocks and the slot can safely return
        # to the free pool
        runs = yield from self.fs.collect_blocks(ip)
        self.fs.clear_block_pointers(ip)
        ino = ip.ino
        yield from self.fs.free_inode_record(ip)
        ibuf = yield from self.fs.load_inode_buf(ino)
        at = self.fs.geometry.inode_offset_in_block(ino)
        ibuf.data[at:at + 128] = bytes(128)
        ok = yield from self._ordered_wait(
            self._commit_txn([(ibuf.daddr, bytes(ibuf.data))], list(runs),
                             "release_inode"),
            "journal_commit", point="release_inode")
        if ok:
            self.fs.cache.bdwrite(ibuf)
        else:
            yield from self._ordered_wait(
                self.fs.cache.bwrite(ibuf), "sync_stall",
                point="release_inode")
        yield from self.fs.free_block_list(runs)

    def fsync(self, ip) -> Generator:
        # durability via the log: data to home, then the inode image's
        # commit makes the file recoverable
        yield from self.fs.flush_file_data(ip)
        ibuf = yield from self.fs.load_inode_buf(ip.ino)
        self.fs.store_inode(ip, ibuf)
        ok = yield from self._ordered_wait(
            self._commit_txn([(ibuf.daddr, bytes(ibuf.data))], [], "fsync"),
            "journal_commit", point="fsync")
        if ok:
            self.fs.cache.bdwrite(ibuf)
        else:
            yield from self._ordered_wait(
                self.fs.cache.bwrite(ibuf), "sync_stall", point="fsync")

    # ------------------------------------------------------------------
    # transaction machinery
    # ------------------------------------------------------------------
    def _commit_txn(self, images: list, revokes: list,
                    point: str) -> Generator:
        """Commit one transaction; False = degraded, caller falls back.

        *images* is ``[(home daddr, bytes)]``; *revokes* is
        ``[(daddr, nfrags)]``.  A revoke list too large for one descriptor
        continues into revoke-only records under the same lock hold --
        safe, because the freed runs only reach the allocator after the
        hook returns.
        """
        yield self._lock.acquire()
        try:
            if self._degraded:
                return False
            geo = self.fs.geometry
            cap = journal.max_entries(geo.frag_size)
            image_entries = [
                journal.Entry(journal.IMAGE, daddr,
                              len(data) // geo.frag_size)
                for daddr, data in images]
            revoke_entries = [journal.Entry(journal.REVOKE, daddr, nfrags)
                              for daddr, nfrags in revokes]
            if len(image_entries) > cap:
                raise RuntimeError(
                    f"{len(image_entries)} images exceed one descriptor")
            room = cap - len(image_entries)
            records = [(image_entries + revoke_entries[:room], images)]
            rest = revoke_entries[room:]
            while rest:
                records.append((rest[:cap], []))
                rest = rest[cap:]
            for entries, payload in records:
                ok = yield from self._write_record(entries, payload)
                if not ok:
                    yield from self._enter_degraded(
                        f"commit failed at {point}")
                    return False
            self._bump("journal.commits")
            return True
        finally:
            self._lock.release()

    def _write_record(self, entries: list, images: list) -> Generator:
        geo = self.fs.geometry
        log_frags = geo.journal_frags - 1
        base = geo.journal_start + 1
        extent = journal.record_extent(entries)
        if extent > log_frags:
            raise RuntimeError(
                f"record of {extent} frags exceeds the {log_frags}-frag log")
        pos = self._head_pos
        gap = 0
        if pos + extent > log_frags:
            gap = log_frags - pos  # skipped to the log start (scanner mirrors)
            pos = 0
        need = gap + extent
        if self._used + need > log_frags:
            ok = yield from self._reclaim(need)
            if not ok:
                return False
        seq = self._next_seq
        desc_raw = journal.descriptor_bytes(geo.frag_size, seq, entries)
        payload = b"".join(data for _daddr, data in images)
        # descriptor + payload first; the commit record is only issued
        # after they are on the platters -- the ordered commit barrier
        ok = yield from self._raw_write(base + pos, desc_raw + payload)
        if not ok:
            return False
        commit_raw = journal.commit_bytes(
            geo.frag_size, seq, journal.txn_checksum(desc_raw, payload))
        ok = yield from self._raw_write(base + pos + extent - 1, commit_raw)
        if not ok:
            return False
        self._next_seq = seq + 1
        head = pos + extent
        if head >= log_frags:
            head = 0
        self._head_pos = head
        self._used += need
        self._pending.append(_PendingTxn(seq=seq, pos=pos, ring_cost=need,
                                         entries=list(entries),
                                         images=list(images)))
        return True

    def _reclaim(self, need: int) -> Generator:
        """Retire transactions from the tail until *need* frags fit.

        Retirement order is forced: each transaction's images must be
        home-durable (checkpointed) and the durable tail advanced past it
        *before* its log space is reused.
        """
        log_frags = self.fs.geometry.journal_frags - 1
        retired = False
        while self._pending and self._used + need > log_frags:
            txn = self._pending[0]
            superseded = self._superseded_after(0)
            for daddr, data in txn.images:
                ok = yield from self._checkpoint_image(daddr, data,
                                                       superseded)
                if not ok:
                    return False
            self._pending.pop(0)
            self._used -= txn.ring_cost
            retired = True
            self._bump("journal.checkpoints")
        if self._used + need > log_frags:
            return False
        if retired:
            if self._pending:
                tail_seq, tail_pos = (self._pending[0].seq,
                                      self._pending[0].pos)
            else:
                tail_seq, tail_pos = self._next_seq, self._head_pos
            ok = yield from self._write_header(tail_seq, tail_pos)
            if not ok:
                return False
        return True

    def _retire_all(self) -> Generator:
        """Checkpoint everything and neutralize the header (drain path)."""
        for index, txn in enumerate(self._pending):
            superseded = self._superseded_after(index)
            for daddr, data in txn.images:
                ok = yield from self._checkpoint_image(daddr, data,
                                                      superseded)
                if not ok:
                    return False
        ok = yield from self._write_header(self._next_seq, self._head_pos)
        if not ok:
            return False
        self._pending.clear()
        self._used = 0
        return True

    def _superseded_after(self, index: int) -> set:
        """Home frags imaged or revoked by a transaction after *index*.

        Checkpointing such a fragment from an older image would regress
        state a newer committed transaction owns; the newer transaction's
        own retirement (or revoke) covers it instead.
        """
        frags: set = set()
        for txn in self._pending[index + 1:]:
            for entry in txn.entries:
                frags.update(range(entry.daddr, entry.daddr + entry.nfrags))
        return frags

    def _checkpoint_image(self, daddr: int, data: bytes,
                          superseded: set) -> Generator:
        """Make one image's content (or newer) durable at home.

        Decided off the cache's view of the block:

        * no buffer, or a clean one -- it flushed equal-or-newer content
          after the image was taken (eviction requires a completed flush);
          nothing to do,
        * a write in flight -- its snapshot may predate the image: wait it
          out and re-evaluate,
        * dirty and idle -- flush the *current* (newer) content through
          the cache's own path,
        * dirty but held by a process mid-operation -- lay the committed
          image down directly; the holder's newer content is still dirty
          and flushes later (the driver's overlap FIFO keeps any older
          in-flight snapshot ordered before this write).
        """
        cache = self.fs.cache
        frag_size = self.fs.geometry.frag_size
        nfrags = len(data) // frag_size
        wanted = [i for i in range(nfrags) if daddr + i not in superseded]
        if not wanted:
            return True
        attempts = 0
        while True:
            buf = cache.peek(daddr)
            if buf is None or (not buf.write_outstanding and not buf.dirty):
                return True
            if buf.write_outstanding:
                yield cache._space.wait()  # completions broadcast this
                continue
            if buf.busy:
                return (yield from self._write_image_frags(daddr, data,
                                                           wanted))
            request = cache.start_flush(buf)
            if request is None:
                continue  # state changed underfoot; re-evaluate
            yield request.done
            if request.error is None or not is_retryable(request.error):
                # success, or a permanently lost write (already logged by
                # the cache as a visible degradation): either way no newer
                # write of this block is coming before ours could land
                return True
            attempts += 1
            if attempts >= 4:
                return False

    def _write_image_frags(self, daddr: int, data: bytes,
                           wanted: list) -> Generator:
        """Raw-write the unsuperseded spans of one image to home."""
        frag_size = self.fs.geometry.frag_size
        spans: list[tuple[int, int]] = []
        for i in wanted:
            if spans and spans[-1][0] + spans[-1][1] == i:
                spans[-1] = (spans[-1][0], spans[-1][1] + 1)
            else:
                spans.append((i, 1))
        for start, count in spans:
            chunk = data[start * frag_size:(start + count) * frag_size]
            ok = yield from self._raw_write(daddr + start, chunk)
            if not ok:
                return False
        return True

    def _enter_degraded(self, reason: str) -> Generator:
        """Fence the log and fall back to conventional ordering.

        The fence checkpoints every committed image *before* any
        post-degrade synchronous write, then neutralizes the header: were
        stale images left replayable, a crash after the fallback's writes
        could resurrect them over newer state (e.g. a removed directory
        entry pointing at a freed inode).  If the fence itself cannot
        complete -- the media is failing hard -- the header is left alone
        so replay stays authoritative, and the logged ``journal_degraded``
        event marks the run as degraded for the harness verdicts.
        """
        ok = True
        for index, txn in enumerate(self._pending):
            superseded = self._superseded_after(index)
            for daddr, data in txn.images:
                done = yield from self._checkpoint_image(daddr, data,
                                                        superseded)
                ok = ok and done
        if ok:
            yield from self._write_header(self._next_seq, self._head_pos)
        self._pending.clear()
        self._used = 0
        self._degraded = True
        self._bump("journal.degraded")
        faults = self.fs.cache.driver.disk.faults
        if faults is not None:
            faults.log(self.fs.engine.now, "journal_degraded", reason)

    # ------------------------------------------------------------------
    # raw journal-region I/O (bypasses the buffer cache: the journal is
    # not file-system data; the media log and monitor observe it like any
    # other write)
    # ------------------------------------------------------------------
    def _raw_write(self, daddr: int, data: bytes) -> Generator:
        cache = self.fs.cache
        yield from self.fs.cpu.compute(self.fs.costs.time("io_setup"))
        for _attempt in range(3):
            request = cache.driver.write(daddr * cache.sectors_per_frag,
                                         bytes(data), issuer="journal")
            yield request.done
            if request.error is None:
                return True
            if not is_retryable(request.error):
                return False
        return False

    def _write_header(self, tail_seq: int, tail_pos: int) -> Generator:
        geo = self.fs.geometry
        raw = journal.header_bytes(geo.frag_size, tail_seq, tail_pos)
        result = yield from self._raw_write(geo.journal_start, raw)
        return result
