"""Unit tests for the soft updates dependency manager internals."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.fs.layout import Dinode
from tests.conftest import make_machine, run_user


@pytest.fixture
def m():
    return make_machine("softupdates")


def manager(m):
    return m.scheme.manager


class TestTracking:
    def test_tracked_buffers_are_pinned(self, m):
        def user():
            yield from m.fs.write_file("/f", b"x" * 1024)

        run_user(m, user())
        mgr = manager(m)
        assert mgr.tracked, "creates must leave tracked buffers"
        for tracked in mgr.tracked.values():
            assert tracked.buf.hold_count >= 1

    def test_untracked_and_unpinned_after_drain(self, m):
        def user():
            yield from m.fs.write_file("/f", b"x" * 1024)
            yield from m.fs.sync()

        run_user(m, user())
        mgr = manager(m)
        assert not mgr.tracked
        assert mgr.pending() == 0
        for buf in m.cache._buffers.values():
            assert buf.hold_count == 0

    def test_dependency_counters(self, m):
        def user():
            yield from m.fs.write_file("/f", b"x" * 1024)

        run_user(m, user())
        mgr = manager(m)
        assert mgr.deps_created >= 2  # allocdirect + diradd at least
        assert mgr.pending() > 0


class TestInodeRollback:
    def test_pointer_rolled_back_until_data_written(self, m):
        def user():
            yield from m.fs.write_file("/f", b"x" * 1024)

        run_user(m, user())
        geo = m.fs.geometry
        ino = max(i.ino for i in m.fs.itable.values())
        ibuf = m.cache.peek(geo.inode_block_daddr(ino))
        # flush only the inode block: the new pointer must be undone
        m.cache.start_flush(ibuf)
        run_user(m, m.driver.drain(), name="drain")
        raw = m.disk.storage.read(geo.inode_block_daddr(ino) * 2, 16)
        at = geo.inode_offset_in_block(ino)
        din = Dinode.unpack(raw[at:at + 128])
        assert din.allocated  # the inode itself is there (mode, nlink)
        assert din.direct[0] == 0  # but the block pointer is rolled back
        assert din.size == 0  # and the size with it
        # in-core state is untouched
        live = m.fs.itable.get_cached(ino)
        assert live.din.direct[0] != 0 and live.din.size == 1024

    def test_pointer_lands_after_data_written(self, m):
        def user():
            yield from m.fs.write_file("/f", b"x" * 1024)
            yield from m.fs.sync()

        run_user(m, user())
        geo = m.fs.geometry
        report_raw = m.disk.storage.read(
            geo.inode_block_daddr(3) * 2, 16)
        # find the file inode in the block: exactly one with size 1024
        sizes = [Dinode.unpack(report_raw[at:at + 128]).size
                 for at in range(0, 8192, 128)]
        assert 1024 in sizes


class TestWorkitems:
    def test_remove_defers_drop_link_to_workitem(self, m):
        def setup():
            yield from m.fs.write_file("/f", b"x")
            yield from m.fs.sync()

        run_user(m, setup())
        ino = max(i.ino for i in m.fs.itable.values())
        ip = m.fs.itable.get_cached(ino)

        def remove():
            yield from m.fs.unlink("/f")

        run_user(m, remove())
        # the link count is NOT yet decremented (deferred)
        assert ip.din.nlink == 1
        assert m.scheme.pending_work() > 0
        run_user(m, m.fs.sync(), name="sync")
        assert ip.deleted

    def test_daemon_services_workitems_over_time(self, m):
        def setup():
            yield from m.fs.write_file("/f", b"x")
            yield from m.fs.sync()
            yield from m.fs.unlink("/f")

        run_user(m, setup())
        # each link of the chain (dir write -> drop_link -> inode write ->
        # bitmap free) can wait a full sweep cycle; give it several
        m.engine.run(until=m.engine.now + 50.0, max_events=2_000_000)
        assert m.scheme.pending_work() == 0
        assert not m.cache.dirty_buffers()


class TestIndirectDependencies:
    def test_indirect_block_rollback(self, m):
        geo = m.fs.geometry
        size = (geo.NDADDR + 2) * geo.block_size

        def user():
            yield from m.fs.write_file("/big", b"b" * size)

        run_user(m, user())
        assert manager(m).indirdeps or manager(m).pending() > 0

        def finish():
            yield from m.fs.sync()

        run_user(m, finish(), name="sync")
        assert manager(m).pending() == 0
        # and the file reads back fine cold
        m.drop_caches()

        def reader():
            data = yield from m.fs.read_file("/big")
            return len(data)

        assert run_user(m, reader()) == size


class TestConvergence:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 999))
    def test_random_churn_always_drains(self, seed):
        import random
        m = make_machine("softupdates")
        rng = random.Random(seed)

        def user():
            live = []
            for step in range(25):
                if rng.random() < 0.55 or not live:
                    path = f"/f{step}"
                    yield from m.fs.write_file(
                        path, b"c" * rng.choice([200, 1500, 9000]))
                    live.append(path)
                else:
                    yield from m.fs.unlink(
                        live.pop(rng.randrange(len(live))))
            yield from m.fs.sync()

        run_user(m, user())
        assert m.scheme.pending_work() == 0
        assert not m.cache.dirty_buffers()
        from repro.integrity import fsck
        from tests.conftest import SMALL_GEOMETRY
        report = fsck(m.disk.storage, SMALL_GEOMETRY)
        assert report.clean and not report.warnings, (report.errors,
                                                      report.warnings)
