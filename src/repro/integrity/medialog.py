"""The media write-log: every sector that reached the platters, time-stamped.

Crash exploration used to answer "what would the disk hold if power failed
at instant *t*?" by re-simulating the entire workload prefix up to *t* --
O(full replay) per crash point, hundreds of replays per sweep.  The single
recording run already contains the answer: platter contents only change
when the drive lays a sector down, the drive serves one media operation at
a time, and sectors within a transfer land in LBN order, one per
``sector_period``, each protected by its own ECC (paper, footnote 1).

:class:`MediaLog` captures that stream once, through the drive's
``on_write_commit`` observer: one :class:`MediaWrite` per write media
operation, carrying the payload (stored exactly once -- the driver trace
drops its copy, see ``DeviceDriver.retain_payloads``), the transfer window
geometry, the *actual* simulated completion instant, and the sector-prefix
length that persisted (the full count for a successful write, the torn /
medium-error prefix for a faulted one, zero for a transient whose pass
left nothing on the platters).

:func:`synthesize_crash_image` then materializes the crash state at any
instant with **no simulation at all**: base image + the durable prefix of
every window that ended by *t* + the in-flight prefix of the (at most one)
window containing *t*.  The prefix arithmetic replicates
``InFlightWrite.sectors_applied_by`` expression-for-expression so the
synthesized image is byte-identical to the replay-derived one -- the
replay path is kept as a verification oracle and
``tests/integrity/test_synthesis_equivalence.py`` holds the proof.

:class:`ImageSynthesizer` is the worker-pool form: crash points arrive in
time-sorted chunks, so the image is built *incrementally* -- each point
applies only the sectors committed since the previous point instead of
re-applying the whole log.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.disk.storage import SectorStore


@dataclass(frozen=True)
class MediaWrite:
    """One write media operation as it played out on the platters.

    ``end`` is the instant the drive's media operation actually completed
    (``engine.now`` at the commit hook), *not* the nominal
    ``transfer_start + nsectors * sector_period``: a torn write's transfer
    stops at the failing sector, and synthesis must retire the window at
    exactly the instant the replayed simulation does.
    """

    lbn: int
    data: bytes
    transfer_start: float
    sector_period: float
    #: simulated instant the media operation ended (window retired)
    end: float
    #: sector-prefix length that persisted once the operation ended
    #: (nsectors for success, the torn/medium prefix, 0 for transient)
    durable: int

    def sectors_in_flight_by(self, when: float, sector_size: int) -> int:
        """Sector prefix under the head by *when*, mid-window.

        Mirrors ``InFlightWrite.sectors_applied_by`` exactly -- same
        guards, same floating-point expression -- so a synthesized
        mid-transfer prefix matches the replayed one bit for bit.
        """
        if when <= self.transfer_start:
            return 0
        if self.sector_period == 0.0:
            return len(self.data) // sector_size
        elapsed = when - self.transfer_start
        return min(int(elapsed / self.sector_period),
                   len(self.data) // sector_size)


class MediaLog:
    """Append-only record of every write that reached the media.

    Memory discipline (the PR-4 ``retain_payloads`` rule): each window's
    payload bytes are stored here exactly once -- the log holds a reference
    to the very object the driver handed the drive, and the driver trace
    drops its own copy at completion.  ``payload_bytes`` is therefore
    bounded by the workload's unique write volume, never duplicated
    per-sector or per-crash-point.
    """

    def __init__(self, sector_size: int) -> None:
        self.sector_size = sector_size
        self.entries: list[MediaWrite] = []

    # -- the drive-facing observer (Disk.on_write_commit signature) -------
    def record(self, lbn: int, data: bytes, transfer_start: float,
               sector_period: float, end: float, durable: int) -> None:
        self.entries.append(MediaWrite(
            lbn=lbn, data=data, transfer_start=transfer_start,
            sector_period=sector_period, end=end, durable=durable))

    def attach(self, disk) -> None:
        if disk.on_write_commit is not None:
            raise RuntimeError("disk already has a write-commit observer")
        self.sector_size = disk.geometry.sector_size
        disk.on_write_commit = self.record

    def detach(self, disk) -> None:
        disk.on_write_commit = None

    # -- instrumentation ---------------------------------------------------
    def __len__(self) -> int:
        return len(self.entries)

    @property
    def payload_bytes(self) -> int:
        """Total payload held (each window's bytes counted exactly once)."""
        return sum(len(entry.data) for entry in self.entries)

    @property
    def sectors_durable(self) -> int:
        return sum(entry.durable for entry in self.entries)


class ImageSynthesizer:
    """Incremental crash-image synthesis over a time-sorted point stream.

    The drive serves one media operation at a time, so log windows are
    disjoint and ordered by ``transfer_start``; a cursor walks them once.
    Windows fully retired by the requested instant apply their durable
    prefix to the shared evolving image.  The (at most one) window still
    in flight applies its crash-time prefix:

    * prefix <= durable -- those sectors persist anyway when the window
      retires, with identical bytes, so they go onto the shared image too
      (this is what makes consecutive points within one window O(delta));
    * prefix > durable (a transient fault's pass: sectors visible under
      the head mid-window but revoked at completion) -- the prefix goes
      onto a throwaway snapshot so the shared image never holds bytes the
      platters would not keep.

    Instants must be requested in non-decreasing order (the explorer's
    chunks are time-sorted); going backwards raises.
    """

    def __init__(self, base: SectorStore, log: MediaLog) -> None:
        self._image = base.snapshot()
        self._entries = sorted(log.entries, key=lambda e: e.transfer_start)
        self._sector_size = log.sector_size
        self._cursor = 0
        self._last = float("-inf")

    def image_at(self, when: float) -> SectorStore:
        """The surviving image for a power failure at *when*.

        Returns the shared evolving store (or a snapshot overlaid with a
        revocable transient prefix); callers must treat it as read-only --
        ``fsck`` is, and ``repair`` takes its own snapshot.
        """
        if when < self._last:
            raise ValueError(
                f"synthesis points must be time-sorted ({when} < {self._last})")
        self._last = when
        image = self._image
        entries = self._entries
        cursor = self._cursor
        while cursor < len(entries) and entries[cursor].end <= when:
            entry = entries[cursor]
            image.write_partial(entry.lbn, entry.data, entry.durable)
            cursor += 1
        self._cursor = cursor
        if cursor < len(entries):
            entry = entries[cursor]
            applied = entry.sectors_in_flight_by(when, self._sector_size)
            if applied:
                if applied <= entry.durable:
                    image.write_partial(entry.lbn, entry.data, applied)
                else:
                    probe = image.snapshot()
                    probe.write_partial(entry.lbn, entry.data, applied)
                    return probe
        return image


def synthesize_crash_image(base: SectorStore, log: MediaLog,
                           when: float) -> SectorStore:
    """One-shot synthesis: the image a power failure at *when* leaves.

    Equivalent to replaying the recorded workload to *when* and taking
    :func:`repro.integrity.crash.crash_image` (for schemes whose crash
    state lives entirely on the media -- NVRAM's battery-backed survivors
    need the replay path).
    """
    return ImageSynthesizer(base, log).image_at(when)
