"""The machine: CPU + disk + driver + cache + syncer + file system.

:class:`Machine` assembles the whole simulated testbed the way section 2
describes the NCR 3433: one CPU, one HP C2447-class disk behind a scheduling
device driver, a buffer cache swept by a one-second syncer daemon, and a
ufs-like file system mounted with one of the five ordering schemes.

Typical use::

    machine = Machine(MachineConfig(scheme=SoftUpdatesScheme()))
    machine.format()

    def user():
        yield from machine.fs.write_file("/f", b"hello")

    machine.run(machine.spawn(user(), name="user0"))
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.cache import BufferCache, SyncerDaemon
from repro.costs import CostModel
from repro.disk import Disk, DiskGeometry, DiskParameters
from repro.driver import ChainsPolicy, DeviceDriver, FlagPolicy, FlagSemantics
from repro.faults import FaultPlan
from repro.driver.ordering import OrderingPolicy
from repro.fs import FileSystem, FSGeometry, mkfs
from repro.fs.layout import with_journal
from repro.obs import Observability
from repro.ordering import (
    NoOrderScheme,
    OrderingScheme,
    SchedulerChainsScheme,
    SchedulerFlagScheme,
    SoftUpdatesScheme,
)
from repro.sim import CPU, Engine, Process


def default_policy_for(scheme: OrderingScheme) -> OrderingPolicy:
    """The driver policy each scheme expects (section 5's configurations)."""
    if isinstance(scheme, SchedulerChainsScheme):
        return ChainsPolicy()
    if isinstance(scheme, SchedulerFlagScheme):
        # the headline configuration: Part-NR (/CB comes from the scheme)
        return FlagPolicy(FlagSemantics.PART, read_bypass=True)
    # conventional / no order / soft updates do not use the flag
    return FlagPolicy(FlagSemantics.IGNORE)


@dataclass
class MachineConfig:
    """Knobs for one simulated testbed."""

    scheme: OrderingScheme = field(default_factory=NoOrderScheme)
    #: driver ordering policy; None = the scheme's natural choice
    policy: Optional[OrderingPolicy] = None
    fs_geometry: FSGeometry = field(default_factory=FSGeometry)
    disk_geometry: DiskGeometry = field(default_factory=DiskGeometry)
    disk_params: DiskParameters = field(default_factory=DiskParameters)
    costs: CostModel = field(default_factory=CostModel)
    cache_bytes: int = 24 * 1024 * 1024
    syncer_interval: float = 1.0
    syncer_passes: int = 10
    #: force the block-copy setting instead of the scheme's preference
    block_copy: Optional[bool] = None
    #: enable the repro.obs tracing + metrics layer (off by default; a
    #: traced run is simulation-identical to an untraced one, just slower
    #: on the host)
    observe: bool = False
    #: attach the per-layer counting profiler (implies ``observe``;
    #: defaults to the ``REPRO_PROFILE`` environment variable so whole
    #: benchmark grids can be profiled without touching code -- profiled
    #: runs are simulation-identical, tests/obs/test_profiler.py)
    profile: bool = field(
        default_factory=lambda: bool(os.environ.get("REPRO_PROFILE")))
    #: make the disk unreliable (None = the perfect disk; a plan with all
    #: rates zero is byte-identical to None -- tests/faults proves it)
    faults: Optional[FaultPlan] = None
    #: event-loop kernel name (``repro.sim.KERNELS``); None defers to
    #: ``REPRO_KERNEL`` and then the pure-python reference kernel.  Every
    #: kernel is simulation-identical -- the conformance suite proves it --
    #: so this knob only trades host wall clock.
    kernel: Optional[str] = None
    #: sector-store name (``repro.disk.storage.STORES``); None defers to
    #: ``REPRO_STORE`` and then the flat-buffer store.  Stores are
    #: content-identical (same reads, digests, fsck verdicts, counters),
    #: so this knob too only trades host wall clock.
    store: Optional[str] = None


class Machine:
    """One fully assembled simulated system."""

    def __init__(self, config: Optional[MachineConfig] = None) -> None:
        self.config = config or MachineConfig()
        cfg = self.config
        if getattr(cfg.scheme, "wants_journal", False):
            # journaling schemes need the reserved journal area; sizing it
            # here (idempotently) means every harness surface -- runner,
            # explorer, fault sweep, ad-hoc tests -- gets it for free
            cfg.fs_geometry = with_journal(cfg.fs_geometry)
        self.engine = Engine(kernel=cfg.kernel)
        # observability is installed before any component is built so each
        # one can capture its instruments (or None) exactly once
        self.obs = Observability(self.engine,
                                 profile=cfg.profile).attach(self.engine) \
            if (cfg.observe or cfg.profile) else None
        self.cpu = CPU(self.engine)
        self.costs = cfg.costs
        self.disk = Disk(self.engine, geometry=cfg.disk_geometry,
                         params=cfg.disk_params, store=cfg.store)
        if cfg.faults is not None:
            self.disk.faults = cfg.faults.build()
        self.policy = cfg.policy or default_policy_for(cfg.scheme)
        self.driver = DeviceDriver(self.engine, self.disk, self.policy)
        block_copy = (cfg.block_copy if cfg.block_copy is not None
                      else cfg.scheme.uses_block_copy)
        self.cache = BufferCache(self.engine, self.driver, self.cpu,
                                 self.costs,
                                 frag_size=cfg.fs_geometry.frag_size,
                                 capacity_bytes=cfg.cache_bytes,
                                 block_copy=block_copy)
        self.syncer = SyncerDaemon(self.engine, self.cache,
                                   interval=cfg.syncer_interval,
                                   sweep_passes=cfg.syncer_passes)
        self.scheme = cfg.scheme
        self.fs = FileSystem(self.engine, self.cache, self.cpu, self.costs,
                             self.scheme, syncer=self.syncer)
        self.users: list[Process] = []

    # ------------------------------------------------------------------
    def format(self) -> None:
        """mkfs + mount (mounting runs instantaneously)."""
        mkfs(self.disk, self.config.fs_geometry)
        self.run_instantly(self.fs.mount(self.config.fs_geometry))

    def spawn(self, generator: Generator, name: str = "user") -> Process:
        """Start a simulated user process."""
        process = self.engine.process(generator, name=name)
        self.users.append(process)
        return process

    def run(self, *processes: Process, max_events: Optional[int] = None):
        """Advance simulated time until the given processes complete."""
        return [self.engine.run_until(process, max_events=max_events)
                for process in processes]

    def run_instantly(self, generator: Generator, name: str = "setup"):
        """Run a subroutine with a free CPU and an instantaneous disk.

        Used for image population (building source trees before a
        benchmark): the work happens, the clock does not move.
        """
        saved_scale = self.costs.scale
        self.costs.scale = 0.0
        self.cpu.enabled = False
        self.disk.instant = True
        start = self.engine.now
        try:
            result = self.engine.run_until(
                self.engine.process(generator, name=name))
        finally:
            self.costs.scale = saved_scale
            self.cpu.enabled = True
            self.disk.instant = False
        if self.engine.now != start:
            raise RuntimeError(
                "instant-mode work consumed simulated time "
                f"({start} -> {self.engine.now}); a daemon interleaved?")
        return result

    def populate(self, builder: Generator, cold_cache: bool = True) -> None:
        """Run *builder* instantly, then settle to a clean state.

        ``cold_cache=True`` starts the benchmark from an empty cache (the
        source trees are old data); ``False`` leaves the cache warm (the
        remove benchmark deletes a "newly copied" tree, section 2).
        """
        self.run_instantly(builder, name="populate")
        self.run_instantly(self.fs.sync(), name="populate-sync")
        if cold_cache:
            self.drop_caches()

    def adopt_image(self, image) -> None:
        """Boot this (freshly constructed) machine from an existing disk
        image -- the recovery path: crash, :func:`repro.integrity.repair`,
        then mount the repaired image on a new machine.
        """
        if self.fs.superblock is not None:
            raise RuntimeError("adopt_image() requires an unmounted machine")
        self.disk.storage.load_from(image)
        self.run_instantly(self.fs.mount(self.config.fs_geometry),
                           name="adopt-mount")

    def drop_caches(self) -> None:
        """Evict every clean buffer (cold-cache start for benchmarks)."""
        for buf in list(self.cache._buffers.values()):
            if (not buf.dirty and not buf.busy and not buf.write_outstanding
                    and buf.hold_count == 0):
                self.cache._evict(buf)
        self.disk.cache._segments.clear()

    # ------------------------------------------------------------------
    def sync_and_settle(self) -> None:
        """Flush all dirty state (advances the clock)."""
        self.engine.run_until(
            self.engine.process(self.fs.sync(), name="sync"))

    @property
    def scheme_name(self) -> str:
        return self.scheme.name
