"""Superblock codec.

The superblock stores the :class:`~repro.fs.layout.FSGeometry` plus a magic
and a generation stamp.  Free counts live in the cylinder-group headers (as
in FFS, where the superblock's summary is advisory and rebuilt by fsck).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.fs.layout import FSGeometry

SB_MAGIC = 0x50F7F500  # "soft fs"
# trailing field (journal_frags) was appended later: images packed with the
# older 8-word format unpack it as 0 from the fragment's zero padding
_SB_FMT = "<IIIIIIIII"


@dataclass
class Superblock:
    """On-disk superblock contents."""

    geometry: FSGeometry
    generation: int = 1
    clean: bool = True

    def pack(self, frag_size: int) -> bytes:
        geo = self.geometry
        raw = struct.pack(_SB_FMT, SB_MAGIC, geo.block_size, geo.frag_size,
                          geo.ipg, geo.dfrags_per_cg, geo.ncg,
                          self.generation, 1 if self.clean else 0,
                          geo.journal_frags)
        return raw + bytes(frag_size - len(raw))

    @classmethod
    def unpack(cls, raw: bytes) -> "Superblock":
        (magic, block_size, frag_size, ipg, dfrags, ncg, generation,
         clean, journal_frags) = struct.unpack_from(_SB_FMT, raw)
        if magic != SB_MAGIC:
            raise ValueError(f"bad superblock magic {magic:#x}")
        geometry = FSGeometry(block_size=block_size, frag_size=frag_size,
                              ipg=ipg, dfrags_per_cg=dfrags, ncg=ncg,
                              journal_frags=journal_frags)
        return cls(geometry=geometry, generation=generation,
                   clean=bool(clean))
