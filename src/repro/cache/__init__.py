"""Buffer cache and syncer daemon.

The buffer cache is the junction where every ordering scheme acts: the
conventional scheme's synchronous writes, the flag/chains schemes' decorated
asynchronous writes, and the delayed-write schemes' dirty buffers all flow
through :class:`BufferCache`.  The write-lock behaviour of section 3.3 (and
its ``-CB`` block-copy remedy) lives here, as does the syncer daemon of
section 2 (one-second wakeups, mark-then-write sweeps, and the soft-updates
workitem queue of section 4.2).
"""

from repro.cache.buffer import Buffer
from repro.cache.buffercache import BufferCache
from repro.cache.syncer import SyncerDaemon

__all__ = ["Buffer", "BufferCache", "SyncerDaemon"]
