"""The drive: one-request-at-a-time mechanical service.

Command queueing at the disk is deliberately *not* modelled ("Command
queueing at the disk is not utilized", section 2): the device driver owns all
scheduling and hands the drive one (possibly concatenated) request at a time.

:meth:`Disk.service` is a simulated-process subroutine: the device driver
calls it with ``yield from`` and regains control when the media operation is
done.  Writes become persistent in the :class:`SectorStore` at transfer
completion; a crash mid-transfer applies the sector prefix that had already
passed under the head (see ``in_flight`` and ``repro.integrity.crash``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.faults import Fault, FaultInjector, FaultKind, SenseData
from repro.sim.engine import Engine
from repro.disk.cache import PrefetchCache
from repro.disk.geometry import DiskGeometry
from repro.disk.mechanics import DiskParameters
from repro.disk.storage import resolve_store


@dataclass
class InFlightWrite:
    """Descriptor of the write currently being transferred to media."""

    lbn: int
    data: bytes
    transfer_start: float
    sector_period: float

    def sectors_applied_by(self, when: float, sector_size: int) -> int:
        """How many sectors had fully reached the media by time *when*."""
        if when <= self.transfer_start:
            return 0
        elapsed = when - self.transfer_start
        return min(int(elapsed / self.sector_period), len(self.data) // sector_size)


class ServiceTimeStats:
    """Streaming service-time aggregates with bounded memory.

    The old per-I/O ``list`` grew one float per operation forever; long
    runs carried megabytes of dead samples.  This keeps count/sum/min/max
    as scalars and, when a reservoir limit is set (observability on), the
    most recent samples in a bounded deque for percentile-style digging.
    ``append``/``__len__`` match the old list surface.
    """

    __slots__ = ("count", "total", "min", "max", "_reservoir")

    def __init__(self, reservoir_limit: int = 0) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._reservoir = deque(maxlen=reservoir_limit) if reservoir_limit else None

    def append(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if self._reservoir is not None:
            self._reservoir.append(value)

    def __len__(self) -> int:
        return self.count

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def samples(self) -> list:
        """Recent samples (empty unless a reservoir was enabled)."""
        return list(self._reservoir or ())


@dataclass
class DiskStats:
    """Aggregate drive-side instrumentation.

    ``reads``/``writes`` count operations that *completed successfully*;
    ``reads_started``/``writes_started`` count service attempts, so an
    operation cut short by a crash or failed by an injected fault is never
    reported as done.  Faulted attempts land in ``read_faults``/
    ``write_faults``; the difference (started - completed - faulted) is the
    crash-aborted remainder, exposed as ``aborted_reads``/``aborted_writes``.
    """

    reads: int = 0
    writes: int = 0
    reads_started: int = 0
    writes_started: int = 0
    read_faults: int = 0
    write_faults: int = 0
    cache_hit_reads: int = 0
    sectors_read: int = 0
    sectors_written: int = 0
    busy_time: float = 0.0
    seek_time: float = 0.0
    rotation_time: float = 0.0
    transfer_time: float = 0.0
    service_times: ServiceTimeStats = field(default_factory=ServiceTimeStats)

    @property
    def aborted_reads(self) -> int:
        return self.reads_started - self.reads - self.read_faults

    @property
    def aborted_writes(self) -> int:
        return self.writes_started - self.writes - self.write_faults


class Disk:
    """An HP C2447-class drive attached to the simulation engine."""

    def __init__(self, engine: Engine,
                 geometry: Optional[DiskGeometry] = None,
                 params: Optional[DiskParameters] = None,
                 cache_segments: int = 2,
                 prefetch_sectors: int = 64,
                 store: Optional[str] = None) -> None:
        self.engine = engine
        self.geometry = geometry or DiskGeometry()
        self.params = params or DiskParameters()
        # *store* names a repro.disk.storage.STORES entry; None defers to
        # REPRO_STORE and then the default (flat) implementation
        self.storage = resolve_store(self.geometry, store)
        self.cache = PrefetchCache(cache_segments, prefetch_sectors,
                                   self.geometry.total_sectors)
        self.stats = DiskStats()
        obs = engine.obs
        self._obs = obs
        if obs is not None:
            registry = obs.registry
            self._m_service = registry.histogram("disk.service_time")
            self._m_seek = registry.counter("disk.seek_time")
            self._m_rotation = registry.counter("disk.rotation_time")
            self._m_transfer = registry.counter("disk.transfer_time")
            self._m_cache_hits = registry.counter("disk.cache_hit_reads")
            # a reservoir only when someone is watching: bounded memory, and
            # fault-free untraced runs keep the zero-allocation scalar path
            self.stats.service_times = ServiceTimeStats(reservoir_limit=512)
        else:
            self._m_service = None
        # created lazily on the first injected fault so fault-free traced
        # runs keep identical metric snapshots
        self._m_faults = None
        self._current_cylinder = 0
        #: set to True to make service() free (image population, not benchmarks)
        self.instant = False
        #: populated while a write transfer is on the media (crash injection)
        self.in_flight: Optional[InFlightWrite] = None
        #: optional observer called with each InFlightWrite as its transfer
        #: begins (the crash-exploration recorder enumerates boundaries here)
        self.on_transfer_start = None
        #: optional observer called as each write's media operation *ends*:
        #: ``on_write_commit(lbn, data, transfer_start, sector_period, end,
        #: durable)`` where *end* is the simulated completion instant and
        #: *durable* the sector-prefix length that persisted (the full count
        #: for a successful write, the torn/medium prefix for a faulted one,
        #: zero for a transient).  The media write-log recorder
        #: (``repro.integrity.medialog``) synthesizes crash images from this.
        self.on_write_commit = None
        #: attach a repro.faults.FaultInjector to make the media unreliable
        self.faults: Optional[FaultInjector] = None
        #: SCSI-style sense for the last service(); None means it succeeded
        self.sense: Optional[SenseData] = None

    # ------------------------------------------------------------------
    def service(self, lbn: int, nsectors: int, is_write: bool,
                data: Optional[bytes] = None) -> Generator:
        """Perform one media operation; returns the service time in seconds.

        For writes, *data* must be ``nsectors * sector_size`` bytes and is
        applied to the sector store at transfer completion.
        """
        if is_write:
            if data is None:
                raise ValueError("write without data")
            if len(data) != nsectors * self.geometry.sector_size:
                raise ValueError(
                    f"write data is {len(data)} bytes; expected "
                    f"{nsectors * self.geometry.sector_size}")
        if self.instant:
            self._finish(lbn, nsectors, is_write, data)
            return 0.0
        start = self.engine.now
        if is_write:
            self.stats.writes_started += 1
        else:
            self.stats.reads_started += 1
        if self.faults is not None:
            self.sense = None

        if not is_write and self.cache.lookup(lbn, nsectors):
            # on-board cache hit: controller overhead + bus transfer only,
            # and never a media fault -- the platters are not touched
            service = (self.params.controller_overhead
                       + self.params.bus_time(self.geometry, nsectors))
            yield self.engine.timeout(service)
            self.stats.reads += 1
            self.stats.sectors_read += nsectors
            self.stats.cache_hit_reads += 1
            self._account(start, 0.0, 0.0, 0.0)
            if self._obs is not None:
                self._m_cache_hits.inc()
                self._m_service.observe(self.engine.now - start)
                self._obs.tracer.record(
                    "disk.cache_hit", "disk", start, self.engine.now, "drive",
                    args={"lbn": lbn, "nsectors": nsectors})
            return self.engine.now - start

        if self.faults is not None:
            fault = self.faults.draw(lbn, nsectors, is_write)
            if fault is not None:
                result = yield from self._service_faulted(
                    fault, lbn, nsectors, is_write, data, start)
                return result

        cylinder, _head, sector = self.geometry.decompose(lbn)
        seek = self.params.seek_time(self._current_cylinder, cylinder)
        arrival = start + self.params.controller_overhead + seek
        rotation = self.params.rotational_delay(self.geometry, arrival, sector)
        transfer = self.params.transfer_time(self.geometry, nsectors)

        if is_write:
            yield self.engine.timeout(
                self.params.controller_overhead + seek + rotation)
            self.in_flight = InFlightWrite(
                lbn=lbn, data=data, transfer_start=self.engine.now,
                sector_period=self.params.sector_period(self.geometry))
            if self.on_transfer_start is not None:
                self.on_transfer_start(self.in_flight)
            yield self.engine.timeout(transfer)
            window = self.in_flight
            self.in_flight = None
            if self.on_write_commit is not None:
                self.on_write_commit(lbn, data, window.transfer_start,
                                     window.sector_period, self.engine.now,
                                     nsectors)
        else:
            yield self.engine.timeout(
                self.params.controller_overhead + seek + rotation + transfer)

        self._finish(lbn, nsectors, is_write, data)
        if is_write:
            self.stats.writes += 1
            self.stats.sectors_written += nsectors
        else:
            self.stats.reads += 1
            self.stats.sectors_read += nsectors
        self._current_cylinder = self.geometry.cylinder_of(lbn + nsectors - 1)
        self._account(start, seek, rotation, transfer)
        if self._obs is not None:
            self._record_service(start, seek, rotation, transfer,
                                 lbn, nsectors, is_write)
        return self.engine.now - start

    # ------------------------------------------------------------------
    def _service_faulted(self, fault: Fault, lbn: int, nsectors: int,
                         is_write: bool, data: Optional[bytes],
                         start: float) -> Generator:
        """Serve one media operation that the injector has doomed.

        The mechanical time really passes (a failing operation still seeks,
        rotates, and transfers up to the failure point), torn/medium writes
        persist their sector prefix through :meth:`SectorStore.write_partial`,
        and the drive holds :class:`SenseData` for the driver to inspect.
        Nothing is inserted into the prefetch cache and completed-operation
        stats are not credited.
        """
        kind = fault.kind
        applied = 0
        if kind is FaultKind.TIMEOUT:
            # the controller gives up before the mechanics do anything
            seek = rotation = transfer = 0.0
            yield self.engine.timeout(self.faults.plan.timeout_penalty)
        else:
            cylinder, _head, sector = self.geometry.decompose(lbn)
            seek = self.params.seek_time(self._current_cylinder, cylinder)
            arrival = start + self.params.controller_overhead + seek
            rotation = self.params.rotational_delay(self.geometry, arrival,
                                                    sector)
            if is_write:
                if kind is FaultKind.TRANSIENT:
                    # full pass under the head, write current disabled:
                    # nothing reaches the platters
                    transfer = self.params.transfer_time(self.geometry,
                                                         nsectors)
                else:
                    # torn write / medium error: the transfer stops at the
                    # failing sector, leaving a persistent prefix
                    applied = min(fault.sectors_applied, nsectors)
                    transfer = applied * self.params.sector_period(
                        self.geometry)
                yield self.engine.timeout(
                    self.params.controller_overhead + seek + rotation)
                self.in_flight = InFlightWrite(
                    lbn=lbn, data=data, transfer_start=self.engine.now,
                    sector_period=self.params.sector_period(self.geometry))
                if self.on_transfer_start is not None:
                    self.on_transfer_start(self.in_flight)
                if transfer:
                    yield self.engine.timeout(transfer)
                window = self.in_flight
                self.in_flight = None
                if applied:
                    self.storage.write_partial(lbn, data, applied)
                if self.on_write_commit is not None:
                    self.on_write_commit(lbn, data, window.transfer_start,
                                         window.sector_period,
                                         self.engine.now, applied)
                self.cache.invalidate(lbn, nsectors)
            else:
                transfer = self.params.transfer_time(self.geometry, nsectors)
                yield self.engine.timeout(
                    self.params.controller_overhead + seek + rotation
                    + transfer)
            self._current_cylinder = self.geometry.cylinder_of(
                lbn + nsectors - 1)

        if is_write:
            self.stats.write_faults += 1
        else:
            self.stats.read_faults += 1
        self.sense = SenseData(code=kind.value, bad_lbn=fault.bad_lbn,
                               sectors_applied=applied)
        self.faults.injected += 1
        self.faults.log(self.engine.now, "inject",
                        f"{kind.value} {'write' if is_write else 'read'} "
                        f"lbn={lbn} nsectors={nsectors} applied={applied}")
        self._account(start, seek, rotation, transfer)
        if self._obs is not None:
            if self._m_faults is None:
                self._m_faults = self._obs.registry.counter("disk.faults")
            self._m_faults.inc()
            self._obs.tracer.record(
                "disk.fault", "disk", start, self.engine.now, "drive",
                args={"lbn": lbn, "nsectors": nsectors, "kind": kind.value})
        return self.engine.now - start

    def reassign_block(self, lbn: int) -> bool:
        """SCSI REASSIGN BLOCKS for *lbn*; False when spares are exhausted."""
        if self.faults is None:
            return False
        ok = self.faults.reassign(lbn)
        if ok:
            self.faults.log(self.engine.now, "remap", f"lbn={lbn}")
        return ok

    # ------------------------------------------------------------------
    def _record_service(self, start: float, seek: float, rotation: float,
                        transfer: float, lbn: int, nsectors: int,
                        is_write: bool) -> None:
        """Tracing-on accounting: the mechanical phase breakdown as spans.

        The drive serves one request at a time, so these intervals nest
        properly on the dedicated ``drive`` track.  Built entirely from
        timestamps already computed by :meth:`service`.
        """
        obs = self._obs
        end = self.engine.now
        self._m_service.observe(end - start)
        self._m_seek.inc(seek)
        self._m_rotation.inc(rotation)
        self._m_transfer.inc(transfer)
        name = "disk.write" if is_write else "disk.read"
        outer = obs.tracer.record(
            name, "disk", start, end, "drive",
            args={"lbn": lbn, "nsectors": nsectors})
        record = obs.tracer.record
        at = start + self.params.controller_overhead
        if seek:
            record("seek", "disk", at, at + seek, "drive", parent=outer.id)
        at += seek
        if rotation:
            record("rotate", "disk", at, at + rotation, "drive",
                   parent=outer.id)
        at += rotation
        if transfer:
            record("transfer", "disk", at, at + transfer, "drive",
                   parent=outer.id)

    def _finish(self, lbn: int, nsectors: int, is_write: bool,
                data: Optional[bytes]) -> None:
        if is_write:
            self.storage.write(lbn, data)
            self.cache.invalidate(lbn, nsectors)
        else:
            self.cache.insert_after_read(lbn, nsectors)

    def _account(self, start: float, seek: float, rotation: float,
                 transfer: float) -> None:
        service = self.engine.now - start
        self.stats.busy_time += service
        self.stats.seek_time += seek
        self.stats.rotation_time += rotation
        self.stats.transfer_time += transfer
        self.stats.service_times.append(service)

    def read_now(self, lbn: int, nsectors: int) -> bytes:
        """Zero-time read of persistent bytes (setup/inspection paths only)."""
        return self.storage.read(lbn, nsectors)

    def write_now(self, lbn: int, data: bytes) -> None:
        """Zero-time persistent write (setup/inspection paths only)."""
        self.storage.write(lbn, data)
        self.cache.invalidate(lbn, len(data) // self.geometry.sector_size)
