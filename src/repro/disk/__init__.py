"""Disk drive model.

Models an HP C2447-class SCSI drive (the paper's experimental disk): a
1 GB, 3.5-inch, 5400 RPM device with a segmented on-board read cache that
prefetches sequentially.  The model is mechanical -- every access pays
controller overhead, seek, rotational latency and media transfer -- because
the paper's scheme differences are differences in *how many* and *in what
order* mechanical accesses happen.

Public surface:

* :class:`DiskGeometry` -- platter layout and LBN mapping.
* :class:`DiskParameters` -- timing constants (seek curve, RPM, overheads).
* :class:`SectorStore` -- the persistent bytes (what survives a crash).
* :class:`Disk` -- the drive: a generator-based ``service`` routine.
"""

from repro.disk.geometry import DiskGeometry
from repro.disk.mechanics import DiskParameters
from repro.disk.storage import SectorStore
from repro.disk.drive import Disk

__all__ = ["Disk", "DiskGeometry", "DiskParameters", "SectorStore"]
