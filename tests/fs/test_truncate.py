"""truncate-to-zero: deallocation ordering exercised the editor's way."""

import pytest

from repro.fs import FsError
from repro.integrity import crash_image, fsck
from tests.conftest import SMALL_GEOMETRY, make_machine, run_user


class TestTruncateBasics:
    def test_truncate_then_rewrite(self, any_scheme_machine):
        m = any_scheme_machine

        def user():
            yield from m.fs.write_file("/doc", b"old" * 2000)
            yield from m.fs.truncate("/doc")
            st = yield from m.fs.stat("/doc")
            assert st.size == 0
            handle = yield from m.fs.open("/doc")
            yield from m.fs.write(handle, b"new contents")
            yield from m.fs.close(handle)
            yield from m.fs.sync()
            data = yield from m.fs.read_file("/doc")
            return data

        assert run_user(m, user()) == b"new contents"

    def test_truncate_frees_all_space(self, any_scheme_machine):
        m = any_scheme_machine
        before = sum(m.fs.allocator.cg_free_frags)

        def user():
            yield from m.fs.write_file("/big", b"z" * 30000)
            yield from m.fs.truncate("/big")
            yield from m.fs.sync()

        run_user(m, user())
        assert sum(m.fs.allocator.cg_free_frags) == before

    def test_truncate_directory_rejected(self, any_scheme_machine):
        m = any_scheme_machine

        def user():
            yield from m.fs.mkdir("/d")
            with pytest.raises(FsError, match="EISDIR"):
                yield from m.fs.truncate("/d")
            return True

        assert run_user(m, user())

    def test_truncate_missing_rejected(self, any_scheme_machine):
        m = any_scheme_machine

        def user():
            with pytest.raises(FsError, match="ENOENT"):
                yield from m.fs.truncate("/nope")
            return True

        assert run_user(m, user())


class TestTruncateOrdering:
    @pytest.mark.parametrize("scheme", ["conventional", "flag", "chains",
                                        "softupdates"])
    def test_truncate_rewrite_crash_is_consistent(self, scheme):
        """Crash at any point around truncate+rewrite: no shared blocks."""
        for crash_at in (0.05, 0.2, 0.6, 1.2, 2.5):
            m = make_machine(scheme)
            from repro.integrity import CrashScheduler

            def busy():
                yield from m.fs.write_file("/a", b"a" * 20000)
                yield from m.fs.sync()
                for round_no in range(4):
                    yield from m.fs.truncate("/a")
                    handle = yield from m.fs.open("/a")
                    yield from m.fs.write(handle,
                                          bytes([round_no]) * 20000)
                    yield from m.fs.close(handle)
                    # another file competes for the freed space
                    yield from m.fs.write_file(f"/b{round_no}", b"b" * 9000)

            image = CrashScheduler(m).run_and_crash(busy(),
                                                    crash_at=crash_at)
            report = fsck(image, SMALL_GEOMETRY)
            assert report.clean, (scheme, crash_at, report.errors[:3])

    def test_softupdates_defers_frees_on_truncate(self):
        m = make_machine("softupdates")

        def setup():
            yield from m.fs.write_file("/t", b"t" * 16384)
            yield from m.fs.sync()

        run_user(m, setup())
        free_before = sum(m.fs.allocator.cg_free_frags)

        def cut():
            yield from m.fs.truncate("/t")
            return sum(m.fs.allocator.cg_free_frags)

        during = run_user(m, cut())
        assert during == free_before  # deferred until the reset is on disk
        run_user(m, m.fs.sync(), name="sync")
        assert sum(m.fs.allocator.cg_free_frags) == free_before + 16

    def test_conventional_truncate_waits_for_reset_write(self):
        m = make_machine("conventional")

        def user():
            yield from m.fs.write_file("/t", b"t" * 8192)
            yield from m.fs.sync()
            before = m.engine.now
            yield from m.fs.truncate("/t")
            return m.engine.now - before

        assert run_user(m, user()) > 0.003  # a synchronous reset write
