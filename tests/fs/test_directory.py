"""Unit tests for FFS directory chunk packing."""

import pytest
from hypothesis import given, strategies as st

from repro.fs import directory as d
from repro.fs.layout import FileType


def fresh_dir(frag=1024):
    data = bytearray(d.new_dir_contents(2, 2))
    while len(data) < frag:
        data += d.empty_chunk()
    return data


class TestFormat:
    def test_new_dir_has_dot_and_dotdot(self):
        entries = [e for e in d.iter_entries(fresh_dir()) if e.live]
        assert [(e.name, e.ino) for e in entries] == [(".", 2), ("..", 2)]

    def test_empty_chunk_has_one_dead_entry(self):
        entries = list(d.iter_entries(d.empty_chunk()))
        assert len(entries) == 1
        assert not entries[0].live
        assert entries[0].reclen == d.DIRBLKSIZ

    def test_unaligned_data_rejected(self):
        with pytest.raises(ValueError):
            list(d.iter_entries(b"\x00" * 100))


class TestAddLookup:
    def test_add_then_lookup(self):
        data = fresh_dir()
        offset = d.add_entry(data, "hello.txt", 42, FileType.REGULAR)
        assert offset is not None
        entry, scanned = d.lookup(data, "hello.txt")
        assert entry.ino == 42
        assert entry.offset == offset
        assert scanned >= 3

    def test_lookup_miss_scans_everything(self):
        data = fresh_dir()
        entry, scanned = d.lookup(data, "absent")
        assert entry is None
        assert scanned == len(list(d.iter_entries(data)))

    def test_fills_up_and_returns_none(self):
        data = bytearray(d.empty_chunk())
        count = 0
        while d.add_entry(data, f"file{count:03d}", 100 + count,
                          FileType.REGULAR) is not None:
            count += 1
        assert count == d.DIRBLKSIZ // d.entry_bytes(7)
        assert d.add_entry(data, "onemore", 999, FileType.REGULAR) is None

    def test_bad_names_rejected(self):
        with pytest.raises(ValueError):
            d.add_entry(fresh_dir(), "", 1, FileType.REGULAR)
        with pytest.raises(ValueError):
            d.add_entry(fresh_dir(), "x" * 300, 1, FileType.REGULAR)

    def test_base_offset_shifts_reported_offsets(self):
        data = fresh_dir()
        entry, _ = d.lookup(data, ".", base_offset=2048)
        assert entry.offset == 2048


class TestRemove:
    def test_remove_mid_chunk_merges_into_predecessor(self):
        data = fresh_dir()
        offset = d.add_entry(data, "victim", 42, FileType.REGULAR)
        assert d.remove_entry(data, offset) == 42
        entry, _ = d.lookup(data, "victim")
        assert entry is None
        # space is reusable
        assert d.add_entry(data, "reborn", 43, FileType.REGULAR) is not None

    def test_remove_chunk_head_zeroes_ino(self):
        chunk = bytearray(d.format_chunk([(7, "head", FileType.REGULAR),
                                          (8, "tail", FileType.REGULAR)]))
        head = next(iter(d.iter_entries(chunk)))
        d.remove_entry(chunk, head.offset)
        assert d.entry_ino(chunk, 0) == 0
        entry, _ = d.lookup(chunk, "tail")
        assert entry.ino == 8

    def test_remove_dead_entry_rejected(self):
        data = fresh_dir()
        with pytest.raises(ValueError):
            d.remove_entry(data, 512)  # the empty second chunk

    def test_is_empty_dir(self):
        data = fresh_dir()
        assert d.is_empty_dir(data)
        offset = d.add_entry(data, "child", 9, FileType.REGULAR)
        assert not d.is_empty_dir(data)
        d.remove_entry(data, offset)
        assert d.is_empty_dir(data)


class TestUndoRedo:
    def test_set_entry_ino_round_trip(self):
        data = fresh_dir()
        offset = d.add_entry(data, "pending", 77, FileType.REGULAR)
        d.set_entry_ino(data, offset, 0)        # undo (rollback for disk write)
        entry, _ = d.lookup(data, "pending")
        assert entry is None
        d.set_entry_ino(data, offset, 77)       # redo
        entry, _ = d.lookup(data, "pending")
        assert entry.ino == 77


@given(st.lists(st.text(alphabet="abcdefgh", min_size=1, max_size=12),
                min_size=1, max_size=30, unique=True))
def test_add_remove_random_names_property(names):
    data = bytearray(d.empty_chunk() * 4)
    offsets = {}
    for name in names:
        offset = d.add_entry(data, name, 100 + len(offsets), FileType.REGULAR)
        if offset is None:
            break
        offsets[name] = offset
    # every added name is findable, then removable, leaving an empty dir
    for name in offsets:
        entry, _ = d.lookup(data, name)
        assert entry is not None and entry.offset == offsets[name]
    for name in offsets:
        entry, _ = d.lookup(data, name)
        d.remove_entry(data, entry.offset)
    assert d.is_empty_dir(data)
