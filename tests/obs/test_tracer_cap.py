"""The span cap: tracer memory stays bounded, drops are counted and
surfaced, and a capped run is still the same simulation."""

from repro.obs import flame_summary
from repro.obs.tracer import DEFAULT_MAX_SPANS, default_max_spans
from tests.obs.test_equivalence import churn, driver_trace_digest
from tests.conftest import make_machine, run_user


def run_capped(monkeypatch, cap):
    monkeypatch.setenv("REPRO_TRACE_MAX_SPANS", str(cap))
    machine = make_machine("softupdates", free_cpu=False, observe=True)
    run_user(machine, churn(machine)(), name="user0")
    machine.sync_and_settle()
    return machine


class TestDefaultMaxSpans:
    def test_module_default_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_MAX_SPANS", raising=False)
        assert default_max_spans() == DEFAULT_MAX_SPANS

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_MAX_SPANS", "123")
        assert default_max_spans() == 123

    def test_garbage_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_MAX_SPANS", "lots")
        assert default_max_spans() == DEFAULT_MAX_SPANS


class TestSpanCap:
    def test_retention_bounded_and_drops_counted(self, monkeypatch):
        machine = run_capped(monkeypatch, 40)
        tracer = machine.obs.tracer
        assert len(tracer.spans) == 40
        assert tracer.dropped > 0
        assert machine.obs.snapshot()["tracer.spans_dropped"] \
            == tracer.dropped

    def test_zero_means_unbounded(self, monkeypatch):
        machine = run_capped(monkeypatch, 0)
        tracer = machine.obs.tracer
        assert tracer.dropped == 0
        assert len(tracer.spans) > 40

    def test_flame_summary_warns_about_drops(self, monkeypatch):
        capped = run_capped(monkeypatch, 40)
        summary = flame_summary(capped.obs)
        assert "WARNING" in summary
        assert f"{capped.obs.tracer.dropped} spans dropped" in summary
        uncapped = run_capped(monkeypatch, 0)
        assert "WARNING" not in flame_summary(uncapped.obs)

    def test_capped_run_is_simulation_identical(self, monkeypatch):
        capped = run_capped(monkeypatch, 25)
        uncapped = run_capped(monkeypatch, 0)
        assert capped.engine.events_processed \
            == uncapped.engine.events_processed
        assert capped.engine.now == uncapped.engine.now
        assert driver_trace_digest(capped) == driver_trace_digest(uncapped)

    def test_span_ids_and_nesting_survive_the_cap(self, monkeypatch):
        """Spans past the cap still get ids and stack slots, so the
        retained prefix's parent links never dangle into reused ids."""
        machine = run_capped(monkeypatch, 40)
        spans = machine.obs.tracer.spans
        ids = [span.id for span in spans]
        assert len(set(ids)) == len(ids)
        known = set(ids)
        for span in spans:
            if span.parent is not None and span.parent in known:
                parent = next(s for s in spans if s.id == span.parent)
                assert parent.start <= span.start
