"""Paper-style table and series formatting for benchmark output."""

from __future__ import annotations

from typing import Any, Iterable


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(title: str, headers: list[str],
                 rows: Iterable[Iterable[Any]]) -> str:
    """Render an aligned ASCII table like the paper's tables 1-3."""
    materialized = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(header.ljust(widths[i])
                           for i, header in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in materialized:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(title: str, x_label: str, xs: list,
                  series: dict[str, list]) -> str:
    """Render figure data (one column per scheme) as a table."""
    headers = [x_label] + list(series)
    rows = []
    for index, x in enumerate(xs):
        rows.append([x] + [series[name][index] for name in series])
    return format_table(title, headers, rows)
