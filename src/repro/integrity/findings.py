"""Findings: what a crash-exploration sweep observed, aggregated.

Every verified crash point yields one :class:`CrashFinding` (picklable, so
pool workers can ship them back); :class:`ExplorationReport` aggregates a
sweep and renders the human-readable summary the CLI prints.  A finding
carries everything needed to reproduce it by hand: the scheme, workload,
seed and the exact simulated crash instant (see docs/crash-exploration.md).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.integrity.invariants import Severity, Violation, invariant_by_key


@dataclass(frozen=True)
class CrashFinding:
    """The outcome of fsck + invariant checking at one crash point."""

    index: int
    crash_time: float
    label: str
    errors: int
    warnings: int
    violations: tuple[Violation, ...]
    #: violations the scheme's declaration does not permit
    unexpected: tuple[Violation, ...]

    @property
    def corrupted(self) -> bool:
        return any(v.severity is Severity.CORRUPTION for v in self.violations)


@dataclass
class ExplorationReport:
    """One sweep: scheme x workload x seed over every enumerated point."""

    scheme: str
    workload: str
    seed: int
    guarantees: object
    findings: list[CrashFinding] = field(default_factory=list)
    #: recording metadata for reproduction
    quiesce_time: float = 0.0
    write_windows: int = 0
    #: fault plan the sweep ran under (None = the perfect disk)
    fault_profile: str | None = None
    fault_seed: int = 0
    #: how crash images were obtained: "synthesize" (from the media
    #: write-log) or "replay" (full prefix re-simulation per point)
    mode: str = "replay"
    #: size of the *full* enumeration before any --max-points budget;
    #: ``points < enumerated_points`` means the sweep was sampled
    enumerated_points: int = 0
    #: the budget in force (None = unlimited)
    max_points: int | None = None
    #: post-recording simulation replays performed (0 under synthesis)
    replays: int = 0
    #: verification pool size
    jobs: int = 1
    #: wall-clock split: the single recording run vs point verification
    record_wall_seconds: float = 0.0
    verify_wall_seconds: float = 0.0
    #: media write-log payload bytes held during the sweep (0 on replay)
    log_bytes: int = 0
    #: engine events processed by the recording run
    sim_events: int = 0
    #: online ordering monitor state: "off", "online", or "unsupported"
    #: (requested, but the scheme's crash state is not media-resident)
    monitor: str = "off"
    #: write windows the monitor observed during the recording run
    monitor_windows: int = 0
    #: OrderingViolation tuple raised at commit time
    monitor_violations: tuple = ()
    #: fsck pool width per crash image (pFSCK-style parallel scan)
    fsck_jobs: int = 1

    # -- aggregation -----------------------------------------------------
    @property
    def points(self) -> int:
        return len(self.findings)

    @property
    def sampled(self) -> bool:
        """True when the budget truncated the enumeration."""
        return 0 < self.points < self.enumerated_points

    @property
    def points_per_second(self) -> float:
        if self.verify_wall_seconds <= 0.0:
            return 0.0
        return self.points / self.verify_wall_seconds

    @property
    def wall_seconds(self) -> float:
        return self.record_wall_seconds + self.verify_wall_seconds

    @property
    def perf_extra(self) -> dict:
        """Benchmark-grid payload (lands in BENCH_perf.json cells)."""
        return {
            "mode": self.mode,
            "points": self.points,
            "enumerated_points": self.enumerated_points,
            "replays": self.replays,
            "points_per_second": round(self.points_per_second, 2),
            "record_wall_seconds": round(self.record_wall_seconds, 4),
            "verify_wall_seconds": round(self.verify_wall_seconds, 4),
            "log_bytes": self.log_bytes,
            "fsck_jobs": self.fsck_jobs,
        }

    @property
    def violation_counts(self) -> Counter:
        """Per-invariant totals across all crash points."""
        counts: Counter = Counter()
        for finding in self.findings:
            counts.update(v.key for v in finding.violations)
        return counts

    def points_violating(self, severity: Severity | None = None) -> list:
        """Findings with >=1 violation (optionally of one severity)."""
        return [finding for finding in self.findings
                if any(severity is None or v.severity is severity
                       for v in finding.violations)]

    @property
    def corruption_points(self) -> list[CrashFinding]:
        return self.points_violating(Severity.CORRUPTION)

    @property
    def unexpected_findings(self) -> list[CrashFinding]:
        return [finding for finding in self.findings if finding.unexpected]

    @property
    def clean(self) -> bool:
        """The scheme honoured its declaration at every crash point."""
        return not self.unexpected_findings

    @property
    def monitor_unexpected(self) -> list:
        """Online violations outside the scheme's declaration."""
        return [v for v in self.monitor_violations if not v.expected]

    @property
    def exit_status(self) -> int:
        """The CLI/CI contract: 0 only when BOTH verifiers came up clean.

        Any crash finding outside the scheme's declaration, or any
        unexpected online ordering violation, makes the sweep fail with
        status 1 -- a breach is never reported through text alone.
        """
        return 0 if self.clean and not self.monitor_unexpected else 1

    # -- rendering -------------------------------------------------------
    def summary(self) -> str:
        violating = self.points_violating()
        if self.sampled:
            cause = (f"sampled, --max-points {self.max_points}"
                     if self.max_points is not None
                     and self.points == self.max_points else "subset")
            coverage = (f"{self.points} of {self.enumerated_points} "
                        f"enumerated crash points ({cause})")
        elif self.enumerated_points:
            coverage = (f"{self.points} crash points "
                        f"(full enumeration)")
        else:
            coverage = f"{self.points} crash points"
        monitor = ""
        if self.monitor == "online":
            monitor = (f"; monitor: {len(self.monitor_violations)} online "
                       f"violations ({len(self.monitor_unexpected)} "
                       f"unexpected) over {self.monitor_windows} windows")
        elif self.monitor == "unsupported":
            monitor = "; monitor: unsupported (crash state off-media)"
        return (f"{self.scheme} x {self.workload} (seed {self.seed}, "
                f"{self.mode}): {coverage}, "
                f"{len(violating)} with invariant violations "
                f"({len(self.corruption_points)} corruption-class), "
                f"{len(self.unexpected_findings)} outside the scheme's "
                f"declaration{monitor}")

    def format(self, max_examples: int = 5) -> str:
        lines = [self.summary()]
        if self.wall_seconds > 0.0:
            lines.append(
                f"verification: {self.points_per_second:.0f} points/s "
                f"({self.record_wall_seconds:.2f}s record + "
                f"{self.verify_wall_seconds:.2f}s verify, "
                f"{self.replays} replays, jobs={self.jobs})")
        lines.append("")
        counts = self.violation_counts
        if counts:
            lines.append("violations by invariant:")
            for key, count in counts.most_common():
                invariant = invariant_by_key(key)
                lines.append(f"  {key:16s} {invariant.severity.value:10s} "
                             f"x{count}")
        else:
            lines.append("no invariant violations at any crash point")
        shown = 0
        for finding in self.findings:
            if not finding.violations or shown >= max_examples:
                continue
            shown += 1
            lines.append("")
            flag = " [UNEXPECTED]" if finding.unexpected else ""
            lines.append(f"crash point #{finding.index} "
                         f"t={finding.crash_time:.6f} ({finding.label})"
                         f"{flag}:")
            for violation in finding.violations[:4]:
                lines.append(f"    {violation.severity.value}: "
                             f"{violation.message}")
            fault = ("" if self.fault_profile is None
                     else f" --fault-profile {self.fault_profile} "
                          f"--fault-seed {self.fault_seed}")
            lines.append(f"    reproduce: --scheme {self.scheme} "
                         f"--workload {self.workload} --seed {self.seed}"
                         f"{fault} --point {finding.index}")
        if self.monitor == "online" and self.monitor_violations:
            lines.append("")
            lines.append(f"online ordering violations "
                         f"({len(self.monitor_violations)}, "
                         f"{len(self.monitor_unexpected)} unexpected):")
            for violation in self.monitor_violations[:max_examples]:
                lines.append(f"    {violation.format()}")
        if self.exit_status == 0:
            verdict = ("PASS: every crash state within the scheme's "
                       "declaration")
        elif self.clean:
            verdict = ("FAIL: online ordering violations outside the "
                       "scheme's declaration")
        else:
            verdict = "FAIL: crash states outside the scheme's declaration"
        lines += ["", verdict]
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-ready representation (for the CLI's --json mode)."""
        return {
            "scheme": self.scheme,
            "workload": self.workload,
            "seed": self.seed,
            "mode": self.mode,
            "points": self.points,
            "enumerated_points": self.enumerated_points,
            "max_points": self.max_points,
            "sampled": self.sampled,
            "replays": self.replays,
            "jobs": self.jobs,
            "record_wall_seconds": self.record_wall_seconds,
            "verify_wall_seconds": self.verify_wall_seconds,
            "points_per_second": self.points_per_second,
            "log_bytes": self.log_bytes,
            "write_windows": self.write_windows,
            "quiesce_time": self.quiesce_time,
            "violation_counts": dict(self.violation_counts),
            "clean": self.clean,
            "exit_status": self.exit_status,
            "fsck_jobs": self.fsck_jobs,
            "monitor": self.monitor,
            "monitor_windows": self.monitor_windows,
            "monitor_violations": [
                {"rule": v.rule, "message": v.message, "when": v.when,
                 "lbn": v.lbn, "nsectors": v.nsectors,
                 "expected": v.expected}
                for v in self.monitor_violations],
            "findings": [
                {
                    "index": f.index,
                    "crash_time": f.crash_time,
                    "label": f.label,
                    "errors": f.errors,
                    "warnings": f.warnings,
                    "violations": [
                        {"key": v.key, "severity": v.severity.value,
                         "message": v.message} for v in f.violations],
                    "unexpected": len(f.unexpected),
                }
                for f in self.findings if f.violations
            ],
        }
