"""Smoke/correctness tests for the benchmark workloads."""

import pytest

from repro.harness.runner import build_machine, standard_scheme_config
from repro.workloads.andrew import PHASE_NAMES, run_andrew
from repro.workloads.copybench import (
    copy_tree_user,
    populate_sources,
    remove_tree_user,
)
from repro.workloads.microbench import run_microbench
from repro.workloads.sdet import run_sdet
from repro.workloads.trees import TreeSpec, file_bytes, tree_layout


def small_machine(scheme="softupdates"):
    from tests.conftest import SCHEME_FACTORIES
    from repro.machine import Machine, MachineConfig
    from repro.costs import CostModel
    machine = Machine(MachineConfig(scheme=SCHEME_FACTORIES[scheme](),
                                    costs=CostModel(),
                                    cache_bytes=4 * 1024 * 1024))
    machine.format()
    return machine


class TestCopyBench:
    def test_copy_reproduces_source_bytes(self):
        machine = small_machine()
        spec = TreeSpec().scaled(0.03)
        populate_sources(machine, users=1, spec=spec)
        process = machine.spawn(copy_tree_user(machine, 0), name="user0")
        machine.run(process, max_events=50_000_000)
        _dirs, files = tree_layout(spec)

        def verify():
            for relative, size in files[:6]:
                data = yield from machine.fs.read_file(f"/u0/tree/{relative}")
                assert data == file_bytes(relative, size)
            return True

        assert machine.engine.run_until(
            machine.engine.process(verify()), max_events=50_000_000)

    def test_remove_empties_the_tree(self):
        machine = small_machine()
        spec = TreeSpec().scaled(0.03)
        populate_sources(machine, users=1, spec=spec)
        machine.run(machine.spawn(copy_tree_user(machine, 0)),
                    max_events=50_000_000)
        machine.run(machine.spawn(remove_tree_user(machine, 0)),
                    max_events=50_000_000)

        def verify():
            names = yield from machine.fs.readdir("/u0")
            return names

        assert machine.engine.run_until(
            machine.engine.process(verify()), max_events=50_000_000) == []


class TestMicrobench:
    @pytest.mark.parametrize("mode", ["create", "remove", "create_remove"])
    def test_modes_run_and_report_throughput(self, mode):
        machine = small_machine()
        result = run_microbench(machine, users=2, total_files=40, mode=mode)
        assert result.throughput > 0
        assert result.files == 40
        assert result.mode == mode

    def test_throughput_definition(self):
        machine = small_machine()
        result = run_microbench(machine, users=1, total_files=20,
                                mode="create")
        assert result.throughput == pytest.approx(20 / result.elapsed)


class TestAndrew:
    def test_phases_measured_and_compile_dominates(self):
        machine = small_machine()
        result = run_andrew(machine, iterations=2, scale=0.2,
                            compile_scale=0.2)
        assert set(result.phases) == set(PHASE_NAMES)
        for mean, std in result.phases.values():
            assert mean >= 0 and std >= 0
        total, _ = result.total
        assert result.phases["compile"][0] > 0.4 * total

    def test_iterations_are_independent_trees(self):
        machine = small_machine()
        run_andrew(machine, iterations=2, scale=0.2, compile_scale=0.1)

        def verify():
            names = yield from machine.fs.readdir("/")
            return names

        names = machine.engine.run_until(
            machine.engine.process(verify()), max_events=50_000_000)
        assert "run0" in names and "run1" in names


class TestSdet:
    def test_scripts_complete_and_clean_up(self):
        machine = small_machine()
        result = run_sdet(machine, scripts=2, commands_per_script=25)
        assert result.scripts_per_hour > 0

        def verify():
            names = yield from machine.fs.readdir("/sdet0")
            return names

        assert machine.engine.run_until(
            machine.engine.process(verify()), max_events=50_000_000) == []

    def test_deterministic_per_seed(self):
        results = [run_sdet(small_machine(), scripts=1,
                            commands_per_script=20, seed=5).elapsed
                   for _ in range(2)]
        assert results[0] == results[1]
