"""End-to-end fault recovery: drive faults, driver retries, scheme survival.

The acceptance bar from the fault-injection issue: under a seeded fault
plan every scheme either recovers to an fsck-clean image or surfaces a
*typed* degradation -- never silent corruption.  These tests force each
fault class with saturated rates and check the recovery machinery at each
layer: prefix persistence at the drive, bounded retry and REASSIGN BLOCKS
at the driver, B_ERROR propagation at the cache, dependency requeueing in
soft updates, and whole-image consistency after settling.
"""

import pytest

from repro.disk import Disk
from repro.driver import DeviceDriver, FlagPolicy, FlagSemantics
from repro.faults import EXHAUSTED, NOSPARE, FaultPlan, MediaError, PROFILES
from repro.integrity.fsck import fsck
from repro.sim import Engine, ProcessCrashed
from tests.conftest import SAFE_SCHEMES, SMALL_GEOMETRY, make_machine, run_user


def make_faulty_driver(plan):
    eng = Engine()
    disk = Disk(eng)
    disk.faults = plan.build()
    return eng, DeviceDriver(eng, disk, FlagPolicy(FlagSemantics.IGNORE))


def settle(machine, attempts=50):
    """Sync until convergence, re-trying through transient fault storms."""
    for _ in range(attempts):
        try:
            machine.sync_and_settle()
            return
        except ProcessCrashed as exc:
            if not isinstance(exc.original, MediaError):
                raise
            continue
    raise AssertionError(f"could not settle in {attempts} sync attempts")


def churn(machine, files=8):
    fs = machine.fs

    def user():
        yield from fs.mkdir("/d")
        for index in range(files):
            yield from fs.write_file(f"/d/f{index}", b"x" * 2048)
        for index in range(0, files, 2):
            yield from fs.unlink(f"/d/f{index}")

    return user()


# ---------------------------------------------------------------------------
# drive + driver layer


def test_transient_write_recovered_by_retry():
    eng, driver = make_faulty_driver(
        FaultPlan(seed=1, transient_write_rate=0.6))
    req = driver.write(1000, b"\xab" * 1024)
    eng.run_until(req.done)
    assert req.error is None
    assert driver.disk.storage.read(1000, 2) == b"\xab" * 1024
    assert driver.retries == driver.disk.faults.injected > 0


def test_torn_write_persists_prefix_then_retry_completes_it():
    eng, driver = make_faulty_driver(FaultPlan(seed=2, torn_write_rate=1.0))
    driver.max_retries = 2
    old = driver.disk.storage.read(500, 8)
    req = driver.write(500, b"\xcd" * (8 * 512))
    eng.run_until(req.done)
    # every attempt tears, so the request fails -- but each tear laid down
    # a sector prefix (the longest attempt wins), and the tail past the
    # longest prefix still holds the old bytes: never a mix inside a sector
    assert req.error == EXHAUSTED
    surviving = driver.disk.storage.read(500, 8)
    applied = driver.disk.sense.sectors_applied
    assert 0 < applied < 8
    assert surviving[:applied * 512] == b"\xcd" * (applied * 512)
    new_sectors = sum(
        1 for s in range(8)
        if surviving[s * 512:(s + 1) * 512] == b"\xcd" * 512)
    assert applied <= new_sectors < 8
    for s in range(new_sectors, 8):
        assert surviving[s * 512:(s + 1) * 512] == old[s * 512:(s + 1) * 512]


def test_grown_defect_reassigned_and_write_lands():
    eng, driver = make_faulty_driver(
        FaultPlan(seed=3, grown_defect_rate=0.5))
    for index in range(6):
        req = driver.write(2000 + 8 * index, b"\x11" * (8 * 512))
        eng.run_until(req.done)
        assert req.error is None
    assert driver.remaps > 0
    assert driver.disk.faults.reassigned
    assert not driver.disk.faults.bad_sectors  # all healed


def test_spare_exhaustion_fails_write_with_nospare():
    eng, driver = make_faulty_driver(
        FaultPlan(seed=4, grown_defect_rate=1.0, spares=3))
    req = driver.write(3000, b"\x22" * (8 * 512))
    eng.run_until(req.done)
    assert req.error == NOSPARE
    assert driver.io_errors == 1
    assert driver.disk.faults.spares_left == 0


def test_latent_defect_read_fails_immediately_with_eio():
    eng, driver = make_faulty_driver(
        FaultPlan(seed=5, latent_defect_rate=1.0))
    req = driver.read(4000, 8)
    eng.run_until(req.done)
    assert req.error == "EIO"
    # a medium read never retries: the data is gone, retrying is pointless
    assert driver.retries == 0


def test_timeout_costs_the_penalty_then_recovers():
    plan = FaultPlan(seed=6, timeout_rate=0.9, timeout_penalty=0.25)
    eng, driver = make_faulty_driver(plan)
    driver.max_retries = 50  # enough budget to outlast a 0.9 timeout storm
    req = driver.write(5000, b"\x33" * 512)
    eng.run_until(req.done)
    assert req.error is None
    assert driver.disk.faults.injected > 0
    assert eng.now > plan.timeout_penalty  # the stall actually happened


# ---------------------------------------------------------------------------
# cache layer


def test_read_eio_raises_media_error_through_bread():
    machine = make_machine("conventional")
    run_user(machine, machine.fs.write_file("/victim", b"v" * 4096))
    machine.sync_and_settle()
    machine.drop_caches()
    machine.disk.faults = FaultPlan(seed=7, latent_defect_rate=1.0).build()

    with pytest.raises(ProcessCrashed) as excinfo:
        run_user(machine, machine.fs.read_file("/victim"))
    assert isinstance(excinfo.value.original, MediaError)
    assert excinfo.value.original.code == "EIO"
    assert machine.cache.read_errors > 0
    assert machine.disk.faults.degradations()
    # the failed read must not leave its buffer busy (B_BUSY leak)
    assert all(not buf.busy for buf in machine.cache._buffers.values())


def test_failed_delayed_write_is_redirtied_for_retry():
    machine = make_machine("noorder")
    machine.disk.faults = FaultPlan(seed=8, transient_write_rate=0.97).build()
    machine.driver.max_retries = 1
    run_user(machine, machine.fs.write_file("/f", b"y" * 1024))
    settle(machine)
    assert machine.cache.write_retries > 0
    assert not machine.cache.lost_writes
    report = fsck(machine.disk.storage, SMALL_GEOMETRY)
    assert report.clean, report.errors


# ---------------------------------------------------------------------------
# scheme layer


@pytest.mark.parametrize("scheme_name", SAFE_SCHEMES)
def test_scheme_recovers_clean_under_recoverable_fault_storm(scheme_name):
    machine = make_machine(
        scheme_name,
        faults=FaultPlan(seed=9, transient_write_rate=0.3,
                         torn_write_rate=0.2, transient_read_rate=0.2,
                         grown_defect_rate=0.1, timeout_rate=0.05))
    run_user(machine, churn(machine))
    settle(machine)
    assert machine.disk.faults.injected > 0
    assert machine.driver.retries > 0
    report = fsck(machine.disk.storage, SMALL_GEOMETRY)
    assert report.clean, report.errors
    assert not machine.cache.lost_writes


def test_softupdates_requeues_dependencies_on_failed_write():
    machine = make_machine(
        "softupdates",
        faults=FaultPlan(seed=10, transient_write_rate=0.9))
    machine.driver.max_retries = 1
    run_user(machine, churn(machine, files=10))
    settle(machine)
    manager = machine.scheme.manager
    assert manager.requeues > 0
    assert any(event.kind == "requeue"
               for event in machine.disk.faults.events)
    # after settling, every requeued batch was eventually retired
    assert manager.pending() == 0
    report = fsck(machine.disk.storage, SMALL_GEOMETRY)
    assert report.clean, report.errors


def test_explorer_profile_sweep_matches_harness_verdicts():
    """The harness cell runner classifies a recoverable profile clean."""
    from repro.harness.faults import run_cell

    cell = run_cell("softupdates", "transient", seed=1, operations=20)
    assert cell.verdict in ("clean", "recovered")
    assert cell.fsck_errors == 0
