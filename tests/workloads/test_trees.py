"""Tests for the synthetic tree generator."""

from repro.workloads.trees import TreeSpec, build_tree, file_bytes, tree_layout
from tests.conftest import make_machine, run_user


class TestLayout:
    def test_deterministic(self):
        spec = TreeSpec()
        assert tree_layout(spec) == tree_layout(spec)

    def test_different_seeds_differ(self):
        a = tree_layout(TreeSpec(seed=1))
        b = tree_layout(TreeSpec(seed=2))
        assert a != b

    def test_file_count_and_total_size(self):
        spec = TreeSpec()
        _dirs, files = tree_layout(spec)
        assert len(files) == spec.files
        total = sum(size for _p, size in files)
        assert 0.9 * spec.total_bytes < total < 1.3 * spec.total_bytes

    def test_parents_listed_before_children(self):
        directories, _files = tree_layout(TreeSpec())
        seen = set()
        for path in directories:
            parent = path.rsplit("/", 1)[0] if "/" in path else None
            if parent is not None:
                assert parent in seen
            seen.add(path)

    def test_scaled_shrinks_proportionally(self):
        spec = TreeSpec().scaled(0.1)
        assert spec.files == 53
        assert 1_400_000 < spec.total_bytes < 1_500_000

    def test_size_distribution_has_spread(self):
        _dirs, files = tree_layout(TreeSpec())
        sizes = sorted(size for _p, size in files)
        assert sizes[-1] > 8 * sizes[len(sizes) // 2]  # heavy tail

    def test_file_bytes_deterministic_and_sized(self):
        assert file_bytes("a/b", 1000) == file_bytes("a/b", 1000)
        assert len(file_bytes("a/b", 1000)) == 1000


class TestBuild:
    def test_build_tree_on_fs_matches_layout(self):
        machine = make_machine("noorder")
        spec = TreeSpec().scaled(0.05)

        def builder():
            yield from build_tree(machine.fs, "/src", spec)

        run_user(machine, builder(), max_events=20_000_000)
        _dirs, files = tree_layout(spec)

        def verify():
            for relative, size in files[:10]:
                attrs = yield from machine.fs.stat(f"/src/{relative}")
                assert attrs.size == size
            return True

        assert run_user(machine, verify(), max_events=20_000_000)
