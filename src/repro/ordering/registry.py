"""The single scheme registry: every harness surface enumerates this.

One scheme, one entry.  The benchmark runner (display names, standard
configurations), the crash explorer (slug -> class), the fault sweep
(default scheme list) and the trace CLI (slug aliases) all derive their
lists from here, so a scheme registered once is visible everywhere --
``tests/ordering/test_registry.py`` holds them to it.  The rule-breaking
mutation shims (:data:`repro.ordering.shims.SHIMS`) are deliberately not
registered: they exist to *fail* sweeps, not to appear in tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.ordering.base import OrderingScheme
from repro.ordering.conventional import ConventionalScheme
from repro.ordering.guarantees import CrashGuarantees
from repro.ordering.journal import JournalScheme
from repro.ordering.noorder import NoOrderScheme
from repro.ordering.nvram import NvramScheme
from repro.ordering.schedchains import SchedulerChainsScheme
from repro.ordering.schedflag import SchedulerFlagScheme
from repro.ordering.softupdates import SoftUpdatesScheme


@dataclass(frozen=True)
class SchemeInfo:
    """One registered ordering scheme."""

    slug: str
    display_name: str
    cls: type
    #: appears in the section-5 comparison tables and the standard
    #: benchmark grid (nvram is a what-if, not a paper configuration)
    standard: bool = True
    #: constructor keywords for the *standard* (table) configuration, e.g.
    #: the scheduler schemes run with the -CB block-copy enhancement
    standard_kwargs: dict = field(default_factory=dict)
    #: whether the standard configuration forwards ``alloc_init`` (No
    #: Order ignores the knob: it orders nothing either way)
    takes_alloc_init: bool = True

    @property
    def guarantees(self) -> CrashGuarantees:
        """The class's static declaration (instances may tighten it)."""
        return self.cls.declared_guarantees

    def build(self) -> OrderingScheme:
        """A default-configured instance (explorer / fault-sweep style)."""
        return self.cls()

    def build_standard(self,
                       alloc_init: Optional[bool] = None) -> OrderingScheme:
        """An instance in the standard benchmark configuration."""
        kwargs = dict(self.standard_kwargs)
        if self.takes_alloc_init and alloc_init is not None:
            kwargs["alloc_init"] = alloc_init
        return self.cls(**kwargs)


#: slug -> info, in the section-5 comparison order (No Order last: it is
#: the table baseline the other rows are normalized against)
REGISTRY: dict[str, SchemeInfo] = {
    info.slug: info for info in (
        SchemeInfo("conventional", "Conventional", ConventionalScheme),
        SchemeInfo("flag", "Scheduler Flag", SchedulerFlagScheme,
                   standard_kwargs={"block_copy": True}),
        SchemeInfo("chains", "Scheduler Chains", SchedulerChainsScheme,
                   standard_kwargs={"block_copy": True}),
        SchemeInfo("softupdates", "Soft Updates", SoftUpdatesScheme),
        SchemeInfo("journal", "Journaling", JournalScheme),
        SchemeInfo("noorder", "No Order", NoOrderScheme,
                   takes_alloc_init=False),
        SchemeInfo("nvram", "NVRAM", NvramScheme, standard=False,
                   takes_alloc_init=False),
    )
}


def standard_display_names() -> list[str]:
    """Display names of the standard comparison, in table order."""
    return [info.display_name for info in REGISTRY.values() if info.standard]


def standard_slugs() -> list[str]:
    """Slugs of the standard comparison (the fault sweep's default set)."""
    return [info.slug for info in REGISTRY.values() if info.standard]


def scheme_classes() -> dict[str, type]:
    """slug -> class, every registered scheme (the explorer's table)."""
    return {info.slug: info.cls for info in REGISTRY.values()}


def display_aliases() -> dict[str, str]:
    """slug -> display name (the trace CLI's alias table)."""
    return {info.slug: info.display_name for info in REGISTRY.values()}


def by_display_name(name: str) -> SchemeInfo:
    for info in REGISTRY.values():
        if info.display_name == name:
            return info
    raise ValueError(f"unknown scheme {name!r}")
