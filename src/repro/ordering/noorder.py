"""No Order: delayed writes everywhere, ordering ignored.

The paper's performance baseline (and integrity anti-baseline): "This
baseline has the same performance and lack of reliability as the delayed
mount option described in [Ohta90]" and behaves like a memory-based file
system while the cache holds the working set.  A crash can leave directory
entries pointing at uninitialized inodes, blocks shared between files, and
every other violation of the three rules -- the integrity test suite
demonstrates exactly that.
"""

from __future__ import annotations

from typing import Generator

from repro.ordering.base import AllocContext, OrderingScheme
from repro.ordering.guarantees import UNSAFE


class NoOrderScheme(OrderingScheme):
    """Everything is a delayed write; resources are reused immediately."""

    name = "No Order"
    uses_block_copy = True  # delayed writes flush in the background; never
    # stall foreground updates on a write lock
    # ordering rules ignored: a crash may corrupt, leak, and expose stale
    # data all at once -- the exploration engine demonstrates this
    declared_guarantees = UNSAFE

    def link_added(self, dp, dbuf, offset, ip, new_inode: bool) -> Generator:
        ibuf = yield from self._release_on_error(
            self.fs.load_inode_buf(ip.ino), dbuf)
        self.fs.store_inode(ip, ibuf)
        self.fs.cache.bdwrite(ibuf)
        self.fs.cache.bdwrite(dbuf)
        self._bump("ordering.delayed_writes", 2)

    def link_removed(self, dp, dbuf, offset, ip) -> Generator:
        self.fs.cache.bdwrite(dbuf)
        self._bump("ordering.delayed_writes")
        yield from self.fs.drop_link(ip)

    def block_allocated(self, ctx: AllocContext) -> Generator:
        if ctx.ibuf is not None:
            self.fs.cache.bdwrite(ctx.ibuf)
            self._bump("ordering.delayed_writes")
        self.fs.cache.bdwrite(ctx.data_buf)
        self._bump("ordering.delayed_writes")
        if ctx.old_daddr and ctx.old_daddr != ctx.new_daddr:
            # fragment moved: free the old run right away (unsafe ordering)
            self.fs.cache.invalidate(ctx.old_daddr, ctx.old_frags)
            yield from self.fs.allocator.free_frags(ctx.old_daddr,
                                                    ctx.old_frags)

    def truncated(self, ip, runs) -> Generator:
        yield from self.fs.iupdat(ip)            # delayed, unordered
        yield from self.fs.free_block_list(runs)  # reuse immediately

    def release_inode(self, ip) -> Generator:
        runs = yield from self.fs.collect_blocks(ip)
        self.fs.clear_block_pointers(ip)
        yield from self.fs.free_block_list(runs)
        ibuf = yield from self.fs.load_inode_buf(ip.ino)
        ino = ip.ino
        yield from self.fs.free_inode_record(ip)
        # write the cleared dinode (delayed, unordered)
        at = self.fs.geometry.inode_offset_in_block(ino)
        ibuf.data[at:at + 128] = bytes(128)
        self.fs.cache.bdwrite(ibuf)
