"""Discrete-event simulation kernel.

This package is the substrate on which the whole reproduction runs: a small,
deterministic, generator-based discrete-event engine in the style of simpy,
written from scratch.  Simulated processes are plain generator functions that
``yield`` :class:`~repro.sim.events.Event` objects (timeouts, lock acquires,
I/O completions) and are resumed when the event fires.

Public surface:

* :class:`Engine` -- the event loop and clock.
* :class:`Event`, :class:`Timeout` -- one-shot occurrences.
* :class:`Process` -- a running coroutine; itself an event (joinable).
* :class:`Lock`, :class:`Semaphore`, :class:`WaitQueue`, :class:`FIFOQueue`
  -- synchronisation primitives.
* :class:`CPU` -- a single-server compute resource with per-process
  accounting, used to model the 33 MHz i486 of the paper's testbed.
* :data:`KERNELS`, :class:`PythonKernel`, :class:`FastKernel` -- swappable
  event-loop kernels (``Engine(kernel=...)`` / ``REPRO_KERNEL``); the
  pure-python kernel is the default and the equivalence oracle.
"""

from repro.sim.engine import Engine, SimulationError
from repro.sim.events import Event, Timeout
from repro.sim.kernel import (
    KERNELS,
    FastKernel,
    Kernel,
    PythonKernel,
    kernel_name,
    resolve_kernel,
)
from repro.sim.process import Process, ProcessCrashed
from repro.sim.primitives import FIFOQueue, Lock, Semaphore, WaitQueue
from repro.sim.cpu import CPU

__all__ = [
    "CPU",
    "Engine",
    "Event",
    "FIFOQueue",
    "FastKernel",
    "KERNELS",
    "Kernel",
    "Lock",
    "Process",
    "ProcessCrashed",
    "PythonKernel",
    "Semaphore",
    "SimulationError",
    "Timeout",
    "WaitQueue",
    "kernel_name",
    "resolve_kernel",
]
