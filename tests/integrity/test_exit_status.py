"""The exit-status contract: a breach can never exit 0.

Regression guard for the CI green-washing hazard: every sweep output
(`ExplorationReport`, the explorer CLI, the fault harness CLI) must turn
any finding outside a scheme's declaration -- from post-crash fsck OR the
online monitor -- into a nonzero exit.  Text-only reporting of a breach
is a bug by contract.
"""

import pytest

from repro.integrity.explorer import main as explorer_main
from repro.integrity.findings import CrashFinding, ExplorationReport
from repro.integrity.invariants import Severity, Violation
from repro.integrity.monitor import OrderingViolation
from repro.harness.faults import main as faults_main
from repro.ordering.guarantees import SAFE_DEFAULT


def make_report(findings=(), monitor_violations=()):
    return ExplorationReport(
        scheme="test", workload="w", seed=0, guarantees=SAFE_DEFAULT,
        findings=list(findings), monitor_violations=tuple(monitor_violations))


def finding(unexpected=False):
    violation = Violation(key="dangling-entry", severity=Severity.CORRUPTION,
                          message="entry points to unallocated inode")
    return CrashFinding(index=0, crash_time=1.0, label="w0.complete",
                        errors=1, warnings=0, violations=(violation,),
                        unexpected=(violation,) if unexpected else ())


def ordering_violation(expected):
    return OrderingViolation(rule="reuse-before-nullify", message="m",
                             when=1.0, lbn=64, nsectors=2, expected=expected)


class TestReportContract:
    def test_clean_report_exits_zero(self):
        assert make_report().exit_status == 0

    def test_expected_findings_exit_zero(self):
        # noorder's declared corruption: reported, not failed
        report = make_report(findings=[finding(unexpected=False)])
        assert report.clean
        assert report.exit_status == 0

    def test_unexpected_crash_finding_exits_nonzero(self):
        report = make_report(findings=[finding(unexpected=True)])
        assert not report.clean
        assert report.exit_status == 1

    def test_unexpected_monitor_violation_alone_exits_nonzero(self):
        # fsck sampled past the breach window; the monitor still fails it
        report = make_report(
            monitor_violations=[ordering_violation(expected=False)])
        assert report.clean  # no crash-point finding ...
        assert report.monitor_unexpected  # ... but the monitor saw it
        assert report.exit_status == 1

    def test_expected_monitor_violations_exit_zero(self):
        report = make_report(
            monitor_violations=[ordering_violation(expected=True)])
        assert report.exit_status == 0


class TestExplorerCli:
    def test_mutation_breach_exits_nonzero(self, capsys):
        code = explorer_main(["--scheme", "shim-rule3", "--workload",
                              "remove", "--jobs", "1", "--max-points", "8",
                              "--monitor"])
        out = capsys.readouterr().out
        assert code == 1
        assert "FAIL" in out or "UNEXPECTED" in out

    def test_declared_violations_still_exit_zero(self, capsys):
        code = explorer_main(["--scheme", "noorder", "--jobs", "1",
                              "--max-points", "8", "--monitor"])
        assert code == 0


class TestFaultsCli:
    def test_monitor_breach_exits_nonzero(self, tmp_path, capsys):
        code = faults_main(["--schemes", "shim-rule3", "--profiles", "none",
                            "--seeds", "1", "--ops", "20", "--monitor",
                            "--out", str(tmp_path / "report.txt")])
        captured = capsys.readouterr()
        assert code == 1
        assert "ONLINE ORDERING BREACH" in captured.err

    def test_safe_scheme_exits_zero(self, tmp_path):
        code = faults_main(["--schemes", "conventional", "--profiles",
                            "transient", "--seeds", "1", "--ops", "20",
                            "--monitor",
                            "--out", str(tmp_path / "report.txt")])
        assert code == 0
