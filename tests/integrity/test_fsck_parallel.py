"""Parallel fsck: byte-identical to serial, on clean AND damaged images.

The pFSCK-style fan-out (per-cylinder-group scans over a fork pool, serial
replay merge) must be invisible in the output: every error string, every
warning string, every inode and reference, in the same order, no matter
the pool width.  The merge replays op-streams in ascending inode order to
make that true -- these tests hold it to the letter, including on images
deliberately damaged mid-flight (synthesized crash states of ``noorder``,
where the interesting findings live).
"""

import importlib

import pytest

from repro.fs.layout import FSGeometry
from repro.harness.recording import record_run
from repro.integrity import fsck
from repro.integrity.explorer import (
    EXPLORER_GEOMETRY,
    build_machine,
    build_workload,
    explore,
)
from repro.integrity.medialog import ImageSynthesizer
from tests.conftest import make_machine, run_user


def report_key(report):
    """Every observable finding of one audit, order included."""
    return (tuple(report.errors), tuple(report.warnings),
            tuple((ino, din.pack()) for ino, din in report.inodes.items()),
            tuple((ino, tuple(refs))
                  for ino, refs in report.references.items()))


def populated_machine(scheme="conventional"):
    m = make_machine(scheme, geometry=EXPLORER_GEOMETRY)

    def setup():
        for d in range(3):
            yield from m.fs.mkdir(f"/d{d}")
            for f in range(8):
                yield from m.fs.write_file(f"/d{d}/f{f}",
                                           bytes([f]) * (1024 * (1 + f % 4)))
        yield from m.fs.link("/d0/f0", "/d1/hard")
        yield from m.fs.unlink("/d2/f3")
        yield from m.fs.sync()

    run_user(m, setup())
    return m


class TestIdentity:
    @pytest.mark.parametrize("jobs", [2, 4, 8])
    def test_clean_image_identical(self, jobs):
        m = populated_machine()
        serial = fsck(m.disk.storage, EXPLORER_GEOMETRY)
        parallel = fsck(m.disk.storage, EXPLORER_GEOMETRY, jobs=jobs)
        assert serial.clean and not serial.warnings
        assert report_key(parallel) == report_key(serial)

    def test_crash_damaged_images_identical(self):
        # noorder's mid-flight crash states carry the dirty findings
        # (dangling entries, orphans, bitmap drift); the pools must agree
        # on every one of them
        machine = build_machine("noorder")
        recorded = record_run(
            machine, build_workload(machine, "microbench", 0, 16),
            capture_media=True)
        synth = ImageSynthesizer(recorded.base_image, recorded.media_log)
        instants = [w.complete_time for w in recorded.windows[::4]]
        dirty = 0
        for when in instants:
            image = synth.image_at(when)
            serial = fsck(image, EXPLORER_GEOMETRY)
            parallel = fsck(image, EXPLORER_GEOMETRY, jobs=4)
            assert report_key(parallel) == report_key(serial), when
            dirty += 0 if (serial.clean and not serial.warnings) else 1
        assert dirty > 0, "the sweep must include genuinely dirty images"

    def test_single_cg_geometry_falls_back_to_serial(self):
        geo = FSGeometry(ipg=256, dfrags_per_cg=2048, ncg=1)
        m = make_machine("conventional", geometry=geo)

        def setup():
            yield from m.fs.write_file("/f", b"x" * 5000)
            yield from m.fs.sync()

        run_user(m, setup())
        serial = fsck(m.disk.storage, geo)
        parallel = fsck(m.disk.storage, geo, jobs=4)
        assert serial.clean
        assert report_key(parallel) == report_key(serial)

    def test_garbage_superblock_short_circuits(self):
        m = populated_machine()
        m.disk.storage.write(EXPLORER_GEOMETRY.superblock_daddr * 2,
                             b"\x00" * 512)
        report = fsck(m.disk.storage, EXPLORER_GEOMETRY, jobs=4)
        assert not report.clean
        assert "superblock" in report.errors[0]


class TestFlatImage:
    def test_reads_match_sector_store(self):
        m = populated_machine()
        store = m.disk.storage
        geo = EXPLORER_GEOMETRY
        spf = geo.frag_size // store.geometry.sector_size
        total = geo.total_frags * spf
        fsck_mod = importlib.import_module("repro.integrity.fsck")
        flat = fsck_mod._FlatImage(store, total)
        assert flat.geometry.sector_size == store.geometry.sector_size
        for lbn in range(0, total, 7):
            nsectors = min(spf, total - lbn)
            assert flat.read(lbn, nsectors) == store.read(lbn, nsectors)


class TestExplorerWiring:
    def test_fsck_jobs_do_not_change_findings(self):
        serial = explore("noorder", "microbench", seed=0, jobs=1,
                         max_points=8, fsck_jobs=1)
        pooled = explore("noorder", "microbench", seed=0, jobs=1,
                         max_points=8, fsck_jobs=2)
        assert pooled.fsck_jobs == 2
        assert pooled.findings == serial.findings

    def test_fsck_jobs_suppressed_under_a_parallel_sweep(self):
        # daemonic pool workers cannot fork their own pools; the explorer
        # must fall back to serial fsck rather than crash
        report = explore("conventional", "microbench", seed=0, jobs=2,
                         max_points=8, fsck_jobs=4)
        assert report.fsck_jobs == 1
        assert report.clean
