"""FFS-style directory blocks.

Entries are variable length -- ``(ino u32, reclen u16, namelen u8, type u8,
name …pad4)`` -- packed into ``DIRBLKSIZ`` (512-byte) chunks that entries
never cross, so a single sector write updates a directory chunk atomically
(the property footnote 1 of the paper relies on).  An entry is deleted either
by zeroing its inode number (if first in its chunk) or by folding its record
length into its predecessor.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.fs.layout import FileType

DIRBLKSIZ = 512
_ENTRY_HDR = "<IHBB"
_ENTRY_HDR_SIZE = 8
MAX_NAME = 255


def entry_bytes(namelen: int) -> int:
    """Space one entry needs: header + name padded to 4 bytes."""
    return _ENTRY_HDR_SIZE + ((namelen + 3) & ~3)


@dataclass
class DirEntry:
    """A decoded directory entry at ``offset`` within its buffer."""

    offset: int
    ino: int
    reclen: int
    name: str
    ftype: FileType

    @property
    def live(self) -> bool:
        return self.ino != 0


def format_chunk(entries: list[tuple[int, str, FileType]]) -> bytes:
    """Build one DIRBLKSIZ chunk holding *entries*, last entry padded out."""
    out = bytearray()
    for position, (ino, name, ftype) in enumerate(entries):
        name_raw = name.encode()
        need = entry_bytes(len(name_raw))
        if position == len(entries) - 1:
            reclen = DIRBLKSIZ - len(out)
        else:
            reclen = need
        if reclen < need or len(out) + reclen > DIRBLKSIZ:
            raise ValueError("entries do not fit in one chunk")
        out += struct.pack(_ENTRY_HDR, ino, reclen, len(name_raw),
                           int(ftype) >> 12)
        out += name_raw
        out += bytes(reclen - _ENTRY_HDR_SIZE - len(name_raw))
    out += bytes(DIRBLKSIZ - len(out))
    return bytes(out)


def empty_chunk() -> bytes:
    """A chunk holding a single empty entry spanning the whole chunk."""
    return format_chunk([(0, "", FileType.NONE)])


def new_dir_contents(self_ino: int, parent_ino: int) -> bytes:
    """The first chunk of a fresh directory: '.' and '..'."""
    return format_chunk([(self_ino, ".", FileType.DIRECTORY),
                         (parent_ino, "..", FileType.DIRECTORY)])


def iter_entries(data: bytes | bytearray,
                 base_offset: int = 0) -> Iterator[DirEntry]:
    """Decode every entry record (live or free) in *data*.

    *data* must be a whole number of chunks; *base_offset* shifts reported
    offsets (useful when data is one frag of a larger directory).
    """
    if len(data) % DIRBLKSIZ != 0:
        raise ValueError("directory data is not chunk-aligned")
    for chunk_at in range(0, len(data), DIRBLKSIZ):
        offset = chunk_at
        while offset < chunk_at + DIRBLKSIZ:
            ino, reclen, namelen, ftype = struct.unpack_from(
                _ENTRY_HDR, data, offset)
            if reclen < _ENTRY_HDR_SIZE or offset + reclen > chunk_at + DIRBLKSIZ:
                raise CorruptDirectory(
                    f"bad reclen {reclen} at offset {base_offset + offset}")
            name = bytes(data[offset + _ENTRY_HDR_SIZE:
                              offset + _ENTRY_HDR_SIZE + namelen]).decode(
                                  errors="replace")
            yield DirEntry(base_offset + offset, ino, reclen, name,
                           FileType(ftype << 12) if ino else FileType.NONE)
            offset += reclen


def lookup(data: bytes | bytearray, name: str,
           base_offset: int = 0) -> tuple[Optional[DirEntry], int]:
    """Find *name*; returns (entry or None, records scanned) for CPU costing."""
    scanned = 0
    for entry in iter_entries(data, base_offset):
        scanned += 1
        if entry.live and entry.name == name:
            return entry, scanned
    return None, scanned


@dataclass
class DirIndex:
    """Host-side decoded view of one directory block.

    One linear parse replaces the per-lookup record walk: ``by_name`` maps
    each live name to everything :func:`lookup` would have reported for it
    (including the 1-based ordinal of the record, i.e. the ``scanned``
    count a linear scan charges the CPU for), ``nrecords`` is the scan
    count of a miss, and ``max_slack`` is the largest hole
    :func:`add_entry` could use -- a block with ``max_slack < need`` is
    exactly a block ``add_entry`` returns ``None`` for.

    The index lives on the block's cache buffer and is dropped whenever
    the buffer's bytes change; simulated costs are charged from the
    recorded ordinals, so an indexed lookup is simulation-identical to the
    linear scan it replaces.
    """

    #: name -> (ordinal, offset, ino, reclen, ftype) for live entries;
    #: first record wins for duplicate names, exactly like the scan
    by_name: dict[str, tuple[int, int, int, int, FileType]]
    #: total records (live + dead): the scan count of a missed lookup
    nrecords: int
    #: the largest insertion slack any record offers
    max_slack: int


def build_index(data: bytes | bytearray) -> Optional[DirIndex]:
    """Index every record of *data*; None if the bytes are corrupt.

    A corrupt block must keep the scan's behavior (a lookup that matches
    *before* the corrupt record returns normally; reaching it raises), so
    callers fall back to :func:`lookup` when this returns None.
    """
    by_name: dict[str, tuple[int, int, int, int, FileType]] = {}
    nrecords = 0
    max_slack = 0
    try:
        for entry in iter_entries(data):
            nrecords += 1
            if entry.live:
                slack = entry.reclen - entry_bytes(len(entry.name.encode()))
                if entry.name not in by_name:
                    by_name[entry.name] = (nrecords, entry.offset, entry.ino,
                                           entry.reclen, entry.ftype)
            else:
                slack = entry.reclen
            if slack > max_slack:
                max_slack = slack
    except CorruptDirectory:
        return None
    return DirIndex(by_name=by_name, nrecords=nrecords, max_slack=max_slack)


def add_entry(data: bytearray, name: str, ino: int,
              ftype: FileType) -> Optional[int]:
    """Insert an entry into free space; returns its offset or None if full."""
    name_raw = name.encode()
    if not 0 < len(name_raw) <= MAX_NAME:
        raise ValueError(f"bad name length {len(name_raw)}")
    need = entry_bytes(len(name_raw))
    for entry in iter_entries(data):
        if not entry.live:
            slack = entry.reclen
            used_here = 0
        else:
            used_here = entry_bytes(len(entry.name.encode()))
            slack = entry.reclen - used_here
        if slack < need:
            continue
        if entry.live:
            # shrink the existing entry, append the new one in its slack
            struct.pack_into("<H", data, entry.offset + 4, used_here)
            offset = entry.offset + used_here
            reclen = slack
        else:
            offset = entry.offset
            reclen = entry.reclen
        struct.pack_into(_ENTRY_HDR, data, offset, ino, reclen,
                         len(name_raw), int(ftype) >> 12)
        data[offset + _ENTRY_HDR_SIZE:
             offset + _ENTRY_HDR_SIZE + len(name_raw)] = name_raw
        return offset
    return None


def remove_entry(data: bytearray, offset: int) -> int:
    """Delete the entry at *offset*; returns the inode number it held.

    If the entry begins a chunk its inode number is zeroed; otherwise the
    predecessor absorbs its record length (classic FFS compaction).
    """
    ino, reclen, _namelen, _ftype = struct.unpack_from(_ENTRY_HDR, data, offset)
    if ino == 0:
        raise ValueError(f"no live entry at offset {offset}")
    chunk_at = offset - (offset % DIRBLKSIZ)
    if offset == chunk_at:
        struct.pack_into("<I", data, offset, 0)
        return ino
    # find the predecessor within the chunk
    scan = chunk_at
    while True:
        _ino, prev_reclen, _nl, _ft = struct.unpack_from(_ENTRY_HDR, data, scan)
        if scan + prev_reclen == offset:
            struct.pack_into("<H", data, scan + 4, prev_reclen + reclen)
            return ino
        scan += prev_reclen
        if scan >= offset:
            raise CorruptDirectory(f"no predecessor for offset {offset}")


def set_entry_ino(data: bytearray, offset: int, ino: int) -> None:
    """Overwrite just the inode number of the entry at *offset*.

    This is the soft-updates undo/redo primitive for link addition: writing
    zero makes the on-disk image 'entry unused' without moving bytes.
    """
    struct.pack_into("<I", data, offset, ino)


def entry_ino(data: bytes | bytearray, offset: int) -> int:
    return struct.unpack_from("<I", data, offset)[0]


def is_empty_dir(data: bytes | bytearray) -> bool:
    """True if the directory holds only '.' and '..'."""
    return all(entry.name in (".", "..")
               for entry in iter_entries(data) if entry.live)


class CorruptDirectory(Exception):
    """Directory bytes violate the entry packing invariants."""
