"""Regression tests for two run-loop bugs fixed with the kernel split.

1. ``max_events`` off-by-one: every run loop checked ``processed >
   max_events`` *after* dispatching, so a budget of N let N+1 events run
   -- and a workload of exactly N events tripped the guard instead of
   completing.  The guard now fires before dispatch: exactly N events
   run, and an exactly-N workload finishes cleanly.

2. Late-callback delivery loss: subscribing to an already-processed
   event wrapped the callback in a zero-delay ``Timeout``, which was
   silently dropped whenever the run loop stopped first -- ``run(until=
   ...)`` or ``run_to`` with a horizon short of the wrapper's timestamp,
   or ``run_until`` returning because its awaited event completed before
   the wrapper was dispatched.  Late subscriptions now go through the
   kernel's deferred queue, drained before every dispatch and at every
   run-loop exit, so they can never be lost.

Both fixes live in the kernel run loops, so every registered kernel is
tested.
"""

import pytest

from repro.sim import KERNELS, Engine, SimulationError


@pytest.fixture(params=sorted(KERNELS))
def kern(request):
    return request.param


class TestMaxEventsBudget:
    def test_budget_dispatches_exactly_n_then_raises(self, kern):
        eng = Engine(kernel=kern)
        seen = []
        for tag in range(10):
            eng.call_later(float(tag), seen.append, tag)
        with pytest.raises(SimulationError, match="max_events=5"):
            eng.run(max_events=5)
        # the old loops dispatched a 6th event before noticing
        assert seen == [0, 1, 2, 3, 4]
        assert eng.events_processed == 5

    def test_exactly_n_workload_completes_cleanly(self, kern):
        eng = Engine(kernel=kern)
        seen = []
        for tag in range(5):
            eng.call_later(float(tag), seen.append, tag)
        eng.run(max_events=5)  # the old guard raised here
        assert seen == [0, 1, 2, 3, 4]
        assert eng.pending_events == 0

    def test_run_to_budget_boundary(self, kern):
        eng = Engine(kernel=kern)
        seen = []
        for tag in range(6):
            eng.call_later(1.0, seen.append, tag)
        with pytest.raises(SimulationError, match="max_events=3"):
            eng.run_to(2.0, max_events=3)
        assert seen == [0, 1, 2]

        eng = Engine(kernel=kern)
        seen = []
        for tag in range(3):
            eng.call_later(1.0, seen.append, tag)
        eng.run_to(2.0, max_events=3)
        assert seen == [0, 1, 2]
        assert eng.now == 2.0

    def test_run_until_budget_boundary(self, kern):
        def build():
            eng = Engine(kernel=kern)

            def worker():
                for _ in range(4):
                    yield eng.timeout(1.0)
                return "done"

            return eng, eng.process(worker())

        # measure the exact event count of the workload...
        eng, proc = build()
        assert eng.run_until(proc) == "done"
        exact = eng.events_processed

        # ...a budget of exactly that count completes,
        eng, proc = build()
        assert eng.run_until(proc, max_events=exact) == "done"

        # ...one less raises before dispatching the final event
        eng, proc = build()
        with pytest.raises(SimulationError, match="max_events"):
            eng.run_until(proc, max_events=exact - 1)


class TestLateCallbackDelivery:
    def test_delivered_when_run_until_horizon_is_in_the_past(self, kern):
        """The ``run(until=...)`` drop: the old code scheduled a wrapper
        Timeout at ``now``, which a horizon short of ``now`` never
        dispatched -- the callback was silently lost."""
        eng = Engine(kernel=kern)
        ev = eng.event()
        ev.succeed("v")
        eng.timeout(5.0)
        eng.run()
        assert eng.now == 5.0

        seen = []
        ev._add_callback(lambda e: seen.append(e.value))
        eng.run(until=2.0)  # dispatches nothing; must still deliver
        assert seen == ["v"]
        assert eng.now == 5.0  # the past stays the past
        assert eng.pending_events == 0  # no wrapper left behind

    def test_delivered_when_run_to_stops_first(self, kern):
        eng = Engine(kernel=kern)
        ev = eng.event()
        ev.succeed("v")
        eng.timeout(5.0)
        eng.run()

        seen = []
        ev._add_callback(lambda e: seen.append(e.value))
        eng.run_to(2.0)
        assert seen == ["v"]
        assert eng.pending_events == 0

    def test_delivered_when_awaited_event_completes_first(self, kern):
        """A subscription made mid-run, after the awaited process's
        completion is already enqueued: the old wrapper Timeout was still
        pending when ``run_until`` returned."""
        eng = Engine(kernel=kern)
        ev = eng.event()
        ev.succeed("v")
        eng.run()

        seen = []

        def worker():
            yield eng.timeout(1.0)
            return "done"

        proc = eng.process(worker())
        eng.call_later(1.0, lambda: ev._add_callback(
            lambda e: seen.append(e.value)))
        assert eng.run_until(proc) == "done"
        assert seen == ["v"]
        assert eng.pending_events == 0
