"""Fault-free runs must be byte-identical to runs without the subsystem.

The contract mirrors ``tests/obs/test_equivalence.py``: attaching a
zero-rate :class:`~repro.faults.FaultPlan` must not perturb the simulation
at all -- no extra events, no extra timeouts, no RNG interaction -- so the
full driver trace digests identically to a machine with ``faults=None``.
And a *faulty* run must be deterministic in its seed: two machines with
the same plan replay the identical fault sequence and produce the
identical trace.
"""

import pytest

from repro.faults import PROFILES, FaultPlan
from tests.conftest import SCHEME_FACTORIES, make_machine, run_user
from tests.obs.test_equivalence import churn, driver_trace_digest


def run_once(scheme_name, faults):
    machine = make_machine(scheme_name, free_cpu=False, faults=faults)
    run_user(machine, churn(machine)(), name="user0")
    machine.sync_and_settle()
    return machine


@pytest.mark.parametrize("scheme_name", sorted(SCHEME_FACTORIES))
def test_zero_rate_plan_is_simulation_identical(scheme_name):
    bare = run_once(scheme_name, faults=None)
    armed = run_once(scheme_name, faults=FaultPlan(seed=123))

    assert bare.disk.faults is None
    assert armed.disk.faults is not None
    assert armed.disk.faults.injected == 0
    assert armed.engine.events_processed == bare.engine.events_processed
    assert armed.engine.now == bare.engine.now
    assert driver_trace_digest(armed) == driver_trace_digest(bare)
    assert armed.driver.retries == 0 and armed.driver.io_errors == 0


@pytest.mark.parametrize("scheme_name", ["conventional", "softupdates"])
def test_faulty_run_is_deterministic_in_seed(scheme_name):
    a = run_once(scheme_name, faults=PROFILES["mixed"](7))
    b = run_once(scheme_name, faults=PROFILES["mixed"](7))

    assert a.disk.faults.injected == b.disk.faults.injected
    assert a.disk.faults.events == b.disk.faults.events
    assert a.engine.events_processed == b.engine.events_processed
    assert driver_trace_digest(a) == driver_trace_digest(b)


def test_faulty_run_differs_from_fault_free():
    """Sanity: the heavy profile actually perturbs this workload."""
    bare = run_once("conventional", faults=None)
    heavy = run_once("conventional",
                     faults=FaultPlan(seed=5, transient_write_rate=0.5,
                                      transient_read_rate=0.5))
    assert heavy.disk.faults.injected > 0
    assert heavy.driver.retries > 0
    assert driver_trace_digest(heavy) != driver_trace_digest(bare)
