"""The discrete-event engine: clock, event construction, and the kernel.

The engine is the public face of the simulation: it owns the clock
attribute, builds events/timeouts/processes, and exposes the run loops.
The event queue itself and the hot dispatch loops live in a swappable
*kernel* (:mod:`repro.sim.kernel`): the pure-python reference kernel is
the default and the equivalence oracle; the batched ``fast`` kernel trades
per-event heap sifts for amortized array sorts.  Select with
``Engine(kernel="fast")`` or ``REPRO_KERNEL=fast``.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.sim.events import Event, Timeout
from repro.sim.kernel import SimulationError, resolve_kernel

__all__ = ["Engine", "SimulationError"]


class Engine:
    """The event loop and simulated clock.

    The engine's kernel holds a queue of ``(time, sequence, event)``
    entries.  Entries at equal times fire in insertion order, which makes
    every simulation run fully deterministic for a given seed -- under any
    kernel.

    Typical use::

        eng = Engine()

        def worker():
            yield eng.timeout(1.5)
            return "done"

        proc = eng.process(worker())
        eng.run_until(proc)
        assert eng.now == 1.5 and proc.value == "done"
    """

    __slots__ = ("now", "current_process", "obs", "trace_hook", "_kernel")

    def __init__(self, kernel=None) -> None:
        self.now: float = 0.0
        #: the process currently being resumed (None outside process context)
        self.current_process = None
        #: the machine's observability session (None = tracing off); set by
        #: Observability.attach() before any component is constructed
        self.obs = None
        #: per-event dispatch hook ``hook(when, event)``; must be passive
        #: (read-only) so dispatch order and timestamps never change
        self.trace_hook = None
        #: the event-loop kernel (name, class, instance, or None for the
        #: REPRO_KERNEL / reference default)
        self._kernel = resolve_kernel(kernel).bind(self)

    # -- event construction ---------------------------------------------
    def event(self) -> Event:
        """Create an untriggered one-shot event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> "Process":  # noqa: F821
        """Spawn *generator* as a simulated process, started on the next step."""
        from repro.sim.process import Process

        return Process(self, generator, name=name)

    def call_later(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after *delay* simulated seconds (no process).

        No event object is handed back, so kernels are free to keep the
        timer in flat storage and call *fn* directly at dispatch.
        """
        self._kernel.schedule_call(delay, fn, args)

    # -- kernel internals -------------------------------------------------
    def _enqueue_event(self, event: Event, delay: float = 0.0) -> None:
        """Compatibility shim; events call the kernel directly."""
        self._kernel.schedule(event, delay)

    # -- run loops ---------------------------------------------------------
    def step(self) -> None:
        """Process the single next event on the queue."""
        self._kernel.advance()

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, the clock passes *until*, or *max_events*.

        ``until`` is an absolute simulated time; events scheduled at exactly
        *until* are processed, and the clock is left at ``max(now, until)``
        whether the queue drained early or still holds later events (the same
        semantics as :meth:`run_to` -- in particular the clock never moves
        backwards when *until* is already in the past).  ``max_events`` is a
        safety valve for tests: the loop dispatches at most that many events
        and raises :class:`SimulationError` when one more would be needed,
        rather than hanging.
        """
        self._kernel.run(until=until, max_events=max_events)

    def run_to(self, when: float, max_events: Optional[int] = None) -> None:
        """Advance the clock to the absolute instant *when*.

        Processes every event scheduled at or before *when* (inclusive: two
        runs stopped at the same instant see the same event prefix, which is
        what makes crash-state replay deterministic) and leaves the clock at
        exactly *when* even if the queue still holds later events or drained
        early.
        """
        self._kernel.run_to(when, max_events=max_events)

    def run_until(self, event: Event, max_events: Optional[int] = None) -> Any:
        """Run until *event* has been processed; return its value.

        Raises the event's exception if it failed, and
        :class:`SimulationError` if the queue drains first.
        """
        return self._kernel.run_until(event, max_events=max_events)

    def run_all(self, events: list[Event], max_events: Optional[int] = None) -> list[Any]:
        """Run until every event in *events* has fired; return their values."""
        return [self.run_until(event, max_events=max_events) for event in events]

    # -- introspection -----------------------------------------------------
    @property
    def events_processed(self) -> int:
        """Total events processed since construction (for instrumentation)."""
        return self._kernel.events_processed

    @property
    def pending_events(self) -> int:
        """Scheduled-but-undispatched entries (the queue length)."""
        return self._kernel.pending()

    @property
    def next_event_time(self) -> Optional[float]:
        """The next event's timestamp, or None when nothing is pending."""
        return self._kernel.peek()

    @property
    def kernel_name(self) -> str:
        """The active kernel's registry name (``"python"`` / ``"fast"``)."""
        return self._kernel.name

    def __repr__(self) -> str:
        return (f"<Engine t={self.now:.6f} pending={self._kernel.pending()} "
                f"kernel={self._kernel.name}>")
