"""Ablation A1 (section 3.2): scheduler-chains deallocation approaches.

The paper compares two ways to keep freed blocks safe under chains: a
Part-NR-style *barrier* on the reset write (simple, but creates false
dependencies) versus *tracking* recently freed blocks so only their new
owners inherit the dependency.  "The less restrictive approach provides
superior performance (e.g., 16 percent for the 4-user remove benchmark)."

The win materializes when system activity presses on memory (the paper's
4-user remove dirtied ~37 MB against 44 MB of RAM): the barrier's falsely
held-back writes pin buffers and stall reclaim.  With an over-provisioned
cache the barrier can even look good -- it accidentally prioritizes reads,
the same effect as figure 2 -- so this ablation runs both regimes.
"""

from repro.costs import CostModel
from repro.driver import ChainsPolicy
from repro.harness.report import format_table
from repro.harness.runner import run_remove
from repro.machine import MachineConfig
from repro.ordering import SchedulerChainsScheme
from repro.workloads.trees import TreeSpec

from benchmarks.conftest import SCALE, emit, run_grid, scaled_cache


def chains_config(dealloc_barrier: bool, cache_bytes: int) -> MachineConfig:
    return MachineConfig(
        scheme=SchedulerChainsScheme(block_copy=True,
                                     dealloc_barrier=dealloc_barrier),
        policy=ChainsPolicy(), costs=CostModel(), cache_bytes=cache_bytes)


def test_ablation_chains_dealloc(once):
    tree = TreeSpec().scaled(SCALE)
    pressured = max(384 * 1024, scaled_cache() // 8)
    roomy = scaled_cache()

    def cell(regime, cache, approach, barrier):
        def run():
            return run_remove(chains_config(barrier, cache), 4, tree)
        return (regime, approach), run

    def experiment():
        return run_grid(
            "ablation_chains_dealloc",
            [cell(regime, cache, approach, barrier)
             for regime, cache in (("pressured", pressured),
                                   ("roomy", roomy))
             for approach, barrier in (("barrier", True),
                                       ("tracking", False))])

    results = once(experiment)
    rows = [[regime, approach, r.elapsed, r.io_response_avg * 1000,
             r.disk_requests]
            for (regime, approach), r in results.items()]
    emit("ablation_chains_dealloc", format_table(
        f"Ablation A1: chains deallocation, barrier vs freed-block tracking "
        f"(4-user remove, scale={SCALE}; pressured={pressured // 1024} KB, "
        f"roomy={roomy // 1024} KB cache)",
        ["Memory regime", "Approach", "Elapsed (s)", "I/O Resp Avg (ms)",
         "Disk requests"], rows))

    # the paper's regime: under memory pressure, tracking clearly wins
    barrier = results[("pressured", "barrier")].elapsed
    tracking = results[("pressured", "tracking")].elapsed
    assert tracking < barrier * 0.95
    # and it needs fewer disk requests (no falsely forced rewrites)
    assert results[("pressured", "tracking")].disk_requests \
        <= results[("pressured", "barrier")].disk_requests
