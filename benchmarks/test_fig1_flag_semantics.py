"""Figure 1: ordering-flag semantics, 4-user copy.

Paper finding: "performance improves with each reduction in the flag's
restrictiveness" -- Full is worst, Part-NR best among the safe meanings,
Ignore (unsafe) bounds them from below.  Figure 1b shows the same trend in
average disk access times.
"""

from repro.driver import FlagSemantics
from repro.harness.report import format_table
from repro.harness.runner import flag_variant, run_copy
from repro.workloads.trees import TreeSpec

from benchmarks.conftest import SCALE, emit, run_grid, scaled_cache

VARIANTS = [
    ("Full", FlagSemantics.FULL, False),
    ("Back", FlagSemantics.BACK, False),
    ("Part", FlagSemantics.PART, False),
    ("Part-NR", FlagSemantics.PART, True),
    ("Ignore", FlagSemantics.IGNORE, False),
]


def test_fig1_flag_semantics_copy(once):
    tree = TreeSpec().scaled(SCALE)

    def cell(label, semantics, bypass):
        def run():
            config = flag_variant(semantics, bypass, block_copy=True,
                                  cache_bytes=scaled_cache())
            return run_copy(config, users=4, tree=tree, label=label)
        return label, run

    def experiment():
        return run_grid("fig1_flag_semantics_copy",
                        [cell(*variant) for variant in VARIANTS])

    results = once(experiment)
    rows = [[label, r.elapsed, r.access_avg * 1000, r.disk_requests]
            for label, r in results.items()]
    emit("fig1_flag_semantics_copy", format_table(
        "Figure 1: ordering flag semantics, 4-user copy "
        f"(scale={SCALE}, simulated seconds)",
        ["Flag meaning", "Elapsed (s)", "Avg disk access (ms)",
         "Disk requests"], rows))

    elapsed = {label: r.elapsed for label, r in results.items()}
    # the paper's trend: each relaxation helps (small tolerance for noise)
    assert elapsed["Full"] >= elapsed["Part"] * 0.97
    assert elapsed["Back"] >= elapsed["Part"] * 0.97
    # the -NR read bypass is the big win of section 3.1
    assert elapsed["Part-NR"] < elapsed["Part"] * 0.92
    # and Part-NR lands in the neighbourhood of unsafe Ignore
    assert elapsed["Part-NR"] <= elapsed["Ignore"] * 1.1
