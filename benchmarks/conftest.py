"""Shared benchmark infrastructure.

Every benchmark regenerates one of the paper's tables or figures: it runs
the workload on the simulator under each scheme configuration, prints the
rows in the paper's format, writes them to ``benchmarks/results/``, and
asserts the paper's qualitative findings (who wins, by roughly what factor).

Scale: ``REPRO_SCALE`` (default 0.15) scales file counts/bytes; 1.0 is
paper-scale.  Simulated seconds are reported, not wall seconds.
"""

import os
import pathlib

import pytest

from repro.harness.runner import FULL_CACHE_BYTES, scale_factor

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

SCALE = scale_factor()


def scaled_cache() -> int:
    """Cache size shrunk with the workload to preserve memory pressure."""
    return max(1 * 1024 * 1024, int(FULL_CACHE_BYTES * SCALE))


def emit(name: str, text: str) -> None:
    """Print a regenerated table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


@pytest.fixture
def once(benchmark):
    """Run the experiment exactly once under pytest-benchmark timing."""

    def runner(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1)

    return runner
