"""Benchmark runners: build a machine, run a workload, collect metrics.

Scale: the paper's full parameters (4 users x 535 files x 14.3 MB, 10,000
microbenchmark files, 100 Andrew iterations) take a while in a pure-Python
simulator, so every runner accepts a scale factor.  ``scale_factor()`` reads
``REPRO_SCALE`` from the environment: the default 0.15 finishes the whole
suite in minutes; ``REPRO_SCALE=1`` reproduces paper-scale parameters.
Cache capacity scales along with the workload so that the memory-pressure
dynamics (the cache-full throttling of the copy benchmark) are preserved.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, replace
from typing import Callable, Optional

from repro.costs import CostModel
from repro.driver import FlagPolicy, FlagSemantics
from repro.harness.metrics import RunResult, collect
from repro.machine import Machine, MachineConfig
from repro.ordering import SchedulerFlagScheme
from repro.ordering.registry import by_display_name, standard_display_names
from repro.workloads.copybench import (
    copy_tree_user,
    populate_sources,
    remove_tree_user,
)
from repro.workloads.trees import TreeSpec, build_tree

#: full-scale memory budget for cached blocks + in-flight write copies:
#: the paper's 44 MB system memory minus kernel text/structures.  The 4-user
#: remove's ~37 MB of ordered writes "just fit", which is the regime the
#: figures were measured in.
FULL_CACHE_BYTES = 40 * 1024 * 1024


def scale_factor(default: float = 0.15) -> float:
    """Benchmark scale (1.0 = paper-scale), from ``REPRO_SCALE``."""
    return float(os.environ.get("REPRO_SCALE", default))


@dataclass
class SchemeSpec:
    """A named scheme configuration (scheme + driver policy + options)."""

    name: str
    build: Callable[[], MachineConfig]


def _config(scheme, policy=None, block_copy=None,
            cache_bytes: Optional[int] = None,
            kernel: Optional[str] = None,
            store: Optional[str] = None) -> MachineConfig:
    return MachineConfig(scheme=scheme, policy=policy, block_copy=block_copy,
                         costs=CostModel(),
                         cache_bytes=cache_bytes or FULL_CACHE_BYTES,
                         kernel=kernel, store=store)


def standard_scheme_config(name: str, alloc_init: bool = False,
                           cache_bytes: Optional[int] = None,
                           kernel: Optional[str] = None,
                           store: Optional[str] = None) -> MachineConfig:
    """The standard configurations: section 5's five plus journaling.

    Everything comes from :data:`repro.ordering.registry.REGISTRY` -- the
    scheme instance in its table configuration (the scheduler schemes get
    the -CB block-copy enhancement there), the driver policy from the
    machine's ``default_policy_for`` (Part-NR for the flag, chains for
    chains).  *kernel* picks the event-loop kernel (``repro.sim.KERNELS``);
    the default defers to ``REPRO_KERNEL`` and then the reference kernel.
    Kernels are simulation-identical, so every table is byte-identical
    whichever one runs it (``benchmarks/test_kernel_throughput.py``).
    *store* picks the sector store (``repro.disk.STORES``, default
    ``REPRO_STORE`` then the flat store); stores are content-identical, so
    tables and digests never depend on the choice either
    (``tests/disk/test_store_equivalence.py``).
    """
    scheme = by_display_name(name).build_standard(alloc_init=alloc_init)
    return _config(scheme, cache_bytes=cache_bytes, kernel=kernel,
                   store=store)


#: the comparison order (section 5's five, then journaling, No Order last)
STANDARD_SCHEMES = standard_display_names()


def flag_variant(semantics: FlagSemantics, read_bypass: bool,
                 block_copy: bool, alloc_init: bool = True,
                 cache_bytes: Optional[int] = None) -> MachineConfig:
    """A Scheduler Flag machine with explicit flag semantics (figures 1-4).

    Allocation initialization defaults on: the figures' elapsed times
    (500-800 s) exceed table 1's no-init flag row (381 s), so the flag
    studies were clearly run with initialization enforced -- which is also
    what makes flagged writes frequent enough for the semantics to matter.
    """
    return _config(SchedulerFlagScheme(block_copy=block_copy,
                                       alloc_init=alloc_init),
                   policy=FlagPolicy(semantics, read_bypass=read_bypass),
                   block_copy=block_copy, cache_bytes=cache_bytes)


def build_machine(config: MachineConfig) -> Machine:
    machine = Machine(config)
    machine.format()
    return machine


# ----------------------------------------------------------------------
# the copy / remove benchmarks
# ----------------------------------------------------------------------
def with_seed(tree: TreeSpec, seed: Optional[int]) -> TreeSpec:
    """The same tree shape regenerated from an explicit RNG seed.

    Crash exploration and failure reproduction need byte-for-byte identical
    runs: the seed fully determines the tree layout, file sizes and
    contents, and (because the simulator itself is deterministic) the whole
    event trace.  ``None`` keeps the spec's own seed.
    """
    return tree if seed is None else replace(tree, seed=seed)


def run_copy(config: MachineConfig, users: int, tree: TreeSpec,
             label: str = "", settle: bool = True,
             seed: Optional[int] = None,
             on_machine: Optional[Callable[[Machine], None]] = None
             ) -> RunResult:
    """N-user copy: returns the table-1-style measurements.

    *on_machine* (if given) receives the machine right after it is built --
    the trace CLI uses it to keep a handle for exporting the observability
    session once the run finishes.
    """
    wall_start = time.perf_counter()
    tree = with_seed(tree, seed)
    machine = build_machine(config)
    if on_machine is not None:
        on_machine(machine)
    populate_sources(machine, users, tree)
    mark = machine.driver.last_issued_id
    processes = [machine.spawn(copy_tree_user(machine, user),
                               name=f"user{user}")
                 for user in range(users)]
    machine.run(*processes, max_events=300_000_000)
    if settle:
        machine.sync_and_settle()
    result = collect(machine, processes, mark, label=label)
    result.wall_seconds = time.perf_counter() - wall_start
    return result


def run_remove(config: MachineConfig, users: int, tree: TreeSpec,
               label: str = "", settle: bool = True,
               cold_cache: bool = False,
               seed: Optional[int] = None,
               on_machine: Optional[Callable[[Machine], None]] = None
               ) -> RunResult:
    """N-user remove: deletes freshly-copied trees.

    ``cold_cache=False`` models the paper's tables (the tree was "newly
    copied", its metadata still cached); ``True`` models the figure-2/4
    studies where the users' earlier copies had pushed the tree's metadata
    out of memory, so removal issues reads that interact with the ordered
    write queue.
    """
    wall_start = time.perf_counter()
    tree = with_seed(tree, seed)
    machine = build_machine(config)
    if on_machine is not None:
        on_machine(machine)

    def builder():
        for user in range(users):
            yield from machine.fs.mkdir(f"/u{user}")
            yield from build_tree(machine.fs, f"/u{user}/tree", tree)

    machine.populate(builder(), cold_cache=cold_cache)
    mark = machine.driver.last_issued_id
    processes = [machine.spawn(remove_tree_user(machine, user),
                               name=f"user{user}")
                 for user in range(users)]
    machine.run(*processes, max_events=300_000_000)
    if settle:
        machine.sync_and_settle()
    result = collect(machine, processes, mark, label=label)
    result.wall_seconds = time.perf_counter() - wall_start
    return result
