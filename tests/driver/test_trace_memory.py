"""The completed-request trace must not retain payload bytes.

Regression test for a memory growth bug: ``DeviceDriver.trace`` keeps
every completed request for the life of the machine, so holding each
write's payload would accumulate the whole workload's bytes (paper-scale
runs move hundreds of MB).  Payloads are dropped at completion unless a
recorder opts in via ``retain_payloads``.
"""

from repro.disk import Disk
from repro.driver import DeviceDriver, FlagPolicy, FlagSemantics
from repro.sim import Engine


def churn_writes(eng, driver, count=200):
    payload = b"\x5c" * (4 * 512)
    requests = [driver.write(1000 + 8 * i, payload) for i in range(count)]
    requests.append(driver.read(1000, 4))
    for request in requests:
        eng.run_until(request.done)
    return requests


def retained_bytes(driver):
    return sum(len(r.data) for r in driver.trace if r.data is not None)


def test_trace_drops_payloads_by_default():
    eng = Engine()
    driver = DeviceDriver(eng, Disk(eng), FlagPolicy(FlagSemantics.IGNORE))
    churn_writes(eng, driver)
    assert len(driver.trace) == 201
    # flat memory: not a single payload byte survives completion
    assert retained_bytes(driver) == 0
    assert all(r.data is None for r in driver.trace)


def test_recorder_can_opt_into_payload_retention():
    eng = Engine()
    driver = DeviceDriver(eng, Disk(eng), FlagPolicy(FlagSemantics.IGNORE))
    driver.retain_payloads = True
    churn_writes(eng, driver, count=10)
    writes = [r for r in driver.trace if r.is_write]
    assert len(writes) == 10
    assert all(r.data == b"\x5c" * (4 * 512) for r in writes)
