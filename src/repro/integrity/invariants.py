"""The declarative invariant set crash exploration checks.

``fsck`` reports free-form messages; this module maps every message onto a
named invariant with a severity class, so findings can be aggregated,
compared across schemes, and held against each scheme's
:class:`~repro.ordering.guarantees.CrashGuarantees` declaration.

Severities:

* ``CORRUPTION`` -- structural integrity is lost and fsck cannot decide the
  repair: a lost/uninitialized inode behind a live directory entry (rule 3),
  a doubly-allocated block (rule 2), pointers off the volume, corrupt
  directory contents, an unreadable file system.
* ``REPAIRABLE`` -- classic fsck fixes it mechanically: link-count skew,
  leaked blocks/inodes, stale bitmap bits.
* ``SECURITY`` -- no structure is damaged, but a file exposes a previous
  owner's bytes (the allocation-initialization hole, paper section 1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.integrity.fsck import FsckReport


class Severity(enum.Enum):
    CORRUPTION = "corruption"
    REPAIRABLE = "repairable"
    SECURITY = "security"


@dataclass(frozen=True)
class Invariant:
    """One named integrity property, matched against fsck messages."""

    key: str
    severity: Severity
    description: str
    #: substrings identifying this invariant's violations in fsck output
    patterns: tuple[str, ...]

    def matches(self, message: str) -> bool:
        return any(pattern in message for pattern in self.patterns)


#: checked in order; first match wins
INVARIANTS: tuple[Invariant, ...] = (
    Invariant(
        "dangling-entry", Severity.CORRUPTION,
        "no directory entry may point to an unallocated or out-of-range "
        "inode (rule 3: never point to an uninitialized structure)",
        ("points to unallocated inode", "points to out-of-range inode")),
    Invariant(
        "double-alloc", Severity.CORRUPTION,
        "no block may be claimed by two files (rule 2: never reuse a "
        "resource before nullifying all previous pointers)",
        ("claimed by both inode",)),
    Invariant(
        "bad-pointer", Severity.CORRUPTION,
        "no inode may point outside the volume's data area",
        ("points outside the data area", "indirect pointer outside")),
    Invariant(
        "dir-corrupt", Severity.CORRUPTION,
        "directory contents must stay structurally sound ('.'/'..' intact, "
        "no holes, parseable entries)",
        ("corrupt:", "missing '.'", "'.' points to", "has a hole")),
    Invariant(
        "fs-unreadable", Severity.CORRUPTION,
        "the superblock, cylinder-group headers and root inode must "
        "survive every crash",
        ("superblock unreadable", "root inode missing", "bad magic")),
    Invariant(
        "link-count", Severity.REPAIRABLE,
        "an inode's link count must equal its directory references "
        "(fsck recomputes; transient skew is the price of entry-first "
        "remove orderings)",
        ("link count",)),
    Invariant(
        "leak", Severity.REPAIRABLE,
        "no allocated-but-unreachable inodes, fragments or bitmap bits "
        "(fsck reclaims; lazy deallocation leaks by design)",
        ("unreferenced (leak)", "allocated but unreferenced",
         "bitmap used but dinode free")),
    Invariant(
        "bitmap-stale", Severity.REPAIRABLE,
        "the bitmaps must agree with what the inodes reference "
        "(fsck re-marks referenced-but-free bits)",
        ("but marked free", "bitmap says free")),
    Invariant(
        "stale-data", Severity.SECURITY,
        "no file may expose bytes of a previously deleted file "
        "(closed by allocation initialization)",
        ("stale data",)),
    Invariant(
        "unrepairable", Severity.CORRUPTION,
        "an error-free crash image must come out of fsck repair with no "
        "errors and no warnings",
        ("repair left",)),
)

#: catch-alls so an unrecognized fsck message is never silently dropped
_UNKNOWN_ERROR = Invariant(
    "integrity-error", Severity.CORRUPTION,
    "unclassified fsck error", ())
_UNKNOWN_WARNING = Invariant(
    "inconsistency", Severity.REPAIRABLE,
    "unclassified fsck warning", ())

_BY_KEY = {inv.key: inv for inv in
           INVARIANTS + (_UNKNOWN_ERROR, _UNKNOWN_WARNING)}


def invariant_by_key(key: str) -> Invariant:
    return _BY_KEY[key]


@dataclass(frozen=True)
class Violation:
    """One observed invariant violation (picklable across pool workers)."""

    key: str
    severity: Severity
    message: str

    @property
    def is_corruption(self) -> bool:
        return self.severity is Severity.CORRUPTION


def _classify_message(message: str, fallback: Invariant) -> Violation:
    for invariant in INVARIANTS:
        if invariant.matches(message):
            return Violation(invariant.key, invariant.severity, message)
    return Violation(fallback.key, fallback.severity, message)


def classify_report(report: FsckReport,
                    secret_leaks: list | None = None) -> list[Violation]:
    """Map a fsck report (plus optional stale-data findings) to violations."""
    violations = [_classify_message(error, _UNKNOWN_ERROR)
                  for error in report.errors]
    violations += [_classify_message(warning, _UNKNOWN_WARNING)
                   for warning in report.warnings]
    stale = invariant_by_key("stale-data")
    for leak in secret_leaks or []:
        violations.append(Violation(stale.key, stale.severity,
                                    f"stale data exposed: {leak}"))
    return violations


def unexpected(violations: list[Violation], guarantees) -> list[Violation]:
    """The subset a scheme's declaration does *not* permit."""
    return [violation for violation in violations
            if not guarantees.permits(invariant_by_key(violation.key))]
