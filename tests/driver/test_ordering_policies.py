"""Unit tests for flag semantics and chains eligibility (no disk involved)."""

import pytest

from repro.driver import ChainsPolicy, FlagPolicy, FlagSemantics
from repro.driver.request import DiskRequest, IOKind
from repro.sim import Engine


def make_request(eng, rid, kind=IOKind.WRITE, lbn=0, nsectors=2,
                 flag=False, depends_on=None):
    data = b"\x00" * (nsectors * 512) if kind is IOKind.WRITE else None
    return DiskRequest(eng, rid, kind, lbn, nsectors, data=data, flag=flag,
                       depends_on=frozenset(depends_on or ()))


@pytest.fixture
def eng():
    return Engine()


def issue_all(policy, requests):
    for request in requests:
        policy.on_issue(request)


class TestIgnore:
    def test_everything_eligible(self, eng):
        policy = FlagPolicy(FlagSemantics.IGNORE)
        reqs = [make_request(eng, i, flag=(i == 2)) for i in range(1, 5)]
        issue_all(policy, reqs)
        assert all(policy.may_dispatch(r) for r in reqs)


class TestPart:
    def test_flagged_blocks_later_requests_only(self, eng):
        policy = FlagPolicy(FlagSemantics.PART)
        w1 = make_request(eng, 1, lbn=0)
        wf = make_request(eng, 2, lbn=10, flag=True)
        w3 = make_request(eng, 3, lbn=20)
        issue_all(policy, [w1, wf, w3])
        assert policy.may_dispatch(w1)      # earlier than flag: free
        assert policy.may_dispatch(wf)      # the flagged request itself
        assert not policy.may_dispatch(w3)  # issued after the flag
        policy.on_complete(wf)
        assert policy.may_dispatch(w3)

    def test_reads_wait_without_nr(self, eng):
        policy = FlagPolicy(FlagSemantics.PART, read_bypass=False)
        wf = make_request(eng, 1, flag=True)
        rd = make_request(eng, 2, kind=IOKind.READ, lbn=100)
        issue_all(policy, [wf, rd])
        assert not policy.may_dispatch(rd)

    def test_reads_bypass_with_nr(self, eng):
        policy = FlagPolicy(FlagSemantics.PART, read_bypass=True)
        wf = make_request(eng, 1, lbn=0, flag=True)
        rd = make_request(eng, 2, kind=IOKind.READ, lbn=100)
        issue_all(policy, [wf, rd])
        assert policy.may_dispatch(rd)

    def test_nr_read_conflicting_with_pending_write_blocks(self, eng):
        policy = FlagPolicy(FlagSemantics.PART, read_bypass=True)
        wf = make_request(eng, 1, lbn=100, nsectors=4, flag=True)
        rd = make_request(eng, 2, kind=IOKind.READ, lbn=102, nsectors=1)
        issue_all(policy, [wf, rd])
        assert not policy.may_dispatch(rd)


class TestBack:
    def test_later_requests_wait_for_flag_and_its_predecessors(self, eng):
        policy = FlagPolicy(FlagSemantics.BACK)
        w1 = make_request(eng, 1, lbn=0)
        wf = make_request(eng, 2, lbn=10, flag=True)
        w3 = make_request(eng, 3, lbn=20)
        issue_all(policy, [w1, wf, w3])
        assert policy.may_dispatch(w1)
        assert policy.may_dispatch(wf)  # flagged req reorders with prior non-flagged
        assert not policy.may_dispatch(w3)
        # completing only the flagged request is NOT enough under Back:
        policy.on_complete(wf)
        assert not policy.may_dispatch(w3)
        policy.on_complete(w1)
        assert policy.may_dispatch(w3)


class TestFull:
    def test_flagged_request_waits_for_all_predecessors(self, eng):
        policy = FlagPolicy(FlagSemantics.FULL)
        w1 = make_request(eng, 1, lbn=0)
        wf = make_request(eng, 2, lbn=10, flag=True)
        issue_all(policy, [w1, wf])
        assert policy.may_dispatch(w1)
        assert not policy.may_dispatch(wf)   # unlike Back/Part
        policy.on_complete(w1)
        assert policy.may_dispatch(wf)

    def test_nothing_passes_an_incomplete_flagged_request(self, eng):
        policy = FlagPolicy(FlagSemantics.FULL)
        wf = make_request(eng, 1, flag=True)
        w2 = make_request(eng, 2, lbn=20)
        issue_all(policy, [wf, w2])
        assert not policy.may_dispatch(w2)
        policy.on_complete(wf)
        assert policy.may_dispatch(w2)

    def test_full_is_more_restrictive_than_back_than_part(self, eng):
        """The paper's ordering: Full ⊇ Back ⊇ Part in restrictiveness."""
        scenarios = []
        for semantics in (FlagSemantics.FULL, FlagSemantics.BACK,
                          FlagSemantics.PART):
            policy = FlagPolicy(semantics)
            reqs = [make_request(eng, 1, lbn=0),
                    make_request(eng, 2, lbn=10, flag=True),
                    make_request(eng, 3, lbn=20)]
            issue_all(policy, reqs)
            scenarios.append(sum(policy.may_dispatch(r) for r in reqs))
        full, back, part = scenarios
        assert full <= back <= part


class TestChains:
    def test_dependency_gating(self, eng):
        policy = ChainsPolicy()
        w1 = make_request(eng, 1, lbn=0)
        w2 = make_request(eng, 2, lbn=10, depends_on=[1])
        w3 = make_request(eng, 3, lbn=20)  # independent
        issue_all(policy, [w1, w2, w3])
        assert policy.may_dispatch(w1)
        assert not policy.may_dispatch(w2)
        assert policy.may_dispatch(w3)   # no false dependency (vs flag schemes)
        policy.on_complete(w1)
        assert policy.may_dispatch(w2)

    def test_transitive_chain(self, eng):
        policy = ChainsPolicy()
        reqs = [make_request(eng, 1),
                make_request(eng, 2, depends_on=[1]),
                make_request(eng, 3, depends_on=[2])]
        issue_all(policy, reqs)
        assert [policy.may_dispatch(r) for r in reqs] == [True, False, False]
        policy.on_complete(reqs[0])
        policy.on_complete(reqs[1])
        assert policy.may_dispatch(reqs[2])

    def test_future_dependency_rejected(self, eng):
        policy = ChainsPolicy()
        bad = make_request(eng, 1, depends_on=[5])
        with pytest.raises(ValueError, match="previously issued"):
            policy.on_issue(bad)

    def test_reads_bypass_naturally(self, eng):
        policy = ChainsPolicy()
        w1 = make_request(eng, 1, lbn=0)
        w2 = make_request(eng, 2, lbn=10, depends_on=[1])
        rd = make_request(eng, 3, kind=IOKind.READ, lbn=100)
        issue_all(policy, [w1, w2, rd])
        assert policy.may_dispatch(rd)

    def test_read_of_pending_write_target_blocks(self, eng):
        policy = ChainsPolicy()
        w1 = make_request(eng, 1, lbn=100, nsectors=4)
        rd = make_request(eng, 2, kind=IOKind.READ, lbn=100, nsectors=2)
        issue_all(policy, [w1, rd])
        assert not policy.may_dispatch(rd)


class TestRequestValidation:
    def test_read_with_flag_rejected(self, eng):
        with pytest.raises(ValueError):
            make_request(eng, 1, kind=IOKind.READ, flag=True)

    def test_write_without_data_rejected(self, eng):
        with pytest.raises(ValueError):
            DiskRequest(eng, 1, IOKind.WRITE, 0, 1)

    def test_zero_sectors_rejected(self, eng):
        with pytest.raises(ValueError):
            DiskRequest(eng, 1, IOKind.READ, 0, 0)
