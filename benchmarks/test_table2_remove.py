"""Table 2: scheme comparison, 4-user remove.

Paper findings asserted here:

* Conventional is several times slower than No Order (10.5x in the paper);
* the scheduler schemes land in between, with enormous driver response
  times (queues of dependent background writes);
* Soft Updates is *faster than No Order* (deferred removal) and needs an
  order of magnitude fewer disk requests than the scheduler schemes.
"""

from repro.harness.report import format_table
from repro.harness.runner import (
    STANDARD_SCHEMES,
    run_remove,
    standard_scheme_config,
)
from repro.workloads.trees import TreeSpec

from benchmarks.conftest import SCALE, emit, run_grid, scaled_cache


def test_table2_remove(once):
    tree = TreeSpec().scaled(SCALE)

    def cell(name):
        def run():
            config = standard_scheme_config(name,
                                            cache_bytes=scaled_cache())
            return run_remove(config, users=4, tree=tree)
        return name, run

    def experiment():
        return run_grid("table2_remove",
                        [cell(name) for name in STANDARD_SCHEMES])

    results = once(experiment)
    base = results["No Order"].elapsed
    rows = [[name, r.elapsed, 100.0 * r.elapsed / base, r.cpu_time,
             r.disk_requests, r.io_response_avg * 1000]
            for name, r in results.items()]
    emit("table2_remove", format_table(
        f"Table 2: scheme comparison, 4-user remove "
        f"(scale={SCALE}, simulated seconds)",
        ["Ordering Scheme", "Elapsed (s)", "% of No Order", "CPU (s)",
         "Disk Requests", "I/O Resp Avg (ms)"], rows))

    elapsed = {name: r.elapsed for name, r in results.items()}
    requests = {name: r.disk_requests for name, r in results.items()}
    response = {name: r.io_response_avg for name, r in results.items()}

    # conventional pays a multiple of the no-order bound
    assert elapsed["Conventional"] > 2.5 * elapsed["No Order"]
    # scheduler schemes in between
    assert elapsed["Conventional"] > elapsed["Scheduler Flag"]
    assert elapsed["Conventional"] > elapsed["Scheduler Chains"]
    assert elapsed["Scheduler Flag"] > elapsed["Soft Updates"]
    # the paper's standout: soft updates beats even No Order (deferred work)
    assert elapsed["Soft Updates"] <= elapsed["No Order"] * 1.02
    # delayed metadata writes collapse the request count several-fold
    assert requests["Scheduler Chains"] > 3 * requests["Soft Updates"]
    assert requests["Conventional"] > 3 * requests["Soft Updates"]
    # the scheduler schemes' queues of dependent writes inflate response
    assert response["Scheduler Flag"] > 5 * response["Conventional"]
