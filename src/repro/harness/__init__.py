"""Experiment harness: scheme registry, runners, metrics, table printers.

This package regenerates the paper's evaluation: every figure and table has
a runner here that builds machines, executes the workload under each scheme
configuration, and produces rows in the paper's format.  The benchmark suite
(``benchmarks/``) is a thin layer over these runners.
"""

from repro.harness.metrics import RunResult, collect
from repro.harness.parallel import GridCellError, run_grid
from repro.harness.perflog import append_record
from repro.harness.runner import (
    SchemeSpec,
    STANDARD_SCHEMES,
    build_machine,
    flag_variant,
    run_copy,
    run_remove,
    scale_factor,
)
from repro.harness.report import format_table

__all__ = [
    "GridCellError",
    "RunResult",
    "STANDARD_SCHEMES",
    "SchemeSpec",
    "append_record",
    "build_machine",
    "collect",
    "flag_variant",
    "format_table",
    "run_copy",
    "run_grid",
    "run_remove",
    "scale_factor",
]
