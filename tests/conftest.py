"""Shared helpers: machine factories and scheme parametrization."""

import pytest

from repro.costs import CostModel
from repro.fs.layout import FSGeometry
from repro.machine import Machine, MachineConfig
from repro.ordering import (
    ConventionalScheme,
    NoOrderScheme,
    SchedulerChainsScheme,
    SchedulerFlagScheme,
    SoftUpdatesScheme,
)

#: a small file system: 2 cylinder groups, 256 inodes each, 2 MB data each
SMALL_GEOMETRY = FSGeometry(ipg=256, dfrags_per_cg=2048, ncg=2)

SCHEME_FACTORIES = {
    "noorder": NoOrderScheme,
    "conventional": ConventionalScheme,
    "flag": SchedulerFlagScheme,
    "chains": SchedulerChainsScheme,
    "softupdates": SoftUpdatesScheme,
}

SAFE_SCHEMES = ["conventional", "flag", "chains", "softupdates"]


def make_machine(scheme_name="noorder", geometry=SMALL_GEOMETRY,
                 cache_bytes=2 * 1024 * 1024, free_cpu=True, observe=False,
                 profile=False, faults=None, kernel=None, store=None,
                 **scheme_kwargs):
    """A formatted machine with the given scheme mounted."""
    scheme = SCHEME_FACTORIES[scheme_name](**scheme_kwargs)
    config = MachineConfig(
        scheme=scheme,
        fs_geometry=geometry,
        cache_bytes=cache_bytes,
        costs=CostModel(scale=0.0 if free_cpu else 1.0),
        observe=observe,
        profile=profile,
        faults=faults,
        kernel=kernel,
        store=store,
    )
    machine = Machine(config)
    machine.format()
    return machine


@pytest.fixture(params=list(SCHEME_FACTORIES))
def any_scheme_machine(request):
    return make_machine(request.param)


@pytest.fixture(params=SAFE_SCHEMES)
def safe_scheme_machine(request):
    return make_machine(request.param)


def run_user(machine, generator, name="user", max_events=5_000_000):
    """Run one simulated user to completion; returns its value."""
    return machine.engine.run_until(
        machine.engine.process(generator, name=name), max_events=max_events)


def pytest_collection_modifyitems(config, items):
    """Everything not explicitly marked slow is tier-1.

    Keeps ``pytest -m tier1`` meaningful without requiring every fast test
    to carry the marker by hand.
    """
    for item in items:
        if item.get_closest_marker("slow") is None:
            item.add_marker(pytest.mark.tier1)
