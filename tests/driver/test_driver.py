"""Integration tests: DeviceDriver + Disk + ordering policies."""

import pytest

from repro.disk import Disk
from repro.driver import ChainsPolicy, DeviceDriver, FlagPolicy, FlagSemantics, IOKind
from repro.sim import Engine


@pytest.fixture
def eng():
    return Engine()


def make_driver(eng, policy=None):
    disk = Disk(eng)
    return DeviceDriver(eng, disk, policy or FlagPolicy(FlagSemantics.IGNORE))


def sector_data(tag, nsectors=2):
    return bytes([tag]) * (512 * nsectors)


def test_single_write_completes_and_persists(eng):
    driver = make_driver(eng)
    req = driver.write(100, sector_data(0x42))
    eng.run_until(req.done)
    assert driver.disk.storage.read(100) == b"\x42" * 512
    assert req.complete_time > req.issue_time >= 0
    assert driver.trace == [req]


def test_read_completes(eng):
    driver = make_driver(eng)
    req = driver.read(100, 2)
    eng.run_until(req.done)
    assert req.response_time > 0


def test_elevator_orders_by_lbn(eng):
    driver = make_driver(eng)
    # issue far-apart writes in reverse LBN order while disk busy with first
    first = driver.write(500_000, sector_data(1))
    c = driver.write(900_000, sector_data(3))
    b = driver.write(700_000, sector_data(2))
    a = driver.write(600_000, sector_data(4))
    for req in (first, a, b, c):
        eng.run_until(req.done)
    order = [r.id for r in driver.trace]
    assert order == [first.id, a.id, b.id, c.id]


def test_sequential_requests_concatenate(eng):
    driver = make_driver(eng)
    # occupy the disk, then queue contiguous writes
    blocker = driver.write(500_000, sector_data(9))
    reqs = [driver.write(1000 + i * 2, sector_data(i)) for i in range(4)]
    for req in [blocker] + reqs:
        eng.run_until(req.done)
    # all four contiguous writes complete at the same instant (one media op)
    times = {r.complete_time for r in reqs}
    assert len(times) == 1
    assert driver.disk.stats.writes == 2  # blocker + one concatenated op


def test_concatenation_respects_batch_cap(eng):
    driver = make_driver(eng)
    driver.max_batch_sectors = 4
    blocker = driver.write(500_000, sector_data(9))
    reqs = [driver.write(1000 + i * 2, sector_data(i)) for i in range(4)]
    for req in [blocker] + reqs:
        eng.run_until(req.done)
    assert driver.disk.stats.writes == 3  # blocker + two capped batches


def test_part_flag_holds_back_later_writes(eng):
    driver = make_driver(eng, FlagPolicy(FlagSemantics.PART))
    blocker = driver.write(500_000, sector_data(9))
    flagged = driver.write(900_000, sector_data(1), flag=True)
    later = driver.write(600_000, sector_data(2))  # closer, but must wait
    for req in (blocker, flagged, later):
        eng.run_until(req.done)
    ids = [r.id for r in driver.trace]
    assert ids.index(flagged.id) < ids.index(later.id)


def test_ignore_flag_reorders_freely(eng):
    driver = make_driver(eng, FlagPolicy(FlagSemantics.IGNORE))
    blocker = driver.write(500_000, sector_data(9))
    flagged = driver.write(900_000, sector_data(1), flag=True)
    later = driver.write(600_000, sector_data(2))
    for req in (blocker, flagged, later):
        eng.run_until(req.done)
    ids = [r.id for r in driver.trace]
    assert ids.index(later.id) < ids.index(flagged.id)


def test_chains_enforce_dependencies_across_dispatch(eng):
    driver = make_driver(eng, ChainsPolicy())
    blocker = driver.write(500_000, sector_data(9))
    w1 = driver.write(900_000, sector_data(1))
    w2 = driver.write(600_000, sector_data(2), depends_on=frozenset([w1.id]))
    for req in (blocker, w1, w2):
        eng.run_until(req.done)
    ids = [r.id for r in driver.trace]
    assert ids.index(w1.id) < ids.index(w2.id)


def test_nr_read_bypasses_flag_pending_writes(eng):
    driver = make_driver(eng, FlagPolicy(FlagSemantics.PART, read_bypass=True))
    blocker = driver.write(500_000, sector_data(9))
    flagged = driver.write(900_000, sector_data(1), flag=True)
    held = driver.write(600_000, sector_data(2))
    read = driver.read(100, 2)
    eng.run_until(read.done)
    # the read finished while the held write still waits behind the flag
    assert held.complete_time < 0
    for req in (blocker, flagged, held):
        eng.run_until(req.done)


def test_on_complete_callbacks_fire_in_driver_context(eng):
    driver = make_driver(eng)
    seen = []
    req = driver.write(100, sector_data(1))
    req.on_complete.append(lambda r: seen.append((r.id, eng.now)))
    eng.run_until(req.done)
    assert seen and seen[0][0] == req.id
    assert seen[0][1] == req.complete_time


def test_drain_waits_for_queue_empty(eng):
    driver = make_driver(eng)
    reqs = [driver.write(1000 * i, sector_data(i)) for i in range(5)]

    def waiter():
        yield from driver.drain()
        return eng.now

    drained_at = eng.run_until(eng.process(waiter()))
    assert all(r.complete_time <= drained_at for r in reqs)
    assert driver.queue_depth == 0


def test_requests_issued_counter(eng):
    driver = make_driver(eng)
    for i in range(3):
        eng.run_until(driver.write(1000 * i, sector_data(i)).done)
    assert driver.requests_issued == 3


def test_progress_guaranteed_under_every_policy(eng):
    """Whatever the semantics, a mixed flagged workload always drains."""
    for semantics in FlagSemantics:
        for bypass in (False, True):
            engine = Engine()
            disk = Disk(engine)
            driver = DeviceDriver(engine, disk, FlagPolicy(semantics, bypass))
            reqs = []
            for i in range(12):
                if i % 3 == 0:
                    reqs.append(driver.read(50_000 * i + 8, 2))
                else:
                    reqs.append(driver.write(50_000 * i,
                                             sector_data(i % 250),
                                             flag=(i % 2 == 0)))
            for req in reqs:
                engine.run_until(req.done, max_events=100_000)
