"""Extension (section 7): soft updates vs NVRAM-backed metadata.

"NVRAM can greatly increase data persistence and provide slight performance
improvements as compared to soft updates (by reducing syncer daemon
activity), but is very expensive."  We run the paper's own comparison: the
copy and remove benchmarks under No Order, Soft Updates and NVRAM.
"""

from repro.costs import CostModel
from repro.harness.report import format_table
from repro.harness.runner import (
    run_copy,
    run_remove,
    standard_scheme_config,
)
from repro.machine import MachineConfig
from repro.ordering import NvramScheme
from repro.workloads.trees import TreeSpec

from benchmarks.conftest import SCALE, emit, run_grid, scaled_cache


def nvram_config() -> MachineConfig:
    return MachineConfig(scheme=NvramScheme(capacity_bytes=4 * 1024 * 1024),
                         costs=CostModel(), cache_bytes=scaled_cache())


LABELS = ["Soft Updates", "NVRAM", "No Order"]


def make_config(label: str) -> MachineConfig:
    if label == "NVRAM":
        return nvram_config()
    return standard_scheme_config(label, cache_bytes=scaled_cache())


def test_ext_nvram_vs_soft_updates(once):
    tree = TreeSpec().scaled(SCALE)

    def cell(bench, label):
        def run():
            runner = run_copy if bench == "copy" else run_remove
            return runner(make_config(label), 4, tree)
        return (bench, label), run

    def experiment():
        return run_grid("ext_nvram",
                        [cell(bench, label)
                         for bench in ("copy", "remove")
                         for label in LABELS])

    results = once(experiment)
    rows = [[bench, label, r.elapsed, r.cpu_time, r.disk_requests]
            for (bench, label), r in results.items()]
    emit("ext_nvram", format_table(
        f"Extension: soft updates vs NVRAM-backed metadata "
        f"(4 users, scale={SCALE})",
        ["Benchmark", "Scheme", "Elapsed (s)", "CPU (s)",
         "Disk requests"], rows))

    # NVRAM tracks the delayed-write bound on the copy (and typically edges
    # out soft updates there -- the paper's "slight performance
    # improvements"); on removes soft updates' deferred work wins, because
    # deferral cancels writes NVRAM still mirrors and destages
    assert results[("copy", "NVRAM")].elapsed \
        <= results[("copy", "Soft Updates")].elapsed * 1.05
    assert results[("copy", "NVRAM")].elapsed \
        <= results[("copy", "No Order")].elapsed * 1.05
    assert results[("remove", "NVRAM")].elapsed \
        <= results[("remove", "No Order")].elapsed * 1.3
    assert results[("remove", "Soft Updates")].elapsed \
        <= results[("remove", "NVRAM")].elapsed
