"""Figure 5: metadata update throughput (files/second) vs concurrency.

Paper findings asserted here:

* (a) creates: No Order and Soft Updates clearly beat the rest, and their
  throughput *grows* with users (shorter per-directory collision scans);
* (b) removes: Scheduler Chains more than doubles Conventional at high
  concurrency; No Order / Soft Updates far ahead;
* (c) create/remove pairs: No Order and Soft Updates proceed at memory
  speed -- several times everything else (soft updates services the pair
  with no disk writes at all);
* in all cases Soft Updates stays within a few percent of No Order.
"""

from repro.harness.report import format_series
from repro.harness.runner import (
    STANDARD_SCHEMES,
    build_machine,
    standard_scheme_config,
)
from repro.workloads.microbench import run_microbench

from benchmarks.conftest import SCALE, emit, run_grid, scaled_cache

USER_COUNTS = [1, 2, 4, 8]
TOTAL_FILES = max(200, int(10_000 * SCALE))


def run_mode(mode):
    def cell(users, name):
        def run():
            # memory scales with the workload: the paper's 10,000-file runs
            # pressed against 44 MB, which is what throttles the eager-write
            # schemes while the delayed-write schemes run at memory speed
            machine = build_machine(standard_scheme_config(
                name, cache_bytes=scaled_cache()))
            return run_microbench(machine, users, TOTAL_FILES, mode)
        return (users, name), run

    results = run_grid(f"fig5_{mode}",
                       [cell(users, name) for users in USER_COUNTS
                        for name in STANDARD_SCHEMES])
    series = {name: [] for name in STANDARD_SCHEMES}
    for users in USER_COUNTS:
        for name in STANDARD_SCHEMES:
            series[name].append(results[(users, name)].throughput)
    return series


def emit_series(mode, series):
    emit(f"fig5_{mode}", format_series(
        f"Figure 5 ({mode}): throughput in files/second, "
        f"{TOTAL_FILES} files split among users (scale={SCALE})",
        "Users", USER_COUNTS, series))


def test_fig5a_creates(once):
    series = once(lambda: run_mode("create"))
    emit_series("create", series)
    top = {name: max(values) for name, values in series.items()}
    # no-order and soft updates dominate
    assert top["Soft Updates"] > top["Conventional"]
    assert top["No Order"] > top["Conventional"]
    # soft updates tracks the no-order bound
    for su, no in zip(series["Soft Updates"], series["No Order"]):
        assert su > no * 0.85
    # create throughput grows with users (cheaper collision scans); the
    # magnitude of the effect scales with directory size, so the full 1.5x+
    # spread of the paper needs REPRO_SCALE near 1
    growth_floor = 1.25 if SCALE >= 0.8 else 1.03
    assert series["No Order"][-1] > series["No Order"][0] * growth_floor


def test_fig5b_removes(once):
    series = once(lambda: run_mode("remove"))
    emit_series("remove", series)
    # chains improves on conventional at high concurrency (the paper shows
    # 2x; our driver serializes same-block rewrites at one revolution each,
    # which caps the async schemes' removal rate more than theirs did)
    assert series["Scheduler Chains"][-1] > 1.15 * series["Conventional"][-1]
    # the delayed-write schemes dominate everything
    assert series["Soft Updates"][-1] > 2 * series["Scheduler Chains"][-1]
    for su, no in zip(series["Soft Updates"], series["No Order"]):
        assert su > no * 0.85


def test_fig5c_create_removes(once):
    series = once(lambda: run_mode("create_remove"))
    emit_series("create_remove", series)
    # "No Order and Soft Updates proceed at memory speeds, achieving over
    # 5 times the throughput of the other three schemes" -- the multiple
    # grows with scale (CPU-vs-disk balance); we require >2x at any scale
    slowest_fast = min(series["Soft Updates"][-1], series["No Order"][-1])
    fastest_slow = max(series["Conventional"][-1],
                       series["Scheduler Flag"][-1],
                       series["Scheduler Chains"][-1])
    assert slowest_fast > 1.8 * fastest_slow
    for su, no in zip(series["Soft Updates"], series["No Order"]):
        assert su > no * 0.85
