"""Synthetic directory trees.

The paper's copy/remove benchmarks operate on "535 files totaling 14.3 MB of
storage taken from the first author's home directory".  We cannot have that
tree, so we generate one with the same aggregate statistics: file count,
total bytes (mean file size ~27 KB), a log-normal-ish size distribution
(most files small, a few large enough to need indirect blocks), and a
directory hierarchy with realistic fan-out.  Generation is deterministic in
the seed, so every scheme copies byte-identical trees.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator


@dataclass(frozen=True)
class TreeSpec:
    """Shape of a synthetic source tree."""

    files: int = 535
    total_bytes: int = 14_300_000
    dirs: int = 30
    seed: int = 1994

    def scaled(self, factor: float) -> "TreeSpec":
        """A proportionally smaller tree (for fast benchmark runs)."""
        return TreeSpec(files=max(4, int(self.files * factor)),
                        total_bytes=max(8192, int(self.total_bytes * factor)),
                        dirs=max(2, int(self.dirs * factor)),
                        seed=self.seed)


def tree_layout(spec: TreeSpec) -> tuple[list[str], list[tuple[str, int]]]:
    """Deterministically lay out the tree.

    Returns ``(directories, files)`` where directories are relative paths in
    creation order (parents first) and files are ``(relative path, size)``.
    """
    rng = random.Random(spec.seed)
    directories: list[str] = []
    for index in range(spec.dirs):
        if not directories or rng.random() < 0.45:
            parent = ""
        else:
            parent = rng.choice(directories)
        directories.append(f"{parent}/d{index:02d}" if parent
                           else f"d{index:02d}")
    directories.sort(key=lambda p: p.count("/"))  # parents before children

    # log-normal-ish sizes normalised to the requested total
    weights = [rng.lognormvariate(0, 1.2) for _ in range(spec.files)]
    scale = spec.total_bytes / sum(weights)
    sizes = [max(64, int(w * scale)) for w in weights]

    files = []
    for index, size in enumerate(sizes):
        home = rng.choice(directories) if directories else ""
        name = f"f{index:04d}"
        files.append((f"{home}/{name}" if home else name, size))
    return directories, files


def file_bytes(path: str, size: int) -> bytes:
    """Deterministic file contents (cheap, content-addressable)."""
    stamp = (path.encode() + b"|") * (size // (len(path) + 1) + 1)
    return stamp[:size]


def build_tree(fs, root: str, spec: TreeSpec) -> Generator:
    """Create the tree under *root* (a simulated-process subroutine)."""
    directories, files = tree_layout(spec)
    yield from fs.mkdir(root)
    for relative in directories:
        yield from fs.mkdir(f"{root}/{relative}")
    for relative, size in files:
        yield from fs.write_file(f"{root}/{relative}",
                                 file_bytes(relative, size))
