"""Unit tests for the span tracer and the metrics registry."""

import pytest

from repro.obs import (
    MetricsRegistry,
    Observability,
    TIME_BUCKETS,
    Tracer,
    trace_events,
    validate_trace_events,
)
from repro.obs.export import TraceFormatError
from repro.sim import Engine


def make_engine_at(now: float = 0.0) -> Engine:
    engine = Engine()
    engine.now = now
    return engine


class TestTracer:
    def test_begin_end_records_interval(self):
        engine = make_engine_at(1.0)
        tracer = Tracer(engine)
        span = tracer.begin("op", "test", track="t")
        assert not span.closed
        engine.now = 3.5
        tracer.end(span)
        assert span.closed
        assert span.duration == pytest.approx(2.5)

    def test_nesting_sets_parent_on_same_track(self):
        engine = make_engine_at()
        tracer = Tracer(engine)
        outer = tracer.begin("outer", "test", track="t")
        inner = tracer.begin("inner", "test", track="t")
        assert inner.parent == outer.id
        assert tracer.current("t") == inner.id
        tracer.end(inner)
        assert tracer.current("t") == outer.id
        tracer.end(outer)
        assert tracer.current("t") is None

    def test_tracks_are_independent(self):
        engine = make_engine_at()
        tracer = Tracer(engine)
        a = tracer.begin("a", "test", track="one")
        b = tracer.begin("b", "test", track="two")
        assert b.parent is None
        assert tracer.current("one") == a.id

    def test_end_closes_orphaned_children(self):
        engine = make_engine_at()
        tracer = Tracer(engine)
        outer = tracer.begin("outer", "test", track="t")
        inner = tracer.begin("inner", "test", track="t")
        engine.now = 2.0
        tracer.end(outer)  # unwinds past the still-open inner
        assert inner.closed and inner.end == 2.0
        assert tracer.current("t") is None

    def test_record_retrospective(self):
        engine = make_engine_at(9.0)
        tracer = Tracer(engine)
        span = tracer.record("late", "test", 1.0, 2.0, "t")
        assert span.closed and span.duration == pytest.approx(1.0)
        assert tracer.current("t") is None  # never entered the stack

    def test_record_async_keeps_id(self):
        engine = make_engine_at()
        tracer = Tracer(engine)
        span = tracer.record_async("q", "driver", 0.0, 1.0, "t", async_id=7)
        assert span.async_id == 7

    def test_span_context_manager(self):
        engine = make_engine_at()
        tracer = Tracer(engine)
        with tracer.span("cm", "test", track="t"):
            engine.now = 1.0
        (span,) = tracer.closed_spans()
        assert span.duration == pytest.approx(1.0)

    def test_track_defaults_to_kernel_outside_processes(self):
        engine = make_engine_at()
        tracer = Tracer(engine)
        span = tracer.begin("op", "test")
        assert span.track == "kernel"


class TestRegistry:
    def test_counter_create_or_get(self):
        registry = MetricsRegistry()
        c1 = registry.counter("x")
        c1.inc()
        c1.inc(3)
        assert registry.counter("x") is c1
        assert registry.snapshot() == {"x": 4}

    def test_gauge_track_max(self):
        registry = MetricsRegistry()
        g = registry.gauge("peak")
        g.track_max(5)
        g.track_max(3)
        assert g.value == 5
        g.set(1)
        assert g.value == 1

    def test_histogram_buckets_and_snapshot(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat")
        h.observe(0.0002)
        h.observe(0.05)
        h.observe(100.0)  # overflow bucket
        assert h.count == 3
        assert sum(h.counts) == 3
        assert h.counts[-1] == 1
        snap = registry.snapshot()
        assert snap["lat.count"] == 3
        assert snap["lat.sum"] == pytest.approx(0.0002 + 0.05 + 100.0)
        assert snap["lat.avg"] == pytest.approx(snap["lat.sum"] / 3)

    def test_histogram_bounds_must_ascend(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("bad", bounds=(1.0, 0.5))

    def test_rebinding_name_to_other_type_rejected(self):
        registry = MetricsRegistry()
        registry.counter("n")
        with pytest.raises(ValueError):
            registry.gauge("n")
        with pytest.raises(ValueError):
            registry.histogram("n")

    def test_histogram_rebound_with_other_buckets_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h")
        assert registry.histogram("h", bounds=TIME_BUCKETS) is not None
        with pytest.raises(ValueError):
            registry.histogram("h", bounds=(1.0, 2.0))


class TestObservability:
    def test_attach_installs_hook_and_counts_events(self):
        engine = Engine()
        obs = Observability(engine).attach(engine)
        assert engine.obs is obs
        assert engine.trace_hook is not None

        def worker():
            yield engine.timeout(1.0)
            yield engine.timeout(1.0)

        engine.run_until(engine.process(worker()))
        snap = obs.snapshot()
        assert snap["engine.events"] == engine.events_processed > 0


class TestExportValidation:
    def test_roundtrip_valid(self):
        engine = make_engine_at()
        obs = Observability(engine).attach(engine)
        span = obs.tracer.begin("op", "test", track="t")
        engine.now = 1.0
        obs.tracer.end(span)
        obs.tracer.record_async("q", "driver", 0.0, 0.5, "t", async_id=3)
        doc = trace_events(obs, label="unit")
        count = validate_trace_events(doc)
        assert count >= 4  # metadata + X + b/e pair

    def test_validator_rejects_junk(self):
        with pytest.raises(TraceFormatError):
            validate_trace_events({"traceEvents": [{"ph": "Z"}]})
        with pytest.raises(TraceFormatError):
            validate_trace_events({"no": "events"})
        with pytest.raises(TraceFormatError):
            validate_trace_events(
                {"traceEvents": [{"ph": "X", "name": "n", "pid": 1,
                                  "tid": 1, "ts": 0.0}]})  # X without dur
