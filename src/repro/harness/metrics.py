"""Measurement: the statistics the paper's tables and figures report.

The instrumented device driver keeps per-request timestamps (like the
paper's 4 MB trace buffer); :func:`collect` reduces a run window to the
metrics of tables 1-2: elapsed time (average among users), CPU time (sum
among users), system-wide disk request count, and the average I/O response /
disk access / driver response times.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.machine import Machine
from repro.sim import Process


@dataclass
class RunResult:
    """One benchmark execution's measurements."""

    scheme: str
    label: str = ""
    #: average elapsed seconds among the "users"
    elapsed: float = 0.0
    #: per-user elapsed times
    user_elapsed: list = field(default_factory=list)
    #: total CPU seconds charged to the user processes
    cpu_time: float = 0.0
    #: system-wide disk requests issued during the run (flush tail included)
    disk_requests: int = 0
    #: average issue-to-completion time (the tables' "I/O Response Time")
    io_response_avg: float = 0.0
    #: average drive service time (figures 1b)
    access_avg: float = 0.0
    #: average wait in the driver queue, issue to dispatch
    queue_avg: float = 0.0
    #: average driver response time = queue + service (figures 2b-4b)
    driver_response_avg: float = 0.0
    #: reads/writes split
    reads: int = 0
    writes: int = 0
    #: host wall-clock seconds the run took (stamped by the runners)
    wall_seconds: float = 0.0
    #: simulator events processed during the run (stamped by the runners)
    sim_events: int = 0
    #: free-form extras (throughput, phase times, ...)
    extra: dict = field(default_factory=dict)

    @property
    def perf_extra(self) -> dict:
        """The host-performance slice of ``extra`` -- what :func:`run_grid`
        folds into the cell's :class:`~repro.harness.parallel.CellStats`
        (and from there into ``BENCH_perf.json`` and the profile report):
        the ``profile.*`` keys (present when the machine ran with the layer
        profiler attached) plus the host-side provenance tags
        (``kernel``, ``store``)."""
        return {key: value for key, value in self.extra.items()
                if key.startswith("profile.") or key in _PERF_TAGS}

    @perf_extra.setter
    def perf_extra(self, values: dict) -> None:
        """Merge host-performance tags into ``extra`` (cell annotation)."""
        self.extra.update(values)

    def as_row(self, columns: list[str]) -> list:
        """Resolve *columns* against the declared fields, then ``extra``.

        Only the dataclass fields above count as attributes here: resolving
        with ``hasattr`` would also match methods and properties (``as_row``
        itself, ``extra``-shadowing helpers added later), silently returning
        a bound method instead of the ``extra`` value of the same name.
        """
        return [getattr(self, column) if column in _RESULT_FIELDS
                else self.extra.get(column, "") for column in columns]


#: the declared measurement columns; computed once, used by as_row
_RESULT_FIELDS = frozenset(f.name for f in fields(RunResult))

#: non-``profile.`` extras that still belong to the host-performance slice
_PERF_TAGS = frozenset({"kernel", "store"})


def collect(machine: Machine, users: list[Process], after_request_id: int,
            scheme: str = "", label: str = "") -> RunResult:
    """Reduce the driver trace + process accounting to a RunResult.

    Call after the user processes have completed *and* the system has been
    allowed to flush (the disk-request count is system-wide, covering the
    background write tail like the paper's system-wide statistics).  The
    window is everything issued after *after_request_id* (snapshot
    ``machine.driver.last_issued_id`` when the benchmark starts; setup
    writes can share the benchmark's start timestamp, so ids, not times,
    delimit the window).
    """
    result = RunResult(scheme=scheme or machine.scheme_name, label=label)
    result.sim_events = machine.engine.events_processed
    # host-side provenance: which sector store backed this run (the stores
    # are content-identical; the tag attributes wall-clock differences)
    result.extra["store"] = machine.disk.storage.name
    result.user_elapsed = [process.finished_at - process.started_at
                           for process in users]
    if users:
        result.elapsed = sum(result.user_elapsed) / len(users)
        result.cpu_time = sum(process.cpu_time for process in users)
    window = [request for request in machine.driver.trace
              if request.id > after_request_id]
    result.disk_requests = len(window)
    if window:
        result.io_response_avg = (sum(r.response_time for r in window)
                                  / len(window))
        result.access_avg = sum(r.access_time for r in window) / len(window)
        # queue wait is measured from the dispatch stamp, not inferred:
        # driver response = queue + service, per the field's definition.
        # (Requests reach the driver the instant they are issued in this
        # model, so this coincides with io_response_avg -- but computing it
        # from the stamps keeps the identity honest if an upper-level queue
        # ever delays issue.)
        result.queue_avg = sum(r.queue_delay for r in window) / len(window)
        result.driver_response_avg = result.queue_avg + result.access_avg
        result.reads = sum(1 for r in window if not r.is_write)
        result.writes = len(window) - result.reads
    if machine.obs is not None:
        # observed run: fold the metrics registry into the extras so any
        # instrument can be cited as a report column by name
        result.extra.update(machine.obs.snapshot())
    return result
