"""The automated performance-regression gate.

``BENCH_perf.json`` accumulates one record per benchmark session and
``BENCH_perf.history.jsonl`` keeps everything that rotated out -- but until
now nothing ever *read* them, so a PR that halved the event loop's
throughput sailed through CI green.  ``python -m repro.harness regress``
closes the loop: it takes the freshest session as the candidate, gathers
every prior session from the trajectory + history, and compares the
candidate's per-cell wall clock against **robust per-cell statistics** over
the priors.

Method (documented in ``docs/performance.md``):

* **Stratification.**  Only priors from the same stratum count as
  baseline: same event-loop kernel, host CPU count, numpy availability,
  benchmark scale, and job count.  A fast-kernel cell is never judged
  against python-kernel history, nor a 4-core run against a 1-core
  container's.  Cells carrying their own ``kernel`` field (the
  kernel-throughput grid runs both kernels in one session) must match on
  that too.  Pre-enrichment records migrate to all-``None`` strata
  (:func:`repro.harness.perflog.migrate_record`), which match nothing.
* **Robust center.**  The baseline is the *median* of the prior walls --
  one historic outlier session cannot move the gate -- and at least
  ``--min-runs`` priors are required before a cell is judged at all.
* **Tolerance band.**  A cell regresses when its wall exceeds
  ``median * (1 + tolerance)`` *and* the excess tops ``--abs-floor``
  seconds (host timers jitter; a 20 ms cell doubling is noise, a 20 s
  cell doubling is not).  Cells faster than ``median * (1 - tolerance)``
  are reported as improvements -- the gate works both ways.

Exit status: 1 when any cell regresses, 0 otherwise.  The escape hatch for
*intentional* trade-offs (a slower-but-correct fix): set
``REPRO_REGRESS_ALLOW=1`` -- the report is still written and the ledger
still records the regression, but the exit status is 0.

Every invocation writes ``results/regression_report.txt`` and appends a
``regress`` line to the run ledger.
"""

from __future__ import annotations

import argparse
import os
import statistics
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.harness.perflog import history_path_for, load_history, load_records
from repro.harness.report import format_table
from repro.obs.observatory import append_ledger

__all__ = ["CellVerdict", "DEFAULT_ABS_FLOOR", "DEFAULT_MIN_RUNS",
           "DEFAULT_TOLERANCE", "ALLOW_ENV", "compare_records",
           "format_regression_report", "gate", "main", "stratum_of"]

#: relative band: a cell regresses past median * (1 + tolerance).  Wall
#: clock on shared CI runners is noisy; 0.5 catches the step changes the
#: gate is for (a 2x slowdown) without paging on scheduler jitter.
DEFAULT_TOLERANCE = 0.5
#: priors required before a cell is judged
DEFAULT_MIN_RUNS = 3
#: absolute excess (seconds) required on top of the relative band
DEFAULT_ABS_FLOOR = 0.05
#: escape hatch for intentional performance trade-offs
ALLOW_ENV = "REPRO_REGRESS_ALLOW"


def stratum_of(record: dict) -> tuple:
    """The comparability key of one session record."""
    host = record.get("host") or {}
    return (record.get("kernel"), record.get("store"), host.get("cpus"),
            host.get("numpy"), record.get("scale"), record.get("jobs"))


@dataclass
class CellVerdict:
    """One cell's comparison against its stratified baseline."""

    grid: str
    key: str
    wall: float
    status: str                      # regression | improved | ok |
    #                                # no-baseline | tiny
    baseline_runs: int = 0
    baseline_median: float = 0.0

    @property
    def ratio(self) -> Optional[float]:
        if self.baseline_median > 0:
            return self.wall / self.baseline_median
        return None

    def describe(self) -> str:
        if self.ratio is None:
            return f"{self.grid} / {self.key}: {self.status}"
        return (f"{self.grid} / {self.key}: wall {self.wall:.3f}s vs "
                f"median {self.baseline_median:.3f}s over "
                f"{self.baseline_runs} prior runs "
                f"({self.ratio:.2f}x) -> {self.status}")


def _cells_of(record: dict):
    """Yield ``(grid_name, cell_dict)`` for every cell in a session."""
    for grid in record.get("grids") or []:
        name = grid.get("name", "?")
        for cell in grid.get("cells") or []:
            if isinstance(cell, dict) and "key" in cell:
                yield name, cell


def _cell_identity(grid_name: str, cell: dict) -> tuple:
    """Cells match on grid, key, and (when declared) their own kernel and
    sector store."""
    return (grid_name, str(cell["key"]), cell.get("kernel"),
            cell.get("store"))


def compare_records(fresh: dict, priors: list,
                    tolerance: float = DEFAULT_TOLERANCE,
                    min_runs: int = DEFAULT_MIN_RUNS,
                    abs_floor: float = DEFAULT_ABS_FLOOR) -> list:
    """Judge every cell of *fresh* against same-stratum *priors*.

    Returns :class:`CellVerdict` rows in the fresh record's cell order
    (deterministic).  *priors* are pre-filtered here: sessions from a
    different stratum never contribute baseline samples.
    """
    stratum = stratum_of(fresh)
    baselines: dict[tuple, list] = {}
    for prior in priors:
        if stratum_of(prior) != stratum:
            continue
        for grid_name, cell in _cells_of(prior):
            wall = cell.get("wall_seconds")
            if isinstance(wall, (int, float)):
                baselines.setdefault(
                    _cell_identity(grid_name, cell), []).append(float(wall))

    verdicts = []
    for grid_name, cell in _cells_of(fresh):
        wall = float(cell.get("wall_seconds") or 0.0)
        verdict = CellVerdict(grid=grid_name, key=str(cell["key"]),
                              wall=wall, status="ok")
        samples = baselines.get(_cell_identity(grid_name, cell), [])
        verdict.baseline_runs = len(samples)
        if len(samples) < min_runs:
            verdict.status = "no-baseline"
        else:
            median = statistics.median(samples)
            verdict.baseline_median = median
            if median <= 0.0:
                verdict.status = "tiny"
            elif wall > median * (1.0 + tolerance) \
                    and wall - median > abs_floor:
                verdict.status = "regression"
            elif wall < median * (1.0 - tolerance) \
                    and median - wall > abs_floor:
                verdict.status = "improved"
        verdicts.append(verdict)
    return verdicts


def format_regression_report(verdicts: list, fresh: dict, tolerance: float,
                             min_runs: int, abs_floor: float,
                             allowed: bool) -> str:
    """The ``results/regression_report.txt`` body (deterministic)."""
    stratum = stratum_of(fresh)
    lines = ["performance regression report",
             "=============================",
             f"candidate session: {fresh.get('timestamp', '?')}",
             f"stratum: kernel={stratum[0]} store={stratum[1]} "
             f"cpus={stratum[2]} numpy={stratum[3]} scale={stratum[4]} "
             f"jobs={stratum[5]}",
             f"policy: regression when wall > median * {1 + tolerance:g} "
             f"and excess > {abs_floor:g}s, over >= {min_runs} "
             f"same-stratum prior runs",
             ""]
    rows = []
    for verdict in verdicts:
        median = (f"{verdict.baseline_median:.3f}"
                  if verdict.baseline_median else "-")
        ratio = f"{verdict.ratio:.2f}" if verdict.ratio is not None else "-"
        rows.append([verdict.grid, verdict.key, f"{verdict.wall:.3f}",
                     median, verdict.baseline_runs, ratio, verdict.status])
    lines.append(format_table(
        "per-cell verdicts (wall seconds, host clock)",
        ["Grid", "Cell", "Wall", "Median", "Runs", "Ratio", "Status"],
        rows))
    lines.append("")
    regressions = [v for v in verdicts if v.status == "regression"]
    improved = [v for v in verdicts if v.status == "improved"]
    unjudged = sum(1 for v in verdicts
                   if v.status in ("no-baseline", "tiny"))
    lines.append(f"cells judged: {len(verdicts) - unjudged}/{len(verdicts)} "
                 f"(rest lack a >= {min_runs}-run same-stratum baseline)")
    lines.append(f"improvements: {len(improved)}")
    lines.append(f"regressions: {len(regressions)}")
    for verdict in regressions:
        lines.append(f"  REGRESSION: {verdict.describe()}")
    for verdict in improved:
        lines.append(f"  improved: {verdict.describe()}")
    if regressions and allowed:
        lines.append(f"exit forced to 0: {ALLOW_ENV} is set "
                     f"(intentional trade-off on record)")
    return "\n".join(lines) + "\n"


def gate(perf_json: Path, history: Optional[Path] = None,
         tolerance: float = DEFAULT_TOLERANCE,
         min_runs: int = DEFAULT_MIN_RUNS,
         abs_floor: float = DEFAULT_ABS_FLOOR) -> tuple:
    """Run the gate; returns ``(verdicts, fresh_record)``.

    Raises :class:`SystemExit` only from :func:`main`; this function is
    pure so tests (and other tools) can call it directly.
    """
    perf_json = Path(perf_json)
    records = load_records(perf_json)
    if not records:
        raise FileNotFoundError(
            f"no benchmark sessions in {perf_json} -- run the benchmark "
            f"grid first (python -m pytest benchmarks -q --benchmark-only)")
    fresh = records[-1]
    history = Path(history) if history is not None \
        else history_path_for(perf_json)
    priors = load_history(history) + records[:-1]
    verdicts = compare_records(fresh, priors, tolerance=tolerance,
                               min_runs=min_runs, abs_floor=abs_floor)
    return verdicts, fresh


def main(argv: list) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness regress",
        description="compare the freshest BENCH_perf.json session against "
                    "the stratified per-cell history; exit 1 on regression")
    parser.add_argument("--perf-json", default="BENCH_perf.json",
                        help="trajectory path (default BENCH_perf.json)")
    parser.add_argument("--history", default=None,
                        help="rotated history path (default: the "
                             "*.history.jsonl next to --perf-json)")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="relative band (default %(default)s: flag "
                             "wall > median * 1.5)")
    parser.add_argument("--min-runs", type=int, default=DEFAULT_MIN_RUNS,
                        help="prior runs required per cell "
                             "(default %(default)s)")
    parser.add_argument("--abs-floor", type=float,
                        default=DEFAULT_ABS_FLOOR,
                        help="absolute excess seconds required "
                             "(default %(default)s)")
    parser.add_argument("--out", default=os.path.join(
        "results", "regression_report.txt"),
        help="report path (default results/regression_report.txt)")
    args = parser.parse_args(argv)

    start = time.perf_counter()
    try:
        verdicts, fresh = gate(args.perf_json, history=args.history,
                               tolerance=args.tolerance,
                               min_runs=args.min_runs,
                               abs_floor=args.abs_floor)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    allowed = bool(os.environ.get(ALLOW_ENV))
    report = format_regression_report(verdicts, fresh,
                                      tolerance=args.tolerance,
                                      min_runs=args.min_runs,
                                      abs_floor=args.abs_floor,
                                      allowed=allowed)
    os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
    with open(args.out, "w") as handle:
        handle.write(report)
    print(report, end="")
    print(f"wrote {args.out}")

    regressions = [v for v in verdicts if v.status == "regression"]
    append_ledger("regress", {
        "perf_json": str(args.perf_json),
        "candidate": fresh.get("timestamp"),
        "cells": len(verdicts),
        "regressions": len(regressions),
        "improved": sum(1 for v in verdicts if v.status == "improved"),
        "tolerance": args.tolerance,
        "allowed": allowed,
        "wall_seconds": round(time.perf_counter() - start, 3),
    })
    if regressions:
        for verdict in regressions:
            print(f"REGRESSION: {verdict.describe()}", file=sys.stderr)
        if allowed:
            print(f"{ALLOW_ENV} set: exiting 0 despite "
                  f"{len(regressions)} regression(s)", file=sys.stderr)
            return 0
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main(sys.argv[1:]))
