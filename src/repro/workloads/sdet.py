"""Sdet (figure 6): concurrent software-development scripts.

From the SPEC SDM suite [Gaede81, Gaede82]: each "script" is a randomly
generated sequence of user commands "designed to emulate a typical
software-development environment (e.g., editing, compiling, file creation
and various UNIX utilities)".  The reported metric is scripts/hour as a
function of script concurrency.

Our scripts draw from a fixed command mix (deterministic per seed): edit
(read-modify-write), compile (CPU burn + object file), cp, rm, mkdir/rmdir,
ls, stat, touch.  Absolute scripts/hour depends on the command weights; the
scheme *ordering* and the shape against concurrency is what figure 6 shows.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator

from repro.machine import Machine

#: command mix: (name, weight)
COMMAND_MIX = [
    ("edit", 18),
    ("compile", 12),
    ("create", 18),
    ("rm", 14),
    ("ls", 12),
    ("stat", 12),
    ("cp", 6),
    ("trunc", 4),   # editors that save via O_TRUNC + rewrite
    ("mkdir", 4),
]
#: CPU seconds per compile at full scale (a small tool, not Andrew's -O run)
COMPILE_SECONDS = 0.25


@dataclass
class SdetResult:
    scheme: str
    scripts: int
    commands_per_script: int
    elapsed: float
    #: the figure's y axis
    scripts_per_hour: float
    #: simulator events processed during the measured run
    sim_events: int = 0


def _script(machine: Machine, user: int, commands: int,
            seed: int) -> Generator:
    fs = machine.fs
    # every script draws the same command sequence (in its own directory),
    # so concurrent runs are comparable and the max-finish metric is not
    # dominated by an unlucky straggler
    rng = random.Random(seed)
    home = f"/sdet{user}"
    yield from fs.mkdir(home)
    files: list[str] = []
    dirs: list[str] = []
    counter = 0
    names = [name for name, weight in COMMAND_MIX for _ in range(weight)]
    for _step in range(commands):
        command = rng.choice(names)
        if command == "create" or (command in ("edit", "rm", "ls", "stat",
                                               "cp", "compile", "trunc")
                                   and not files):
            path = f"{home}/file{counter}"
            counter += 1
            yield from fs.write_file(path, b"x" * rng.choice(
                [512, 2048, 8192, 16384]))
            files.append(path)
        elif command == "edit":
            path = rng.choice(files)
            data = yield from fs.read_file(path)
            yield from machine.cpu.compute(0.02 * machine.costs.scale)
            yield from fs.write_file(f"{path}.new", data + b"// edited\n")
            yield from fs.rename(f"{path}.new", path)
        elif command == "compile":
            path = rng.choice(files)
            yield from fs.read_file(path)
            yield from machine.cpu.compute(
                COMPILE_SECONDS * machine.costs.scale)
            obj = f"{home}/obj{counter}"
            counter += 1
            yield from fs.write_file(obj, b"\x7fELF" * 512)
            files.append(obj)
        elif command == "trunc":
            path = rng.choice(files)
            data = yield from fs.read_file(path)
            yield from fs.truncate(path)
            handle = yield from fs.open(path)
            yield from fs.write(handle, data[: len(data) // 2] + b"\n")
            yield from fs.close(handle)
        elif command == "rm":
            path = files.pop(rng.randrange(len(files)))
            yield from fs.unlink(path)
        elif command == "ls":
            yield from fs.readdir(home)
        elif command == "stat":
            yield from fs.stat(rng.choice(files))
        elif command == "cp":
            src = rng.choice(files)
            data = yield from fs.read_file(src)
            dst = f"{home}/copy{counter}"
            counter += 1
            yield from fs.write_file(dst, data)
            files.append(dst)
        elif command == "mkdir":
            path = f"{home}/dir{counter}"
            counter += 1
            yield from fs.mkdir(path)
            dirs.append(path)
    # clean the workspace, like the end of an Sdet script
    for path in files:
        yield from fs.unlink(path)
    for path in dirs:
        yield from fs.rmdir(path)


def run_sdet(machine: Machine, scripts: int, commands_per_script: int = 60,
             seed: int = 42) -> SdetResult:
    """Run *scripts* concurrent scripts; returns scripts/hour."""
    start = machine.engine.now
    events_before = machine.engine.events_processed
    processes = [machine.spawn(
        _script(machine, user, commands_per_script, seed),
        name=f"script{user}") for user in range(scripts)]
    machine.run(*processes, max_events=500_000_000)
    elapsed = max(p.finished_at for p in processes) - start
    return SdetResult(
        scheme=machine.scheme_name, scripts=scripts,
        commands_per_script=commands_per_script, elapsed=elapsed,
        scripts_per_hour=scripts * 3600.0 / elapsed if elapsed else 0.0,
        sim_events=machine.engine.events_processed - events_before)
