"""The Andrew file system benchmark (table 3).

Five phases [Howard88]: (1) create a directory tree, (2) copy the data
files, (3) examine the status of every file, (4) read every byte of each
file, (5) compile several of the files.  The compile phase dominates
("because of aggressive, time-consuming compilation techniques and a slow
CPU, by 1994 standards"), so phases 1-2 are where the schemes differ and
3-4 are practically indistinguishable.

We synthesize an Andrew-shaped input: ~20 directories, ~70 source files
totalling ~200 KB, and a compiler modelled as a CPU burn per source file
plus object-file output -- the phase *structure* is what table 3 measures.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Generator

from repro.machine import Machine

#: full-scale shape (scaled linearly by the harness)
DIRECTORIES = 20
FILES = 70
TOTAL_BYTES = 200_000
#: full-scale CPU seconds per compiled source (33 MHz i486 with -O)
COMPILE_SECONDS_PER_FILE = 4.5
COMPILED_FRACTION = 0.85


@dataclass
class AndrewResult:
    scheme: str
    iterations: int
    #: phase name -> (mean seconds, standard deviation)
    phases: dict = field(default_factory=dict)
    #: simulator events processed during the measured iterations
    sim_events: int = 0

    @property
    def total(self) -> tuple[float, float]:
        means = [m for m, _s in self.phases.values()]
        stds = [s for _m, s in self.phases.values()]
        return sum(means), sum(s ** 2 for s in stds) ** 0.5


PHASE_NAMES = ["mkdir", "copy", "stat", "read", "compile"]


def _layout(scale: float, seed: int = 7):
    rng = random.Random(seed)
    ndirs = max(2, int(DIRECTORIES * scale))
    nfiles = max(4, int(FILES * scale))
    dirs = [f"sub{i:02d}" for i in range(ndirs)]
    sizes = [max(128, int(TOTAL_BYTES * scale / nfiles
                          * rng.uniform(0.4, 2.0)))
             for _ in range(nfiles)]
    files = [(f"{rng.choice(dirs)}/src{i:03d}.c", size)
             for i, size in enumerate(sizes)]
    return dirs, files


def run_andrew(machine: Machine, iterations: int = 3,
               scale: float = 1.0, compile_scale: float = 1.0,
               seed: int = 7) -> AndrewResult:
    """Run the five phases *iterations* times; returns per-phase stats."""
    dirs, files = _layout(scale, seed)
    samples: dict[str, list[float]] = {name: [] for name in PHASE_NAMES}

    # the pristine source tree the benchmark copies from
    def sources() -> Generator:
        yield from machine.fs.mkdir("/andrew-src")
        seen = set()
        for path, _size in files:
            top = path.split("/")[0]
            if top not in seen:
                seen.add(top)
                yield from machine.fs.mkdir(f"/andrew-src/{top}")
        for path, size in files:
            yield from machine.fs.write_file(f"/andrew-src/{path}",
                                             b"int main;\n" * (size // 10 + 1))

    machine.populate(sources())

    events_before = machine.engine.events_processed
    for iteration in range(iterations):
        root = f"/run{iteration}"
        process = machine.spawn(
            _one_iteration(machine, root, dirs, files, samples,
                           compile_scale),
            name=f"andrew{iteration}")
        machine.run(process, max_events=500_000_000)
        machine.sync_and_settle()

    result = AndrewResult(scheme=machine.scheme_name, iterations=iterations,
                          sim_events=machine.engine.events_processed
                          - events_before)
    for name in PHASE_NAMES:
        values = samples[name]
        mean = sum(values) / len(values)
        std = (sum((v - mean) ** 2 for v in values) / len(values)) ** 0.5
        result.phases[name] = (mean, std)
    return result


def _one_iteration(machine: Machine, root: str, dirs, files, samples,
                   compile_scale: float) -> Generator:
    fs = machine.fs
    clock = machine.engine

    # phase 1: create the directory tree
    start = clock.now
    yield from fs.mkdir(root)
    for name in dirs:
        yield from fs.mkdir(f"{root}/{name}")
    samples["mkdir"].append(clock.now - start)

    # phase 2: copy the data files
    start = clock.now
    for path, _size in files:
        data = yield from fs.read_file(f"/andrew-src/{path}")
        yield from fs.write_file(f"{root}/{path}", data)
    samples["copy"].append(clock.now - start)

    # phase 3: examine the status of every file
    start = clock.now
    for name in dirs:
        listing = yield from fs.readdir(f"{root}/{name}")
        for entry in listing:
            yield from fs.stat(f"{root}/{name}/{entry}")
    samples["stat"].append(clock.now - start)

    # phase 4: read every byte of each file
    start = clock.now
    for path, _size in files:
        yield from fs.read_file(f"{root}/{path}")
    samples["read"].append(clock.now - start)

    # phase 5: compile several of the files
    start = clock.now
    compiled = files[:max(1, int(len(files) * COMPILED_FRACTION))]
    for path, _size in compiled:
        source = yield from fs.read_file(f"{root}/{path}")
        yield from machine.cpu.compute(
            COMPILE_SECONDS_PER_FILE * compile_scale
            * machine.costs.scale)
        yield from fs.write_file(f"{root}/{path[:-2]}.o",
                                 source[:len(source) // 2 + 64])
    # link step: one bigger output
    yield from machine.cpu.compute(
        3.0 * compile_scale * machine.costs.scale)
    yield from fs.write_file(f"{root}/a.out", b"\x7fELF" * 2048)
    samples["compile"].append(clock.now - start)
