"""The media write-log must hold each payload exactly once.

Companion regression to ``test_trace_memory.py``: capture-enabled
recording runs attach a :class:`~repro.integrity.medialog.MediaLog` to the
drive, and the memory discipline is the PR-4 ``retain_payloads`` rule --
the log keeps one reference per media operation (a reference to the very
bytes object the drive transferred, never a copy), while the driver trace
keeps dropping its payloads at completion.  A sweep over hundreds of crash
points must cost one workload's write volume, not one per crash point.
"""

from repro.disk import Disk
from repro.driver import DeviceDriver, FlagPolicy, FlagSemantics
from repro.integrity.medialog import MediaLog
from repro.sim import Engine


def churn_writes(eng, driver, count=200, sectors=4):
    payloads = [bytes([i % 251]) * (sectors * 512) for i in range(count)]
    requests = [driver.write(1000 + 2 * sectors * i, payloads[i])
                for i in range(count)]
    for request in requests:
        eng.run_until(request.done)
    return payloads


def test_log_holds_each_window_once_and_trace_stays_flat():
    eng = Engine()
    disk = Disk(eng)
    driver = DeviceDriver(eng, disk, FlagPolicy(FlagSemantics.IGNORE))
    log = MediaLog(disk.geometry.sector_size)
    log.attach(disk)
    payloads = churn_writes(eng, driver, count=50)
    # the driver trace keeps zero payload bytes (the PR-4 default) ...
    assert sum(len(r.data) for r in driver.trace
               if r.data is not None) == 0
    # ... while the log holds exactly the media write volume, once:
    # one entry per media operation, payload stored by reference
    assert log.sectors_durable == disk.stats.sectors_written
    assert log.payload_bytes == \
        sum(len(entry.data) for entry in log.entries)
    assert log.payload_bytes <= sum(len(p) for p in payloads)
    assert len({id(entry.data) for entry in log.entries}) == len(log)


def test_log_references_are_not_copies():
    # the drive hands the log the identical bytes object it transferred;
    # a copy per window would double the recording's footprint
    eng = Engine()
    disk = Disk(eng)
    driver = DeviceDriver(eng, disk, FlagPolicy(FlagSemantics.IGNORE))
    driver.retain_payloads = True
    log = MediaLog(disk.geometry.sector_size)
    log.attach(disk)
    churn_writes(eng, driver, count=5)
    retained = {id(r.data) for r in driver.trace if r.data is not None}
    assert retained, "retain_payloads must keep the driver copies"
    for entry in log.entries:
        assert id(entry.data) in retained, \
            "log entry duplicated the payload instead of sharing it"


def test_single_observer_slot_is_enforced():
    eng = Engine()
    disk = Disk(eng)
    log = MediaLog(disk.geometry.sector_size)
    log.attach(disk)
    try:
        MediaLog(disk.geometry.sector_size).attach(disk)
    except RuntimeError:
        pass
    else:
        raise AssertionError("second attach must be rejected")
    log.detach(disk)
    MediaLog(disk.geometry.sector_size).attach(disk)
