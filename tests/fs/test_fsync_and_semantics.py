"""fsync (SYNCIO) guarantees and section 6.1 semantics, per scheme."""

import pytest

from repro.integrity import crash_image, fsck
from tests.conftest import SMALL_GEOMETRY, make_machine, run_user


class TestFsyncDurability:
    @pytest.mark.parametrize("scheme", ["noorder", "conventional", "flag",
                                        "chains", "softupdates"])
    def test_fsynced_file_survives_crash(self, scheme):
        """All schemes support the SYNCIO interface (section 6.1)."""
        m = make_machine(scheme)
        payload = b"must-survive" * 300

        def user():
            handle = yield from m.fs.create("/durable")
            yield from m.fs.write(handle, payload)
            yield from m.fs.fsync(handle)
            yield from m.fs.close(handle)

        run_user(m, user())
        # crash immediately: no further flushing happens
        image = crash_image(m)
        report = fsck(image, SMALL_GEOMETRY)
        # the file exists on disk with its full size
        durable = [din for din in report.inodes.values()
                   if din.size == len(payload)]
        assert durable, "fsynced file missing from the crash image"
        # and its data is the real bytes
        din = durable[0]
        spf = 2
        data = image.read(din.direct[0] * spf,
                          ((din.size + 1023) // 1024) * spf)[:din.size]
        assert data == payload

    def test_fsync_resolves_soft_updates_chain(self):
        m = make_machine("softupdates")

        def user():
            handle = yield from m.fs.create("/chained")
            yield from m.fs.write(handle, b"q" * 5000)
            yield from m.fs.fsync(handle)
            ino = handle.ip.ino
            yield from m.fs.close(handle)
            return ino

        ino = run_user(m, user())
        assert not m.scheme.manager.inode_busy(ino)


class TestReturnSemantics:
    """Section 6.1: what is durable when a call returns."""

    def test_conventional_create_inode_is_durable_entry_is_not(self):
        m = make_machine("conventional")

        def user():
            handle = yield from m.fs.create("/f")
            yield from m.fs.close(handle)

        run_user(m, user())
        report = fsck(crash_image(m), SMALL_GEOMETRY)
        # the new inode reached disk (synchronous write)...
        assert len(report.inodes) == 2  # root + the new file
        # ...but the name is not guaranteed yet (last write was delayed):
        # the new inode shows up as an fsck-repairable orphan
        assert any("orphan" in w for w in report.warnings)

    def test_softupdates_freed_space_not_reusable_until_disk_catches_up(self):
        """'freed resources do not become available for re-use until the
        re-initialized inode reaches stable storage'"""
        m = make_machine("softupdates")

        def setup():
            yield from m.fs.write_file("/a", b"a" * 8192)
            yield from m.fs.sync()

        run_user(m, setup())
        free_before = sum(m.fs.allocator.cg_free_frags)

        def remove_then_create():
            yield from m.fs.unlink("/a")
            # immediately allocate: must NOT get the just-freed frags
            yield from m.fs.write_file("/b", b"b" * 8192)
            return sum(m.fs.allocator.cg_free_frags)

        free_during = run_user(m, remove_then_create())
        # /a's 8 frags still held back, /b took 8 fresh ones
        assert free_during == free_before - 8

    def test_flag_scheme_frees_resources_immediately(self):
        """'With the scheduler-enforced ordering schemes, freed resources
        are immediately available for re-use'"""
        m = make_machine("flag")

        def setup():
            yield from m.fs.write_file("/a", b"a" * 8192)
            yield from m.fs.sync()

        run_user(m, setup())
        free_before = sum(m.fs.allocator.cg_free_frags)

        def remove():
            yield from m.fs.unlink("/a")
            return sum(m.fs.allocator.cg_free_frags)

        assert run_user(m, remove()) == free_before + 8


class TestCrossSchemeEquivalence:
    def test_all_schemes_converge_to_identical_structure(self):
        """After sync, the logical file system state is scheme-independent."""
        snapshots = {}
        for scheme in ("noorder", "conventional", "flag", "chains",
                       "softupdates"):
            m = make_machine(scheme)

            def user():
                yield from m.fs.mkdir("/d")
                for index in range(8):
                    yield from m.fs.write_file(f"/d/f{index}",
                                               bytes([index]) * 3000)
                yield from m.fs.unlink("/d/f3")
                yield from m.fs.rename("/d/f5", "/d/renamed")
                yield from m.fs.link("/d/f1", "/d/lnk")
                yield from m.fs.sync()
                listing = yield from m.fs.readdir("/d")
                contents = {}
                for name in listing:
                    contents[name] = (yield from m.fs.read_file(f"/d/{name}"))
                return contents

            snapshots[scheme] = run_user(m, user())
            report = fsck(m.disk.storage, SMALL_GEOMETRY)
            assert report.clean and not report.warnings, scheme
        reference = snapshots["conventional"]
        for scheme, snapshot in snapshots.items():
            assert snapshot == reference, scheme
