"""Per-scheme crash-safety declarations.

Each ordering scheme declares what a power failure at an *arbitrary* instant
is allowed to leave behind.  The crash-exploration engine
(:mod:`repro.integrity.explorer`) sweeps every disk-write boundary, runs
fsck on each surviving image, and holds the scheme to its own declaration:

* ``corruption`` -- structural integrity lost (dangling directory entries,
  double-allocated blocks, pointers off the volume): only No Order may ever
  show these, as a consequence of ignoring all three ordering rules.
* ``leaks`` -- allocated-but-unreferenced resources: every scheme that frees
  lazily (soft updates' deferred deallocation, the scheduler schemes'
  delayed pointer resets) may leak; fsck reclaims mechanically.
* ``link skew`` -- nlink differing from the observed reference count: the
  remove orderings (entry first, count later) make this unavoidable for
  every safe scheme; fsck recomputes the count.
* ``stale data`` -- a new file exposing a previous owner's bytes: open
  unless allocation initialization is enforced (paper, section 1).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CrashGuarantees:
    """What crash states a scheme admits (checked, not trusted)."""

    #: fsck *errors* are acceptable (only the No Order baseline)
    allows_corruption: bool = False
    #: leaked blocks/inodes/bitmap bits are acceptable (lazy deallocation)
    allows_leaks: bool = True
    #: link counts may transiently disagree with the directory tree
    allows_link_skew: bool = True
    #: new files may expose stale (deleted) data after a crash
    allows_stale_data: bool = True

    def permits(self, invariant) -> bool:
        """Whether violating *invariant* (an
        :class:`repro.integrity.invariants.Invariant`) is within the
        declaration.

        Dispatch is by invariant *key* first and severity only as the
        fallback: an invariant with a dedicated flag is always gated by
        that flag, whatever severity a checker assigns it.  (The reverse
        order would let a corruption-severity ``link-count`` or
        ``stale-data`` finding slip past its specific flag via
        ``allows_corruption``.)
        """
        if invariant.key == "link-count":
            return self.allows_link_skew
        if invariant.key == "stale-data":
            return self.allows_stale_data
        if invariant.severity.value == "corruption":
            return self.allows_corruption
        return self.allows_leaks


#: the conservative default: safe w.r.t. corruption, repairable wear allowed
SAFE_DEFAULT = CrashGuarantees()

#: No Order declares nothing: any crash state is "as designed"
UNSAFE = CrashGuarantees(allows_corruption=True)
