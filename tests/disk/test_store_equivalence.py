"""FlatSectorStore vs the dict-backed oracle, under random interleavings.

The flat store is a performance substitution, not a behavior change: any
sequence of ``read`` / ``write`` / ``write_partial`` / ``snapshot`` /
``digest`` / ``iter_nonzero`` / ``flat_view`` calls must be observation-
identical to the reference ``SectorStore`` -- on the numpy backing *and*
on the pure-python ``bytearray`` fallback.  A tracemalloc check also pins
the flat store's O(1)-allocations write path (the dict store allocates one
``bytes`` per sector).
"""

import tracemalloc

import pytest
from hypothesis import given, settings, strategies as st

from repro.disk import DiskGeometry, FlatSectorStore, SectorStore
from repro.disk import storage as storage_mod


def flat_store(geometry, fallback: bool) -> FlatSectorStore:
    store = FlatSectorStore(geometry)
    if fallback:
        # force the pure-python digest/scan path regardless of numpy
        store._use_np = False
        store.backend = "bytearray"
    return store


SECTOR = 512
#: ops reference the small geometry below; spans stay in range
ops = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.integers(0, 600),
                  st.integers(1, 5), st.integers(0, 255)),
        st.tuples(st.just("write_partial"), st.integers(0, 600),
                  st.integers(1, 5), st.integers(0, 4)),
        st.tuples(st.just("read"), st.integers(0, 600), st.integers(1, 8)),
        st.tuples(st.just("snapshot")),
        st.tuples(st.just("digest")),
        st.tuples(st.just("len")),
    ),
    max_size=40,
)


def apply_ops(store, op_list):
    """Run *op_list*; return every observable the sequence produced."""
    observed = []
    for op in op_list:
        kind = op[0]
        if kind == "write":
            _, lbn, nsectors, fill = op
            store.write(lbn, bytes([fill]) * (SECTOR * nsectors))
        elif kind == "write_partial":
            _, lbn, nsectors, applied = op
            store.write_partial(lbn, bytes([7]) * (SECTOR * nsectors),
                                min(applied, nsectors))
        elif kind == "read":
            _, lbn, nsectors = op
            observed.append(store.read(lbn, nsectors))
        elif kind == "snapshot":
            snap = store.snapshot()
            observed.append((snap.digest(), snap.sectors_written, len(snap)))
        elif kind == "digest":
            observed.append(store.digest())
        elif kind == "len":
            observed.append((len(store), store.sectors_written))
    observed.append(store.digest())
    observed.append(list(store.iter_nonzero()))
    observed.append(bytes(store.flat_view(610)))
    observed.append((store.sectors_written, len(store)))
    return observed


class TestRandomInterleavings:
    @settings(max_examples=60, deadline=None)
    @given(op_list=ops)
    def test_flat_matches_oracle(self, op_list):
        geometry = DiskGeometry()
        reference = apply_ops(SectorStore(geometry), op_list)
        assert apply_ops(flat_store(geometry, fallback=False),
                         op_list) == reference

    @settings(max_examples=60, deadline=None)
    @given(op_list=ops)
    def test_fallback_backing_matches_oracle(self, op_list):
        geometry = DiskGeometry()
        reference = apply_ops(SectorStore(geometry), op_list)
        assert apply_ops(flat_store(geometry, fallback=True),
                         op_list) == reference

    def test_fallback_used_when_numpy_missing(self, monkeypatch):
        """With numpy unimportable the flat store must still construct and
        conform (CI's numpy-free tier-1 legs run the whole suite this way;
        this pins the selection logic itself)."""
        monkeypatch.setattr(storage_mod, "_np", None)
        store = storage_mod.FlatSectorStore(DiskGeometry())
        assert store.backend == "bytearray"
        store.write(5, b"\x09" * SECTOR)
        assert store.read(5) == b"\x09" * SECTOR
        reference = SectorStore(DiskGeometry())
        reference.write(5, b"\x09" * SECTOR)
        assert store.digest() == reference.digest()


class TestWritePathAllocations:
    def measure(self, store, lbn, payload):
        tracemalloc.start()
        before = tracemalloc.take_snapshot()
        store.write(lbn, payload)
        after = tracemalloc.take_snapshot()
        tracemalloc.stop()
        return sum(stat.size_diff
                   for stat in after.compare_to(before, "filename")
                   if "storage.py" in (stat.traceback[0].filename
                                       if stat.traceback else ""))

    def test_flat_write_does_not_copy_per_sector(self):
        """A large write into pre-grown backing must not allocate per
        sector: the flat store slices the payload straight in, while the
        dict store materializes one ``bytes`` object per sector."""
        geometry = DiskGeometry()
        nsectors = 512
        payload = b"\xa5" * (SECTOR * nsectors)

        flat = FlatSectorStore(geometry)
        flat.write(0, payload)  # pre-grow so _ensure is out of the picture
        flat_bytes = self.measure(flat, 0, payload)

        reference = SectorStore(geometry)
        reference.write(0, payload)
        dict_bytes = self.measure(reference, 0, payload)

        # the dict store retains ~nsectors fresh sector copies (>= the
        # payload itself); the flat store overwrites in place and retains
        # nothing close to one sector per sector written
        assert dict_bytes >= SECTOR * nsectors
        assert flat_bytes < dict_bytes / 4
