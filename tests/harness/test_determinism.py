"""Seed plumbing and run-to-run determinism.

Crash exploration replays a recorded workload from scratch and trusts the
replay to hit the same instants; that only works if (scheme, workload,
seed) fully determines the event trace.  These are the regression tests
for that property, plus the explicit-seed plumbing through the benchmark
runners (``run_copy``/``run_remove``).
"""

from repro.harness.recording import record_run
from repro.harness.runner import (
    run_copy,
    run_remove,
    standard_scheme_config,
    with_seed,
)
from repro.integrity.explorer import build_machine, build_workload
from repro.workloads.trees import TreeSpec, tree_layout

TINY_TREE = TreeSpec(files=6, total_bytes=48 * 1024, dirs=3)


def windows(scheme: str, workload: str, seed: int, ops: int):
    """The full media-write trace fingerprint of one recorded run."""
    machine = build_machine(scheme)
    recorded = record_run(machine,
                          build_workload(machine, workload, seed, ops))
    return recorded


class TestTraceDeterminism:
    def test_same_seed_same_event_trace(self):
        first = windows("softupdates", "churn", seed=3, ops=24)
        second = windows("softupdates", "churn", seed=3, ops=24)
        assert first.windows == second.windows
        assert first.workload_done == second.workload_done
        assert first.quiesce_time == second.quiesce_time
        assert first.requests_issued == second.requests_issued
        assert first.events_processed == second.events_processed

    def test_different_seed_different_trace(self):
        first = windows("softupdates", "churn", seed=3, ops=24)
        second = windows("softupdates", "churn", seed=4, ops=24)
        assert first.windows != second.windows

    def test_request_trace_matches_exactly(self):
        """Beyond write windows: every request's full timing history."""
        fingerprints = []
        for _ in range(2):
            machine = build_machine("chains")
            record_run(machine,
                       build_workload(machine, "microbench", 9, 12))
            fingerprints.append([
                (r.id, r.kind.name, r.lbn, r.nsectors, r.issue_time,
                 r.dispatch_time, r.complete_time)
                for r in machine.driver.trace])
        assert fingerprints[0] == fingerprints[1]
        assert fingerprints[0], "the run must actually reach the disk"


class TestWithSeed:
    def test_with_seed_overrides_only_the_seed(self):
        reseeded = with_seed(TINY_TREE, 77)
        assert reseeded.seed == 77
        assert (reseeded.files, reseeded.total_bytes, reseeded.dirs) == \
            (TINY_TREE.files, TINY_TREE.total_bytes, TINY_TREE.dirs)

    def test_with_seed_none_is_identity(self):
        assert with_seed(TINY_TREE, None) is TINY_TREE

    def test_seed_changes_tree_layout(self):
        assert tree_layout(with_seed(TINY_TREE, 1)) != \
            tree_layout(with_seed(TINY_TREE, 2))


class TestRunnerSeedPlumbing:
    def test_run_copy_same_seed_identical_measurements(self):
        results = [run_copy(standard_scheme_config("Conventional"),
                            users=1, tree=TINY_TREE, seed=5)
                   for _ in range(2)]
        first, second = results
        assert first.elapsed == second.elapsed
        assert first.disk_requests == second.disk_requests
        assert first.io_response_avg == second.io_response_avg
        assert first.user_elapsed == second.user_elapsed

    def test_run_copy_seed_changes_the_run(self):
        first = run_copy(standard_scheme_config("Conventional"),
                         users=1, tree=TINY_TREE, seed=5)
        second = run_copy(standard_scheme_config("Conventional"),
                          users=1, tree=TINY_TREE, seed=6)
        # different tree contents -> different I/O pattern
        assert (first.elapsed, first.disk_requests) != \
            (second.elapsed, second.disk_requests)

    def test_run_remove_same_seed_identical_measurements(self):
        results = [run_remove(standard_scheme_config("Soft Updates"),
                              users=1, tree=TINY_TREE, seed=5)
                   for _ in range(2)]
        first, second = results
        assert first.elapsed == second.elapsed
        assert first.disk_requests == second.disk_requests
        assert first.writes == second.writes
