"""File system integration tests, run against every ordering scheme."""

import pytest

from repro.fs import FsError
from repro.fs.layout import FileType
from repro.sim import ProcessCrashed
from tests.conftest import make_machine, run_user


class TestBasicOps:
    def test_write_read_roundtrip(self, any_scheme_machine):
        m = any_scheme_machine
        payload = bytes(range(256)) * 40  # 10240 bytes: one block + a frag

        def user():
            yield from m.fs.write_file("/data.bin", payload)
            data = yield from m.fs.read_file("/data.bin")
            return data

        assert run_user(m, user()) == payload

    def test_survives_sync_and_cold_cache(self, any_scheme_machine):
        m = any_scheme_machine
        payload = b"persistence check" * 100

        def writer():
            yield from m.fs.write_file("/p.txt", payload)
            yield from m.fs.sync()

        run_user(m, writer())
        m.drop_caches()

        def reader():
            data = yield from m.fs.read_file("/p.txt")
            return data

        assert run_user(m, reader()) == payload

    def test_mkdir_and_nested_paths(self, any_scheme_machine):
        m = any_scheme_machine

        def user():
            yield from m.fs.mkdir("/a")
            yield from m.fs.mkdir("/a/b")
            yield from m.fs.write_file("/a/b/leaf", b"deep")
            data = yield from m.fs.read_file("/a/b/leaf")
            st = yield from m.fs.stat("/a/b")
            return data, st.ftype

        data, ftype = run_user(m, user())
        assert data == b"deep"
        assert ftype is FileType.DIRECTORY

    def test_unlink_removes_and_frees(self, any_scheme_machine):
        m = any_scheme_machine

        def user():
            yield from m.fs.write_file("/victim", b"x" * 5000)
            yield from m.fs.unlink("/victim")
            yield from m.fs.sync()
            with pytest.raises(FsError, match="ENOENT"):
                yield from m.fs.stat("/victim")
            names = yield from m.fs.readdir("/")
            return names

        assert run_user(m, user()) == []
        # all data fragments are back in the pool after the dust settles
        total_free = sum(m.fs.allocator.cg_free_frags)
        expected = (m.fs.geometry.dfrags_per_cg * m.fs.geometry.ncg
                    - m.fs.geometry.frags_per_block)  # root dir block
        assert total_free == expected

    def test_rmdir(self, any_scheme_machine):
        m = any_scheme_machine

        def user():
            yield from m.fs.mkdir("/d")
            with pytest.raises(FsError, match="ENOENT"):
                yield from m.fs.rmdir("/nope")
            yield from m.fs.write_file("/d/f", b"1")
            with pytest.raises(FsError, match="ENOTEMPTY"):
                yield from m.fs.rmdir("/d")
            yield from m.fs.unlink("/d/f")
            yield from m.fs.rmdir("/d")
            yield from m.fs.sync()
            names = yield from m.fs.readdir("/")
            root = yield from m.fs.stat("/")
            return names, root.nlink

        names, root_nlink = run_user(m, user())
        assert names == []
        assert root_nlink == 2

    def test_rename(self, any_scheme_machine):
        m = any_scheme_machine

        def user():
            yield from m.fs.write_file("/old", b"contents")
            yield from m.fs.rename("/old", "/new")
            data = yield from m.fs.read_file("/new")
            with pytest.raises(FsError, match="ENOENT"):
                yield from m.fs.stat("/old")
            return data

        assert run_user(m, user()) == b"contents"

    def test_rename_replaces_target(self, any_scheme_machine):
        m = any_scheme_machine

        def user():
            yield from m.fs.write_file("/a", b"AAA")
            yield from m.fs.write_file("/b", b"BBB")
            yield from m.fs.rename("/a", "/b")
            data = yield from m.fs.read_file("/b")
            yield from m.fs.sync()
            return data

        assert run_user(m, user()) == b"AAA"

    def test_hard_link_shares_inode(self, any_scheme_machine):
        m = any_scheme_machine

        def user():
            yield from m.fs.write_file("/one", b"shared")
            yield from m.fs.link("/one", "/two")
            st = yield from m.fs.stat("/two")
            yield from m.fs.unlink("/one")
            yield from m.fs.sync()
            data = yield from m.fs.read_file("/two")
            st2 = yield from m.fs.stat("/two")
            return st.nlink, data, st2.nlink

        nlink, data, nlink_after = run_user(m, user())
        assert nlink == 2
        assert data == b"shared"
        assert nlink_after == 1


class TestErrors:
    def test_enoent(self, any_scheme_machine):
        m = any_scheme_machine

        def user():
            with pytest.raises(FsError, match="ENOENT"):
                yield from m.fs.open("/missing")
            return True

        assert run_user(m, user())

    def test_eexist_on_create(self, any_scheme_machine):
        m = any_scheme_machine

        def user():
            yield from m.fs.write_file("/f", b"1")
            with pytest.raises(FsError, match="EEXIST"):
                yield from m.fs.create("/f")
            return True

        assert run_user(m, user())

    def test_enotdir(self, any_scheme_machine):
        m = any_scheme_machine

        def user():
            yield from m.fs.write_file("/plain", b"1")
            with pytest.raises(FsError, match="ENOTDIR"):
                yield from m.fs.stat("/plain/child")
            return True

        assert run_user(m, user())

    def test_relative_path_rejected(self, any_scheme_machine):
        m = any_scheme_machine

        def user():
            with pytest.raises(FsError, match="EINVAL"):
                yield from m.fs.stat("not/absolute")
            return True

        assert run_user(m, user())


class TestLargeFiles:
    def test_file_through_single_indirect(self):
        m = make_machine("softupdates")
        size = (m.fs.geometry.NDADDR + 5) * m.fs.geometry.block_size
        payload = bytes([i % 251 for i in range(size)])

        def user():
            yield from m.fs.write_file("/big", payload)
            yield from m.fs.sync()
            data = yield from m.fs.read_file("/big")
            return data

        assert run_user(m, user()) == payload
        # survives a cold-cache reread
        m.drop_caches()

        def reader():
            data = yield from m.fs.read_file("/big")
            return data

        assert run_user(m, reader()) == payload

    def test_large_file_frees_indirect_blocks_on_unlink(self):
        m = make_machine("conventional")
        size = (m.fs.geometry.NDADDR + 3) * m.fs.geometry.block_size
        before = sum(m.fs.allocator.cg_free_frags)

        def user():
            yield from m.fs.write_file("/big", b"\xaa" * size)
            yield from m.fs.unlink("/big")
            yield from m.fs.sync()

        run_user(m, user())
        assert sum(m.fs.allocator.cg_free_frags) == before


class TestFragments:
    @pytest.mark.parametrize("scheme", ["noorder", "conventional", "flag",
                                        "chains", "softupdates"])
    def test_small_file_uses_fragments(self, scheme):
        m = make_machine(scheme)

        def user():
            yield from m.fs.write_file("/tiny", b"z" * 1500)  # 2 frags
            st = yield from m.fs.stat("/tiny")
            return st.frags_held

        assert run_user(m, user()) == 2

    @pytest.mark.parametrize("scheme", ["noorder", "conventional", "flag",
                                        "chains", "softupdates"])
    def test_append_extends_fragment_run(self, scheme):
        """Repeated small appends force fragment extension (maybe by move)."""
        m = make_machine(scheme)

        def user():
            handle = yield from m.fs.create("/grow")
            for i in range(6):
                yield from m.fs.write(handle, bytes([i]) * 900)
            yield from m.fs.close(handle)
            yield from m.fs.sync()
            data = yield from m.fs.read_file("/grow")
            return data

        data = run_user(m, user())
        assert data == b"".join(bytes([i]) * 900 for i in range(6))

    @pytest.mark.parametrize("scheme", ["conventional", "softupdates",
                                        "chains"])
    def test_fragment_move_when_neighbour_occupied(self, scheme):
        """Interleaved writers collide in a block, forcing moves."""
        m = make_machine(scheme)

        def user():
            h1 = yield from m.fs.create("/a")
            h2 = yield from m.fs.create("/b")
            for i in range(5):
                yield from m.fs.write(h1, b"A" * 1024)
                yield from m.fs.write(h2, b"B" * 1024)
            yield from m.fs.close(h1)
            yield from m.fs.close(h2)
            yield from m.fs.sync()
            a = yield from m.fs.read_file("/a")
            b = yield from m.fs.read_file("/b")
            return a, b

        a, b = run_user(m, user())
        assert a == b"A" * 5120
        assert b == b"B" * 5120


class TestDirectoryGrowth:
    def test_directory_grows_past_one_block(self):
        from repro.fs.layout import FSGeometry
        roomy = FSGeometry(ipg=1024, dfrags_per_cg=4096, ncg=1)
        m = make_machine("softupdates", geometry=roomy,
                         cache_bytes=4 * 1024 * 1024)
        count = 600  # > one 8K block of entries

        def user():
            yield from m.fs.mkdir("/many")
            for i in range(count):
                yield from m.fs.write_file(f"/many/file{i:04d}", b".")
            names = yield from m.fs.readdir("/many")
            yield from m.fs.sync()
            return names

        names = run_user(m, user(), max_events=20_000_000)
        assert len(names) == count
        st = run_user(m, m.fs.stat("/many"))
        assert st.size > m.fs.geometry.block_size


class TestConcurrency:
    def test_parallel_users_in_separate_dirs(self, safe_scheme_machine):
        m = safe_scheme_machine

        def setup():
            for user_id in range(3):
                yield from m.fs.mkdir(f"/u{user_id}")

        run_user(m, setup())

        def worker(user_id):
            for i in range(10):
                yield from m.fs.write_file(f"/u{user_id}/f{i}",
                                           bytes([user_id]) * 2000)
            total = 0
            for i in range(10):
                data = yield from m.fs.read_file(f"/u{user_id}/f{i}")
                assert data == bytes([user_id]) * 2000
                total += len(data)
            return total

        procs = [m.engine.process(worker(u), name=f"user{u}")
                 for u in range(3)]
        results = m.engine.run_all(procs, max_events=20_000_000)
        assert results == [20000, 20000, 20000]

    def test_parallel_users_same_directory(self, safe_scheme_machine):
        m = safe_scheme_machine

        def worker(user_id):
            for i in range(5):
                yield from m.fs.write_file(f"/w{user_id}_{i}", b"x" * 1024)
            return True

        procs = [m.engine.process(worker(u)) for u in range(4)]
        assert all(m.engine.run_all(procs, max_events=20_000_000))

        names = run_user(m, m.fs.readdir("/"))
        assert len(names) == 20


class TestOutOfSpace:
    def test_data_exhaustion_raises(self):
        from repro.fs.layout import FSGeometry
        tiny = FSGeometry(ipg=64, dfrags_per_cg=64, ncg=1)
        m = make_machine("noorder", geometry=tiny)

        def user():
            for i in range(100):
                yield from m.fs.write_file(f"/f{i}", b"x" * 8192)

        with pytest.raises(ProcessCrashed, match="OutOfSpace|full"):
            run_user(m, user())
