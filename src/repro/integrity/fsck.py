"""fsck: audit a (possibly crashed) disk image.

Violations (``errors`` -- structural integrity is lost, fsck cannot decide
the right repair):

* a directory entry points to an unallocated or out-of-range inode (rule 3
  for inodes / rule 1 for rename),
* a data fragment is claimed by two files, or claimed and also outside the
  data area (rule 2),
* an inode holds a pointer outside the volume or into metadata regions,
* directory contents are structurally corrupt.

Repairable inconsistencies (``warnings`` -- classic fsck fixes these
mechanically, the paper's schemes deliberately allow them):

* link count differing from the number of references, in either direction:
  fsck recomputes the reference count from the (intact) directory tree and
  rewrites ``nlink``, so both too-high (remove ordered entry-first) and
  too-low (an existing inode gained an entry -- e.g. a new subdirectory's
  '..' -- before its nlink bump landed) are mechanical repairs.  Note rule 3
  concerns *uninitialized* inodes; pointing at an initialized, live inode
  early only skews the count,
* allocated-but-unreferenced inodes or fragments (leaks),
* bitmap says free but the fragment/inode is referenced (fsck re-marks it),
* bitmap says used but nothing references it.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.disk.storage import SectorStore
from repro.fs import directory
from repro.fs.alloc import CG_MAGIC, CgView
from repro.fs.layout import Dinode, FileType, FSGeometry, ROOT_INO
from repro.fs.superblock import Superblock


@dataclass
class FsckReport:
    """Outcome of one audit."""

    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    #: ino -> Dinode for every allocated inode
    inodes: dict[int, Dinode] = field(default_factory=dict)
    #: path-ish names discovered, for tests: ino -> list of (dir ino, name)
    references: dict[int, list[tuple[int, str]]] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.errors

    def summary(self) -> str:
        return (f"fsck: {len(self.errors)} errors, {len(self.warnings)} "
                f"warnings, {len(self.inodes)} inodes")


class _Checker:
    def __init__(self, image: SectorStore, geometry: FSGeometry) -> None:
        self.image = image
        self.geo = geometry
        self.report = FsckReport()
        self.claims: dict[int, int] = {}  # fragment daddr -> claiming ino

    # -- raw readers ------------------------------------------------------
    def read_frags(self, daddr: int, frags: int) -> bytes:
        spf = self.geo.frag_size // self.image.geometry.sector_size
        return self.image.read(daddr * spf, frags * spf)

    def read_inode(self, ino: int) -> Dinode:
        block = self.read_frags(self.geo.inode_block_daddr(ino),
                                self.geo.frags_per_block)
        at = self.geo.inode_offset_in_block(ino)
        return Dinode.unpack(block[at:at + 128])

    # -- phase 1: inodes and block claims ------------------------------------
    def scan_inodes(self) -> None:
        for ino in range(self.geo.total_inodes):
            din = self.read_inode(ino)
            if not din.allocated:
                continue
            if ino < ROOT_INO:
                continue  # burned inodes
            self.report.inodes[ino] = din
            self.check_pointers(ino, din)

    def check_pointers(self, ino: int, din: Dinode) -> None:
        blocks = (din.size + self.geo.block_size - 1) // self.geo.block_size
        for lblk in range(min(blocks, self.geo.NDADDR)):
            daddr = din.direct[lblk]
            if daddr:
                self.claim(ino, daddr, self.block_frags(din, lblk))
        if din.sindirect:
            self.claim_indirect(ino, din.sindirect, depth=1)
        if din.dindirect:
            self.claim_indirect(ino, din.dindirect, depth=2)

    def block_frags(self, din: Dinode, lblk: int) -> int:
        if din.ftype is FileType.DIRECTORY:
            return self.geo.frags_per_block
        size = din.size
        last = (size - 1) // self.geo.block_size if size else 0
        if (lblk < last or lblk >= self.geo.NDADDR
                or size > self.geo.NDADDR * self.geo.block_size):
            return self.geo.frags_per_block
        tail = size - lblk * self.geo.block_size
        return max(1, (tail + self.geo.frag_size - 1) // self.geo.frag_size)

    def claim(self, ino: int, daddr: int, frags: int) -> None:
        for fragment in range(daddr, daddr + frags):
            if not self.valid_data_frag(fragment):
                self.report.errors.append(
                    f"inode {ino} points outside the data area "
                    f"(daddr {fragment})")
                return
            owner = self.claims.get(fragment)
            if owner is not None and owner != ino:
                self.report.errors.append(
                    f"fragment {fragment} claimed by both inode {owner} "
                    f"and inode {ino} (rule 2 violated)")
            else:
                self.claims[fragment] = ino

    def claim_indirect(self, ino: int, daddr: int, depth: int) -> None:
        if not self.valid_data_frag(daddr):
            self.report.errors.append(
                f"inode {ino} indirect pointer outside data area ({daddr})")
            return
        self.claim(ino, daddr, self.geo.frags_per_block)
        raw = self.read_frags(daddr, self.geo.frags_per_block)
        for pointer in struct.unpack(f"<{self.geo.nindir}I", raw):
            if not pointer:
                continue
            if depth > 1:
                self.claim_indirect(ino, pointer, depth - 1)
            else:
                self.claim(ino, pointer, self.geo.frags_per_block)

    def valid_data_frag(self, daddr: int) -> bool:
        try:
            self.geo.data_index(daddr)
            return True
        except ValueError:
            return False

    # -- phase 2: directory structure ----------------------------------------
    def scan_directories(self) -> None:
        for ino, din in self.report.inodes.items():
            if din.ftype is not FileType.DIRECTORY:
                continue
            self.check_directory(ino, din)

    def check_directory(self, ino: int, din: Dinode) -> None:
        seen_dot = seen_dotdot = False
        blocks = (din.size + self.geo.block_size - 1) // self.geo.block_size
        for lblk in range(min(blocks, self.geo.NDADDR)):
            daddr = din.direct[lblk]
            if not daddr:
                self.report.errors.append(
                    f"directory {ino} has a hole at block {lblk}")
                continue
            if not self.valid_data_frag(daddr):
                continue  # already reported by claim()
            raw = self.read_frags(daddr, self.geo.frags_per_block)
            try:
                entries = list(directory.iter_entries(raw))
            except directory.CorruptDirectory as exc:
                self.report.errors.append(
                    f"directory {ino} block {lblk} corrupt: {exc}")
                continue
            for entry in entries:
                if not entry.live:
                    continue
                if entry.name == ".":
                    seen_dot = True
                    if entry.ino != ino:
                        self.report.errors.append(
                            f"directory {ino}: '.' points to {entry.ino}")
                    continue
                if entry.name == "..":
                    seen_dotdot = True
                    self.note_reference(entry.ino, ino, "..",
                                        count_link=True)
                    continue
                self.note_reference(entry.ino, ino, entry.name,
                                    count_link=True)
        if din.size and not (seen_dot and seen_dotdot):
            self.report.errors.append(
                f"directory {ino} missing '.' or '..'")

    def note_reference(self, target: int, dir_ino: int, name: str,
                       count_link: bool) -> None:
        if not (0 <= target < self.geo.total_inodes):
            self.report.errors.append(
                f"directory {dir_ino} entry {name!r} points to out-of-range "
                f"inode {target}")
            return
        if target not in self.report.inodes:
            self.report.errors.append(
                f"directory {dir_ino} entry {name!r} points to unallocated "
                f"inode {target} (rule 3 violated)")
            return
        self.report.references.setdefault(target, []).append((dir_ino, name))

    # -- phase 3: link counts -------------------------------------------------
    def check_links(self) -> None:
        for ino, din in self.report.inodes.items():
            if ino != ROOT_INO and not self.report.references.get(ino):
                self.report.warnings.append(
                    f"inode {ino} allocated but unreferenced (orphan; "
                    f"fsck reclaims)")
                continue
            refs = len(self.report.references.get(ino, []))
            if din.ftype is FileType.DIRECTORY:
                refs += 1  # its own '.'
            if din.nlink < refs:
                self.report.warnings.append(
                    f"inode {ino} link count {din.nlink} below actual "
                    f"references {refs} (fsck repairs)")
            elif din.nlink > refs:
                self.report.warnings.append(
                    f"inode {ino} link count {din.nlink} above actual "
                    f"references {refs} (fsck repairs)")

    # -- phase 4: bitmaps -------------------------------------------------------
    def check_bitmaps(self) -> None:
        for cg in range(self.geo.ncg):
            raw = bytearray(self.read_frags(self.geo.cg_base(cg),
                                            self.geo.frags_per_block))
            view = CgView(raw, self.geo)
            if view.magic != CG_MAGIC:
                self.report.errors.append(f"cylinder group {cg} bad magic")
                continue
            self.check_frag_bitmap(cg, view)
            self.check_inode_bitmap(cg, view)

    def check_frag_bitmap(self, cg: int, view: CgView) -> None:
        base = self.geo.cg_data_start(cg)
        for index in range(self.geo.dfrags_per_cg):
            daddr = base + index
            used = view.frag_used(index)
            claimed = daddr in self.claims
            if claimed and not used:
                self.report.warnings.append(
                    f"fragment {daddr} in use by inode {self.claims[daddr]} "
                    f"but marked free (fsck repairs)")
            elif used and not claimed:
                self.report.warnings.append(
                    f"fragment {daddr} marked used but unreferenced (leak)")

    def check_inode_bitmap(self, cg: int, view: CgView) -> None:
        for index in range(self.geo.ipg):
            ino = cg * self.geo.ipg + index
            if ino < ROOT_INO:
                continue
            used = view.inode_used(index)
            allocated = ino in self.report.inodes
            if allocated and not used:
                self.report.warnings.append(
                    f"inode {ino} allocated but bitmap says free "
                    f"(fsck repairs)")
            elif used and not allocated and ino != ROOT_INO:
                self.report.warnings.append(
                    f"inode {ino} bitmap used but dinode free (leak)")


def repair(image: SectorStore,
           geometry: FSGeometry | None = None) -> FsckReport:
    """Repair an image in place (warnings only); returns the re-audit.

    Implements classic fsck's mechanical fixes for the inconsistencies the
    paper's safe schemes deliberately allow: link counts are rewritten to
    the observed reference counts, referenced-but-free bitmap bits are
    re-marked, unreferenced used bits are released, and orphaned inodes are
    cleared with their blocks returned to the free pool.  Images with true
    integrity *errors* are not repairable; callers should check
    :func:`fsck` first.
    """
    geometry = geometry or FSGeometry()
    report = fsck(image, geometry)
    geo = Superblock.unpack(image.read(
        geometry.superblock_daddr * (geometry.frag_size
                                     // image.geometry.sector_size),
        geometry.frag_size // image.geometry.sector_size)).geometry
    spf = geo.frag_size // image.geometry.sector_size
    checker = _Checker(image, geo)
    checker.scan_inodes()
    checker.scan_directories()

    # orphan detection cascades: clearing an unreferenced directory removes
    # its entries, which can orphan its children (and drops the '..'
    # reference it contributed to its parent's link count)
    orphans: set[int] = set()
    changed = True
    while changed:
        changed = False
        for ino in checker.report.inodes:
            if ino == ROOT_INO or ino in orphans:
                continue
            live_refs = [dir_ino for dir_ino, _name
                         in checker.report.references.get(ino, [])
                         if dir_ino not in orphans]
            if not live_refs:
                orphans.add(ino)
                changed = True

    def write_inode(ino: int, din: Dinode) -> None:
        daddr = geo.inode_block_daddr(ino)
        block = bytearray(image.read(daddr * spf,
                                     geo.frags_per_block * spf))
        at = geo.inode_offset_in_block(ino)
        block[at:at + 128] = din.pack()
        image.write(daddr * spf, bytes(block))

    # fix link counts (counting only references that survive the orphan
    # sweep); clear orphans
    for ino, din in checker.report.inodes.items():
        if ino in orphans:
            write_inode(ino, Dinode())
            continue
        refs = sum(1 for dir_ino, _name
                   in checker.report.references.get(ino, [])
                   if dir_ino not in orphans)
        if din.ftype is FileType.DIRECTORY:
            refs += 1
        if din.nlink != refs:
            din.nlink = refs
            write_inode(ino, din)

    # rebuild the bitmaps from the surviving (non-orphan) claims
    claims = {daddr for daddr, owner in checker.claims.items()
              if owner not in orphans}
    for cg in range(geo.ncg):
        raw = bytearray(image.read(geo.cg_base(cg) * spf,
                                   geo.frags_per_block * spf))
        view = CgView(raw, geo)
        base = geo.cg_data_start(cg)
        free_frags = free_inodes = 0
        for index in range(geo.dfrags_per_cg):
            wanted = (base + index) in claims
            if view.frag_used(index) != wanted:
                view.set_frags(index, 1, wanted)
            free_frags += 0 if wanted else 1
        for index in range(geo.ipg):
            ino = cg * geo.ipg + index
            wanted = (ino < ROOT_INO and cg == 0) or (
                ino in checker.report.inodes and ino not in orphans)
            if view.inode_used(index) != wanted:
                view.set_inode(index, wanted)
            free_inodes += 0 if wanted else 1
        view.free_frags = free_frags
        view.free_inodes = free_inodes
        image.write(geo.cg_base(cg) * spf, bytes(raw))

    return fsck(image, geometry)


def fsck(image: SectorStore,
         geometry: FSGeometry | None = None) -> FsckReport:
    """Audit *image*; returns the :class:`FsckReport`."""
    geometry = geometry or FSGeometry()
    spf = geometry.frag_size // image.geometry.sector_size
    try:
        superblock = Superblock.unpack(
            image.read(geometry.superblock_daddr * spf, spf))
    except ValueError as exc:
        report = FsckReport()
        report.errors.append(f"superblock unreadable: {exc}")
        return report
    checker = _Checker(image, superblock.geometry)
    checker.scan_inodes()
    if ROOT_INO not in checker.report.inodes:
        checker.report.errors.append("root inode missing")
        return checker.report
    checker.scan_directories()
    checker.check_links()
    checker.check_bitmaps()
    return checker.report
