"""Synthesis-vs-replay equivalence: the proof behind ``--synthesize``.

The media write-log pipeline claims the crash image synthesized for any
instant is *byte-identical* to the one obtained by replaying the whole
workload prefix and cutting the power.  These tests hold that claim down
across every media-resident scheme, with and without fault injection, at
start/complete boundaries AND mid-transfer partial-prefix instants:

* image digests match point for point (:meth:`SectorStore.digest`);
* fsck findings, violation sets, and the whole
  :class:`~repro.integrity.findings.ExplorationReport` finding list match
  between ``explore(synthesize=True)`` and the replay oracle.

NVRAM is excluded by design: its crash survivors live in battery-backed
memory, so the explorer falls back to replay for it (covered in
``test_explorer.py``).
"""

import pytest

from repro.harness.recording import record_run
from repro.integrity.crash import crash_image
from repro.integrity.explorer import (
    build_machine,
    build_workload,
    enumerate_crash_points,
    explore,
)
from repro.integrity.medialog import ImageSynthesizer, synthesize_crash_image

#: every registered scheme whose crash state lives entirely on the
#: platters (journal included: its log region is just more media sectors)
from repro.ordering.registry import REGISTRY
MEDIA_SCHEMES = [slug for slug, info in REGISTRY.items()
                 if getattr(info.cls, "apply_to_image", None) is None]
FAULTS = [None, "transient"]


def _record(scheme, fault_profile, ops=8):
    machine = build_machine(scheme, fault_profile=fault_profile,
                            fault_seed=3)
    recorded = record_run(machine,
                          build_workload(machine, "microbench", 0, ops),
                          capture_media=True)
    return machine, recorded


def _sample(points, budget=12):
    """A deterministic spread over the enumeration, partials included."""
    if len(points) <= budget:
        return points
    step = len(points) / budget
    picked = [points[int(i * step)] for i in range(budget)]
    partials = [p for p in points if "sectors" in p.label]
    if partials and not any("sectors" in p.label for p in picked):
        picked[-1] = partials[len(partials) // 2]
    return sorted(picked, key=lambda p: p.time)


@pytest.mark.parametrize("fault_profile", FAULTS)
@pytest.mark.parametrize("scheme", MEDIA_SCHEMES)
class TestImagesByteIdentical:
    def test_digest_matches_replay_at_sampled_instants(self, scheme,
                                                       fault_profile):
        _machine, recorded = _record(scheme, fault_profile)
        points = enumerate_crash_points(recorded, samples_per_write=2,
                                        max_points=None)
        sampled = _sample(points)
        assert any("sectors" in p.label for p in sampled), \
            "sample must include mid-transfer partial prefixes"
        synthesizer = ImageSynthesizer(recorded.base_image,
                                       recorded.media_log)
        for point in sampled:
            replayed = build_machine(scheme, fault_profile=fault_profile,
                                     fault_seed=3)
            workload = build_workload(replayed, "microbench", 0, 8)
            replayed.engine.process(workload, name="victim")
            replayed.engine.run_to(point.time, max_events=20_000_000)
            oracle = crash_image(replayed)
            synthesized = synthesizer.image_at(point.time)
            assert synthesized.digest() == oracle.digest(), \
                (f"{scheme}/{fault_profile or 'none'}: image diverged at "
                 f"point #{point.index} t={point.time:.6f} ({point.label})")


@pytest.mark.parametrize("fault_profile", FAULTS)
@pytest.mark.parametrize("scheme", MEDIA_SCHEMES)
class TestFindingsIdentical:
    def test_reports_match_replay_oracle(self, scheme, fault_profile):
        kwargs = dict(workload="microbench", seed=0, ops=8, jobs=1,
                      max_points=16, fault_profile=fault_profile,
                      fault_seed=3)
        synth = explore(scheme, synthesize=True, **kwargs)
        oracle = explore(scheme, synthesize=False, **kwargs)
        assert synth.mode == "synthesize" and synth.replays == 0
        assert oracle.mode == "replay"
        assert synth.findings == oracle.findings
        assert synth.violation_counts == oracle.violation_counts
        assert synth.clean == oracle.clean


class TestOneShotSynthesis:
    def test_matches_incremental_synthesizer(self):
        _machine, recorded = _record("conventional", None)
        points = enumerate_crash_points(recorded, samples_per_write=2,
                                        max_points=None)
        incremental = ImageSynthesizer(recorded.base_image,
                                       recorded.media_log)
        for point in _sample(points, budget=6):
            one_shot = synthesize_crash_image(recorded.base_image,
                                              recorded.media_log, point.time)
            assert one_shot.digest() == \
                incremental.image_at(point.time).digest()

    def test_transient_prefix_is_revoked_at_completion(self):
        # a transient window's sectors are visible under the head
        # mid-transfer but must vanish from the synthesized image once the
        # window retires (durable == 0)
        _machine, recorded = _record("noorder", "transient", ops=16)
        log = recorded.media_log
        transient = [e for e in log.entries
                     if e.durable == 0 and len(e.data) >= log.sector_size]
        assert transient, "transient profile must doom at least one write"
        entry = transient[0]
        mid = entry.transfer_start + 1.5 * entry.sector_period
        if entry.sectors_in_flight_by(mid, log.sector_size) == 0:
            pytest.skip("window too short for a mid-transfer prefix")
        during = synthesize_crash_image(recorded.base_image, log, mid)
        after = synthesize_crash_image(recorded.base_image, log, entry.end)
        sector = during.read(entry.lbn, 1)
        assert sector == entry.data[:log.sector_size]
        assert after.read(entry.lbn, 1) != sector or \
            recorded.base_image.read(entry.lbn, 1) == sector
