"""Model-based testing: the simulated FS against a dictionary oracle.

A random operation sequence is applied both to the real file system and to
a trivially-correct in-memory model; afterwards (and after a sync + cold
remount-style reread) every path and byte must agree.  This catches whole
classes of bookkeeping bugs (lost updates, stale buffers, allocator
crossings) that targeted tests miss.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.fs import FsError
from tests.conftest import make_machine, run_user


class Oracle:
    """The reference model: files as bytes, dirs as sets."""

    def __init__(self):
        self.files: dict[str, bytes] = {}
        self.dirs: set[str] = {"/"}

    def parent_exists(self, path):
        parent = path.rsplit("/", 1)[0] or "/"
        return parent in self.dirs

    def exists(self, path):
        return path in self.files or path in self.dirs


def apply_ops(machine, oracle, seed, operations):
    rng = random.Random(seed)

    def body():
        for step in range(operations):
            roll = rng.random()
            if roll < 0.40:  # create/overwrite file
                home = rng.choice(sorted(oracle.dirs))
                path = f"{home.rstrip('/')}/f{step}"
                data = bytes([step % 251]) * rng.choice([100, 1024, 5000,
                                                         12000])
                if not oracle.exists(path):
                    yield from machine.fs.write_file(path, data)
                    oracle.files[path] = data
            elif roll < 0.55 and oracle.files:  # append
                path = rng.choice(sorted(oracle.files))
                extra = b"+" * rng.choice([10, 900, 3000])
                handle = yield from machine.fs.open(path)
                handle.offset = len(oracle.files[path])
                yield from machine.fs.write(handle, extra)
                yield from machine.fs.close(handle)
                oracle.files[path] += extra
            elif roll < 0.70 and oracle.files:  # unlink
                path = rng.choice(sorted(oracle.files))
                yield from machine.fs.unlink(path)
                del oracle.files[path]
            elif roll < 0.80 and oracle.files:  # rename
                old = rng.choice(sorted(oracle.files))
                new = f"/r{step}"
                if not oracle.exists(new):
                    yield from machine.fs.rename(old, new)
                    oracle.files[new] = oracle.files.pop(old)
            elif roll < 0.90 and len(oracle.dirs) < 6:  # mkdir
                path = f"/d{step}"
                if not oracle.exists(path):
                    yield from machine.fs.mkdir(path)
                    oracle.dirs.add(path)
            elif oracle.files:  # truncate + rewrite
                path = rng.choice(sorted(oracle.files))
                yield from machine.fs.truncate(path)
                handle = yield from machine.fs.open(path)
                yield from machine.fs.write(handle, b"T" * 64)
                yield from machine.fs.close(handle)
                oracle.files[path] = b"T" * 64
        yield from machine.fs.sync()

    run_user(machine, body(), max_events=50_000_000)


def verify_against_oracle(machine, oracle):
    def body():
        for directory in sorted(oracle.dirs):
            names = yield from machine.fs.readdir(directory)
            expected = set()
            prefix = directory.rstrip("/")
            for path in list(oracle.files) + sorted(oracle.dirs - {"/"}):
                parent, _, name = path.rpartition("/")
                if (parent or "/") == (prefix or "/"):
                    expected.add(name)
            assert set(names) == expected, (directory, names, expected)
        for path, data in sorted(oracle.files.items()):
            actual = yield from machine.fs.read_file(path)
            assert actual == data, (path, len(actual), len(data))
        return True

    assert run_user(machine, body(), max_events=50_000_000)


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 10_000))
@pytest.mark.parametrize("scheme", ["noorder", "conventional", "flag",
                                    "chains", "softupdates"])
def test_fs_matches_oracle(scheme, seed):
    machine = make_machine(scheme, cache_bytes=3 * 1024 * 1024)
    oracle = Oracle()
    apply_ops(machine, oracle, seed, operations=30)
    verify_against_oracle(machine, oracle)
    # and again from a cold cache: the on-disk bytes alone must agree
    machine.drop_caches()
    verify_against_oracle(machine, oracle)
