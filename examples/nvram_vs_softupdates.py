#!/usr/bin/env python3
"""Section 7's proposed comparison: soft updates vs NVRAM-backed metadata.

Runs a burst of metadata-heavy work under both schemes, crashes at the same
instant, and contrasts (a) performance, (b) what survived the crash.

Run:  python examples/nvram_vs_softupdates.py
"""

from repro.costs import CostModel
from repro.integrity import crash_image, fsck
from repro.machine import Machine, MachineConfig
from repro.ordering import NvramScheme, SoftUpdatesScheme


def build(scheme):
    machine = Machine(MachineConfig(scheme=scheme, costs=CostModel(),
                                    cache_bytes=8 * 1024 * 1024))
    machine.format()
    return machine


def burst(machine, files=40):
    def body():
        yield from machine.fs.mkdir("/work")
        for index in range(files):
            yield from machine.fs.write_file(f"/work/f{index}",
                                             b"#" * 2048)
    return body()


def main() -> None:
    for label, scheme in [("Soft Updates", SoftUpdatesScheme()),
                          ("NVRAM", NvramScheme())]:
        machine = build(scheme)
        process = machine.spawn(burst(machine), name="burst")
        machine.run(process)
        elapsed = process.finished_at - process.started_at
        # crash right as the burst finishes -- before any flushing
        report = fsck(crash_image(machine))
        visible = sum(1 for refs in report.references.values()
                      for _d, name in refs if name.startswith("f"))
        print(f"{label:13s}: burst took {elapsed:6.3f} simulated s, "
              f"{machine.driver.requests_issued:3d} disk requests so far; "
              f"after an instant crash {visible:2d}/40 files survive "
              f"({len(report.errors)} integrity errors)")

    print()
    print("Both are crash-consistent; NVRAM additionally keeps the very")
    print("latest metadata (at the price of battery-backed hardware), while")
    print("soft updates trades a bounded window of recent work for running")
    print("on any plain disk.")


if __name__ == "__main__":
    main()
