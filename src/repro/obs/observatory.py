"""The run ledger: every harness invocation leaves a structured record.

``BENCH_perf.json`` tracks benchmark *sessions*; nothing tracked the other
harness entry points (``trace``, ``faults``, ``explore``, the headline
``bench`` comparison, ``regress``), so long sweeps ran as black boxes and
cross-invocation questions ("what ran on this host last week, under which
kernel, how fast?") required archaeology.  The ledger is the closed-loop
answer: one JSON object per line appended to ``results/ledger.jsonl`` --
subcommand, configuration, wall/sim time, throughput, an obs-snapshot
digest when observability was on, and host facts (CPU count, numpy
availability, platform) so records from different machines are never
conflated.

Appends are concurrency-safe: each record is a single ``os.write`` to an
``O_APPEND`` descriptor, so grid cells (or whole sweeps) appending from
forked workers interleave per *line*, never per byte
(``tests/obs/test_observatory.py`` hammers this from a fork pool).

``REPRO_LEDGER`` overrides the path; ``REPRO_LEDGER=off`` disables the
ledger entirely (useful for throwaway runs).
"""

from __future__ import annotations

import hashlib
import importlib.util
import json
import os
import platform
import time
from pathlib import Path
from typing import Optional

__all__ = ["append_ledger", "host_facts", "ledger_path", "read_ledger",
           "snapshot_digest"]

#: default ledger location, relative to the invocation cwd (gitignored)
DEFAULT_LEDGER = Path("results") / "ledger.jsonl"

#: values of ``REPRO_LEDGER`` that disable the ledger
_OFF = {"off", "none", "0", ""}

#: cached numpy availability (find_spec walks sys.path; do it once)
_NUMPY_AVAILABLE: Optional[bool] = None


def _numpy_available() -> bool:
    global _NUMPY_AVAILABLE
    if _NUMPY_AVAILABLE is None:
        _NUMPY_AVAILABLE = importlib.util.find_spec("numpy") is not None
    return _NUMPY_AVAILABLE


def host_facts() -> dict:
    """Facts that stratify performance records across machines.

    The regression gate refuses to compare cells across differing strata
    (a 4-core runner against a 1-core container, a numpy-vectorized fast
    kernel against the fallback), so these are stamped into every ledger
    record and every perf-trajectory session at append time.
    """
    return {
        "platform": platform.system().lower() or "unknown",
        "python": platform.python_version(),
        "cpus": os.cpu_count() or 1,
        "numpy": _numpy_available(),
    }


def snapshot_digest(snapshot: dict) -> str:
    """Short stable digest of an ``obs.snapshot()`` mapping.

    Two runs with identical metrics digest identically whatever the dict
    order, so the ledger can say "same observed behaviour" in 12 hex chars
    without embedding hundreds of metrics per line.
    """
    canon = json.dumps(
        {str(k): snapshot[k] for k in sorted(snapshot, key=str)},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode()).hexdigest()[:12]


def ledger_path() -> Optional[Path]:
    """Resolved ledger path, or None when ``REPRO_LEDGER`` disables it."""
    env = os.environ.get("REPRO_LEDGER")
    if env is None:
        return DEFAULT_LEDGER
    if env.strip().lower() in _OFF:
        return None
    return Path(env)


def append_ledger(cmd: str, payload: Optional[dict] = None,
                  path: Optional[os.PathLike] = None) -> Optional[dict]:
    """Append one invocation record; returns it (None when disabled).

    The record is ``{"ts", "cmd", "host", **payload}``.  The write is a
    single ``O_APPEND`` syscall, so concurrent appenders (fork-pool grid
    cells, overlapping sweeps) produce whole, parseable lines.
    """
    target = Path(path) if path is not None else ledger_path()
    if target is None:
        return None
    record = {
        "ts": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "cmd": cmd,
        "host": host_facts(),
    }
    if payload:
        record.update(payload)
    line = json.dumps(record, separators=(",", ":"),
                      sort_keys=False, default=str) + "\n"
    target.parent.mkdir(parents=True, exist_ok=True)
    fd = os.open(target, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, line.encode())
    finally:
        os.close(fd)
    return record


def read_ledger(path: Optional[os.PathLike] = None) -> list:
    """Parse the ledger back into record dicts (corrupt lines skipped)."""
    target = Path(path) if path is not None else ledger_path()
    if target is None or not target.exists():
        return []
    records = []
    for line in target.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if isinstance(record, dict):
            records.append(record)
    return records
