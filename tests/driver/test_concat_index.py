"""Bisect-based concatenation must match the dict-scan reference exactly.

``DeviceDriver._concatenate`` extends a chosen request forward and backward
through the ``(lbn, id)`` / ``(end_lbn, id)`` sorted key mirrors instead of
building per-dispatch dicts over every eligible request.  The old dict scan
is kept here as the executable specification; randomized eligible sets --
dense enough to force LBN collisions, end-LBN ties, and forward/backward
interaction -- must produce the identical batch, request by request.
"""

import random

import pytest

from repro.disk import Disk
from repro.driver import DeviceDriver, FlagPolicy, FlagSemantics
from repro.sim import Engine


def reference_concatenate(driver, chosen):
    """The pre-index algorithm, verbatim: dict scans over all eligible."""
    same_kind = {}
    kind = chosen.kind
    for request in driver._eligible.values():
        if request.kind is kind and request is not chosen:
            held = same_kind.get(request.lbn)
            if held is None or request.id < held.id:
                same_kind[request.lbn] = request
    batch = [chosen]
    total = chosen.nsectors
    cursor = chosen.end_lbn
    while total < driver.max_batch_sectors and cursor in same_kind:
        nxt = same_kind.pop(cursor)
        batch.append(nxt)
        total += nxt.nsectors
        cursor = nxt.end_lbn
    by_end = {}
    for request in same_kind.values():
        held = by_end.get(request.end_lbn)
        if held is None or request.id < held.id:
            by_end[request.end_lbn] = request
    cursor = batch[0].lbn
    while total < driver.max_batch_sectors and cursor in by_end:
        prev = by_end.pop(cursor)
        batch.insert(0, prev)
        total += prev.nsectors
        cursor = prev.lbn
    return batch


def populate(seed, nrequests=40, span=60):
    """A driver whose eligible set is *nrequests* random requests packed
    into *span* LBNs -- dense enough that contiguous runs, duplicate start
    LBNs, and end-LBN ties all occur."""
    rng = random.Random(seed)
    engine = Engine()
    driver = DeviceDriver(engine, Disk(engine),
                          FlagPolicy(FlagSemantics.IGNORE))
    for _ in range(nrequests):
        lbn = rng.randrange(span)
        nsectors = rng.choice([1, 2, 2, 4, 8])
        if rng.random() < 0.5:
            request = driver.read(lbn, nsectors)
        else:
            request = driver.write(lbn, b"\x05" * (512 * nsectors))
        # park everything in the eligible index without running the
        # dispatch loop (the engine never advances)
        if request.id not in driver._eligible \
                and driver._write_fifo_ok(request):
            driver._promote(request)
    return driver


class TestConcatenateConformance:
    @pytest.mark.parametrize("seed", range(200))
    def test_matches_dict_scan_reference(self, seed):
        driver = populate(seed)
        rng = random.Random(seed ^ 0xC0FFEE)
        keys = list(driver._eligible)
        for _ in range(min(10, len(keys))):
            chosen = driver._eligible[rng.choice(keys)]
            expected = reference_concatenate(driver, chosen)
            got = driver._concatenate(chosen)
            assert [r.id for r in got] == [r.id for r in expected]

    @pytest.mark.parametrize("seed", range(50))
    def test_matches_under_tiny_batch_cap(self, seed):
        """A small sector cap stops extension mid-run in both directions."""
        driver = populate(seed, nrequests=30, span=30)
        driver.max_batch_sectors = 6
        rng = random.Random(seed ^ 0xBEEF)
        keys = list(driver._eligible)
        for _ in range(min(8, len(keys))):
            chosen = driver._eligible[rng.choice(keys)]
            expected = reference_concatenate(driver, chosen)
            got = driver._concatenate(chosen)
            assert [r.id for r in got] == [r.id for r in expected]
