"""Tests for the syncer daemon: sweeps, mark-then-write, workitems."""

import pytest

from tests.cache.conftest import CacheRig


@pytest.fixture
def rig():
    return CacheRig(syncer=True)


def dirty_one(rig, daddr, value=0x33):
    def body():
        buf = yield from rig.cache.getblk(daddr, 1024)
        buf.data[:] = bytes([value]) * 1024
        rig.cache.bdwrite(buf)

    rig.run(body())


def run_for(rig, seconds):
    rig.engine.run(until=rig.engine.now + seconds, max_events=1_000_000)


def test_dirty_block_flushed_within_mark_write_window(rig):
    dirty_one(rig, 10)
    # 2 sweep passes: marked within 2s, written 1s later, plus I/O time
    run_for(rig, 4.0)
    assert rig.disk.storage.read(20, 2) == b"\x33" * 1024
    assert not rig.cache.peek(10).dirty


def test_mark_then_write_needs_two_wakeups(rig):
    dirty_one(rig, 0)  # region 0, marked on the first sweep that hits it
    run_for(rig, 1.5)  # one wakeup: marked but not yet written
    assert rig.disk.stats.writes == 0
    run_for(rig, 1.1)  # second wakeup: write initiated
    run_for(rig, 0.5)
    assert rig.disk.stats.writes == 1


def test_redirtied_block_flushes_again(rig):
    dirty_one(rig, 10, value=1)
    run_for(rig, 4.0)
    dirty_one(rig, 10, value=2)
    run_for(rig, 4.0)
    assert rig.disk.storage.read(20, 2) == b"\x02" * 1024
    assert rig.disk.stats.writes == 2


def test_nonblocking_workitem_runs_within_interval(rig):
    ran = []
    rig.syncer.add_workitem(lambda: ran.append(rig.engine.now))
    run_for(rig, 1.5)
    assert ran and ran[0] <= 1.0 + 1e-9


def test_blocking_workitem_can_do_io(rig):
    rig.disk.write_now(40, b"\xaa" * 1024)
    seen = []

    def work():
        buf = yield from rig.cache.bread(20, 1024)
        seen.append(bytes(buf.data))
        rig.cache.brelse(buf)

    rig.syncer.add_workitem(work, blocking=True)
    run_for(rig, 2.0)
    assert seen == [b"\xaa" * 1024]


def test_workitem_added_by_workitem_runs_next_wakeup(rig):
    log = []

    def second():
        log.append(("second", rig.syncer.wakeups))

    def first():
        log.append(("first", rig.syncer.wakeups))
        rig.syncer.add_workitem(second)

    rig.syncer.add_workitem(first)
    run_for(rig, 3.5)
    assert log == [("first", 1), ("second", 2)]


def test_busy_buffer_retried_not_dropped(rig):
    eng = rig.engine

    def hold_long():
        buf = yield from rig.cache.getblk(10, 1024)
        buf.data[:] = b"\x66" * 1024
        buf.mark_dirty(eng.now)
        # hold across several sweeps so flush attempts find it busy
        yield eng.timeout(5.0)
        rig.cache.bdwrite(buf)

    eng.process(hold_long())
    run_for(rig, 10.0)
    assert rig.disk.storage.read(20, 2) == b"\x66" * 1024


def test_unflushable_marked_buffer_retried_on_later_wakeup(rig):
    """A marked buffer whose ``start_flush`` returns None stays queued.

    The sweep must keep the buffer on its marked list (not silently drop
    it) so the flush happens on the first wakeup after it becomes
    flushable again -- without waiting a full mark/write cycle.
    """
    eng = rig.engine
    dirty_one(rig, 10)          # region 0: marked by the first sweep
    run_for(rig, 1.5)           # marked, not yet written
    buf = rig.cache.peek(10)
    assert buf.marked and buf.dirty

    held = []

    def hold():
        got = yield from rig.cache.getblk(10, 1024)
        held.append(got)

    rig.run(hold())             # busy: the next sweep cannot flush it
    run_for(rig, 1.1)           # the flush-eligible wakeup comes and goes
    assert rig.disk.stats.writes_started == 0
    assert rig.syncer.writes_started == 0
    assert buf.marked and buf.dirty  # retried, not dropped

    rig.cache.brelse(held[0])
    run_for(rig, 1.1)           # very next wakeup: flush goes out
    assert rig.syncer.writes_started == 1
    run_for(rig, 0.5)
    assert not buf.dirty
    assert rig.disk.storage.read(20, 2) == b"\x33" * 1024


def test_invalid_sweep_passes_rejected():
    with pytest.raises(ValueError):
        CacheRig(syncer=True).syncer.__class__(
            CacheRig().engine, CacheRig().cache, sweep_passes=0)
