"""The online ordering monitor: observer-effect-free, chainable, correct.

Three contracts:

1. **Zero simulation impact** (the ``tests/obs/test_equivalence.py``
   discipline): a monitored recording run and a bare one are the *same
   simulation* -- identical write windows, event counts, quiescence time,
   and driver trace, byte for byte.  The monitor only reads commit
   payloads and mutates its own shadow image.
2. **Chaining**: ``attach`` composes with an already-installed
   ``on_write_commit`` observer (the media write-log) instead of
   displacing it, and ``detach`` restores it.
3. **Controls**: ``noorder`` -- which declares no ordering -- must
   produce rule hits (the negative control proves the monitor is not
   vacuously silent), all *within* its declaration; the five guaranteed
   schemes stay violation-free across seeds; NVRAM is refused (its crash
   state is not media-resident, so a media-stream monitor would lie).
"""

import hashlib

import pytest

from repro.harness.recording import record_run
from repro.integrity.explorer import build_machine, build_workload, explore
from repro.integrity.medialog import MediaLog
from repro.integrity.monitor import OrderingMonitor, monitor_supported
from tests.conftest import run_user

#: every scheme whose crash state lives entirely on the platters
MEDIA_SCHEMES = ["noorder", "conventional", "flag", "chains",
                 "softupdates", "journal"]
SAFE_SCHEMES = ["conventional", "flag", "chains", "softupdates", "journal"]


def make_monitor(machine) -> OrderingMonitor:
    return OrderingMonitor(machine.config.fs_geometry,
                           machine.scheme.crash_guarantees)


def driver_trace_digest(machine) -> str:
    """A byte-exact digest of the completed request trace."""
    h = hashlib.sha256()
    for request in machine.driver.trace:
        h.update(repr((request.id, request.kind.value, request.lbn,
                       request.nsectors, request.flag,
                       sorted(request.depends_on), request.issuer,
                       request.issue_time, request.dispatch_time,
                       request.complete_time,
                       None if request.data is None
                       else hashlib.sha256(request.data).hexdigest()
                       )).encode())
    return h.hexdigest()


class TestObserverEffect:
    @pytest.mark.parametrize("scheme", MEDIA_SCHEMES)
    def test_monitored_run_is_simulation_identical(self, scheme):
        bare_machine = build_machine(scheme)
        bare = record_run(bare_machine,
                          build_workload(bare_machine, "microbench", 0, 12))

        watched_machine = build_machine(scheme)
        watcher = make_monitor(watched_machine)
        watched = record_run(
            watched_machine,
            build_workload(watched_machine, "microbench", 0, 12),
            monitor=watcher)

        # same simulated history, to the last event and timestamp
        assert watched.windows == bare.windows
        assert watched.events_processed == bare.events_processed
        assert watched.quiesce_time == bare.quiesce_time
        assert (driver_trace_digest(watched_machine)
                == driver_trace_digest(bare_machine))
        # and the monitor actually watched the whole stream
        assert watcher.windows_seen == len(watched.windows) > 0

    def test_monitored_run_composes_with_media_capture(self):
        # media log + monitor on one stream: both see every window
        machine = build_machine("conventional")
        watcher = make_monitor(machine)
        recorded = record_run(
            machine, build_workload(machine, "microbench", 0, 12),
            capture_media=True, monitor=watcher)
        assert recorded.media_log is not None
        assert len(recorded.media_log) == watcher.windows_seen
        assert watcher.commits_applied > 0


class TestLifecycle:
    def test_attach_chains_behind_existing_observer(self):
        machine = build_machine("conventional")
        log = MediaLog(machine.disk.geometry.sector_size)
        log.attach(machine.disk)
        watcher = make_monitor(machine)
        watcher.attach(machine.disk)
        assert machine.disk.on_write_commit == watcher._on_commit

        def touch(fs):
            yield from fs.write_file("/f", b"x" * 4096)
            yield from fs.sync()

        run_user(machine, touch(machine.fs), name="touch")
        # the chained log saw exactly what the monitor saw
        assert len(log) == watcher.windows_seen > 0
        watcher.detach(machine.disk)
        assert machine.disk.on_write_commit == log.record

    def test_double_attach_refused(self):
        machine = build_machine("conventional")
        watcher = make_monitor(machine)
        watcher.attach(machine.disk)
        with pytest.raises(RuntimeError):
            watcher.attach(machine.disk)

    def test_supported_only_for_media_resident_schemes(self):
        for scheme in MEDIA_SCHEMES:
            assert monitor_supported(build_machine(scheme)), scheme
        assert not monitor_supported(build_machine("nvram"))


class TestControls:
    def test_noorder_negative_control_fires(self):
        # No Order declares no ordering: the monitor MUST see rule hits
        # (else it is vacuously silent), all inside the declaration
        report = explore("noorder", "microbench", seed=0, jobs=1,
                         max_points=8, monitor=True)
        assert report.monitor == "online"
        assert report.monitor_violations, "monitor must fire for noorder"
        assert all(v.expected for v in report.monitor_violations)
        assert not report.monitor_unexpected
        assert report.exit_status == 0

    @pytest.mark.parametrize("scheme", SAFE_SCHEMES)
    def test_guaranteed_schemes_stay_clean_across_seeds(self, scheme):
        for seed in (0, 7):
            report = explore(scheme, "microbench", seed=seed, jobs=1,
                             max_points=4, monitor=True)
            assert report.monitor == "online"
            assert report.monitor_windows > 0
            assert report.monitor_violations == (), (
                scheme, seed,
                [v.format() for v in report.monitor_violations])

    def test_nvram_reported_unsupported_not_silently_off(self):
        report = explore("nvram", "microbench", seed=0, jobs=1,
                         max_points=4, monitor=True)
        assert report.monitor == "unsupported"
        assert report.monitor_violations == ()

    def test_monitor_off_by_default(self):
        report = explore("conventional", "microbench", seed=0, jobs=1,
                         max_points=4)
        assert report.monitor == "off"
        assert report.monitor_windows == 0


@pytest.mark.slow
class TestControlsFullSweeps:
    """Acceptance-grade: safe schemes clean under churn, across seeds."""

    @pytest.mark.parametrize("scheme", SAFE_SCHEMES)
    def test_guaranteed_schemes_clean_under_churn(self, scheme):
        for seed in (0, 7, 23):
            report = explore(scheme, "churn", seed=seed, jobs=1,
                             max_points=24, monitor=True)
            assert report.monitor_violations == (), (
                scheme, seed,
                [v.format() for v in report.monitor_violations])

    def test_noorder_fires_under_churn_across_seeds(self):
        for seed in (0, 7, 23):
            report = explore("noorder", "churn", seed=seed, jobs=1,
                             max_points=24, monitor=True)
            assert report.monitor_violations
            assert not report.monitor_unexpected
