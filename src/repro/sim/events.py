"""One-shot events for the simulation kernel.

An :class:`Event` is the unit of coordination: processes yield events and are
resumed when the event *fires*.  Firing is split into two steps so that event
processing order is deterministic and independent of who calls
:meth:`Event.succeed`:

1. ``succeed()`` / ``fail()`` marks the event triggered and enqueues it on the
   engine's kernel at the current simulated time;
2. the kernel pops it and runs its callbacks (resuming waiting processes).

Events talk to the kernel (:mod:`repro.sim.kernel`) directly rather than
through the engine: ``wake``/``schedule`` are the hottest calls in the
simulator, and the kernel is the component that owns the queue.
"""

from __future__ import annotations

from typing import Any, Callable, Optional


class Event:
    """A one-shot occurrence that processes can wait on.

    Events are created through :meth:`repro.sim.engine.Engine.event` (or the
    convenience constructors on the primitives).  An event may succeed with a
    value or fail with an exception; either way it fires exactly once.
    """

    __slots__ = ("engine", "callbacks", "_value", "_exc", "_triggered", "_processed")

    def __init__(self, engine: "Engine") -> None:  # noqa: F821
        self.engine = engine
        #: callables invoked with this event when it is processed
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._triggered = False
        self._processed = False

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once ``succeed``/``fail`` has been called."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._triggered and self._exc is None

    @property
    def value(self) -> Any:
        """The success value (or the failure exception)."""
        return self._value if self._exc is None else self._exc

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Mark the event successful; waiting processes resume with *value*."""
        if self._triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._triggered = True
        self._value = value
        self.engine._kernel.wake(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Mark the event failed; waiting processes see *exc* thrown into them."""
        if self._triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._exc = exc
        self.engine._kernel.wake(self)
        return self

    # -- engine internals ----------------------------------------------
    def _process(self) -> None:
        """Run callbacks.  Called by the engine only."""
        self._processed = True
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)

    def _add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self._processed:
            # Late subscription to an already-processed event: deliver
            # through the kernel's deferred queue -- before the next
            # dispatch, or at run-loop exit -- so the caller never
            # re-enters synchronously and the callback can never be
            # dropped by a run that stops before a wrapper event fires.
            self.engine._kernel.defer(callback, self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:
        state = "processed" if self._processed else (
            "triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires automatically after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: float, value: Any = None) -> None:  # noqa: F821
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(engine)
        self.delay = delay
        self._triggered = True
        self._value = value
        engine._kernel.schedule(self, delay)
