"""The persistent sector store: what the platters hold.

This is the ground truth that survives a simulated crash.  Two
implementations sit behind one API:

* :class:`SectorStore` -- the reference: a sparse map from sector number
  to ``bytes``; unwritten sectors read back as zeros.  Per-sector dict
  churn, but trivially correct -- it stays registered as the equivalence
  oracle.
* :class:`FlatSectorStore` -- the default: one contiguous ``bytearray``
  grown lazily toward the disk's high-watermark, plus a per-sector
  occupancy byte map.  ``read``/``write``/``write_partial``/``snapshot``
  are single slice or copy operations (C-speed memcpy, no per-sector
  objects), and ``digest`` vectorizes over the whole image through a
  zero-copy numpy view when numpy is importable.

Both stores are *content*-equivalent by construction: identical reads,
identical ``digest()``, identical instrumentation counters
(``tests/disk/test_store_equivalence.py`` drives random interleavings
against the oracle).  Crash-consistency checking (``repro.integrity``)
operates directly on a snapshot of this store.

Selection mirrors the event-loop kernel knob: an explicit
``MachineConfig.store`` wins, then the ``REPRO_STORE`` environment
variable, then :data:`DEFAULT_STORE`.  ``REPRO_STORE_FALLBACK=1`` forces
the flat store onto its pure-python ``bytearray`` backing even when numpy
is importable (CI's numpy-free leg).
"""

from __future__ import annotations

import hashlib
import os
from typing import Iterator, Optional

from repro.disk.geometry import DiskGeometry

try:  # numpy vectorizes the flat store; the bytearray fallback is complete
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via REPRO_STORE_FALLBACK
    _np = None

#: backing-chunk span, in sectors (2 MB at 512-byte sectors): the flat
#: store allocates one fixed-size chunk per touched 2 MB of the disk, so
#: the raw-disk span (~1 GB) is never allocated eagerly and file systems
#: that scatter writes across distant cylinder groups only pay for the
#: chunks they touch -- never a contiguous high-watermark buffer
GROW_CHUNK_SECTORS = 4096


class SectorStoreBase:
    """Shared surface of the sector-store implementations.

    Subclasses provide ``read``/``write``/``snapshot``/``digest``/
    ``iter_nonzero``/``flat_view``/``load_from`` with identical observable
    behavior; this base holds the geometry bookkeeping and the derived
    operations that are implementation-independent.
    """

    #: registry key (also recorded per benchmark cell / ledger stratum)
    name = "base"

    def __init__(self, geometry: DiskGeometry) -> None:
        self.geometry = geometry
        self._zero = bytes(geometry.sector_size)
        #: total sectors ever written (instrumentation; snapshots inherit
        #: the count so clones report identically to their source)
        self.sectors_written = 0

    def write_partial(self, lbn: int, data: bytes,
                      nsectors_applied: int) -> None:
        """Apply only the first *nsectors_applied* sectors of a write.

        Used by crash injection to model a request interrupted mid-transfer:
        sectors are laid down in LBN order, so a crash leaves a prefix.
        """
        prefix = data[:nsectors_applied * self.geometry.sector_size]
        if prefix:
            self.write(lbn, prefix)

    def _check_range(self, lbn: int, nsectors: int) -> None:
        if nsectors <= 0:
            raise ValueError(f"sector count must be positive, got {nsectors}")
        if lbn < 0 or lbn + nsectors > self.geometry.total_sectors:
            raise ValueError(
                f"sector range [{lbn}, {lbn + nsectors}) outside disk")

    def _check_write(self, data) -> int:
        size = self.geometry.sector_size
        if len(data) % size != 0:
            raise ValueError(
                f"write of {len(data)} bytes is not sector-aligned ({size})")
        return len(data) // size


class SectorStore(SectorStoreBase):
    """Sparse persistent storage addressed by sector (LBN) -- the oracle."""

    name = "dict"

    def __init__(self, geometry: DiskGeometry) -> None:
        super().__init__(geometry)
        self._sectors: dict[int, bytes] = {}

    def read(self, lbn: int, nsectors: int = 1) -> bytes:
        """Read *nsectors* starting at *lbn*; holes read as zeros."""
        self._check_range(lbn, nsectors)
        if nsectors == 1:  # the buffer cache's dominant shape: no join
            return self._sectors.get(lbn, self._zero)
        sectors = self._sectors
        zero = self._zero
        return b"".join(sectors.get(lbn + i, zero) for i in range(nsectors))

    def write(self, lbn: int, data: bytes) -> None:
        """Write *data* (a whole number of sectors) starting at *lbn*."""
        size = self.geometry.sector_size
        nsectors = self._check_write(data)
        self._check_range(lbn, nsectors)
        sectors = self._sectors
        for i in range(nsectors):
            sectors[lbn + i] = bytes(data[i * size:(i + 1) * size])
        self.sectors_written += nsectors

    def snapshot(self) -> "SectorStore":
        """An independent copy (the 'surviving image' for fsck)."""
        clone = SectorStore(self.geometry)
        clone._sectors = dict(self._sectors)
        clone.sectors_written = self.sectors_written
        return clone

    def digest(self) -> str:
        """Content fingerprint of the persistent state (hex).

        Two stores digest equal iff every sector reads back identical --
        all-zero sectors are canonicalized away, so a store that had zeros
        explicitly written equals one that never touched the sector.  The
        synthesis-vs-replay equivalence suite compares images this way,
        and the flat store reproduces the digest bit for bit.
        """
        h = hashlib.sha256()
        zero = self._zero
        sectors = self._sectors
        for lbn in sorted(sectors):
            data = sectors[lbn]
            if data == zero:
                continue
            h.update(lbn.to_bytes(8, "little"))
            h.update(data)
        return h.hexdigest()

    def iter_nonzero(self) -> Iterator[tuple[int, bytes]]:
        """``(lbn, data)`` for non-zero sectors, ascending by LBN."""
        zero = self._zero
        sectors = self._sectors
        for lbn in sorted(sectors):
            data = sectors[lbn]
            if data != zero:
                yield lbn, data

    def flat_view(self, nsectors: int) -> bytes:
        """The first *nsectors* as one contiguous buffer (fsck images)."""
        size = self.geometry.sector_size
        buf = bytearray(nsectors * size)
        for lbn, data in self._sectors.items():
            if lbn < nsectors:
                buf[lbn * size:(lbn + 1) * size] = data
        return bytes(buf)

    def load_from(self, image: SectorStoreBase) -> None:
        """Replace content wholesale with *image*'s (counter untouched).

        ``Machine.adopt_image`` uses this to install an explored crash
        image into the live disk while keeping object identity.
        """
        self._sectors = {lbn: bytes(data)
                         for lbn, data in image.iter_nonzero()}

    def __len__(self) -> int:
        """Number of distinct sectors ever written."""
        return len(self._sectors)


class FlatSectorStore(SectorStoreBase):
    """Chunked flat-buffer storage: every operation is a slice.

    The backing is a sparse map of fixed-span ``bytearray`` chunks
    (:data:`GROW_CHUNK_SECTORS` sectors each), allocated zero-filled the
    first time a write touches their span; reads from unallocated spans
    are holes and return zeros without allocating.  Within a chunk a
    sector write is a single C memcpy -- no per-sector ``bytes`` objects,
    no dict churn, and (unlike one contiguous buffer grown toward the
    high-watermark) no repeated zero-fill/copy traffic when the file
    system scatters writes across distant cylinder groups.

    The hot path deliberately never touches numpy: per-call
    ``frombuffer``/``tobytes`` dispatch costs more than it saves at
    sector granularity.  numpy earns its keep on the *whole-image*
    scans -- ``digest`` vectorizes the non-zero-sector fold through
    zero-copy per-chunk views when :attr:`backend` is ``"numpy"``.

    A parallel occupancy byte map (one byte per sector, grown to the
    written high-watermark) preserves the reference store's "distinct
    sectors ever written" accounting (``__len__``) and gives the scans
    their skip-holes iteration order.
    """

    name = "flat"

    #: True when this interpreter imports numpy (class-level; instances
    #: record their digest/scan backend in :attr:`backend`)
    vectorized = _np is not None

    def __init__(self, geometry: DiskGeometry) -> None:
        super().__init__(geometry)
        self._use_np = (_np is not None
                        and not os.environ.get("REPRO_STORE_FALLBACK"))
        #: "numpy" or "bytearray" -- whether whole-image scans vectorize
        self.backend = "numpy" if self._use_np else "bytearray"
        #: chunk index -> bytearray(GROW_CHUNK_SECTORS * sector_size)
        self._chunks: dict[int, bytearray] = {}
        #: chunk indices whose bytearray is shared with a snapshot (or a
        #: snapshot's source): copy-on-write -- the next write to a shared
        #: chunk copies it first, so ``snapshot`` itself is O(chunks)
        #: pointer copies, matching the reference store's shallow dict copy
        self._shared: set[int] = set()
        self._cap = 0  # sectors covered by the occupancy map
        self._occ = bytearray()

    # -- capacity -------------------------------------------------------
    def _ensure_occ(self, end_sector: int) -> None:
        if end_sector <= self._cap:
            return
        chunk = GROW_CHUNK_SECTORS
        new_cap = max(self._cap * 2,
                      (end_sector + chunk - 1) // chunk * chunk)
        new_cap = min(new_cap, self.geometry.total_sectors)
        new_cap = max(new_cap, end_sector)
        occ = bytearray(new_cap)
        occ[:self._cap] = self._occ
        self._occ = occ
        self._cap = new_cap

    def _writable_chunk(self, index: int) -> bytearray:
        chunks = self._chunks
        chunk = chunks.get(index)
        if chunk is None:
            chunk = chunks[index] = bytearray(
                GROW_CHUNK_SECTORS * self.geometry.sector_size)
        elif index in self._shared:
            chunk = chunks[index] = bytearray(chunk)
            self._shared.discard(index)
        return chunk

    # -- the store API --------------------------------------------------
    def read(self, lbn: int, nsectors: int = 1) -> bytes:
        """Read *nsectors* starting at *lbn*; holes read as zeros."""
        self._check_range(lbn, nsectors)
        size = self.geometry.sector_size
        span = GROW_CHUNK_SECTORS
        index, offset = divmod(lbn, span)
        if offset + nsectors <= span:  # the common shape: one chunk
            chunk = self._chunks.get(index)
            if chunk is None:
                return self._zero if nsectors == 1 else bytes(
                    nsectors * size)
            return bytes(chunk[offset * size:(offset + nsectors) * size])
        parts = []
        remaining = nsectors
        while remaining:
            take = min(span - offset, remaining)
            chunk = self._chunks.get(index)
            parts.append(bytes(take * size) if chunk is None
                         else bytes(chunk[offset * size:
                                          (offset + take) * size]))
            remaining -= take
            index += 1
            offset = 0
        return b"".join(parts)

    def write(self, lbn: int, data: bytes) -> None:
        """Write *data* (a whole number of sectors) starting at *lbn*."""
        nsectors = self._check_write(data)
        self._check_range(lbn, nsectors)
        end = lbn + nsectors
        if end > self._cap:
            self._ensure_occ(end)
        size = self.geometry.sector_size
        span = GROW_CHUNK_SECTORS
        index, offset = divmod(lbn, span)
        if offset + nsectors <= span:  # the common shape: one chunk
            chunk = self._chunks.get(index)
            if chunk is None:
                chunk = self._chunks[index] = bytearray(span * size)
            elif index in self._shared:
                chunk = self._chunks[index] = bytearray(chunk)
                self._shared.discard(index)
            chunk[offset * size:(offset + nsectors) * size] = data
        else:
            done = 0
            remaining = nsectors
            while remaining:
                take = min(span - offset, remaining)
                self._writable_chunk(index)[
                    offset * size:(offset + take) * size] \
                    = data[done * size:(done + take) * size]
                done += take
                remaining -= take
                index += 1
                offset = 0
        if nsectors == 1:
            self._occ[lbn] = 1
        else:
            self._occ[lbn:end] = b"\x01" * nsectors
        self.sectors_written += nsectors

    def snapshot(self) -> "FlatSectorStore":
        """An independent copy, copy-on-write: no chunk bytes move now.

        Every current chunk becomes shared between source and clone;
        whichever side writes a shared chunk first pays the one copy.
        This is what keeps crash-image capture (one snapshot per explored
        point) O(touched chunks), like the reference store's shallow dict
        copy.
        """
        clone = FlatSectorStore(self.geometry)
        clone._use_np = self._use_np
        clone.backend = self.backend
        clone._chunks = dict(self._chunks)
        shared = set(self._chunks)
        self._shared |= shared
        clone._shared = shared
        clone._cap = self._cap
        clone._occ = bytearray(self._occ)
        clone.sectors_written = self.sectors_written
        return clone

    def digest(self) -> str:
        """Bit-identical to the reference store's digest."""
        h = hashlib.sha256()
        size = self.geometry.sector_size
        span = GROW_CHUNK_SECTORS
        if self._use_np:
            cap = self._cap
            for index in sorted(self._chunks):
                base = index * span
                # the occupancy map names the candidate sectors, so the
                # scan touches O(written) rows, never the whole chunk
                occ = _np.frombuffer(self._occ, dtype=_np.uint8,
                                     count=min(span, cap - base),
                                     offset=base)
                rows = _np.flatnonzero(occ)
                if not len(rows):
                    continue
                view = _np.frombuffer(self._chunks[index],
                                      dtype=_np.uint8).reshape(span, size)
                data = view[rows]
                keep = data.any(axis=1)  # explicit zeros canonicalize away
                if not keep.all():
                    rows = rows[keep]
                    data = data[keep]
                    if not len(rows):
                        continue
                # one (lbn || data) record per non-zero sector, hashed in
                # a single update per chunk: lbn as 8-byte little-endian,
                # as the reference writes it
                out = _np.empty((len(rows), 8 + size), dtype=_np.uint8)
                out[:, :8] = ((rows + base).astype("<u8")
                              .view(_np.uint8).reshape(-1, 8))
                out[:, 8:] = data
                h.update(out.data)
            return h.hexdigest()
        for lbn, data in self.iter_nonzero():
            h.update(lbn.to_bytes(8, "little"))
            h.update(data)
        return h.hexdigest()

    def iter_nonzero(self) -> Iterator[tuple[int, bytes]]:
        """``(lbn, data)`` for non-zero sectors, ascending by LBN.

        Deliberately the plain occupancy-scan on both backends: a
        generator holding a numpy ``frombuffer`` view across yields would
        pin a buffer export over arbitrary caller code.
        """
        size = self.geometry.sector_size
        span = GROW_CHUNK_SECTORS
        zero = self._zero
        chunks, occ = self._chunks, self._occ
        lbn = occ.find(1)
        while lbn >= 0:
            chunk = chunks.get(lbn // span)
            if chunk is not None:
                offset = (lbn % span) * size
                data = bytes(chunk[offset:offset + size])
                if data != zero:
                    yield lbn, data
            lbn = occ.find(1, lbn + 1)

    def flat_view(self, nsectors: int):
        """The first *nsectors* as one contiguous buffer (fsck images).

        One zero-filled allocation plus one memcpy per touched chunk --
        never per-sector assembly.  The result is a snapshot, not a live
        view; fsck builds a fresh one per pass.
        """
        size = self.geometry.sector_size
        span = GROW_CHUNK_SECTORS
        buf = bytearray(nsectors * size)
        end = nsectors * size
        for index, chunk in self._chunks.items():
            start = index * span * size
            if start >= end:
                continue
            take = min(end - start, span * size)
            buf[start:start + take] = chunk[:take] if take < span * size \
                else chunk
        return memoryview(buf)

    def load_from(self, image: SectorStoreBase) -> None:
        """Replace content wholesale with *image*'s (counter untouched)."""
        if isinstance(image, FlatSectorStore):
            # share chunks copy-on-write with the source, like snapshot()
            self._chunks = dict(image._chunks)
            shared = set(image._chunks)
            image._shared |= shared
            self._shared = shared
            self._cap = image._cap
            self._occ = bytearray(image._occ)
            return
        self._chunks = {}
        self._shared = set()
        self._occ = bytearray()
        self._cap = 0
        saved = self.sectors_written
        for lbn, data in image.iter_nonzero():
            self.write(lbn, data)
        self.sectors_written = saved

    def __len__(self) -> int:
        """Number of distinct sectors ever written."""
        return self._occ.count(1)


# ----------------------------------------------------------------------
# the store registry (mirrors repro.sim's kernel registry)
# ----------------------------------------------------------------------
#: registered store implementations, by knob name
STORES: dict[str, type[SectorStoreBase]] = {
    SectorStore.name: SectorStore,
    FlatSectorStore.name: FlatSectorStore,
}

#: what a machine gets when nothing picks: the flat store ("dict" stays
#: registered as the conformance oracle)
DEFAULT_STORE = FlatSectorStore.name


def store_name(explicit: Optional[str] = None) -> str:
    """Resolve the store knob: explicit > ``REPRO_STORE`` > default."""
    name = explicit or os.environ.get("REPRO_STORE") or DEFAULT_STORE
    if name not in STORES:
        raise ValueError(
            f"unknown sector store {name!r} (registered: {sorted(STORES)})")
    return name


def resolve_store(geometry: DiskGeometry,
                  explicit: Optional[str] = None) -> SectorStoreBase:
    """Build the selected store implementation for *geometry*."""
    return STORES[store_name(explicit)](geometry)
