"""A single-server CPU resource with per-process time accounting.

The paper's testbed is a 33 MHz i486; every benchmark result has a CPU
component (the dark regions in figures 3/4, the CPU-time columns of tables 1
and 2, and the compile-dominated Andrew phase).  We model the CPU as a FIFO
single server: a process *computes* by holding the CPU for a duration, split
into quanta so concurrent processes interleave rather than monopolise.

Durations are produced by :class:`repro.harness.config.CostModel`; this module
only executes them.
"""

from __future__ import annotations

from typing import Generator

from repro.sim.engine import Engine
from repro.sim.primitives import Lock


class CPU:
    """One processor shared by all simulated processes.

    ``quantum`` bounds how long one process may hold the CPU per grab;
    long computations (e.g. the Andrew compile phase) are sliced so that
    other runnable processes make progress, approximating a time-sharing
    scheduler without implementing preemption.
    """

    def __init__(self, engine: Engine, quantum: float = 0.005) -> None:
        self.engine = engine
        self.quantum = quantum
        self._mutex = Lock(engine)
        #: total busy seconds, for utilisation reporting
        self.busy_time = 0.0
        #: when False, compute() consumes no simulated time (image building)
        self.enabled = True

    def compute(self, seconds: float) -> Generator:
        """Consume *seconds* of CPU, charged to the calling process.

        Used with ``yield from``::

            yield from machine.cpu.compute(costs.syscall)
        """
        if seconds < 0:
            raise ValueError(f"negative compute time: {seconds}")
        if not self.enabled or seconds == 0.0:
            return
        process = self.engine.current_process
        remaining = seconds
        while remaining > 0.0:
            slice_len = min(remaining, self.quantum)
            yield self._mutex.acquire()
            try:
                yield self.engine.timeout(slice_len)
            finally:
                self._mutex.release()
            remaining -= slice_len
            self.busy_time += slice_len
            if process is not None:
                process.cpu_time += slice_len
