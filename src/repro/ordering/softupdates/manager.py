"""The soft updates dependency manager.

Central ideas (section 4.2):

* dependency information is kept *per update*, not per block;
* any dirty block can be written at any time -- updates with unsatisfied
  dependencies are rolled back in the image handed to the disk, so the
  written block is always consistent with the current on-disk state;
* completion processing happens at I/O completion (ISR context) when
  trivial, and through a workitem queue when it can block (link-count drops,
  bitmap frees).

Every buffer with dependencies gets one standing pre-write/post-write hook
pair and is pinned in the cache while tracked.  The pre-write hook applies
rollbacks to the outgoing image and snapshots which dependencies that write
carries (an :class:`InFlight` batch); the post-write hook completes exactly
that batch.  Because the driver completes overlapping writes in issue order,
batches complete FIFO per buffer.

Deviation from the paper, documented: the paper undoes updates in the buffer
itself, inhibits access during the write, and redoes them afterwards (with a
15-second workitem fallback to force redone blocks back to disk).  We apply
the undo to the write-time snapshot instead, so the in-memory copy is never
stale; a block whose write omitted a rolled-back update is simply re-dirtied
when its blocking dependency clears.  The write orderings produced are
identical; only the in-memory bookkeeping differs.
"""

from __future__ import annotations

import struct
from collections import deque
from typing import Generator, Optional

from repro.ordering.softupdates.structures import (
    AllocDep,
    DirAdd,
    DirRem,
    FreeWork,
    InFlight,
    InodeDepState,
    IndirDepState,
    PageDepState,
    TrackedBuffer,
    DINODE_SIZE_AT,
    dinode_slot_offset,
)


class SoftDepManager:
    """Tracks, rolls back, and retires soft-updates dependencies."""

    def __init__(self, fs, interval: float = 1.0) -> None:
        self.fs = fs
        self.cache = fs.cache
        self.geometry = fs.geometry
        self.interval = interval
        self.inodedeps: dict[int, InodeDepState] = {}
        self.pagedeps: dict[int, PageDepState] = {}
        self.indirdeps: dict[int, IndirDepState] = {}
        #: data daddr -> alloc deps satisfied by that block's first write
        self.allocsafe: dict[int, list[AllocDep]] = {}
        self.tracked: dict[int, TrackedBuffer] = {}
        self._inos_by_block: dict[int, set[int]] = {}
        self.workitems: deque = deque()
        # instrumentation
        self.rollbacks = 0
        self.cancelled_adds = 0
        self.deps_created = 0
        #: failed writes whose dependency batch was put back in play
        self.requeues = 0
        obs = fs.engine.obs
        self._obs = obs
        if obs is not None:
            registry = obs.registry
            self._m_rollbacks = registry.counter("softupdates.rollbacks")
            self._m_deps = registry.counter("softupdates.deps_created")
            self._m_cancelled = registry.counter("softupdates.cancelled_adds")
            self._m_workitems = registry.counter("softupdates.workitems")
        else:
            self._m_rollbacks = None
            self._m_deps = None
            self._m_cancelled = None
            self._m_workitems = None
        self._daemon = fs.engine.process(self._run(), name="softdep")

    # ==================================================================
    # buffer tracking
    # ==================================================================
    def track(self, buf, kind: str) -> TrackedBuffer:
        """Pin *buf* and attach the standing hooks (idempotent)."""
        tracked = self.tracked.get(buf.daddr)
        if tracked is not None:
            return tracked
        tracked = TrackedBuffer(buf.daddr, kind)
        tracked.buf = buf
        tracked.pre_fn = (lambda b, image, d=buf.daddr:
                          self._pre_write(d, b, image))
        tracked.post_fn = lambda b, d=buf.daddr: self._post_write(d, b)
        buf.pre_write.append(tracked.pre_fn)
        buf.post_write.append(tracked.post_fn)
        buf.hold_count += 1
        self.tracked[buf.daddr] = tracked
        return tracked

    def _maybe_untrack(self, daddr: int) -> None:
        tracked = self.tracked.get(daddr)
        if tracked is None or tracked.inflight:
            return
        if daddr in self.pagedeps or daddr in self.indirdeps \
                or daddr in self.allocsafe:
            return
        if self._inos_by_block.get(daddr):
            return
        buf = tracked.buf
        if tracked.pre_fn in buf.pre_write:
            buf.pre_write.remove(tracked.pre_fn)
        if tracked.post_fn in buf.post_write:
            buf.post_write.remove(tracked.post_fn)
        buf.hold_count -= 1
        del self.tracked[daddr]

    # ==================================================================
    # registration (buffers passed HELD by the scheme)
    # ==================================================================
    def record_alloc(self, ip, owner_buf, owner_kind: str, slot: int,
                     new_daddr: int, old_daddr: int, old_size: Optional[int],
                     data_buf) -> AllocDep:
        """allocdirect/allocindirect + allocsafe for a fresh block pointer."""
        self.deps_created += 1
        if self._m_deps is not None:
            self._m_deps.inc()
        if owner_kind == "inode":
            dep = AllocDep(owner=("inode", ip.ino), slot=slot,
                           new_daddr=new_daddr, old_daddr=old_daddr,
                           old_size=old_size)
            self._inodedep(ip.ino).alloc[slot] = dep
        else:
            dep = AllocDep(owner=("indir", owner_buf.daddr), slot=slot,
                           new_daddr=new_daddr, old_daddr=old_daddr,
                           old_size=None)
            self.indirdeps.setdefault(
                owner_buf.daddr, IndirDepState(owner_buf.daddr)
            ).alloc[slot] = dep
            self.track(owner_buf, "indir")
        self.allocsafe.setdefault(new_daddr, []).append(dep)
        self.track(data_buf, "data")
        return dep

    def record_add(self, dbuf, offset_in_block: int, ip, ibuf) -> None:
        """add/addsafe: entry must wait for the inode write."""
        self.deps_created += 1
        if self._m_deps is not None:
            self._m_deps.inc()
        add = DirAdd(dir_daddr=dbuf.daddr, offset=offset_in_block, ino=ip.ino)
        self.pagedeps.setdefault(
            dbuf.daddr, PageDepState(dbuf.daddr)).adds[offset_in_block] = add
        self._inodedep(ip.ino).pending_adds.append(add)
        self.track(dbuf, "dir")
        self.track(ibuf, "inode")

    def record_remove(self, dbuf, offset_in_block: int, ip) -> bool:
        """remove: returns True if it cancelled a pending add (no I/O at all).

        "If the directory entry has a pending link addition dependency, the
        add and addsafe structures are removed and the link removal proceeds
        unhindered (the add and remove have been serviced with no disk
        writes!)"
        """
        pagedep = self.pagedeps.get(dbuf.daddr)
        if pagedep is not None and offset_in_block in pagedep.adds:
            add = pagedep.adds[offset_in_block]
            if not self._add_in_flight(dbuf.daddr, add):
                del pagedep.adds[offset_in_block]
                self._drop_pending_add(add)
                self.cancelled_adds += 1
                if self._m_cancelled is not None:
                    self._m_cancelled.inc()
                if pagedep.empty:
                    del self.pagedeps[dbuf.daddr]
                self._maybe_untrack(dbuf.daddr)
                return True
        self.deps_created += 1
        if self._m_deps is not None:
            self._m_deps.inc()
        self.pagedeps.setdefault(
            dbuf.daddr, PageDepState(dbuf.daddr)).removes.append(DirRem(ip))
        self.track(dbuf, "dir")
        return False

    def record_free(self, ip, ibuf, runs: list[tuple[int, int]],
                    ino: Optional[int]) -> None:
        """freeblocks/freefile: bitmap bits clear after the reset write."""
        self.deps_created += 1
        if self._m_deps is not None:
            self._m_deps.inc()
        self._inodedep(ip.ino).frees.append(FreeWork(runs=list(runs), ino=ino))
        self.track(ibuf, "inode")

    def track_inode_buffer(self, ip, ibuf) -> None:
        """Ensure *ip*'s inode-block buffer carries the standing hooks."""
        if self._inodedep_if_any(ip.ino) is not None:
            self.track(ibuf, "inode")

    # -- cancellation at deallocation --------------------------------------
    def cancel_for_release(self, ip,
                           runs: list[tuple[int, int]]) -> list[tuple[int, int]]:
        """Drop dependencies made moot by the file's removal.

        Returns extra runs (from unfinished fragment moves) that must join
        the deferred free list.
        """
        extra = self.cancel_for_truncate(ip, runs)
        dep_state = self.inodedeps.get(ip.ino)
        if dep_state is not None:
            for add in list(dep_state.pending_adds):
                self._drop_pending_add(add)
        return extra

    def cancel_for_truncate(self, ip,
                            runs: list[tuple[int, int]]) -> list[tuple[int, int]]:
        """Drop block dependencies for freed runs; the inode itself (and any
        pending link additions to it) stays live."""
        extra: list[tuple[int, int]] = []
        dep_state = self.inodedeps.get(ip.ino)
        if dep_state is not None:
            for alloc_dep in list(dep_state.alloc.values()):
                extra.extend(alloc_dep.free_on_clear)
                self._drop_alloc(alloc_dep)
        freed = {daddr for daddr, _frags in runs}
        for daddr in freed:
            # dependencies *owned by* freed blocks (paper: "this applies
            # only to directory blocks") are considered complete
            pagedep = self.pagedeps.pop(daddr, None)
            if pagedep is not None:
                for remove in pagedep.removes:
                    self.schedule(self._drop_link_item(remove.ip))
                for add in list(pagedep.adds.values()):
                    self._drop_pending_add(add)
            indirdep = self.indirdeps.pop(daddr, None)
            if indirdep is not None:
                for alloc_dep in list(indirdep.alloc.values()):
                    self._drop_alloc(alloc_dep)
            for alloc_dep in self.allocsafe.pop(daddr, []):
                extra.extend(alloc_dep.free_on_clear)
                self._drop_alloc(alloc_dep)
            self._maybe_untrack(daddr)
        return extra

    def _drop_alloc(self, dep: AllocDep) -> None:
        kind, key = dep.owner
        if kind == "inode":
            state = self.inodedeps.get(key)
            if state is not None and state.alloc.get(dep.slot) is dep:
                del state.alloc[dep.slot]
                self._cleanup_inodedep(key)
        else:
            state = self.indirdeps.get(key)
            if state is not None and state.alloc.get(dep.slot) is dep:
                del state.alloc[dep.slot]
                if state.empty:
                    del self.indirdeps[key]
                self._maybe_untrack(key)
        safelist = self.allocsafe.get(dep.new_daddr)
        if safelist and dep in safelist:
            safelist.remove(dep)
            if not safelist:
                del self.allocsafe[dep.new_daddr]
            self._maybe_untrack(dep.new_daddr)

    def _drop_pending_add(self, add: DirAdd) -> None:
        state = self.inodedeps.get(add.ino)
        if state is not None and add in state.pending_adds:
            state.pending_adds.remove(add)
            self._cleanup_inodedep(add.ino)

    # ==================================================================
    # the write hooks
    # ==================================================================
    def _pre_write(self, daddr: int, buf, image: bytearray) -> None:
        batch = InFlight()
        rollbacks_before = self.rollbacks
        # role: inode block
        for ino in sorted(self._inos_by_block.get(daddr, ())):
            state = self.inodedeps.get(ino)
            if state is None:
                continue
            at = self.geometry.inode_offset_in_block(ino)
            rollback_size: Optional[int] = None
            ino_rolled_back = False
            for alloc_dep in state.alloc.values():
                if alloc_dep.satisfied:
                    batch.alloc_written.append(alloc_dep)
                    continue
                struct.pack_into("<I", image,
                                 at + dinode_slot_offset(alloc_dep.slot),
                                 alloc_dep.old_daddr)
                if alloc_dep.old_size is not None:
                    rollback_size = (alloc_dep.old_size if rollback_size is None
                                     else min(rollback_size,
                                              alloc_dep.old_size))
                batch.rolled_back = True
                ino_rolled_back = True
                self.rollbacks += 1
            if rollback_size is not None:
                current = struct.unpack_from("<Q", image,
                                             at + DINODE_SIZE_AT)[0]
                struct.pack_into("<Q", image, at + DINODE_SIZE_AT,
                                 min(current, rollback_size))
            if not ino_rolled_back:
                # an entry may only appear once its inode is on disk fully
                # resolved (no rolled-back pointers): otherwise a crash could
                # expose a reachable directory whose first block pointer is
                # still undone (the MKDIR_BODY case of the BSD code)
                batch.adds_for_inodes.extend(state.pending_adds)
            batch.frees.extend((ino, free_work) for free_work in state.frees)
            state.frees = []
        # role: directory block
        pagedep = self.pagedeps.get(daddr)
        if pagedep is not None:
            for offset, add in pagedep.adds.items():
                if add.inode_written:
                    batch.adds_intact.append(add)
                else:
                    struct.pack_into("<I", image, offset, 0)  # undo the entry
                    batch.rolled_back = True
                    self.rollbacks += 1
            batch.removes.extend(pagedep.removes)
            pagedep.removes = []
        # role: indirect block
        indirdep = self.indirdeps.get(daddr)
        if indirdep is not None:
            for slot, alloc_dep in indirdep.alloc.items():
                if alloc_dep.satisfied:
                    batch.alloc_written.append(alloc_dep)
                else:
                    struct.pack_into("<I", image, 4 * slot,
                                     alloc_dep.old_daddr)
                    batch.rolled_back = True
                    self.rollbacks += 1
        rolled = self.rollbacks - rollbacks_before
        if self._m_rollbacks is not None and rolled:
            self._m_rollbacks.inc(rolled)
            # zero-length marker so rollbacks are visible on the timeline
            now = self.fs.engine.now
            tracer = self._obs.tracer
            tracer.record("softupdates.rollback", "ordering", now, now,
                          tracer._track(None),
                          args={"daddr": daddr, "count": rolled})
        self.tracked[daddr].inflight.append(batch)

    def _post_write(self, daddr: int, buf) -> None:
        """I/O completion: retire this write's batch (ISR context)."""
        tracked = self.tracked.get(daddr)
        if tracked is None or not tracked.inflight:
            # This write was snapshotted before the buffer was tracked (it
            # was already in flight when the first dependency was recorded),
            # so it carries none of our dependencies and -- crucially -- may
            # even hold a previous owner's bytes (a stale queued write of a
            # freed-and-reallocated block).  It must satisfy nothing.
            return
        batch = tracked.inflight.popleft()
        if buf.error is not None:
            # the write carrying this batch never reached the media: nothing
            # it was supposed to make durable is durable
            self._requeue_failed(daddr, batch, buf)
            return
        # this block's bytes are now initialized on disk: satisfy allocsafe
        for alloc_dep in self.allocsafe.pop(daddr, []):
            alloc_dep.satisfied = True
            self._redirty_owner(alloc_dep)
        # alloc deps whose true pointer was in the written image are done
        for alloc_dep in batch.alloc_written:
            for run in alloc_dep.free_on_clear:
                self.schedule(self._free_runs_item([run], None))
            alloc_dep.free_on_clear = []
            self._drop_alloc(alloc_dep)
        # entries written intact are durable: the add dependency is complete
        for add in batch.adds_intact:
            pagedep = self.pagedeps.get(daddr)
            if pagedep is not None and pagedep.adds.get(add.offset) is add:
                del pagedep.adds[add.offset]
                if pagedep.empty:
                    del self.pagedeps[daddr]
            self._drop_pending_add(add)
        # cleared entries are durable: link counts may now drop
        for remove in batch.removes:
            self.schedule(self._drop_link_item(remove.ip))
        # inodes in this block reached disk: their dir entries may appear
        for add in batch.adds_for_inodes:
            if not add.inode_written:
                add.inode_written = True
                dir_buf = self.cache.peek(add.dir_daddr)
                if dir_buf is not None and dir_buf.valid and not dir_buf.dirty:
                    dir_buf.mark_dirty(self.fs.engine.now)
        # reset pointers are durable: the freed resources may be recycled
        for _owner_ino, free_work in batch.frees:
            self.schedule(self._free_runs_item(free_work.runs, free_work.ino))
        for ino in list(self._inos_by_block.get(daddr, ())):
            self._cleanup_inodedep(ino)
        if batch.rolled_back:
            buf.mark_dirty(self.fs.engine.now)
        self._maybe_untrack(daddr)

    def _requeue_failed(self, daddr: int, batch: InFlight, buf) -> None:
        """Graceful degradation: put a failed write's batch back in play.

        Only ``removes`` and ``frees`` were moved off their live anchors at
        issue; everything else (allocsafe registrations, alloc deps, pending
        adds) is still anchored and simply stays unsatisfied.  Requeueing at
        the *front* preserves the original FIFO so a retried write snapshots
        the same order.  The cache has already re-dirtied the buffer for a
        retryable failure, so the syncer's next sweep re-issues the write
        with these records aboard; a permanent failure leaves them pending,
        which ``drain()`` surfaces as non-convergence rather than silently
        freeing resources whose reset never reached the disk.
        """
        self.requeues += 1
        if batch.removes:
            pagedep = self.pagedeps.setdefault(daddr, PageDepState(daddr))
            pagedep.removes[:0] = batch.removes
        if batch.frees:
            requeued: dict[int, list] = {}
            for owner_ino, free_work in batch.frees:
                requeued.setdefault(owner_ino, []).append(free_work)
            for owner_ino, frees in requeued.items():
                state = self._inodedep(owner_ino)
                state.frees[:0] = frees
        faults = self.cache.driver.disk.faults
        if faults is not None:
            faults.log(self.fs.engine.now, "requeue",
                       f"daddr={daddr} removes={len(batch.removes)} "
                       f"frees={len(batch.frees)} ({buf.error})")

    def _redirty_owner(self, dep: AllocDep) -> None:
        kind, key = dep.owner
        owner_daddr = (self.geometry.inode_block_daddr(key)
                       if kind == "inode" else key)
        owner_buf = self.cache.peek(owner_daddr)
        if owner_buf is not None and owner_buf.valid and not owner_buf.dirty:
            owner_buf.mark_dirty(self.fs.engine.now)

    def _add_in_flight(self, daddr: int, add: DirAdd) -> bool:
        tracked = self.tracked.get(daddr)
        if tracked is None:
            return False
        return any(add in batch.adds_intact for batch in tracked.inflight)

    # ==================================================================
    # inodedep plumbing
    # ==================================================================
    def _inodedep(self, ino: int) -> InodeDepState:
        state = self.inodedeps.get(ino)
        if state is None:
            state = InodeDepState(ino)
            self.inodedeps[ino] = state
            block = self.geometry.inode_block_daddr(ino)
            self._inos_by_block.setdefault(block, set()).add(ino)
        return state

    def _inodedep_if_any(self, ino: int) -> Optional[InodeDepState]:
        return self.inodedeps.get(ino)

    def _cleanup_inodedep(self, ino: int) -> None:
        state = self.inodedeps.get(ino)
        if state is not None and state.empty:
            del self.inodedeps[ino]
            block = self.geometry.inode_block_daddr(ino)
            owners = self._inos_by_block.get(block)
            if owners is not None:
                owners.discard(ino)
                if not owners:
                    del self._inos_by_block[block]
            self._maybe_untrack(block)

    # ==================================================================
    # workitems
    # ==================================================================
    def schedule(self, item) -> None:
        """Queue background work (serviced within one wakeup interval)."""
        self.workitems.append(item)

    def _drop_link_item(self, ip):
        def work() -> Generator:
            yield from self.fs.drop_link(ip)
        return work

    def _free_runs_item(self, runs: list[tuple[int, int]],
                        ino: Optional[int]):
        def work() -> Generator:
            for daddr, frags in runs:
                self.cache.invalidate(daddr, frags)
                yield from self.fs.allocator.free_frags(daddr, frags)
            if ino is not None:
                yield from self.fs.allocator.free_inode(ino)
        return work

    def service(self) -> Generator:
        """Run every currently queued workitem (may queue more).

        Bounded by the queue length at entry so newly queued items wait for
        the next round, and re-checked per pop because the daemon and a
        drain()/fsync() can service concurrently.
        """
        budget = len(self.workitems)
        while budget > 0 and self.workitems:
            item = self.workitems.popleft()
            budget -= 1
            if self._m_workitems is None:
                yield from item()
            else:
                self._m_workitems.inc()
                span = self._obs.tracer.begin("softupdates.workitem",
                                              "ordering")
                try:
                    yield from item()
                finally:
                    self._obs.tracer.end(span)

    def _run(self) -> Generator:
        while True:
            yield self.fs.engine.timeout(self.interval)
            yield from self.service()

    # ==================================================================
    # queries / convergence
    # ==================================================================
    def pending(self) -> int:
        return (sum(len(s.alloc) + len(s.pending_adds) + len(s.frees)
                    for s in self.inodedeps.values())
                + sum(len(p.adds) + len(p.removes)
                      for p in self.pagedeps.values())
                + sum(len(i.alloc) for i in self.indirdeps.values())
                + len(self.workitems))

    def inode_busy(self, ino: int) -> bool:
        return ino in self.inodedeps

    def drain(self) -> Generator:
        """Service and flush until no dependencies or dirty state remain."""
        for _ in range(10_000):
            yield from self.service()
            yield from self.cache.sync()
            yield from self.service()
            if self.pending() == 0 and not self.cache.dirty_buffers():
                return
        raise RuntimeError("soft updates drain did not converge")
