#!/usr/bin/env python3
"""Quickstart: build a simulated machine, mount soft updates, do file I/O.

Run:  python examples/quickstart.py
"""

from repro.machine import Machine, MachineConfig
from repro.ordering import SoftUpdatesScheme


def main() -> None:
    # A machine is a full simulated testbed: CPU, disk, driver, buffer
    # cache, syncer daemon, and an FFS-like file system mounted with the
    # ordering scheme of your choice.
    machine = Machine(MachineConfig(scheme=SoftUpdatesScheme()))
    machine.format()
    fs = machine.fs

    # Workloads are generator functions: they "block" on simulated disk
    # I/O and CPU time by yielding, and the engine advances a virtual clock.
    def user():
        yield from fs.mkdir("/projects")
        yield from fs.write_file("/projects/notes.txt",
                                 b"soft updates, OSDI 1994\n" * 200)
        data = yield from fs.read_file("/projects/notes.txt")
        print(f"  read back {len(data)} bytes")

        names = yield from fs.readdir("/projects")
        print(f"  /projects contains: {names}")

        attrs = yield from fs.stat("/projects/notes.txt")
        print(f"  size={attrs.size}  nlink={attrs.nlink}")

        yield from fs.rename("/projects/notes.txt", "/projects/final.txt")
        yield from fs.sync()  # all deferred soft-updates work completes

    machine.run(machine.spawn(user(), name="demo"))

    print(f"simulated time elapsed : {machine.engine.now:.3f} s")
    print(f"disk requests issued   : {machine.driver.requests_issued}")
    print(f"disk busy time         : {machine.disk.stats.busy_time:.3f} s")
    print(f"soft-updates rollbacks : {machine.scheme.manager.rollbacks}")

    # The on-disk image is real bytes; fsck can audit it.
    from repro.integrity import fsck
    report = fsck(machine.disk.storage)
    print(f"fsck                   : {report.summary()}")
    assert report.clean


if __name__ == "__main__":
    main()
