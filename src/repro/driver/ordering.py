"""Ordering policies: flag semantics (section 3.1) and chains (section 3.2).

A policy answers one question for the elevator: *may this pending request be
dispatched right now?*  All policies see every issue and completion so they
can maintain whatever bookkeeping their semantics need.

Flag semantics compared by the paper (figure 1):

* ``FULL`` -- a flagged request is a full barrier: it waits for everything
  issued before it, and nothing issued after it may pass it.
* ``BACK`` -- requests issued after a flagged request may not be scheduled
  before it *or anything issued before it*; the flagged request itself
  reorders freely with earlier non-flagged requests.
* ``PART`` -- requests issued after a flagged request may not be scheduled
  before *it*; everything else reorders freely.
* ``IGNORE`` -- the flag is ignored (no metadata protection; baseline).

``-NR`` (any semantics): non-conflicting reads bypass writes that are waiting
because of ordering restrictions.  A read conflicts if it overlaps an
incomplete earlier write.
"""

from __future__ import annotations

import enum
import heapq
from collections import deque

from repro.driver.request import DiskRequest, IOKind


class FlagSemantics(enum.Enum):
    """The meaning of the one-bit ordering flag."""

    FULL = "Full"
    BACK = "Back"
    PART = "Part"
    IGNORE = "Ignore"


class OrderingPolicy:
    """Interface the driver consults before dispatching.

    Contract: a policy's dispatchability answers may change **only** inside
    :meth:`on_issue` and :meth:`on_complete` (the driver relies on this to
    keep an incremental eligibility index instead of rescanning the whole
    queue per dispatch), and issuing a request never makes an already
    dispatchable *write* undispatchable.  ``may_dispatch`` must be free of
    observable side effects -- the driver may call it zero, one, or many
    times per request.

    ``eligibility`` tells the driver how blocked requests wake up:

    * ``"none"`` -- ``may_dispatch`` is constant ``True``; nothing is ever
      policy-held.
    * ``"monotone"`` -- blocked-ness is monotone in issue id: if a request
      is policy-held, every later-issued request is too (the flag
      semantics).  The driver keeps held requests in a min-id heap and pops
      from the front after each completion.
    * ``"deps"`` -- a request is held exactly while a dependency named by
      :meth:`blocking_deps` is incomplete (scheduler chains).  The driver
      watches one incomplete dependency at a time.
    * ``"generic"`` -- no structure known; the driver conservatively
      rechecks every held request on each issue and completion.  Safe for
      third-party policies, and the only mode that pays the old full-scan
      cost.

    ``conflict_checked_reads`` marks policies whose *read* admission is
    exactly "no overlap with an incomplete earlier write" (the ``-NR``
    rule and chains' natural read bypass); the driver then wakes a held
    read from the completion of the specific write blocking it.
    """

    name = "base"
    eligibility = "generic"
    conflict_checked_reads = False

    def on_issue(self, request: DiskRequest) -> None:
        """A request entered the driver queue."""

    def on_complete(self, request: DiskRequest) -> None:
        """A request finished at the drive."""

    def may_dispatch(self, request: DiskRequest) -> bool:
        """May *request* be sent to the drive now?"""
        raise NotImplementedError

    def blocking_deps(self, request: DiskRequest) -> list[int]:
        """Incomplete request ids *request* waits on (``"deps"`` policies)."""
        return []


class _ConflictTracker:
    """Tracks sectors covered by incomplete writes, for -NR conflict checks.

    A read conflicts only with an incomplete *earlier* write (the paper's
    definition).  Counting later writes too -- a historical bug -- made the
    wait graph cyclic: a barrier could wait on an old read, the read on a
    younger overlapping write, and that write on the barrier, deadlocking
    the queue.  With only earlier writes blocking, every wait in the driver
    points at a strictly smaller issue id, so the graph is acyclic.

    Per sector the incomplete write ids are kept in issue order; the driver
    FIFO guarantees overlapping writes complete in issue order, so the
    front entry is always the oldest -- one comparison answers the check.
    """

    def __init__(self) -> None:
        self._cover: dict[int, deque[int]] = {}

    def add(self, request: DiskRequest) -> None:
        for sector in range(request.lbn, request.end_lbn):
            ids = self._cover.get(sector)
            if ids is None:
                self._cover[sector] = deque((request.id,))
            else:
                ids.append(request.id)

    def remove(self, request: DiskRequest) -> None:
        for sector in range(request.lbn, request.end_lbn):
            ids = self._cover[sector]
            if ids[0] == request.id:
                ids.popleft()
            else:
                ids.remove(request.id)
            if not ids:
                del self._cover[sector]

    def read_conflicts(self, request: DiskRequest) -> bool:
        for sector in range(request.lbn, request.end_lbn):
            ids = self._cover.get(sector)
            if ids and ids[0] < request.id:
                return True
        return False


class FlagPolicy(OrderingPolicy):
    """Scheduler-enforced ordering via the one-bit flag.

    Eligibility is monotone in issue order for every flag meaning: a
    request is blocked exactly when some older flagged/incomplete work
    remains, a condition that only grows with the issue id.  (With
    ``read_bypass`` the reads drop out of that ordering and are admitted on
    the pure data-conflict check instead.)  The driver uses this to keep
    held-back queues -- which reach thousands of requests under the remove
    benchmarks -- out of the per-dispatch scan entirely.
    """

    def __init__(self, semantics: FlagSemantics,
                 read_bypass: bool = False) -> None:
        self.semantics = semantics
        self.read_bypass = read_bypass
        if semantics is FlagSemantics.IGNORE:
            # IGNORE admits everything unconditionally (even conflicting
            # reads -- the FIFO below still serializes overlapping writes)
            self.eligibility = "none"
            self.conflict_checked_reads = False
        else:
            self.eligibility = "monotone"
            self.conflict_checked_reads = read_bypass
        self.name = semantics.value + ("-NR" if read_bypass else "")
        # ids of incomplete requests (issued, not yet completed)
        self._incomplete: set[int] = set()
        self._min_incomplete_heap: list[int] = []
        # ids of incomplete *flagged* requests
        self._flagged_incomplete: set[int] = set()
        self._min_flagged_heap: list[int] = []
        # BACK: flagged ids not yet retired (retired once everything issued
        # at-or-before them has completed); kept in issue order
        self._barriers: deque[int] = deque()
        self._writes = _ConflictTracker()

    # -- bookkeeping ------------------------------------------------------
    def on_issue(self, request: DiskRequest) -> None:
        self._incomplete.add(request.id)
        heapq.heappush(self._min_incomplete_heap, request.id)
        if request.flag:
            self._flagged_incomplete.add(request.id)
            heapq.heappush(self._min_flagged_heap, request.id)
            self._barriers.append(request.id)
        if request.is_write:
            self._writes.add(request)

    def on_complete(self, request: DiskRequest) -> None:
        self._incomplete.discard(request.id)
        self._flagged_incomplete.discard(request.id)
        if request.is_write:
            self._writes.remove(request)
        self._retire_barriers()

    def _min_incomplete(self) -> int | None:
        heap = self._min_incomplete_heap
        while heap and heap[0] not in self._incomplete:
            heapq.heappop(heap)
        return heap[0] if heap else None

    def _min_flagged_incomplete(self) -> int | None:
        heap = self._min_flagged_heap
        while heap and heap[0] not in self._flagged_incomplete:
            heapq.heappop(heap)
        return heap[0] if heap else None

    def _retire_barriers(self) -> None:
        floor = self._min_incomplete()
        while self._barriers and (floor is None or self._barriers[0] < floor):
            self._barriers.popleft()

    # -- the decision -------------------------------------------------------
    def may_dispatch(self, request: DiskRequest) -> bool:
        if self.semantics is FlagSemantics.IGNORE:
            return True
        if request.kind is IOKind.READ and self.read_bypass:
            return not self._writes.read_conflicts(request)

        if self.semantics is FlagSemantics.PART:
            floor = self._min_flagged_incomplete()
            return floor is None or request.id <= floor

        if self.semantics is FlagSemantics.BACK:
            self._retire_barriers()
            return not self._barriers or request.id <= self._barriers[0]

        # FULL: may not pass any earlier incomplete flagged request; and a
        # flagged request waits for *everything* issued before it.
        floor = self._min_flagged_incomplete()
        if floor is not None and request.id > floor:
            return False
        if request.flag:
            oldest = self._min_incomplete()
            if oldest is not None and oldest < request.id:
                return False
        return True


class ChainsPolicy(OrderingPolicy):
    """Scheduler chains: per-request dependency lists.

    A request is dispatchable once every request it names has completed.
    Reads carry no dependencies, so they bypass ordering queues naturally
    (the paper notes ``-NR`` "holds no meaning with scheduler chains"),
    subject only to the data-conflict check.
    """

    name = "Chains"
    eligibility = "deps"
    conflict_checked_reads = True

    def __init__(self) -> None:
        self._incomplete: set[int] = set()
        self._writes = _ConflictTracker()

    def on_issue(self, request: DiskRequest) -> None:
        bad = [dep for dep in request.depends_on if dep >= request.id]
        if bad:
            raise ValueError(
                f"request #{request.id} depends on not-yet-issued ids {bad}; "
                f"chains may only reference previously issued requests")
        self._incomplete.add(request.id)
        if request.is_write:
            self._writes.add(request)

    def on_complete(self, request: DiskRequest) -> None:
        self._incomplete.discard(request.id)
        if request.is_write:
            self._writes.remove(request)

    def may_dispatch(self, request: DiskRequest) -> bool:
        if request.kind is IOKind.READ:
            return not self._writes.read_conflicts(request)
        return all(dep not in self._incomplete for dep in request.depends_on)

    def blocking_deps(self, request: DiskRequest) -> list[int]:
        """The still-incomplete dependencies, oldest first."""
        return sorted(dep for dep in request.depends_on
                      if dep in self._incomplete)
