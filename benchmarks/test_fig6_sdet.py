"""Figure 6: Sdet scripts/hour vs script concurrency.

Paper findings asserted here: Scheduler Flag outperforms Conventional by a
few percent, Scheduler Chains adds a little more, No Order outperforms
Conventional by 50-70%, and Soft Updates stays within a few percent of
No Order.
"""

from repro.harness.report import format_series
from repro.harness.runner import (
    STANDARD_SCHEMES,
    build_machine,
    standard_scheme_config,
)
from repro.workloads.sdet import run_sdet

from benchmarks.conftest import SCALE, emit, run_grid

CONCURRENCY = [1, 2, 4, 8]
COMMANDS = max(20, int(120 * SCALE))


def test_fig6_sdet(once):
    def cell(scripts, name):
        def run():
            machine = build_machine(standard_scheme_config(name))
            return run_sdet(machine, scripts, commands_per_script=COMMANDS)
        return (scripts, name), run

    def experiment():
        results = run_grid("fig6_sdet",
                           [cell(scripts, name) for scripts in CONCURRENCY
                            for name in STANDARD_SCHEMES])
        series = {name: [] for name in STANDARD_SCHEMES}
        for scripts in CONCURRENCY:
            for name in STANDARD_SCHEMES:
                series[name].append(results[(scripts, name)].scripts_per_hour)
        return series

    series = once(experiment)
    emit("fig6_sdet", format_series(
        f"Figure 6: Sdet throughput (scripts/hour), {COMMANDS} commands "
        f"per script (scale={SCALE})",
        "Concurrent scripts", CONCURRENCY, series))

    # compare at the highest concurrency, like the paper's spread
    last = {name: values[-1] for name, values in series.items()}
    assert last["Scheduler Flag"] >= last["Conventional"]
    assert last["Scheduler Chains"] >= last["Scheduler Flag"] * 0.97
    assert last["No Order"] > last["Conventional"] * 1.15
    assert last["Soft Updates"] >= last["No Order"] * 0.9
    # throughput is roughly sustained (or grows) with concurrency
    for name, values in series.items():
        assert values[-1] >= values[0] * 0.9
