"""The eligibility index must be invisible: an optimization, not a policy.

``DeviceDriver`` keeps dispatchable requests in an incrementally maintained
index instead of rescanning the whole queue per dispatch.  These tests pin
the contract down:

* a reference driver -- the straightforward full-scan selection, kept here
  as an executable specification -- produces the *identical* trace (ids,
  batching, timestamps) on randomized workloads under every policy family;
* the backward concatenation direction prefers the first-issued request on
  an end-LBN tie, like the forward direction always has;
* dispatch cost stays near-linear in queue depth (the policy is consulted
  O(1) times per request, not once per pending request per dispatch).
"""

import random

import pytest

from repro.disk import Disk
from repro.driver import ChainsPolicy, DeviceDriver, FlagPolicy, FlagSemantics
from repro.sim import Engine


class ReferenceDriver(DeviceDriver):
    """The pre-index driver: scan everything pending on every dispatch.

    The index plumbing is disabled wholesale (classification and wakeup
    bookkeeping become no-ops) and selection recomputes eligibility from
    scratch each time -- quadratic, but obviously correct.  The optimized
    driver must match it exactly.
    """

    def _classify(self, request):
        pass

    def _remove_eligible(self, request):
        pass

    def _after_completions(self, batch):
        pass

    def _recheck_generic_eligible(self):
        pass

    def _select_batch(self):
        pool = {}
        for request in self._pending.values():
            if not self._write_fifo_ok(request):
                continue
            if not self.policy.may_dispatch(request):
                continue
            pool[request.id] = request
        if not pool:
            return None
        ahead = [r for r in pool.values() if r.lbn >= self._head_lbn]
        chosen = min(ahead or pool.values(), key=lambda r: (r.lbn, r.id))
        return self._concatenate_pool(chosen, pool)

    def _concatenate_pool(self, chosen, pool):
        same_kind = {}
        for request in pool.values():
            if request.kind is chosen.kind and request is not chosen:
                held = same_kind.get(request.lbn)
                if held is None or request.id < held.id:
                    same_kind[request.lbn] = request
        batch = [chosen]
        total = chosen.nsectors
        cursor = chosen.end_lbn
        while total < self.max_batch_sectors and cursor in same_kind:
            nxt = same_kind.pop(cursor)
            batch.append(nxt)
            total += nxt.nsectors
            cursor = nxt.end_lbn
        by_end = {}
        for request in same_kind.values():
            held = by_end.get(request.end_lbn)
            if held is None or request.id < held.id:
                by_end[request.end_lbn] = request
        cursor = batch[0].lbn
        while total < self.max_batch_sectors and cursor in by_end:
            prev = by_end.pop(cursor)
            batch.insert(0, prev)
            total += prev.nsectors
            cursor = prev.lbn
        return batch


class GenericFlagPolicy(FlagPolicy):
    """A flag policy that declares no structure: exercises the fallback
    path where the driver conservatively rechecks held requests."""

    def __init__(self, semantics, read_bypass=False):
        super().__init__(semantics, read_bypass=read_bypass)
        self.eligibility = "generic"
        self.conflict_checked_reads = False


def replay(driver_cls, policy_factory, seed, nops=120):
    """Run a seeded random workload; return the completion trace."""
    rng = random.Random(seed)
    engine = Engine()
    driver = driver_cls(engine, Disk(engine), policy_factory())
    issued = []

    def producer():
        for _ in range(nops):
            # stagger arrivals so requests land mid-dispatch, not only in
            # one pre-run burst (wakeup paths differ between the two)
            if rng.random() < 0.3:
                yield engine.timeout(rng.choice([0.0003, 0.002, 0.011]))
            roll = rng.random()
            if roll < 0.7:
                lbn = (7919 * rng.randrange(1000)) % 200_000
            else:
                lbn = 1000 + rng.randrange(64)  # force overlap traffic
            nsectors = rng.choice([2, 8, 16])
            if rng.random() < 0.35:
                issued.append(driver.read(lbn, nsectors))
            else:
                deps = None
                if rng.random() < 0.3 and issued:
                    back = rng.randrange(1, 4)
                    deps = frozenset(r.id for r in issued[-back:]
                                     if r.is_write) or None
                issued.append(driver.write(
                    lbn, bytes([rng.randrange(1, 256)]) * (512 * nsectors),
                    flag=rng.random() < 0.3, depends_on=deps))

    engine.run_until(engine.process(producer()), max_events=5_000_000)
    for request in issued:
        engine.run_until(request.done, max_events=5_000_000)
    return [(r.id, r.kind, r.lbn, r.nsectors,
             r.issue_time, r.dispatch_time, r.complete_time)
            for r in driver.trace]


POLICIES = [
    ("ignore", lambda: FlagPolicy(FlagSemantics.IGNORE)),
    ("part", lambda: FlagPolicy(FlagSemantics.PART)),
    ("part-nr", lambda: FlagPolicy(FlagSemantics.PART, read_bypass=True)),
    ("back", lambda: FlagPolicy(FlagSemantics.BACK)),
    ("back-nr", lambda: FlagPolicy(FlagSemantics.BACK, read_bypass=True)),
    ("full", lambda: FlagPolicy(FlagSemantics.FULL)),
    ("full-nr", lambda: FlagPolicy(FlagSemantics.FULL, read_bypass=True)),
    ("chains", ChainsPolicy),
    ("generic", lambda: GenericFlagPolicy(FlagSemantics.PART)),
]


class TestReferenceEquivalence:
    @pytest.mark.parametrize("name,factory", POLICIES,
                             ids=[name for name, _ in POLICIES])
    @pytest.mark.parametrize("seed", range(5))
    def test_trace_identical_to_full_scan_reference(self, name, factory,
                                                    seed):
        """Same workload, same policy: the indexed driver's trace must be
        byte-identical to the reference full scan -- same dispatch order,
        same batching, same timestamps."""
        fast = replay(DeviceDriver, factory, seed)
        reference = replay(ReferenceDriver, factory, seed)
        assert fast == reference


class TestBackwardTieBreak:
    def test_backward_concatenation_prefers_first_issued(self):
        """Two eligible reads end at the same LBN: the backward extension
        must absorb the first-issued one (the forward direction always did;
        the backward map used to let the last-issued win)."""
        engine = Engine()
        driver = DeviceDriver(engine, Disk(engine),
                              FlagPolicy(FlagSemantics.IGNORE))
        requests = {}

        def scenario():
            # occupy the disk so the reads queue up behind it, and park the
            # head at LBN 103 when it completes
            requests["blocker"] = driver.write(101, b"\x00" * 1024)
            yield engine.timeout(0.0001)  # let the blocker dispatch
            requests["first"] = driver.read(100, 4)    # ends at 104
            requests["second"] = driver.read(102, 2)   # also ends at 104
            requests["anchor"] = driver.read(104, 2)   # C-LOOK picks this

        engine.run_until(engine.process(scenario()), max_events=100_000)
        for request in requests.values():
            engine.run_until(request.done, max_events=100_000)

        anchor = requests["anchor"]
        first = requests["first"]
        second = requests["second"]
        # the anchor's batch absorbed the first-issued read...
        assert first.dispatch_time == anchor.dispatch_time
        assert first.complete_time == anchor.complete_time
        # ...and the later-issued one waited for the next dispatch
        assert second.dispatch_time > anchor.dispatch_time


class CountingChains(ChainsPolicy):
    def __init__(self):
        super().__init__()
        self.consultations = 0

    def may_dispatch(self, request):
        self.consultations += 1
        return super().may_dispatch(request)

    def blocking_deps(self, request):
        self.consultations += 1
        return super().blocking_deps(request)


class TestDispatchScaling:
    def test_policy_consultations_linear_in_queue_depth(self):
        """A chain of N dependent writes forces N serial dispatches with
        ~N requests queued throughout; the index must consult the policy
        O(1) times per request, not once per pending request per dispatch
        (the old full scan made ~N^2/2 calls here)."""
        depth = 300
        engine = Engine()
        policy = CountingChains()
        driver = DeviceDriver(engine, Disk(engine), policy)
        previous = None
        issued = []
        for index in range(depth):
            deps = frozenset((previous.id,)) if previous else None
            previous = driver.write(1000 + 4 * index, b"\x07" * 1024,
                                    depends_on=deps)
            issued.append(previous)
        engine.run_until(issued[-1].done, max_events=10_000_000)
        assert len(driver.trace) == depth
        assert policy.consultations <= 8 * depth
