"""Figure 3: flag implementation enhancements, 4-user copy.

Paper finding: Part alone barely helps because processes still stall on
write-locked buffers; Part-NR lets reads bypass, Part-CB removes the write
locks (block copy), and Part-NR/CB -- the combination -- is clearly best
("failing to include either enhancement greatly reduces the benefit").
"""

from repro.driver import FlagSemantics
from repro.harness.report import format_table
from repro.harness.runner import flag_variant, run_copy
from repro.workloads.trees import TreeSpec

from benchmarks.conftest import SCALE, emit, run_grid, scaled_cache

VARIANTS = [
    ("Part", False, False),
    ("Part-NR", True, False),
    ("Part-CB", False, True),
    ("Part-NR/CB", True, True),
]


def test_fig3_flag_implementations_copy(once):
    tree = TreeSpec().scaled(SCALE)

    def cell(label, bypass, block_copy):
        def run():
            config = flag_variant(FlagSemantics.PART, bypass,
                                  block_copy=block_copy,
                                  cache_bytes=scaled_cache())
            return run_copy(config, users=4, tree=tree, label=label)
        return label, run

    def experiment():
        return run_grid("fig3_flag_impl_copy",
                        [cell(*variant) for variant in VARIANTS])

    results = once(experiment)
    rows = [[label, r.elapsed, r.cpu_time, r.driver_response_avg * 1000,
             r.disk_requests]
            for label, r in results.items()]
    emit("fig3_flag_impl_copy", format_table(
        f"Figure 3: flag implementation enhancements, 4-user copy "
        f"(scale={SCALE}, simulated seconds)",
        ["Implementation", "Elapsed (s)", "CPU (s)",
         "Avg driver response (ms)", "Disk requests"], rows))

    elapsed = {label: r.elapsed for label, r in results.items()}
    # the combination wins
    assert elapsed["Part-NR/CB"] <= min(elapsed.values()) * 1.001
    # each single enhancement alone leaves performance on the table
    assert elapsed["Part"] >= elapsed["Part-NR/CB"]
    assert elapsed["Part-NR"] >= elapsed["Part-NR/CB"]
    assert elapsed["Part-CB"] >= elapsed["Part-NR/CB"]
