"""The discrete-event engine: clock, heap, and run loop."""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Optional

from repro.sim.events import Event, Timeout


class SimulationError(RuntimeError):
    """Raised when the simulation cannot make progress or a process crashed."""


class Engine:
    """The event loop and simulated clock.

    The engine holds a heap of ``(time, sequence, event)`` entries.  Entries
    at equal times fire in insertion order, which makes every simulation run
    fully deterministic for a given seed.

    Typical use::

        eng = Engine()

        def worker():
            yield eng.timeout(1.5)
            return "done"

        proc = eng.process(worker())
        eng.run_until(proc)
        assert eng.now == 1.5 and proc.value == "done"
    """

    __slots__ = ("now", "_heap", "_seq", "current_process", "_event_count",
                 "obs", "trace_hook")

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        #: the process currently being resumed (None outside process context)
        self.current_process = None
        self._event_count = 0
        #: the machine's observability session (None = tracing off); set by
        #: Observability.attach() before any component is constructed
        self.obs = None
        #: per-event dispatch hook ``hook(when, event)``; must be passive
        #: (read-only) so dispatch order and timestamps never change
        self.trace_hook = None

    # -- event construction ---------------------------------------------
    def event(self) -> Event:
        """Create an untriggered one-shot event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> "Process":  # noqa: F821
        """Spawn *generator* as a simulated process, started on the next step."""
        from repro.sim.process import Process

        return Process(self, generator, name=name)

    def call_later(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after *delay* simulated seconds (no process)."""
        event = self.timeout(delay)
        event.callbacks.append(lambda _ev: fn(*args))

    # -- heap internals ---------------------------------------------------
    def _enqueue_event(self, event: Event, delay: float = 0.0) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, event))

    # -- run loop ---------------------------------------------------------
    # The three run loops below inline step()'s body: they are the hottest
    # frames of every simulation (one iteration per event), and the method
    # call + repeated attribute lookups cost ~15% of total runtime at
    # benchmark scale.  step() stays as the single-event API.

    def step(self) -> None:
        """Process the single next event on the heap."""
        if not self._heap:
            raise SimulationError("step() on an empty event heap")
        when, _seq, event = heapq.heappop(self._heap)
        if when < self.now:
            raise SimulationError(f"time went backwards: {when} < {self.now}")
        self.now = when
        self._event_count += 1
        if self.trace_hook is not None:
            self.trace_hook(when, event)
        event._process()

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the heap drains, the clock passes *until*, or *max_events*.

        ``until`` is an absolute simulated time; events scheduled at exactly
        *until* are processed, and the clock is left at ``max(now, until)``
        whether the heap drained early or still holds later events (the same
        semantics as :meth:`run_to` -- in particular the clock never moves
        backwards when *until* is already in the past).  ``max_events`` is a
        safety valve for tests: exceeding it raises :class:`SimulationError`
        rather than hanging.
        """
        heap = self._heap
        pop = heapq.heappop
        hook = self.trace_hook
        processed = 0
        while heap:
            if until is not None and heap[0][0] > until:
                break
            when, _seq, event = pop(heap)
            if when < self.now:
                raise SimulationError(
                    f"time went backwards: {when} < {self.now}")
            self.now = when
            self._event_count += 1
            if hook is not None:
                hook(when, event)
            event._process()
            processed += 1
            if max_events is not None and processed > max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events} at t={self.now:.6f}")
        if until is not None and until > self.now:
            self.now = until

    def run_to(self, when: float, max_events: Optional[int] = None) -> None:
        """Advance the clock to the absolute instant *when*.

        Processes every event scheduled at or before *when* (inclusive: two
        runs stopped at the same instant see the same event prefix, which is
        what makes crash-state replay deterministic) and leaves the clock at
        exactly *when* even if the heap still holds later events or drained
        early.
        """
        heap = self._heap
        pop = heapq.heappop
        hook = self.trace_hook
        processed = 0
        while heap and heap[0][0] <= when:
            event_when, _seq, event = pop(heap)
            if event_when < self.now:
                raise SimulationError(
                    f"time went backwards: {event_when} < {self.now}")
            self.now = event_when
            self._event_count += 1
            if hook is not None:
                hook(event_when, event)
            event._process()
            processed += 1
            if max_events is not None and processed > max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events} at t={self.now:.6f}")
        self.now = max(self.now, when)

    def run_until(self, event: Event, max_events: Optional[int] = None) -> Any:
        """Run until *event* has been processed; return its value.

        Raises the event's exception if it failed, and
        :class:`SimulationError` if the heap drains first.
        """
        heap = self._heap
        pop = heapq.heappop
        hook = self.trace_hook
        processed = 0
        while not event._processed:
            if not heap:
                raise SimulationError(
                    f"event heap drained at t={self.now:.6f} before the awaited "
                    f"event fired (deadlock or missing wakeup)")
            when, _seq, next_event = pop(heap)
            if when < self.now:
                raise SimulationError(
                    f"time went backwards: {when} < {self.now}")
            self.now = when
            self._event_count += 1
            if hook is not None:
                hook(when, next_event)
            next_event._process()
            processed += 1
            if max_events is not None and processed > max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events} at t={self.now:.6f}")
        if not event.ok:
            raise event.value
        return event.value

    def run_all(self, events: list[Event], max_events: Optional[int] = None) -> list[Any]:
        """Run until every event in *events* has fired; return their values."""
        return [self.run_until(event, max_events=max_events) for event in events]

    @property
    def events_processed(self) -> int:
        """Total events processed since construction (for instrumentation)."""
        return self._event_count

    def __repr__(self) -> str:
        return f"<Engine t={self.now:.6f} pending={len(self._heap)}>"
