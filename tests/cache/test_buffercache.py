"""Unit/integration tests for the buffer cache."""

import pytest

from tests.cache.conftest import CacheRig


class TestGetblkBread:
    def test_getblk_returns_busy_buffer(self, rig):
        def body():
            buf = yield from rig.cache.getblk(10, 1024)
            assert buf.busy and not buf.valid
            rig.cache.brelse(buf)

        rig.run(body())

    def test_bread_fetches_disk_contents(self, rig):
        rig.disk.write_now(20, b"\xcd" * 1024)  # daddr 10 == lbn 20

        def body():
            buf = yield from rig.cache.bread(10, 1024)
            data = bytes(buf.data)
            rig.cache.brelse(buf)
            return data

        assert rig.run(body()) == b"\xcd" * 1024

    def test_second_bread_is_a_cache_hit(self, rig):
        def body():
            buf = yield from rig.cache.bread(10, 1024)
            rig.cache.brelse(buf)
            buf = yield from rig.cache.bread(10, 1024)
            rig.cache.brelse(buf)

        rig.run(body())
        assert rig.disk.stats.reads == 1
        assert rig.cache.hits >= 1

    def test_busy_buffer_blocks_second_process(self, rig):
        eng = rig.engine
        order = []

        def holder():
            buf = yield from rig.cache.getblk(10, 1024)
            order.append(("hold", eng.now))
            yield eng.timeout(1.0)
            rig.cache.brelse(buf)

        def contender():
            yield eng.timeout(0.1)
            buf = yield from rig.cache.getblk(10, 1024)
            order.append(("got", eng.now))
            rig.cache.brelse(buf)

        procs = [eng.process(holder()), eng.process(contender())]
        eng.run_all(procs)
        assert order == [("hold", 0.0), ("got", 1.0)]

    def test_grow_for_fragment_extension(self, rig):
        def body():
            buf = yield from rig.cache.getblk(10, 1024)
            buf.data[:] = b"\x11" * 1024
            rig.cache.bdwrite(buf)
            buf = yield from rig.cache.getblk(10, 2048)
            assert buf.size == 2048
            assert bytes(buf.data[:1024]) == b"\x11" * 1024
            assert bytes(buf.data[1024:]) == bytes(1024)
            rig.cache.brelse(buf)

        rig.run(body())

    def test_shrinking_get_is_an_error(self, rig):
        def body():
            buf = yield from rig.cache.getblk(10, 2048)
            rig.cache.brelse(buf)
            yield from rig.cache.getblk(10, 1024)

        with pytest.raises(Exception, match="larger live buffer"):
            rig.run(body())

    def test_unaligned_size_rejected(self, rig):
        def body():
            yield from rig.cache.getblk(10, 1000)

        with pytest.raises(Exception):
            rig.run(body())


class TestWritePaths:
    def test_bwrite_is_synchronous_and_persists(self, rig):
        def body():
            buf = yield from rig.cache.getblk(10, 1024)
            buf.data[:] = b"\x77" * 1024
            buf.valid = True
            yield from rig.cache.bwrite(buf)
            return rig.engine.now

        elapsed = rig.run(body())
        assert elapsed > 0.001  # waited for mechanical I/O
        assert rig.disk.storage.read(20, 2) == b"\x77" * 1024

    def test_bdwrite_does_not_touch_disk(self, rig):
        def body():
            buf = yield from rig.cache.getblk(10, 1024)
            buf.data[:] = b"\x88" * 1024
            rig.cache.bdwrite(buf)

        rig.run(body())
        assert rig.disk.stats.writes == 0
        assert rig.cache.peek(10).dirty

    def test_bawrite_returns_before_completion(self, rig):
        def body():
            buf = yield from rig.cache.getblk(10, 1024)
            buf.data[:] = b"\x99" * 1024
            buf.valid = True
            request = yield from rig.cache.bawrite(buf)
            issued_at = rig.engine.now
            yield request.done
            return issued_at, rig.engine.now

        issued_at, done_at = rig.run(body())
        assert issued_at < done_at

    def test_write_lock_blocks_second_update_without_cb(self, rig):
        """Section 3.3: without -CB a second update waits for the I/O."""
        eng = rig.engine
        reacquired = []

        def body():
            buf = yield from rig.cache.getblk(10, 1024)
            buf.data[:] = b"\x01" * 1024
            buf.valid = True
            yield from rig.cache.bawrite(buf)
            buf = yield from rig.cache.getblk(10, 1024)  # must wait for I/O
            reacquired.append(eng.now)
            rig.cache.brelse(buf)

        rig.run(body())
        assert reacquired[0] >= 0.001  # at least a mechanical write later

    def test_block_copy_avoids_write_lock(self):
        """With -CB the buffer is immediately reusable after bawrite."""
        rig = CacheRig(block_copy=True)
        reacquired = []

        def body():
            buf = yield from rig.cache.getblk(10, 1024)
            buf.data[:] = b"\x01" * 1024
            buf.valid = True
            request = yield from rig.cache.bawrite(buf)
            buf = yield from rig.cache.getblk(10, 1024)
            reacquired.append(rig.engine.now)
            buf.data[:] = b"\x02" * 1024
            rig.cache.bdwrite(buf)
            yield request.done

        rig.run(body())
        assert reacquired[0] == 0.0  # no wait at all
        # the first write carried the snapshot, not the later update
        assert rig.disk.storage.read(20, 2) == b"\x01" * 1024

    def test_overlapping_writes_land_in_issue_order(self):
        rig = CacheRig(block_copy=True)

        def body():
            for value in (1, 2, 3):
                buf = yield from rig.cache.getblk(10, 1024)
                buf.data[:] = bytes([value]) * 1024
                buf.valid = True
                yield from rig.cache.bawrite(buf)
            yield from rig.cache.sync()

        rig.run(body())
        assert rig.disk.storage.read(20, 2) == b"\x03" * 1024

    def test_pre_write_hook_rewrites_image_not_memory(self, rig):
        def rollback(buf, image):
            image[0:4] = b"SAFE"

        def body():
            buf = yield from rig.cache.getblk(10, 1024)
            buf.data[:] = b"\xee" * 1024
            buf.valid = True
            buf.pre_write.append(rollback)
            yield from rig.cache.bwrite(buf)
            return bytes(rig.cache.peek(10).data[0:4])

        in_memory = rig.run(body())
        assert rig.disk.storage.read(20, 1)[0:4] == b"SAFE"
        assert in_memory == b"\xee" * 4  # memory copy untouched

    def test_post_write_hook_runs_at_completion(self, rig):
        fired = []

        def body():
            buf = yield from rig.cache.getblk(10, 1024)
            buf.valid = True
            buf.post_write.append(lambda b: fired.append(rig.engine.now))
            yield from rig.cache.bwrite(buf)

        rig.run(body())
        assert len(fired) == 1 and fired[0] > 0


class TestInvalidate:
    def test_invalidate_cancels_delayed_write(self, rig):
        def body():
            buf = yield from rig.cache.getblk(10, 1024)
            buf.data[:] = b"\x55" * 1024
            rig.cache.bdwrite(buf)
            rig.cache.invalidate(10, 1)
            yield from rig.cache.sync()

        rig.run(body())
        assert rig.disk.stats.writes == 0
        assert rig.cache.peek(10) is None

    def test_invalidate_range_covers_inner_buffers(self, rig):
        def body():
            for daddr in (8, 9, 10):
                buf = yield from rig.cache.getblk(daddr, 1024)
                rig.cache.bdwrite(buf)
            rig.cache.invalidate(8, 2)

        rig.run(body())
        assert rig.cache.peek(8) is None
        assert rig.cache.peek(9) is None
        assert rig.cache.peek(10) is not None


class TestReclaim:
    def test_clean_buffers_evicted_lru(self):
        rig = CacheRig(capacity_bytes=4 * 1024)

        def body():
            for daddr in range(8):
                buf = yield from rig.cache.bread(daddr * 8, 1024)
                rig.cache.brelse(buf)

        rig.run(body())
        assert rig.cache.used_bytes <= 4 * 1024
        assert rig.cache.peek(0) is None      # oldest evicted
        assert rig.cache.peek(56) is not None  # newest resident

    def test_dirty_cache_forces_flush_and_makes_progress(self):
        rig = CacheRig(capacity_bytes=4 * 1024)

        def body():
            for daddr in range(12):
                buf = yield from rig.cache.getblk(daddr * 8, 1024)
                buf.data[:] = bytes([daddr]) * 1024
                rig.cache.bdwrite(buf)
            yield from rig.cache.sync()

        rig.run(body())
        assert rig.cache.flushes_forced > 0
        # every delayed write eventually landed
        for daddr in range(12):
            assert rig.disk.storage.read(daddr * 16, 2) == bytes([daddr]) * 1024

    def test_held_buffers_survive_reclaim(self):
        rig = CacheRig(capacity_bytes=4 * 1024)

        def body():
            pinned = yield from rig.cache.bread(0, 1024)
            pinned.hold_count += 1
            rig.cache.brelse(pinned)
            for daddr in range(1, 12):
                buf = yield from rig.cache.bread(daddr * 8, 1024)
                rig.cache.brelse(buf)
            return pinned

        pinned = rig.run(body())
        assert rig.cache.peek(0) is pinned


class TestSync:
    def test_sync_flushes_everything(self, rig):
        def body():
            for daddr in (0, 8, 16):
                buf = yield from rig.cache.getblk(daddr, 1024)
                buf.data[:] = b"\x42" * 1024
                rig.cache.bdwrite(buf)
            yield from rig.cache.sync()

        rig.run(body())
        assert not rig.cache.dirty_buffers()
        assert rig.disk.stats.writes >= 1
        for daddr in (0, 8, 16):
            assert rig.disk.storage.read(daddr * 2, 2) == b"\x42" * 1024
