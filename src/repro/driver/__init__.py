"""Device driver: request queueing, scheduling, and ordering enforcement.

This package implements the paper's section 3 machinery:

* :class:`DiskRequest` -- a request tagged with an ordering flag (section
  3.1) and/or an explicit dependency list (section 3.2, scheduler chains).
* Ordering policies -- the four flag semantics (``Full``, ``Back``, ``Part``,
  ``Ignore``), each with the optional ``-NR`` read-bypass, plus the chains
  policy.
* :class:`DeviceDriver` -- a C-LOOK elevator that dispatches one (possibly
  concatenated) request at a time to the drive, honouring whatever the
  ordering policy permits, and collecting per-request traces (issue /
  dispatch / completion times) like the paper's instrumented driver.
"""

from repro.driver.request import DiskRequest, IOKind
from repro.driver.ordering import (
    ChainsPolicy,
    FlagPolicy,
    FlagSemantics,
    OrderingPolicy,
)
from repro.driver.driver import DeviceDriver

__all__ = [
    "ChainsPolicy",
    "DeviceDriver",
    "DiskRequest",
    "FlagPolicy",
    "FlagSemantics",
    "IOKind",
    "OrderingPolicy",
]
