"""Unit tests for the sector stores and on-board prefetch cache.

Every store test runs against each registered implementation (plus the
flat store on its forced ``bytearray`` fallback backing): the suite IS the
conformance contract both must satisfy identically.
"""

import pytest
from hypothesis import given, strategies as st

from repro.disk import DiskGeometry, FlatSectorStore, SectorStore
from repro.disk.cache import PrefetchCache


def make_store(variant: str, geometry=None):
    geometry = geometry or DiskGeometry()
    if variant == "dict":
        return SectorStore(geometry)
    store = FlatSectorStore(geometry)
    if variant == "flat-fallback":
        # force the pure-python scan path regardless of numpy presence
        store._use_np = False
        store.backend = "bytearray"
    return store


STORE_VARIANTS = ["dict", "flat", "flat-fallback"]


@pytest.fixture(params=STORE_VARIANTS)
def store(request):
    return make_store(request.param)


class TestSectorStore:
    def test_holes_read_as_zeros(self, store):
        assert store.read(100) == bytes(512)

    def test_write_read_roundtrip(self, store):
        payload = bytes(range(256)) * 2
        store.write(7, payload)
        assert store.read(7) == payload

    def test_multisector_roundtrip(self, store):
        payload = b"\xab" * (512 * 3)
        store.write(10, payload)
        assert store.read(10, 3) == payload
        assert store.read(11) == b"\xab" * 512

    def test_unaligned_write_rejected(self, store):
        with pytest.raises(ValueError):
            store.write(0, b"short")

    def test_out_of_range_rejected(self, store):
        with pytest.raises(ValueError):
            store.read(store.geometry.total_sectors, 1)
        with pytest.raises(ValueError):
            store.read(0, 0)

    def test_partial_write_applies_prefix_only(self, store):
        data = b"\x01" * 512 + b"\x02" * 512 + b"\x03" * 512
        store.write_partial(50, data, 2)
        assert store.read(50) == b"\x01" * 512
        assert store.read(51) == b"\x02" * 512
        assert store.read(52) == bytes(512)

    def test_snapshot_is_independent(self, store):
        store.write(0, b"\x11" * 512)
        snap = store.snapshot()
        store.write(0, b"\x22" * 512)
        assert snap.read(0) == b"\x11" * 512
        assert store.read(0) == b"\x22" * 512

    @given(st.lists(st.tuples(st.integers(0, 1000),
                              st.binary(min_size=512, max_size=512)),
                    max_size=20))
    def test_last_write_wins(self, writes):
        for variant in STORE_VARIANTS:
            store = make_store(variant)
            expected = {}
            for lbn, data in writes:
                store.write(lbn, data)
                expected[lbn] = data
            for lbn, data in expected.items():
                assert store.read(lbn) == data


class TestStoreConformance:
    """Both stores must report identical instrumentation, not just bytes."""

    def drive(self, store):
        store.write(3, b"\x10" * 512)
        store.write(3, b"\x11" * 512)          # overwrite: counts again
        store.write(100, b"\x22" * (512 * 4))  # multi-sector
        store.write_partial(200, b"\x33" * (512 * 3), 2)
        store.write_partial(300, b"\x44" * 512, 0)  # nothing lands
        store.write(400, bytes(512))           # explicit zeros
        return store

    def test_counters_identical_across_stores(self):
        stores = [self.drive(make_store(v)) for v in STORE_VARIANTS]
        written = {s.sectors_written for s in stores}
        lengths = {len(s) for s in stores}
        digests = {s.digest() for s in stores}
        assert written == {1 + 1 + 4 + 2 + 1}
        assert lengths == {1 + 4 + 2 + 1}  # distinct sectors ever written
        assert digests and len(digests) == 1

    def test_snapshot_inherits_counters(self):
        for variant in STORE_VARIANTS:
            store = self.drive(make_store(variant))
            snap = store.snapshot()
            assert snap.sectors_written == store.sectors_written
            assert len(snap) == len(store)
            assert snap.digest() == store.digest()

    def test_load_from_preserves_counter(self):
        source = self.drive(make_store("dict"))
        for variant in STORE_VARIANTS:
            store = make_store(variant)
            store.write(7, b"\x55" * 512)
            before = store.sectors_written
            store.load_from(source)
            assert store.sectors_written == before
            assert store.digest() == source.digest()

    def test_iter_nonzero_identical(self):
        rows = [list(self.drive(make_store(v)).iter_nonzero())
                for v in STORE_VARIANTS]
        assert rows[0] == rows[1] == rows[2]
        assert all(lbn != 400 for lbn, _ in rows[0])  # zeros canonicalized

    def test_flat_view_identical(self):
        views = [bytes(self.drive(make_store(v)).flat_view(512))
                 for v in STORE_VARIANTS]
        assert views[0] == views[1] == views[2]


class TestPrefetchCache:
    def test_miss_then_hit_after_insert(self):
        cache = PrefetchCache(segments=2, prefetch_sectors=8)
        assert not cache.lookup(100, 4)
        cache.insert_after_read(100, 4)
        assert cache.lookup(100, 4)

    def test_prefetch_extends_coverage(self):
        cache = PrefetchCache(segments=2, prefetch_sectors=8)
        cache.insert_after_read(100, 4)
        assert cache.lookup(104, 8)       # the prefetched run
        assert not cache.lookup(104, 9)   # beyond it

    def test_sequential_reads_extend_segment(self):
        cache = PrefetchCache(segments=1, prefetch_sectors=4)
        cache.insert_after_read(0, 4)
        cache.insert_after_read(4, 4)
        assert cache.segments == [(0, 12)]

    def test_lru_eviction(self):
        cache = PrefetchCache(segments=2, prefetch_sectors=0)
        cache.insert_after_read(0, 4)
        cache.insert_after_read(100, 4)
        cache.insert_after_read(200, 4)   # evicts the (0,4) segment
        assert not cache.lookup(0, 4)
        assert cache.lookup(100, 4)
        assert cache.lookup(200, 4)

    def test_write_invalidates_overlap(self):
        cache = PrefetchCache(segments=2, prefetch_sectors=0)
        cache.insert_after_read(10, 10)
        cache.invalidate(15, 1)
        assert not cache.lookup(10, 4)

    def test_write_elsewhere_keeps_segment(self):
        cache = PrefetchCache(segments=2, prefetch_sectors=0)
        cache.insert_after_read(10, 10)
        cache.invalidate(50, 4)
        assert cache.lookup(10, 10)

    def test_zero_segments_never_hits(self):
        cache = PrefetchCache(segments=0)
        cache.insert_after_read(0, 4)
        assert not cache.lookup(0, 1)

    def test_prefetch_clipped_at_disk_end(self):
        cache = PrefetchCache(segments=1, prefetch_sectors=100, total_sectors=110)
        cache.insert_after_read(100, 5)
        assert cache.segments == [(100, 110)]
