"""Command-line entry point.

``python -m repro.harness [scale]``
    Runs the headline comparison (tables 1 and 2) at the given scale
    (default 0.08, a quick look) and prints the paper-style rows.

``python -m repro.harness trace <copy|remove> [--scheme S] [options]``
    Runs one benchmark cell with observability on and writes a
    Perfetto-loadable ``trace_event`` JSON plus a plain-text flame summary
    under ``results/traces/`` (see ``docs/observability.md``).

``python -m repro.harness faults [options]``
    Runs the seeded disk-fault sweep across ordering schemes and writes
    ``results/fault_report.txt`` (see ``docs/fault-injection.md``).
    Exits nonzero only on silent corruption.

``python -m repro.harness regress [options]``
    Compares the freshest ``BENCH_perf.json`` session against the
    stratified per-cell history and exits 1 on a significant regression
    (see ``docs/performance.md``).

Every subcommand appends one structured record to the run ledger
(``results/ledger.jsonl`` unless ``REPRO_LEDGER`` redirects or disables
it) so past invocations stay greppable across sessions.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.harness.report import format_table
from repro.obs.observatory import append_ledger, snapshot_digest
from repro.ordering.registry import display_aliases
from repro.sim import KERNELS
from repro.harness.runner import (
    FULL_CACHE_BYTES,
    STANDARD_SCHEMES,
    run_copy,
    run_remove,
    standard_scheme_config,
)
from repro.workloads.trees import TreeSpec

#: short scheme aliases accepted by the trace subcommand, straight from
#: the single scheme registry
SCHEME_ALIASES = display_aliases()


def _resolve_scheme(name: str) -> str:
    if name in STANDARD_SCHEMES:
        return name
    try:
        return SCHEME_ALIASES[name.lower()]
    except KeyError:
        choices = sorted(SCHEME_ALIASES) + STANDARD_SCHEMES
        raise SystemExit(f"unknown scheme {name!r}; choose from {choices}")


def compare_main(argv: list[str]) -> int:
    """The original headline comparison (``python -m repro.harness [scale]``)."""
    scale = float(argv[1]) if len(argv) > 1 else 0.08
    tree = TreeSpec().scaled(scale)
    cache = max(1 << 20, int(FULL_CACHE_BYTES * scale))
    print(f"# 4-user copy/remove at scale {scale} "
          f"({tree.files} files, {tree.total_bytes / 1e6:.1f} MB per user)\n")

    start = time.perf_counter()
    benches = {}
    for title, runner in (("4-user copy", run_copy),
                          ("4-user remove", run_remove)):
        results = {}
        for name in STANDARD_SCHEMES:
            config = standard_scheme_config(name, cache_bytes=cache)
            results[name] = runner(config, 4, tree)
        base = results["No Order"].elapsed
        rows = [[name, r.elapsed, 100 * r.elapsed / base, r.cpu_time,
                 r.disk_requests, r.io_response_avg * 1000]
                for name, r in results.items()]
        print(format_table(
            f"{title} (simulated seconds)",
            ["Scheme", "Elapsed", "% of No Order", "CPU",
             "Disk requests", "I/O resp (ms)"], rows))
        print()
        benches[title] = {name: round(r.elapsed, 3)
                          for name, r in results.items()}
    append_ledger("bench", {
        "scale": scale,
        "users": 4,
        "wall_seconds": round(time.perf_counter() - start, 3),
        "sim_elapsed": benches,
    })
    return 0


def trace_main(argv: list[str]) -> int:
    """Run one traced benchmark cell and export timeline + flame summary."""
    from repro.obs import flame_summary, summarize, write_trace

    parser = argparse.ArgumentParser(
        prog="python -m repro.harness trace",
        description="Run one benchmark cell with tracing on and export a "
                    "Perfetto trace + flame summary.")
    parser.add_argument("bench", choices=["copy", "remove"],
                        help="which benchmark to trace")
    parser.add_argument("--scheme", default="softupdates",
                        help="ordering scheme (alias like 'softupdates' or "
                             "full name like 'Soft Updates')")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="workload scale, 1.0 = paper scale "
                             "(default 0.05: traces stay small)")
    parser.add_argument("--users", type=int, default=1,
                        help="concurrent user processes (default 1)")
    parser.add_argument("--seed", type=int, default=None,
                        help="tree RNG seed (default: the spec's own)")
    parser.add_argument("--kernel", default=None, choices=sorted(KERNELS),
                        help="event-loop kernel (default: REPRO_KERNEL, "
                             "then the pure-python reference; the choice "
                             "never changes the simulation)")
    parser.add_argument("--profile", action="store_true",
                        help="attach the per-layer counting profiler and "
                             "print the layer breakdown (also writes "
                             "<slug>.profile.txt next to the trace)")
    parser.add_argument("--out", default="results/traces",
                        help="output directory (default results/traces)")
    args = parser.parse_args(argv)

    scheme = _resolve_scheme(args.scheme)
    tree = TreeSpec().scaled(args.scale)
    cache = max(1 << 20, int(FULL_CACHE_BYTES * args.scale))
    config = standard_scheme_config(scheme, cache_bytes=cache,
                                    kernel=args.kernel)
    config.observe = True
    if args.profile:
        config.profile = True

    captured = {}
    runner = run_copy if args.bench == "copy" else run_remove
    label = f"{args.bench} {scheme} scale={args.scale} users={args.users}"
    start = time.perf_counter()
    result = runner(config, args.users, tree, label=label, seed=args.seed,
                    on_machine=lambda machine: captured.update(m=machine))
    wall = time.perf_counter() - start
    machine = captured["m"]

    outdir = Path(args.out)
    outdir.mkdir(parents=True, exist_ok=True)
    slug = f"{args.bench}-{scheme.lower().replace(' ', '-')}"
    trace_path = outdir / f"{slug}.trace.json"
    flame_path = outdir / f"{slug}.flame.txt"
    write_trace(machine.obs, trace_path, label=label)
    flame_path.write_text(flame_summary(machine.obs, label=label) + "\n")

    print(f"# traced {label}")
    print(f"  elapsed {result.elapsed:.3f}s simulated, "
          f"{result.disk_requests} disk requests, "
          f"{len(machine.obs.tracer.spans)} spans, "
          f"{machine.engine.events_processed} events "
          f"({machine.engine.kernel_name} kernel)")
    for track, summary in sorted(summarize(machine.obs).items()):
        print(f"  track {track}: {summary.active:.3f}s active, "
              f"{100 * summary.coverage:.1f}% under named spans")
    print(f"  wrote {trace_path}")
    print(f"  wrote {flame_path}")
    if args.profile:
        from repro.obs import format_profile_report
        report = format_profile_report(
            [(label, wall, machine.obs.snapshot())], title=label)
        profile_path = outdir / f"{slug}.profile.txt"
        profile_path.write_text(report + "\n")
        print()
        print(report)
        print(f"  wrote {profile_path}")
    print("  open the JSON in https://ui.perfetto.dev to browse the timeline")
    append_ledger("trace", {
        "bench": args.bench,
        "scheme": scheme,
        "scale": args.scale,
        "users": args.users,
        "kernel": machine.engine.kernel_name,
        "wall_seconds": round(wall, 3),
        "sim_seconds": round(result.elapsed, 3),
        "sim_events": machine.engine.events_processed,
        "events_per_second": round(machine.engine.events_processed
                                   / max(wall, 1e-9)),
        "snapshot_digest": snapshot_digest(machine.obs.snapshot()),
        "profile": bool(args.profile),
    })
    return 0


def main(argv: list[str]) -> int:
    if len(argv) > 1 and argv[1] == "trace":
        return trace_main(argv[2:])
    if len(argv) > 1 and argv[1] == "faults":
        from repro.harness.faults import main as faults_main
        return faults_main(argv[2:])
    if len(argv) > 1 and argv[1] == "regress":
        from repro.harness.regress import main as regress_main
        return regress_main(argv[2:])
    return compare_main(argv)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
