"""The crash-point exploration engine, exercised end to end.

Tier-1 keeps the sweeps budgeted (a sampled subset of crash points, small
pools); the ``slow`` marker runs the full sweeps the acceptance story is
about: >=200 crash points per scheme, pool size >= 4, serial == parallel.
"""

import pytest

from repro.harness.recording import record_run
from repro.integrity.explorer import (
    CrashPoint,
    build_machine,
    build_workload,
    enumerate_crash_points,
    explore,
    verify_crash_point,
    _Task,
)
from repro.integrity.invariants import Severity


def small_sweep(scheme, workload="microbench", **kwargs):
    kwargs.setdefault("seed", 0)
    kwargs.setdefault("jobs", 1)
    kwargs.setdefault("max_points", 40)
    return explore(scheme, workload, **kwargs)


class TestRecording:
    def test_windows_are_disjoint_and_ordered(self):
        machine = build_machine("conventional")
        recorded = record_run(machine,
                              build_workload(machine, "microbench", 0, 8))
        assert recorded.windows, "a create workload must write something"
        for before, after in zip(recorded.windows, recorded.windows[1:]):
            assert before.complete_time <= after.transfer_start
        assert recorded.quiesce_time >= recorded.workload_done
        assert recorded.windows[-1].complete_time <= recorded.quiesce_time

    def test_quiescent_machine_has_nothing_dirty(self):
        machine = build_machine("softupdates")
        record_run(machine, build_workload(machine, "microbench", 0, 8))
        assert machine.driver.idle
        assert not machine.cache.dirty_buffers()
        assert machine.scheme.pending_work() == 0

    def test_recording_is_deterministic(self):
        runs = []
        for _ in range(2):
            machine = build_machine("chains")
            runs.append(record_run(
                machine, build_workload(machine, "churn", 11, 20)))
        assert runs[0].windows == runs[1].windows
        assert runs[0].events_processed == runs[1].events_processed
        assert runs[0].quiesce_time == runs[1].quiesce_time


class TestEnumeration:
    def test_boundaries_and_partials_enumerated(self):
        machine = build_machine("conventional")
        recorded = record_run(machine,
                              build_workload(machine, "microbench", 0, 8))
        points = enumerate_crash_points(recorded, samples_per_write=2,
                                        max_points=None)
        labels = [p.label for p in points]
        assert any(label.endswith("start") for label in labels)
        assert any(label.endswith("complete") for label in labels)
        assert any("sectors" in label for label in labels)
        # one start + one complete per window, partials only where the
        # window spans more than one sector
        starts = sum(1 for label in labels if label.endswith("start"))
        completes = sum(1 for label in labels if label.endswith("complete"))
        assert starts == completes == len(recorded.windows)
        times = [p.time for p in points]
        assert times == sorted(times)

    def test_budget_sampling_is_deterministic(self):
        machine = build_machine("conventional")
        recorded = record_run(machine,
                              build_workload(machine, "microbench", 0, 8))
        once = enumerate_crash_points(recorded, 2, 10, sample_seed=5)
        again = enumerate_crash_points(recorded, 2, 10, sample_seed=5)
        assert once == again and len(once) == 10
        other = enumerate_crash_points(recorded, 2, 10, sample_seed=6)
        assert [p.time for p in other] != [p.time for p in once]


class TestBudgetedSweeps:
    def test_noorder_microbench_shows_corruption(self):
        report = small_sweep("noorder", max_points=None)
        assert report.points_violating(), "No Order must violate something"
        assert report.corruption_points, \
            "No Order must show corruption-class violations"
        # ... all of it within its own (unsafe) declaration
        assert report.clean

    @pytest.mark.parametrize("scheme", ["conventional", "softupdates"])
    def test_safe_schemes_show_no_corruption(self, scheme):
        report = small_sweep(scheme)
        assert not report.corruption_points, [
            (f.index, f.label, [v.message for v in f.violations[:3]])
            for f in report.corruption_points]
        assert report.clean

    def test_softupdates_leaks_are_permitted_not_hidden(self):
        report = small_sweep("softupdates", max_points=None)
        counts = report.violation_counts
        assert counts.get("leak", 0) > 0, \
            "deferred deallocation should leak at some crash point"
        assert report.clean

    def test_serial_equals_parallel(self):
        serial = small_sweep("chains", max_points=16)
        parallel = small_sweep("chains", max_points=16, jobs=2)
        assert serial.findings == parallel.findings

    def test_default_sweep_synthesizes_with_zero_replays(self):
        report = small_sweep("conventional", max_points=16)
        assert report.mode == "synthesize"
        assert report.replays == 0
        assert report.log_bytes > 0
        assert report.enumerated_points >= report.points

    def test_nvram_falls_back_to_replay_oracle(self):
        # NVRAM's crash survivors live in battery-backed memory, invisible
        # to a media-log synthesis; the sweep must use the replay oracle
        report = small_sweep("nvram", max_points=8)
        assert report.mode == "replay"
        assert report.replays == report.points == 8

    def test_single_point_reproduces_sweep_finding(self):
        report = small_sweep("noorder", max_points=None)
        target = report.corruption_points[0]
        finding = verify_crash_point(_Task(
            "noorder", "microbench", 0, None, False, False,
            target.index, target.crash_time, target.label))
        assert finding == target

    def test_verify_repair_holds_for_softupdates(self):
        report = small_sweep("softupdates", max_points=24,
                             verify_repair=True)
        assert "unrepairable" not in report.violation_counts
        assert report.clean

    def test_secrets_closed_by_alloc_init(self):
        # soft updates enforces allocation initialization: no stale data
        report = small_sweep("softupdates", max_points=24, secrets=True)
        assert "stale-data" not in report.violation_counts
        assert report.clean


class TestCli:
    def test_cli_reports_and_exits_zero_within_declaration(self, capsys):
        from repro.integrity.explorer import main

        code = main(["--scheme", "noorder", "--workload", "microbench",
                     "--jobs", "1", "--max-points", "40"])
        out = capsys.readouterr().out
        assert code == 0
        assert "corruption" in out
        assert "PASS" in out

    def test_cli_json_mode(self, capsys):
        import json

        from repro.integrity.explorer import main

        code = main(["--scheme", "conventional", "--jobs", "1",
                     "--max-points", "12", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scheme"] == "conventional"
        assert payload["points"] == 12
        assert payload["clean"] is True

    def test_cli_single_point_mode(self, capsys):
        from repro.integrity.explorer import main

        code = main(["--scheme", "noorder", "--point", "0", "--jobs", "1"])
        assert code == 0
        out = capsys.readouterr().out
        # verified count AND full enumeration size are both stated
        assert "1 of " in out and "(subset)" in out

    def test_cli_states_budget_sampling(self, capsys):
        # satellite regression: a --max-points truncation is never silent;
        # the report must state enumerated vs verified counts
        from repro.integrity.explorer import main

        code = main(["--scheme", "noorder", "--jobs", "1",
                     "--max-points", "10"])
        assert code == 0
        out = capsys.readouterr().out
        assert "10 of " in out
        assert "sampled, --max-points 10" in out

    def test_cli_replay_oracle_flag(self, capsys):
        from repro.integrity.explorer import main

        code = main(["--scheme", "conventional", "--jobs", "1",
                     "--max-points", "8", "--replay"])
        assert code == 0
        out = capsys.readouterr().out
        assert "(seed 0, replay)" in out
        assert "8 replays" in out


class TestSchemeLookup:
    def test_unknown_scheme_is_a_value_error(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            build_machine("no-such-scheme")

    def test_scheme_constructor_keyerror_is_not_masked(self, monkeypatch):
        # regression: the lookup's try once swallowed KeyErrors raised by
        # the scheme *constructor* and reported "unknown scheme" instead
        import repro.integrity.explorer as explorer

        class Exploding:
            def __init__(self):
                raise KeyError("boom")

        monkeypatch.setitem(explorer.SCHEMES, "exploding", Exploding)
        with pytest.raises(KeyError, match="boom"):
            build_machine("exploding")


@pytest.mark.slow
class TestFullSweeps:
    """The acceptance-grade sweeps: every boundary, pool >= 4."""

    def test_parallel_full_sweep_matches_serial(self):
        serial = explore("conventional", "microbench", seed=0, jobs=1,
                         max_points=None)
        parallel = explore("conventional", "microbench", seed=0, jobs=4,
                           max_points=None)
        assert serial.points >= 200
        assert serial.findings == parallel.findings

    @pytest.mark.parametrize("scheme", ["conventional", "flag", "chains",
                                        "softupdates", "nvram"])
    def test_safe_schemes_full_sweep_clean(self, scheme):
        for seed in (0, 7):
            report = explore(scheme, "churn", seed=seed, jobs=4,
                             max_points=None, verify_repair=True)
            assert not report.corruption_points, [
                (f.index, f.label, [v.message for v in f.violations[:3]])
                for f in report.corruption_points]
            assert report.clean

    def test_noorder_full_sweep_breaks_integrity(self):
        corrupted = 0
        for seed in (0, 7):
            report = explore("noorder", "churn", seed=seed, jobs=4,
                             max_points=None)
            corrupted += len(report.corruption_points)
            assert report.clean  # unsafe by declaration, not by surprise
        assert corrupted > 0
