#!/usr/bin/env python3
"""I/O trace analysis: look at what the instrumented driver recorded.

The paper's methodology (section 2) instruments the device driver to
collect per-request queue and service delays.  The simulator keeps the same
trace; this example mines it: per-kind counts, response-time percentiles,
and a queue-depth timeline for a bursty removal under Scheduler Flag.

Run:  python examples/trace_analysis.py
"""

from repro.driver import FlagSemantics
from repro.harness.runner import flag_variant, run_remove
from repro.workloads.trees import TreeSpec


def percentile(values, fraction):
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]


def main() -> None:
    config = flag_variant(FlagSemantics.PART, read_bypass=True,
                          block_copy=True, cache_bytes=2 * 1024 * 1024)
    tree = TreeSpec().scaled(0.08)
    # keep the machine around: run_remove returns only the summary
    from repro.harness.runner import build_machine
    from repro.workloads.copybench import remove_tree_user
    from repro.workloads.trees import build_tree

    machine = build_machine(config)

    def builder():
        yield from machine.fs.mkdir("/u0")
        yield from build_tree(machine.fs, "/u0/tree", tree)

    machine.populate(builder(), cold_cache=True)
    mark = machine.driver.last_issued_id
    process = machine.spawn(remove_tree_user(machine, 0), name="user0")
    machine.run(process)
    machine.sync_and_settle()

    trace = [r for r in machine.driver.trace if r.id > mark]
    reads = [r for r in trace if not r.is_write]
    writes = [r for r in trace if r.is_write]

    print(f"requests: {len(trace)} ({len(reads)} reads, "
          f"{len(writes)} writes)")
    for label, subset in (("reads", reads), ("writes", writes)):
        if not subset:
            continue
        response = [r.response_time * 1000 for r in subset]
        queue = [r.queue_delay * 1000 for r in subset]
        print(f"  {label:6s} response ms: p50={percentile(response, .5):8.1f}"
              f"  p90={percentile(response, .9):8.1f}"
              f"  max={max(response):8.1f}")
        print(f"  {label:6s} queue    ms: p50={percentile(queue, .5):8.1f}"
              f"  p90={percentile(queue, .9):8.1f}")

    # a coarse queue-depth timeline: how the ordered-write queue builds up
    events = sorted([(r.issue_time, 1) for r in trace]
                    + [(r.complete_time, -1) for r in trace])
    depth, peak, timeline = 0, 0, []
    for when, delta in events:
        depth += delta
        peak = max(peak, depth)
        timeline.append((when, depth))
    print(f"peak driver queue depth: {peak}")
    buckets = {}
    for when, value in timeline:
        buckets[round(when, 0)] = max(buckets.get(round(when, 0), 0), value)
    for second in sorted(buckets):
        bar = "#" * min(60, buckets[second])
        print(f"  t={second:5.0f}s |{bar}")


if __name__ == "__main__":
    main()
