"""Generator-based simulated processes.

A :class:`Process` drives a generator: each value the generator yields must be
an :class:`~repro.sim.events.Event`; the process sleeps until the event fires
and is resumed with the event's value (or has the event's exception thrown
into it).  A process is itself an event, so processes can ``yield`` other
processes to join them, and ``return`` values propagate to joiners.

Sub-operations compose with ``yield from``, exactly like kernel code calling
helper routines that may block::

    def syscall(fs, path):
        inode = yield from fs.namei(path)     # may block on disk reads
        return inode
"""

from __future__ import annotations

from typing import Generator

from repro.sim.engine import Engine
from repro.sim.events import Event


class ProcessCrashed(RuntimeError):
    """Wraps an exception that escaped a simulated process."""

    def __init__(self, process: "Process", original: BaseException) -> None:
        super().__init__(f"process {process.name!r} crashed: {original!r}")
        self.process = process
        self.original = original


class Process(Event):
    """A running simulated process; also an event that fires on completion.

    Attributes of interest to instrumentation:

    * ``name`` -- label for traces and error messages.
    * ``cpu_time`` -- seconds of CPU charged via :class:`repro.sim.cpu.CPU`.
    * ``started_at`` / ``finished_at`` -- simulated lifetime bounds.
    """

    __slots__ = ("generator", "name", "cpu_time", "started_at", "finished_at",
                 "_waiting_on")

    def __init__(self, engine: Engine, generator: Generator, name: str = "") -> None:
        super().__init__(engine)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.cpu_time = 0.0
        self.started_at = engine.now
        self.finished_at: float | None = None
        self._waiting_on: Event | None = None
        # Kick off on the next kernel dispatch, at the current time.  The
        # bootstrap event goes through the ordinary wake path so process
        # start order is part of the kernel-conformance contract.
        start = Event(engine)
        start.callbacks.append(self._resume)
        start.succeed()

    @property
    def alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def _process(self) -> None:
        # A process that crashes with nobody joining it (no callbacks) would
        # otherwise die silently and deadlock everything that depends on its
        # side effects -- surface the crash at the engine loop instead.
        had_watchers = bool(self.callbacks)
        super()._process()
        if not self.ok and not had_watchers:
            raise self.value

    def _resume(self, fired: Event) -> None:
        """Advance the generator by one step.  Engine callback only."""
        self._waiting_on = None
        previous = self.engine.current_process
        self.engine.current_process = self
        try:
            if fired.ok:
                # The bootstrap event's value is None, so the first resume is
                # the generator-protocol-required send(None).
                target = self.generator.send(fired.value)
            else:
                target = self.generator.throw(fired.value)
        except StopIteration as stop:
            self.finished_at = self.engine.now
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - deliberate boundary
            self.finished_at = self.engine.now
            self.fail(ProcessCrashed(self, exc))
            return
        finally:
            self.engine.current_process = previous
        if not isinstance(target, Event):
            crash = TypeError(
                f"process {self.name!r} yielded {target!r}; processes must "
                f"yield Event instances")
            self.finished_at = self.engine.now
            self.fail(ProcessCrashed(self, crash))
            return
        self._waiting_on = target
        target._add_callback(self._resume)

    def __repr__(self) -> str:
        state = "done" if self.triggered else (
            "waiting" if self._waiting_on is not None else "ready")
        return f"<Process {self.name!r} {state}>"
