"""Property tests: ImageSynthesizer prefix arithmetic vs brute force.

The synthesizer earns its O(delta) cost with three pieces of arithmetic --
the retired-window cursor, the shared-image mutation for committed
prefixes, and the throwaway snapshot for revocable transient prefixes.
These tests pit it against a deliberately dumb model: for every query
instant, start from the base image and lay down each window's surviving
sectors **one at a time** into a plain dict.  No cursor, no sharing, no
incrementality -- just the definition.  Random logs (stdlib ``random``,
pinned seeds) interleave successes, torn writes, and transient-revoked
passes; random query instants land before, inside, and after every
window.  Any divergence in any sector fails.

The logs are generated, not recorded -- the point is to explore window /
fault shapes the simulator happens not to produce today.  Equivalence
against *recorded* runs is tests/integrity/test_synthesis_equivalence.py.
"""

import random

import pytest

from repro.disk.geometry import DiskGeometry
from repro.disk.storage import SectorStore
from repro.integrity.medialog import (
    ImageSynthesizer,
    MediaLog,
    MediaWrite,
    synthesize_crash_image,
)

SECTOR = 512
MAX_LBN = 96
GEOMETRY = DiskGeometry(cylinders=1, heads=1, sectors_per_track=MAX_LBN,
                        sector_size=SECTOR)


def random_base(rng) -> SectorStore:
    base = SectorStore(GEOMETRY)
    for lbn in rng.sample(range(MAX_LBN), rng.randrange(4, 16)):
        base.write(lbn, rng.randbytes(SECTOR))
    return base


def random_log(rng, windows: int) -> MediaLog:
    """Disjoint, time-ordered windows with every fault shape mixed in."""
    log = MediaLog(SECTOR)
    clock = 0.0
    for _ in range(windows):
        nsectors = rng.randrange(1, 9)
        lbn = rng.randrange(0, MAX_LBN - nsectors)
        data = rng.randbytes(nsectors * SECTOR)
        period = rng.choice([0.0005, 0.001, 0.004])
        start = clock + rng.random() * 0.01
        shape = rng.random()
        if shape < 0.55:        # success: everything persists
            durable = nsectors
            end = start + nsectors * period
        elif shape < 0.8:       # torn: the transfer stops mid-window
            durable = rng.randrange(0, nsectors)
            end = start + (durable + 1) * period
        else:                   # transient: a full pass, then revoked
            durable = 0
            end = start + nsectors * period
        log.record(lbn, data, start, period, end, durable)
        clock = end
    return log


def brute_force_image(base: SectorStore, log: MediaLog,
                      when: float) -> dict[int, bytes]:
    """Sector-replay model: apply each window's surviving prefix, one
    sector at a time, from scratch.  The definition, with none of the
    synthesizer's shortcuts."""
    image = {lbn: base.read(lbn) for lbn in range(MAX_LBN)}
    for entry in sorted(log.entries, key=lambda e: e.transfer_start):
        if entry.end <= when:
            surviving = entry.durable
        else:
            surviving = entry.sectors_in_flight_by(when, SECTOR)
        for k in range(surviving):
            image[entry.lbn + k] = entry.data[k * SECTOR:(k + 1) * SECTOR]
    return image


def store_sectors(store: SectorStore) -> dict[int, bytes]:
    return {lbn: store.read(lbn) for lbn in range(MAX_LBN)}


def query_instants(rng, log: MediaLog) -> list[float]:
    """Before, at, inside, and after every window -- plus random times."""
    instants = [0.0]
    for entry in log.entries:
        nsectors = len(entry.data) // SECTOR
        instants += [entry.transfer_start, entry.end,
                     entry.transfer_start + entry.sector_period * 0.5,
                     entry.transfer_start
                     + entry.sector_period * (nsectors - 0.5),
                     entry.end + 1e-6]
        instants.append(rng.uniform(entry.transfer_start, entry.end))
    instants.append(max(e.end for e in log.entries) + 1.0)
    return sorted(instants)


@pytest.mark.parametrize("seed", range(10))
def test_incremental_synthesis_matches_brute_force(seed):
    rng = random.Random(seed)
    base = random_base(rng)
    log = random_log(rng, windows=rng.randrange(5, 30))
    synth = ImageSynthesizer(base, log)
    for when in query_instants(rng, log):
        got = store_sectors(synth.image_at(when))
        want = brute_force_image(base, log, when)
        assert got == want, (
            f"seed {seed} t={when}: sectors "
            f"{sorted(l for l in want if got[l] != want[l])} diverge")


@pytest.mark.parametrize("seed", range(10, 15))
def test_one_shot_synthesis_matches_brute_force(seed):
    # the one-shot entry point builds a fresh synthesizer per call; it
    # must agree with the model at arbitrary (unsorted) instants
    rng = random.Random(seed)
    base = random_base(rng)
    log = random_log(rng, windows=rng.randrange(5, 20))
    instants = query_instants(rng, log)
    rng.shuffle(instants)
    for when in instants:
        got = store_sectors(synthesize_crash_image(base, log, when))
        assert got == brute_force_image(base, log, when), (seed, when)


@pytest.mark.parametrize("seed", [21, 22])
def test_transient_prefix_never_sticks_to_the_shared_image(seed):
    """A transient's mid-window pass is visible *at* that instant only;
    the next query past the window must show it revoked."""
    rng = random.Random(seed)
    base = random_base(rng)
    log = MediaLog(SECTOR)
    data = rng.randbytes(8 * SECTOR)
    lbn = 16
    # one transient window: full pass visible under the head, durable=0
    log.record(lbn, data, 1.0, 0.001, 1.008, 0)
    synth = ImageSynthesizer(base, log)

    mid = synth.image_at(1.0045)  # 4 sectors under the head
    assert mid.read(lbn, 4) == data[:4 * SECTOR]
    after = synth.image_at(2.0)   # window retired: revoked
    assert store_sectors(after) == store_sectors(base)


def test_backwards_queries_are_refused():
    rng = random.Random(99)
    base = random_base(rng)
    log = random_log(rng, windows=5)
    synth = ImageSynthesizer(base, log)
    synth.image_at(1.0)
    with pytest.raises(ValueError, match="time-sorted"):
        synth.image_at(0.5)


def test_base_image_is_never_mutated():
    rng = random.Random(7)
    base = random_base(rng)
    before = store_sectors(base)
    log = random_log(rng, windows=12)
    synth = ImageSynthesizer(base, log)
    for when in query_instants(rng, log):
        synth.image_at(when)
    assert store_sectors(base) == before
