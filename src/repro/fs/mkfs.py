"""mkfs: build an empty file system image directly on the sector store.

This runs outside simulated time (the paper's file systems were newfs'ed
before the clock that matters started).  It lays down the superblock, every
cylinder-group header with correct counts, and the root directory.
"""

from __future__ import annotations

from repro.disk.drive import Disk
from repro.fs import directory, journal
from repro.fs.alloc import CgView
from repro.fs.layout import Dinode, FileType, FSGeometry, ROOT_INO
from repro.fs.superblock import Superblock


def _frag_pad_dir(first_chunk: bytes, frag_size: int) -> bytes:
    """A directory fragment: the given first chunk plus empty chunks."""
    chunks = [first_chunk]
    while sum(len(c) for c in chunks) < frag_size:
        chunks.append(directory.empty_chunk())
    return b"".join(chunks)


def mkfs(disk: Disk, geometry: FSGeometry | None = None) -> Superblock:
    """Create the file system; returns the superblock that was written."""
    geometry = geometry or FSGeometry()
    sector = disk.geometry.sector_size
    spf = geometry.frag_size // sector
    if geometry.total_frags * spf > disk.geometry.total_sectors:
        raise ValueError(
            f"file system needs {geometry.total_frags * spf} sectors; disk "
            f"has {disk.geometry.total_sectors}")

    def write_frags(daddr: int, data: bytes) -> None:
        disk.write_now(daddr * spf, data)

    superblock = Superblock(geometry=geometry)
    write_frags(geometry.superblock_daddr,
                superblock.pack(geometry.frag_size))

    if geometry.journal_frags:
        # an empty journal: the durable tail points at position 0 of a log
        # whose first descriptor has not been written yet
        write_frags(geometry.journal_start,
                    journal.header_bytes(geometry.frag_size, 1, 0))

    # cylinder group headers
    for cg in range(geometry.ncg):
        header = bytearray(geometry.block_size)
        view = CgView.initialize(header, cg, geometry)
        view.free_inodes = geometry.ipg
        view.free_frags = geometry.dfrags_per_cg
        if cg == 0:
            # burn inodes 0 and 1, allocate the root inode (2)
            for index in range(3):
                view.set_inode(index, True)
            # root directory data: the first full block of cg 0's data area
            # (directories always occupy whole blocks in this implementation)
            view.set_frags(0, geometry.frags_per_block, True)
        write_frags(geometry.cg_base(cg), bytes(header))

    # root directory contents and inode
    root_daddr = geometry.cg_data_start(0)
    root_data = _frag_pad_dir(directory.new_dir_contents(ROOT_INO, ROOT_INO),
                              geometry.block_size)
    write_frags(root_daddr, root_data)

    root = Dinode(mode=int(FileType.DIRECTORY) | 0o755, nlink=2,
                  size=geometry.block_size,
                  frags_held=geometry.frags_per_block)
    root.direct[0] = root_daddr
    inode_block = bytearray(geometry.block_size)
    inode_block[geometry.inode_offset_in_block(ROOT_INO):
                geometry.inode_offset_in_block(ROOT_INO) + len(root.pack())] \
        = root.pack()
    write_frags(geometry.inode_block_daddr(ROOT_INO), bytes(inode_block))
    return superblock
