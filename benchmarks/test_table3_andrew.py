"""Table 3: the Andrew benchmark, five phases per scheme.

Paper findings asserted here: the metadata-intensive phases (1: mkdir,
2: copy) show the scheme differences; the read-only phases (3: stat,
4: read) are practically indistinguishable; the compile phase dominates the
total and improves only marginally for the non-conventional schemes.
"""

from repro.harness.report import format_table
from repro.harness.runner import (
    STANDARD_SCHEMES,
    build_machine,
    standard_scheme_config,
)
from repro.workloads.andrew import PHASE_NAMES, run_andrew

from benchmarks.conftest import SCALE, emit, run_grid

ITERATIONS = 3


def test_table3_andrew(once):
    def cell(name):
        def run():
            machine = build_machine(standard_scheme_config(
                name, alloc_init=(name == "Soft Updates")))
            return run_andrew(machine, iterations=ITERATIONS,
                              scale=max(SCALE, 0.3),
                              compile_scale=max(SCALE, 0.3))
        return name, run

    def experiment():
        return run_grid("table3_andrew",
                        [cell(name) for name in STANDARD_SCHEMES])

    results = once(experiment)
    rows = []
    for name, result in results.items():
        row = [name]
        for phase in PHASE_NAMES:
            mean, std = result.phases[phase]
            row.append(f"{mean:.2f} ({std:.2f})")
        total_mean, total_std = result.total
        row.append(f"{total_mean:.1f} ({total_std:.1f})")
        rows.append(row)
    emit("table3_andrew", format_table(
        f"Table 3: Andrew benchmark, seconds per phase, mean (std) of "
        f"{ITERATIONS} runs (scale={max(SCALE, 0.3)})",
        ["Ordering Scheme", "(1) MkDir", "(2) Copy", "(3) Stat",
         "(4) Read", "(5) Compile", "Total"], rows))

    def phase(name, p):
        return results[name].phases[p][0]

    # phase 1 (directory creation) shows the big conventional penalty
    assert phase("Conventional", "mkdir") > 1.5 * phase("Soft Updates",
                                                        "mkdir")
    # phase 2: the delayed-write schemes are fastest
    assert phase("Conventional", "copy") > phase("Soft Updates", "copy")
    # phases 3-4: read-only, practically indistinguishable (within 10%)
    for read_phase in ("stat", "read"):
        values = [phase(name, read_phase) for name in STANDARD_SCHEMES]
        assert max(values) <= min(values) * 1.10
    # the compile phase dominates the total for every scheme
    for name, result in results.items():
        assert result.phases["compile"][0] > 0.5 * result.total[0]
    # totals: conventional slowest, soft updates within a few % of no order
    totals = {name: result.total[0] for name, result in results.items()}
    assert totals["Conventional"] == max(totals.values())
    assert totals["Soft Updates"] <= totals["No Order"] * 1.05
