"""Timing model: seek curve, rotation, transfer and overheads.

Constants approximate the HP C2447 [HP92]: ~2.5 ms single-cylinder seek,
~10 ms average seek, ~22 ms full stroke, 5400 RPM (11.1 ms revolution),
SCSI-2 bus at 10 MB/s, ~1 ms controller overhead per command.  The seek
curve is the standard two-regime fit: square-root for short seeks
(acceleration-limited) and linear for long seeks (coast-limited).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.disk.geometry import DiskGeometry


@dataclass(frozen=True)
class DiskParameters:
    """Timing constants for the drive model (all times in seconds)."""

    rpm: float = 5400.0
    #: seek curve: short seeks  a + b*sqrt(distance)   (distance < crossover)
    seek_short_a: float = 0.0023
    seek_short_b: float = 0.00032
    #: seek curve: long seeks   c + d*distance         (distance >= crossover)
    seek_crossover: int = 1000
    seek_long_d: float = 0.0000128
    #: fixed per-command controller/firmware overhead
    controller_overhead: float = 0.0011
    #: head switch (settle) time when crossing tracks within a cylinder
    head_switch: float = 0.001
    #: SCSI bus bandwidth, bytes/second (cache-hit transfers run at bus speed)
    bus_bandwidth: float = 10e6

    @property
    def rotation_time(self) -> float:
        """Seconds per revolution."""
        return 60.0 / self.rpm

    def sector_period(self, geometry: DiskGeometry) -> float:
        """Seconds for one sector to pass under the head."""
        return self.rotation_time / geometry.sectors_per_track

    def seek_time(self, from_cyl: int, to_cyl: int) -> float:
        """Seconds to move the arm between cylinders (0 if already there)."""
        distance = abs(to_cyl - from_cyl)
        if distance == 0:
            return 0.0
        if distance < self.seek_crossover:
            return self.seek_short_a + self.seek_short_b * math.sqrt(distance)
        at_crossover = (self.seek_short_a
                        + self.seek_short_b * math.sqrt(self.seek_crossover))
        return at_crossover + self.seek_long_d * (distance - self.seek_crossover)

    def rotational_delay(self, geometry: DiskGeometry, now: float,
                         target_sector: int) -> float:
        """Seconds until *target_sector* next arrives under the head.

        The platter rotates continuously from t=0; sector *s* begins passing
        the head at times ``t mod T == s * T / spt`` (no track skew).
        """
        period = self.rotation_time
        target_angle_time = (target_sector % geometry.sectors_per_track) \
            * self.sector_period(geometry)
        phase = now % period
        delay = target_angle_time - phase
        if delay < 0:
            delay += period
        return delay

    def transfer_time(self, geometry: DiskGeometry, nsectors: int) -> float:
        """Media transfer time for *nsectors* contiguous sectors.

        Track and cylinder crossings within the range are charged the head
        switch / single-cylinder seek implicitly via full rotational pacing:
        one sector per sector-period.  (A small simplification: real drives
        lose a partial revolution per track switch; this keeps sequential
        bandwidth at the media rate, which is what matters for the benchmark
        comparisons.)
        """
        if nsectors < 0:
            raise ValueError("negative sector count")
        return nsectors * self.sector_period(geometry)

    def bus_time(self, geometry: DiskGeometry, nsectors: int) -> float:
        """Bus transfer time (cache-hit reads move at bus speed)."""
        return nsectors * geometry.sector_size / self.bus_bandwidth

    def average_seek_time(self, geometry: DiskGeometry) -> float:
        """Mean seek time over uniformly random cylinder pairs (reporting aid)."""
        span = geometry.cylinders
        # E[distance] for two uniform picks on [0, span) is span/3.
        return self.seek_time(0, span // 3)
