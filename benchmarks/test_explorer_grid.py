"""Crash-exploration throughput: media-log synthesis vs the replay oracle.

Not a paper table -- this grid tracks the *harness's own* performance, the
point of the synthesis pipeline: verifying a crash point costs O(sector
application + fsck) instead of O(full prefix replay).  Each cell runs one
serial sweep (the grid itself provides the parallelism) and its
:attr:`~repro.integrity.findings.ExplorationReport.perf_extra` payload --
crash points verified, enumerated count, replays, points/sec, record vs
verify wall split -- lands in the cell's ``BENCH_perf.json`` record, so
the trajectory shows synthesis throughput over time.
"""

from repro.harness.report import format_table

from benchmarks.conftest import emit, run_grid
from repro.integrity.explorer import explore

SCHEMES = ["noorder", "conventional", "softupdates"]
MODES = ["synthesize", "replay"]


def test_explorer_grid(once):
    def cell(scheme, mode):
        def run():
            return explore(scheme, "microbench", seed=0, jobs=1,
                           max_points=120,
                           synthesize=(mode == "synthesize"))
        return (scheme, mode), run

    def experiment():
        cells = [cell(scheme, mode)
                 for scheme in SCHEMES for mode in MODES]
        return run_grid("explorer", cells)

    results = once(experiment)
    rows = []
    for (scheme, mode), report in results.items():
        rows.append([scheme, mode, report.points, report.enumerated_points,
                     report.replays, round(report.record_wall_seconds, 3),
                     round(report.verify_wall_seconds, 3),
                     round(report.points_per_second, 1)])
    emit("explorer_grid", format_table(
        "Crash exploration: synthesis vs replay oracle "
        "(host wall clock -- varies run to run)",
        ["Scheme", "Mode", "Points", "Enumerated", "Replays",
         "Record (s)", "Verify (s)", "Points/s"], rows))

    for scheme in SCHEMES:
        synth = results[(scheme, "synthesize")]
        oracle = results[(scheme, "replay")]
        # synthesis does zero post-recording simulation ...
        assert synth.mode == "synthesize" and synth.replays == 0
        assert oracle.replays == oracle.points
        # ... yet reproduces the oracle's findings exactly ...
        assert synth.findings == oracle.findings
        # ... and never verifies slower than one replay per point
        assert synth.verify_wall_seconds <= oracle.verify_wall_seconds
