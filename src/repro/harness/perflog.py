"""Bounded perf-trajectory log with rotation and host-fact enrichment.

``BENCH_perf.json`` holds one record per benchmark session.  Appending
forever makes the file grow without bound (a session at scale 0.15 adds
~1 KB per grid), so :func:`append_record` keeps only the most recent
``keep`` sessions in the JSON file and rotates everything older into a
sibling ``*.history.jsonl`` -- one JSON record per line, append-only, cheap
to grep and safe to truncate independently.

Records are **enriched at append time** with the facts the regression gate
(:mod:`repro.harness.regress`) stratifies by: the event-loop kernel name
and the host's CPU count / numpy availability / platform.  Without them a
fast-kernel cell measured on a 16-core runner would be compared against a
python-kernel baseline from a 1-core container -- exactly the false alarm
(or false pass) the gate exists to prevent.  Records written before this
scheme are migrated leniently on load: :func:`migrate_record` fills the
missing keys with ``None`` placeholders, which the gate treats as an
incomparable stratum, never as a match.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

from repro.obs.observatory import host_facts

#: sessions retained in the main JSON file by default
DEFAULT_KEEP = 20

#: host-fact keys every record carries after migration
_HOST_KEYS = ("platform", "python", "cpus", "numpy")


def history_path_for(path: Path) -> Path:
    """The rotation target next to *path* (``BENCH_perf.history.jsonl``)."""
    return path.with_suffix("").with_suffix(".history.jsonl") \
        if path.suffix == ".json" else path.with_name(path.name + ".history.jsonl")


def migrate_record(record: dict) -> dict:
    """Fill stratification keys older records predate (in place).

    Lenient by design: a pre-enrichment record gains ``host`` (all-None)
    and ``kernel``/``scale``/``jobs`` placeholders instead of being
    rejected, so old trajectories still load, print, and rotate -- the
    regression gate simply cannot claim them as baselines for a stratum
    they never declared.
    """
    if not isinstance(record, dict):
        return record
    host = record.get("host")
    if not isinstance(host, dict):
        host = record["host"] = {}
    for key in _HOST_KEYS:
        host.setdefault(key, None)
    record.setdefault("kernel", None)
    record.setdefault("store", None)
    record.setdefault("scale", None)
    record.setdefault("jobs", None)
    return record


def load_records(path: Path) -> list:
    """The record list currently in *path* (tolerates a legacy single dict,
    a missing file, and unparseable content); records come back migrated."""
    if not path.exists():
        return []
    try:
        records = json.loads(path.read_text())
    except ValueError:
        return []
    if not isinstance(records, list):
        records = [records]
    return [migrate_record(record) for record in records]


def load_history(path: Path) -> list:
    """Rotated records from a ``*.history.jsonl`` (oldest first, migrated,
    corrupt lines skipped)."""
    path = Path(path)
    if not path.exists():
        return []
    records = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if isinstance(record, dict):
            records.append(migrate_record(record))
    return records


def append_record(path: Path, record: dict, keep: int = DEFAULT_KEEP,
                  history_path: Optional[Path] = None) -> list:
    """Append *record* to the trajectory at *path*, keeping the last *keep*.

    The record is stamped with :func:`~repro.obs.observatory.host_facts`
    unless it already carries a ``host`` block.  Overflowing records
    (oldest first) are appended to *history_path* (default:
    :func:`history_path_for`) as JSON lines before being dropped from the
    main file.  Returns the retained record list.
    """
    if keep < 1:
        raise ValueError("keep must be >= 1")
    path = Path(path)
    if "host" not in record:
        record = {**record, "host": host_facts()}
    records = load_records(path)
    records.append(migrate_record(dict(record)))
    overflow, retained = records[:-keep], records[-keep:]
    if overflow:
        target = Path(history_path) if history_path is not None \
            else history_path_for(path)
        with target.open("a") as fh:
            for old in overflow:
                fh.write(json.dumps(old, separators=(",", ":")) + "\n")
    path.write_text(json.dumps(retained, indent=2) + "\n")
    return retained


def build_session_record(grid_reports: list, scale: float, jobs: int,
                         kernel: str, timestamp: str,
                         store: str = None) -> dict:
    """The canonical per-session record flushed into ``BENCH_perf.json``.

    Shared by ``benchmarks/conftest.py`` (the real sessions) and the
    regression-gate tests (synthetic ones), so the gate can never drift
    from the producer's schema.
    """
    return {
        "timestamp": timestamp,
        "scale": scale,
        "jobs": jobs,
        "kernel": kernel,
        "store": store,
        "host": host_facts(),
        "wall_seconds": round(sum(g.wall_seconds for g in grid_reports), 3),
        "cell_wall_seconds": round(sum(g.cell_wall_total
                                       for g in grid_reports), 3),
        "sim_events": sum(g.sim_events for g in grid_reports),
        "grids": [
            {
                "name": grid.name,
                "jobs": grid.jobs,
                "wall_seconds": round(grid.wall_seconds, 3),
                "cell_wall_seconds": round(grid.cell_wall_total, 3),
                "sim_events": grid.sim_events,
                "cells": [
                    {
                        "key": cell.key,
                        "wall_seconds": round(cell.wall_seconds, 3),
                        "sim_events": cell.sim_events,
                        "events_per_second": round(cell.events_per_second),
                        **cell.extra,
                    }
                    for cell in grid.cells
                ],
            }
            for grid in grid_reports
        ],
    }
