"""Seeded fault-sweep harness: every scheme on an unreliable disk.

The acceptance bar for the fault-injection subsystem is *graceful
degradation*: with a seeded :class:`~repro.faults.FaultPlan` attached,
every ordering scheme must either recover to an fsck-clean image (the
driver's retry/remap machinery absorbed the faults) or surface a *typed*
degradation event (EIO to a syscall, a lost delayed write, a requeued
dependency batch, a wedged sync).  What is never acceptable is silent
corruption: an image that fails ``fsck`` with no degradation on record.

This runner sweeps a small matrix of (scheme x fault profile x seed)
cells.  Each cell builds the exploration testbed
(:func:`repro.integrity.explorer.build_machine`), runs the seeded churn
workload, settles, fscks the surviving image and classifies the outcome:

* ``clean``      -- fsck clean, no visible degradation (faults absorbed);
* ``recovered``  -- fsck clean after visible-but-handled degradation
  (requeues, redirties, failed ops that were reported to the caller);
* ``degraded``   -- fsck found damage, but every bit of it is accounted
  for by typed degradation events (lost writes, EIOs);
* ``SILENT-CORRUPTION`` -- fsck found damage with *no* typed degradation
  on record.  This is the bug class the sweep exists to catch, and the
  only verdict that makes the run exit nonzero.

Everything is deterministic in the seeds: the same invocation produces a
byte-identical ``results/fault_report.txt``.

CLI::

    python -m repro.harness faults --profiles transient,mixed --seeds 1,2
"""

from __future__ import annotations

import argparse
import functools
import os
import sys
import time
from dataclasses import dataclass, field

from repro.faults import MediaError, PROFILES
from repro.harness.parallel import run_grid
from repro.integrity.explorer import SCHEMES, build_machine, explore
from repro.integrity.fsck import fsck
from repro.integrity.monitor import OrderingMonitor, monitor_supported
from repro.obs.observatory import append_ledger
from repro.ordering.registry import standard_slugs
from repro.sim import ProcessCrashed, SimulationError
from repro.workloads.churn import churn_workload

#: the standard registry schemes -- the five paper configurations plus
#: journaling (nvram rides along via --schemes: it is a scheme too)
DEFAULT_SCHEMES = standard_slugs()
DEFAULT_PROFILES = ["transient", "defects", "mixed"]
DEFAULT_SEEDS = [1, 2, 3]
#: bounded attempts to settle a machine whose sync keeps hitting faults
SETTLE_ATTEMPTS = 5


@dataclass
class CellResult:
    """Outcome of one (scheme, profile, seed) cell."""

    scheme: str
    profile: str
    seed: int
    verdict: str = "clean"
    injected: int = 0
    retries: int = 0
    remaps: int = 0
    io_errors: int = 0
    lost_writes: int = 0
    fsck_errors: int = 0
    fsck_warnings: int = 0
    degradations: list[str] = field(default_factory=list)
    #: crash-point exploration riding along (``--explore N``): verified
    #: point count, verification mode, declaration breaches, or the
    #: reason exploration could not run for this cell
    crash_points: int = 0
    crash_mode: str = ""
    crash_unexpected: int = 0
    crash_note: str = ""
    #: online ordering monitor (``--monitor``): "", "online" or
    #: "unsupported", plus what it saw during the cell's run
    monitor_state: str = ""
    monitor_violations: int = 0
    monitor_unexpected: int = 0


def run_cell(scheme_name: str, profile: str, seed: int,
             operations: int, explore_points: int = 0,
             synthesize: bool = True, monitor: bool = False,
             fsck_jobs: int = 1) -> CellResult:
    """Run one cell of the sweep and classify the survivor.

    ``explore_points > 0`` additionally sweeps that many crash points of
    the same (scheme, profile, seed) cell -- crash AND fault -- through
    :func:`repro.integrity.explorer.explore`, synthesizing images from
    the media write-log by default (``synthesize=False`` replays, the
    oracle).  Profiles with latent defects can abort the victim workload
    mid-recording; that is reported per cell, not raised.

    ``monitor=True`` attaches the online ordering-rule monitor for the
    whole cell: unexpected violations at commit time count as damage,
    classified exactly like fsck damage (accounted-for -> ``degraded``,
    unaccounted-for -> ``SILENT-CORRUPTION``).  ``fsck_jobs > 1`` runs
    the post-settle fsck over a per-cylinder-group pool.
    """
    machine = build_machine(scheme_name, fault_profile=profile,
                            fault_seed=seed)
    injector = machine.disk.faults
    result = CellResult(scheme=scheme_name, profile=profile, seed=seed)

    watcher = None
    if monitor:
        if monitor_supported(machine):
            result.monitor_state = "online"
            watcher = OrderingMonitor(machine.config.fs_geometry,
                                      machine.scheme.crash_guarantees)
            watcher.attach(machine.disk)
        else:
            result.monitor_state = "unsupported"

    victim = machine.spawn(
        churn_workload(machine, seed=seed, operations=operations),
        name="victim")
    try:
        machine.engine.run_until(victim)
    except ProcessCrashed as exc:
        if isinstance(exc.original, MediaError):
            # the syscall path surfaced EIO/nospare to the caller: a typed,
            # expected degradation (the workload stops, the image must
            # still audit consistently with what was reported)
            injector.log(machine.engine.now, "op_failed", str(exc.original))
        else:
            injector.log(machine.engine.now, "wedged", f"victim: {exc}")
    except MediaError as exc:
        injector.log(machine.engine.now, "op_failed", str(exc))
    except (RuntimeError, SimulationError) as exc:
        injector.log(machine.engine.now, "wedged", f"victim: {exc}")

    for _ in range(SETTLE_ATTEMPTS):
        try:
            machine.sync_and_settle()
            break
        except ProcessCrashed as exc:
            if isinstance(exc.original, MediaError):
                injector.log(machine.engine.now, "sync_write_failed",
                             str(exc.original))
            else:
                injector.log(machine.engine.now, "wedged", f"sync: {exc}")
                break
        except MediaError as exc:
            injector.log(machine.engine.now, "sync_write_failed", str(exc))
        except (RuntimeError, SimulationError) as exc:
            injector.log(machine.engine.now, "wedged", f"sync: {exc}")
            break
    else:
        injector.log(machine.engine.now, "wedged",
                     f"sync still failing after {SETTLE_ATTEMPTS} attempts")

    if watcher is not None:
        watcher.detach(machine.disk)
        result.monitor_violations = len(watcher.violations)
        result.monitor_unexpected = len(watcher.unexpected)

    report = fsck(machine.disk.storage, machine.config.fs_geometry,
                  jobs=fsck_jobs)
    degradations = injector.degradations()

    result.injected = injector.injected
    result.retries = machine.driver.retries
    result.remaps = machine.driver.remaps
    result.io_errors = machine.driver.io_errors
    result.lost_writes = len(machine.cache.lost_writes)
    result.fsck_errors = len(report.errors)
    result.fsck_warnings = len(report.warnings)
    result.degradations = [
        f"t={event.time:.4f} {event.kind}: {event.detail}"
        for event in degradations]

    damaged = not report.clean or result.monitor_unexpected > 0
    if not damaged:
        result.verdict = "recovered" if degradations else "clean"
    elif degradations:
        result.verdict = "degraded"
    else:
        result.verdict = "SILENT-CORRUPTION"

    if explore_points > 0:
        try:
            sweep = explore(scheme_name, "churn", seed=seed,
                            ops=operations, jobs=1,
                            max_points=explore_points,
                            fault_profile=profile, fault_seed=seed,
                            synthesize=synthesize, monitor=monitor,
                            fsck_jobs=fsck_jobs)
        except Exception as exc:
            # e.g. a latent-defect profile EIO-aborts the recorded victim
            result.crash_note = (f"exploration n/a: "
                                 f"{type(exc).__name__}: {exc}")
        else:
            result.crash_points = sweep.points
            result.crash_mode = sweep.mode
            result.crash_unexpected = (len(sweep.unexpected_findings)
                                       + len(sweep.monitor_unexpected))
    return result


def format_report(cells: list[CellResult], operations: int) -> str:
    """Render the sweep outcome as a deterministic text report."""
    lines = ["fault sweep report",
             "==================",
             f"workload: churn x {operations} operations per cell",
             f"cells: {len(cells)}",
             ""]
    explored = any(cell.crash_points or cell.crash_note for cell in cells)
    monitored = any(cell.monitor_state for cell in cells)
    header = (f"{'scheme':<14}{'profile':<11}{'seed':>5}{'inj':>6}"
              f"{'retry':>7}{'remap':>7}{'eio':>5}{'lost':>6}"
              f"{'fsck':>6}")
    if monitored:
        header += f"{'mon':>6}"
    if explored:
        header += f"{'pts':>6}{'unexp':>7}  mode       "
    header += "  verdict"
    lines.append(header)
    lines.append("-" * len(header))
    for cell in cells:
        row = (f"{cell.scheme:<14}{cell.profile:<11}{cell.seed:>5}"
               f"{cell.injected:>6}{cell.retries:>7}{cell.remaps:>7}"
               f"{cell.io_errors:>5}{cell.lost_writes:>6}"
               f"{cell.fsck_errors:>6}")
        if monitored:
            mon = (str(cell.monitor_violations)
                   if cell.monitor_state == "online" else "-")
            row += f"{mon:>6}"
        if explored:
            mode = cell.crash_mode or ("n/a" if cell.crash_note else "-")
            row += (f"{cell.crash_points:>6}{cell.crash_unexpected:>7}"
                    f"  {mode:<11}")
        row += f"  {cell.verdict}"
        lines.append(row)
    lines.append("")
    for cell in cells:
        if cell.crash_note:
            lines.append(f"[{cell.scheme}/{cell.profile}/seed={cell.seed}] "
                         f"{cell.crash_note}")
    if any(cell.crash_note for cell in cells):
        lines.append("")
    for cell in cells:
        if not cell.degradations:
            continue
        lines.append(f"[{cell.scheme}/{cell.profile}/seed={cell.seed}] "
                     f"{cell.verdict}:")
        for entry in cell.degradations:
            lines.append(f"  {entry}")
        lines.append("")
    bad = [cell for cell in cells if cell.verdict == "SILENT-CORRUPTION"]
    lines.append(f"silent corruption: {len(bad)}")
    if monitored:
        lines.append(f"online ordering violations outside declarations: "
                     f"{sum(cell.monitor_unexpected for cell in cells)}")
    if explored:
        lines.append(f"crash points outside declarations: "
                     f"{sum(cell.crash_unexpected for cell in cells)}")
    return "\n".join(lines) + "\n"


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness faults",
        description="seeded disk-fault sweep across ordering schemes")
    parser.add_argument("--schemes", default=",".join(DEFAULT_SCHEMES),
                        help="comma-separated scheme names "
                             f"(from {sorted(SCHEMES)})")
    parser.add_argument("--profiles", default=",".join(DEFAULT_PROFILES),
                        help="comma-separated fault profiles "
                             f"(from {sorted(PROFILES)})")
    parser.add_argument("--seeds", default=",".join(
        str(seed) for seed in DEFAULT_SEEDS),
        help="comma-separated fault/workload seeds")
    parser.add_argument("--ops", type=int, default=40,
                        help="churn operations per cell (default 40)")
    parser.add_argument("--explore", type=int, default=0, metavar="N",
                        help="also sweep up to N crash points per cell "
                             "(crash AND fault; 0 = off)")
    parser.add_argument("--monitor", action="store_true",
                        help="attach the online ordering-rule monitor to "
                             "every cell (unexpected commit-time "
                             "violations count as damage)")
    parser.add_argument("--fsck-jobs", type=int, default=1,
                        help="pFSCK pool size for each post-settle fsck "
                             "(falls back to serial inside pool workers)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="sweep cells in parallel over a fork pool "
                             "(default REPRO_JOBS, then the core count)")
    parser.add_argument("--heartbeat", type=float, default=None,
                        metavar="SECONDS",
                        help="progress line every SECONDS while cells are "
                             "in flight (default REPRO_HEARTBEAT; 0 = off)")
    parser.add_argument("--stall-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="abort, naming the stuck (scheme, profile, "
                             "seed) cell, once any cell is in flight this "
                             "long (default REPRO_STALL_TIMEOUT; 0 = off)")
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--synthesize", dest="synthesize",
                      action="store_true", default=True,
                      help="synthesize --explore crash images from the "
                           "media write-log (the default)")
    mode.add_argument("--replay", dest="synthesize", action="store_false",
                      help="replay each --explore crash point from "
                           "scratch (the verification oracle)")
    parser.add_argument("--out", default=os.path.join(
        "results", "fault_report.txt"),
        help="report path (default results/fault_report.txt)")
    args = parser.parse_args(argv)

    schemes = [name.strip() for name in args.schemes.split(",") if name.strip()]
    profiles = [name.strip() for name in args.profiles.split(",")
                if name.strip()]
    seeds = [int(seed) for seed in args.seeds.split(",") if seed.strip()]
    for name in schemes:
        if name not in SCHEMES:
            parser.error(f"unknown scheme {name!r}; choose from "
                         f"{sorted(SCHEMES)}")
    for name in profiles:
        if name not in PROFILES:
            parser.error(f"unknown profile {name!r}; choose from "
                         f"{sorted(PROFILES)}")

    # every (scheme, profile, seed) cell is independent -- fan them over
    # the same fork-pool grid machinery as the benchmark tables, which
    # buys the sweep heartbeats and stall detection for free.  Results
    # come back keyed in input order, so the printed lines and the report
    # are byte-identical to the old serial loop's.
    grid_cells = [
        ((scheme_name, profile, seed),
         functools.partial(run_cell, scheme_name, profile, seed, args.ops,
                           explore_points=args.explore,
                           synthesize=args.synthesize,
                           monitor=args.monitor,
                           fsck_jobs=args.fsck_jobs))
        for scheme_name in schemes
        for profile in profiles
        for seed in seeds]
    start = time.perf_counter()
    results = run_grid("faults", grid_cells, jobs=args.jobs,
                       heartbeat=args.heartbeat, stall=args.stall_timeout)
    cells = list(results.values())
    for cell in cells:
        extra = ""
        if args.monitor and cell.monitor_state == "online":
            extra += (f" monitor={cell.monitor_violations}"
                      f"/{cell.monitor_unexpected}-unexpected")
        if args.explore:
            extra += (f" crash-explored={cell.crash_points} "
                      f"[{cell.crash_mode or 'n/a'}] "
                      f"unexpected={cell.crash_unexpected}")
        print(f"{cell.scheme}/{cell.profile}/seed={cell.seed}: "
              f"{cell.verdict} (injected={cell.injected} "
              f"retries={cell.retries} remaps={cell.remaps})"
              f"{extra}")

    report = format_report(cells, args.ops)
    os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
    with open(args.out, "w") as handle:
        handle.write(report)
    print(f"\nwrote {args.out}")

    verdicts: dict = {}
    for cell in cells:
        verdicts[cell.verdict] = verdicts.get(cell.verdict, 0) + 1
    append_ledger("faults", {
        "schemes": schemes,
        "profiles": profiles,
        "seeds": seeds,
        "ops": args.ops,
        "cells": len(cells),
        "verdicts": verdicts,
        "explore": args.explore,
        "monitor": bool(args.monitor),
        "wall_seconds": round(time.perf_counter() - start, 3),
    })

    failed = False
    for cell in cells:
        if cell.verdict == "SILENT-CORRUPTION":
            print(f"SILENT CORRUPTION: {cell.scheme}/{cell.profile}/"
                  f"seed={cell.seed}", file=sys.stderr)
            failed = True
        if cell.crash_unexpected:
            print(f"DECLARATION BREACH: {cell.scheme}/{cell.profile}/"
                  f"seed={cell.seed}: {cell.crash_unexpected} crash "
                  f"points outside the scheme's declaration",
                  file=sys.stderr)
            failed = True
        if cell.monitor_unexpected and not cell.degradations:
            print(f"ONLINE ORDERING BREACH: {cell.scheme}/{cell.profile}/"
                  f"seed={cell.seed}: {cell.monitor_unexpected} "
                  f"unexpected violations at commit time",
                  file=sys.stderr)
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main(sys.argv[1:]))
