"""The recording runner: one instrumented execution of a victim workload.

Crash exploration needs the *timeline* of a run before it can enumerate
crash points: when did each write transfer start, how many sectors did it
carry, when did it complete.  :func:`record_run` executes a workload once on
a machine with a passive observer on the drive (it records every
:class:`~repro.disk.drive.InFlightWrite` as its media transfer begins) and
then lets the system quiesce naturally -- no explicit ``sync()`` is
injected, because the replayed runs must follow the *identical* event
timeline and a recording-only sync would fork it.  Quiescence is reached
through the ordinary syncer-daemon sweeps, exactly as a real machine left
idle would settle.

With ``capture_media=True`` the run additionally snapshots the pre-workload
base image and attaches a :class:`~repro.integrity.medialog.MediaLog` to the
drive's ``on_write_commit`` observer, so crash images can later be
*synthesized* (base + committed sectors) instead of replayed -- see
``docs/crash-exploration.md``.  Capture is passive: it changes neither the
event timeline nor a single simulated timestamp.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.integrity.medialog import MediaLog
from repro.machine import Machine
from repro.sim.engine import SimulationError


@dataclass(frozen=True)
class WriteWindow:
    """One media write transfer: the crash-point enumeration unit.

    The transfer lays sectors down in LBN order, one per ``sector_period``
    (each protected by its own ECC), so a crash inside the window
    ``[transfer_start, transfer_start + nsectors * sector_period]`` leaves a
    sector prefix on the platters.  Windows cover *dispatched batches*: the
    driver may have concatenated several logical requests into one.
    """

    lbn: int
    nsectors: int
    transfer_start: float
    sector_period: float

    @property
    def complete_time(self) -> float:
        return self.transfer_start + self.nsectors * self.sector_period


@dataclass
class RecordedRun:
    """The recorded timeline plus run-level metrics."""

    windows: list[WriteWindow] = field(default_factory=list)
    #: simulated instant the workload generator finished
    workload_done: float = 0.0
    #: simulated instant the machine quiesced (driver idle, cache clean,
    #: no deferred scheme work) -- the end of the explorable timeline
    quiesce_time: float = 0.0
    #: driver requests issued over the whole run (write tail included)
    requests_issued: int = 0
    #: engine events processed (determinism fingerprint)
    events_processed: int = 0
    #: the pre-workload disk image (``capture_media=True`` runs only)
    base_image = None
    #: the media write-log (``capture_media=True`` runs only)
    media_log: Optional[MediaLog] = None

    @property
    def sectors_written(self) -> int:
        return sum(w.nsectors for w in self.windows)


def quiescent(machine: Machine) -> bool:
    """Nothing left that could still reach the disk."""
    return (machine.driver.idle
            and machine.disk.in_flight is None
            and not machine.cache.dirty_buffers()
            and machine.scheme.pending_work() == 0)


def record_run(machine: Machine, workload: Generator,
               name: str = "victim",
               max_events: Optional[int] = 20_000_000,
               capture_media: bool = False,
               monitor=None) -> RecordedRun:
    """Run *workload* to completion, then to quiescence, recording writes.

    ``capture_media=True`` additionally snapshots the pre-workload image and
    logs every sector that reaches the platters (payload, LBN, per-sector
    commit timing, torn/faulted outcomes) into ``recorded.media_log`` so
    crash images can be synthesized without replay.

    *monitor* (an :class:`~repro.integrity.monitor.OrderingMonitor`)
    additionally watches the same commit stream for ordering-rule
    violations.  The monitor chains behind the media log (it is attached
    last, so the log's observer still fires first) and, like the log, is
    purely passive.
    """
    recorded = RecordedRun()
    machine.disk.on_transfer_start = \
        lambda ifw: recorded.windows.append(WriteWindow(
            lbn=ifw.lbn,
            nsectors=len(ifw.data) // machine.disk.geometry.sector_size,
            transfer_start=ifw.transfer_start,
            sector_period=ifw.sector_period))
    if capture_media:
        recorded.base_image = machine.disk.storage.snapshot()
        recorded.media_log = MediaLog(machine.disk.geometry.sector_size)
        recorded.media_log.attach(machine.disk)
    if monitor is not None:
        monitor.attach(machine.disk)
    try:
        engine = machine.engine
        process = engine.process(workload, name=name)
        budget = max_events
        done_seen = False
        while not (process.triggered and quiescent(machine)):
            if engine.pending_events == 0:
                raise SimulationError(
                    "event heap drained before the machine quiesced")
            engine.step()
            if budget is not None:
                budget -= 1
                if budget <= 0:
                    raise SimulationError(
                        f"recording exceeded max_events={max_events}")
            if process.triggered and not done_seen:
                if not process.ok:
                    raise process.value
                done_seen = True
                recorded.workload_done = engine.now
        recorded.quiesce_time = engine.now
        recorded.requests_issued = machine.driver.requests_issued
        recorded.events_processed = engine.events_processed
    finally:
        machine.disk.on_transfer_start = None
        if monitor is not None:
            monitor.detach(machine.disk)  # unchains back to the media log
        if capture_media:
            recorded.media_log.detach(machine.disk)
    if capture_media and machine.obs is not None:
        registry = machine.obs.registry
        registry.gauge("medialog.windows").set(len(recorded.media_log))
        registry.gauge("medialog.bytes").set(
            recorded.media_log.payload_bytes)
    return recorded
