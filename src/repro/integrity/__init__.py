"""Crash injection and file system checking.

The paper *argues* that each scheme preserves metadata integrity across
failures; this package lets the test suite *verify* it.  ``crash`` freezes a
running machine at an arbitrary simulated instant (applying the sector
prefix of any write that was mid-transfer) and hands back the surviving disk
image; ``fsck`` audits that image against the paper's three ordering rules
and the classic FFS structural invariants, separating true integrity
violations from the benign inconsistencies fsck repairs (leaked blocks,
inflated link counts, stale bitmaps).
"""

from repro.integrity.crash import crash_image, CrashScheduler
from repro.integrity.findings import CrashFinding, ExplorationReport
from repro.integrity.fsck import FsckReport, fsck, repair
from repro.integrity.invariants import (
    INVARIANTS,
    Invariant,
    Severity,
    Violation,
    classify_report,
    unexpected,
)
from repro.integrity.monitor import (
    OrderingMonitor,
    OrderingViolation,
    monitor_supported,
)
from repro.integrity.secrets import plant_secrets, find_secret_leaks

__all__ = ["CrashFinding", "CrashScheduler", "ExplorationReport",
           "FsckReport", "INVARIANTS", "Invariant", "OrderingMonitor",
           "OrderingViolation", "Severity", "Violation",
           "classify_report", "crash_image", "fsck", "find_secret_leaks",
           "monitor_supported", "plant_secrets", "repair", "unexpected"]
