"""repro: a reproduction of Ganger & Patt, "Metadata Update Performance in
File Systems" (OSDI 1994) -- soft updates and its competitors, on a
simulated UNIX storage stack built from scratch.

The top-level surface re-exports the pieces most users need:

* :class:`Machine` / :class:`MachineConfig` -- assemble a simulated testbed.
* The ordering schemes: :class:`ConventionalScheme`,
  :class:`SchedulerFlagScheme`, :class:`SchedulerChainsScheme`,
  :class:`SoftUpdatesScheme`, :class:`NoOrderScheme`, and the
  :class:`NvramScheme` extension.
* :func:`fsck` / :func:`repair` / :func:`crash_image` -- integrity tooling.
* :class:`FileSystem` and :class:`FsError` -- the syscall layer.

See README.md for a tour and DESIGN.md for the system inventory.
"""

from repro.costs import CostModel
from repro.fs import FileSystem, FSGeometry, FsError, mkfs
from repro.integrity import CrashScheduler, crash_image, fsck, repair
from repro.machine import Machine, MachineConfig
from repro.ordering import (
    ConventionalScheme,
    NoOrderScheme,
    NvramScheme,
    OrderingScheme,
    SchedulerChainsScheme,
    SchedulerFlagScheme,
    SoftUpdatesScheme,
)

__version__ = "1.0.0"

__all__ = [
    "ConventionalScheme",
    "CostModel",
    "CrashScheduler",
    "FSGeometry",
    "FileSystem",
    "FsError",
    "Machine",
    "MachineConfig",
    "NoOrderScheme",
    "NvramScheme",
    "OrderingScheme",
    "SchedulerChainsScheme",
    "SchedulerFlagScheme",
    "SoftUpdatesScheme",
    "crash_image",
    "fsck",
    "mkfs",
    "repair",
    "__version__",
]
