"""Ablation A2 (section 3.3): the block-copy enhancement under chains.

"We also observe the same general behavior with scheduler chains.  The
block copying ... reduces the elapsed time by 26 percent for the 4-user
copy benchmark and 57 percent for the 4-user remove benchmark."
"""

from repro.costs import CostModel
from repro.driver import ChainsPolicy
from repro.harness.report import format_table
from repro.harness.runner import run_copy, run_remove
from repro.machine import MachineConfig
from repro.ordering import SchedulerChainsScheme
from repro.workloads.trees import TreeSpec

from benchmarks.conftest import SCALE, emit, run_grid, scaled_cache


def chains_config(block_copy: bool) -> MachineConfig:
    return MachineConfig(
        scheme=SchedulerChainsScheme(block_copy=block_copy, alloc_init=True),
        policy=ChainsPolicy(), block_copy=block_copy, costs=CostModel(),
        cache_bytes=scaled_cache())


def test_ablation_chains_block_copy(once):
    tree = TreeSpec().scaled(SCALE)

    def cell(bench, variant):
        def run():
            config = chains_config(variant == "CB")
            if bench == "copy":
                return run_copy(config, 4, tree)
            return run_remove(config, 4, tree, cold_cache=True)
        return (bench, variant), run

    def experiment():
        return run_grid("ablation_chains_cb",
                        [cell(bench, variant)
                         for bench in ("copy", "remove")
                         for variant in ("no-CB", "CB")])

    results = once(experiment)
    rows = [[bench, variant, r.elapsed, r.cpu_time, r.disk_requests]
            for (bench, variant), r in results.items()]
    emit("ablation_chains_cb", format_table(
        f"Ablation A2: chains with/without the block-copy enhancement "
        f"(4 users, scale={SCALE})",
        ["Benchmark", "Variant", "Elapsed (s)", "CPU (s)",
         "Disk requests"], rows))

    # the remove benchmark shows the big CB win (paper: 57%; write-lock
    # stalls dominate a metadata-only workload)
    assert results[("remove", "CB")].elapsed \
        < results[("remove", "no-CB")].elapsed * 0.8
    # on the copy the disk is saturated at this scale, so lock stalls hide
    # inside queue time: CB must at least not lose (paper: 26% win)
    assert results[("copy", "CB")].elapsed \
        <= results[("copy", "no-CB")].elapsed * 1.03
    # and its memcpy cost is visible in CPU time
    assert results[("copy", "CB")].cpu_time \
        >= results[("copy", "no-CB")].cpu_time
