"""Per-scheme write behaviour: each scheme's signature I/O pattern."""

import pytest

from repro.driver.request import IOKind
from tests.conftest import make_machine, run_user


def write_requests(machine):
    return [r for r in machine.driver.trace if r.is_write]


class TestConventional:
    def test_create_does_synchronous_inode_write(self):
        m = make_machine("conventional")

        def user():
            before = m.engine.now
            yield from m.fs.write_file("/f", b"x")
            return m.engine.now - before

        elapsed = run_user(m, user())
        # the create path waited for at least one mechanical write
        assert elapsed > 0.003
        writes = write_requests(m)
        assert writes, "expected a synchronous metadata write"
        # the inode block write completed before the syscall returned
        assert writes[0].complete_time <= elapsed

    def test_unlink_sync_writes_directory_then_inode(self):
        m = make_machine("conventional")

        def user():
            yield from m.fs.write_file("/f", b"x" * 3000)
            mark = len(m.driver.trace)
            before = m.engine.now
            yield from m.fs.unlink("/f")
            return mark, m.engine.now - before

        mark, elapsed = run_user(m, user())
        # removal waited out two ordered sync writes (dir, then reset inode)
        new_writes = [r for r in m.driver.trace[mark:] if r.is_write]
        assert len(new_writes) >= 2
        assert elapsed > 0.006


class TestSchedulerFlag:
    def test_metadata_writes_carry_the_flag(self):
        m = make_machine("flag")

        def user():
            yield from m.fs.write_file("/f", b"x")
            yield from m.fs.sync()

        run_user(m, user())
        flagged = [r for r in m.driver.trace if r.flag]
        assert flagged, "inode write should be flagged"

    def test_create_does_not_block_on_write(self):
        """Same cold-cache reads as conventional, but no sync-write wait."""
        waits = {}
        for scheme in ("flag", "conventional"):
            m = make_machine(scheme)

            def user():
                # warm the metadata once, then time a steady-state create
                yield from m.fs.write_file("/warm", b"w")
                before = m.engine.now
                handle = yield from m.fs.create("/f")
                waited = m.engine.now - before
                yield from m.fs.close(handle)
                yield from m.fs.sync()
                return waited

            waits[scheme] = run_user(m, user())
        assert waits["flag"] < 0.003  # async: no mechanical wait
        assert waits["conventional"] > 0.003  # sync: waited a disk access


class TestSchedulerChains:
    def test_dependency_lists_attached(self):
        m = make_machine("chains")

        def user():
            yield from m.fs.write_file("/f", b"x")
            yield from m.fs.sync()

        run_user(m, user())
        with_deps = [r for r in m.driver.trace if r.depends_on]
        assert with_deps, "the directory flush should depend on the inode write"
        # dependencies point backwards in issue order
        for request in with_deps:
            assert all(dep < request.id for dep in request.depends_on)

    def test_dependent_completes_after_antecedent(self):
        m = make_machine("chains")

        def user():
            yield from m.fs.write_file("/f", b"x")
            yield from m.fs.sync()

        run_user(m, user())
        by_id = {r.id: r for r in m.driver.trace}
        for request in m.driver.trace:
            for dep in request.depends_on:
                assert by_id[dep].complete_time <= request.dispatch_time


class TestNoOrder:
    def test_no_writes_until_flush(self):
        m = make_machine("noorder")

        def user():
            yield from m.fs.write_file("/f", b"x" * 2000)

        run_user(m, user())
        assert not write_requests(m)

    def test_many_creates_aggregate_into_few_writes(self):
        m = make_machine("noorder")

        def user():
            for index in range(30):
                yield from m.fs.write_file(f"/f{index}", b"y" * 256)
            yield from m.fs.sync()

        run_user(m, user())
        # 30 creates -> ~ (1 dir block + 1 inode block + bitmap + 30 frag
        # data writes, concatenated); far fewer metadata writes than creates
        metadata_writes = [r for r in write_requests(m) if r.nsectors > 2]
        assert len(metadata_writes) < 30


class TestSoftUpdates:
    def test_no_writes_until_flush_and_clean_after(self):
        m = make_machine("softupdates")

        def user():
            yield from m.fs.write_file("/f", b"x" * 2000)

        run_user(m, user())
        assert not write_requests(m)
        run_user(m, m.fs.sync(), name="sync")
        assert m.scheme.pending_work() == 0
        assert not m.cache.dirty_buffers()

    def test_create_remove_pair_costs_no_disk_writes(self):
        """The paper's headline: 'the add and remove have been serviced
        with no disk writes!'"""
        m = make_machine("softupdates")

        def user():
            for index in range(20):
                yield from m.fs.write_file(f"/t{index}", b"z" * 1024)
                yield from m.fs.unlink(f"/t{index}")
            yield from m.fs.sync()

        run_user(m, user())
        data_writes = [r for r in write_requests(m)]
        # nothing about the transient files needs to reach the disk; only
        # bookkeeping blocks (root dir / inode block / bitmaps) may flush
        assert len(data_writes) <= 6
        assert m.scheme.manager.cancelled_adds == 20

    def test_rollback_happens_when_dir_flushed_early(self):
        m = make_machine("softupdates")

        def user():
            yield from m.fs.write_file("/early", b"q" * 512)

        run_user(m, user())
        # force ONLY the root directory block out
        root_daddr = m.fs.geometry.cg_data_start(0)
        dbuf = m.cache.peek(root_daddr)
        m.cache.start_flush(dbuf)
        run_user(m, m.driver.drain(), name="drain")
        # the on-disk entry is rolled back (ino 0); memory still has it
        from repro.fs import directory
        on_disk = m.disk.storage.read(root_daddr * 2, 16)
        entry, _ = directory.lookup(on_disk, "early")
        assert entry is None
        in_memory, _ = directory.lookup(dbuf.data, "early")
        assert in_memory is not None
        assert m.scheme.manager.rollbacks >= 1
        # the block was re-dirtied so the entry eventually lands
        run_user(m, m.fs.sync(), name="sync")
        on_disk = m.disk.storage.read(root_daddr * 2, 16)
        entry, _ = directory.lookup(on_disk, "early")
        assert entry is not None

    def test_deferred_free_blocks_bitmap_until_reset_written(self):
        m = make_machine("softupdates")

        def setup():
            yield from m.fs.write_file("/victim", b"v" * 8192)
            yield from m.fs.sync()

        run_user(m, setup())
        free_before = sum(m.fs.allocator.cg_free_frags)

        def remove():
            yield from m.fs.unlink("/victim")

        run_user(m, remove())
        # in-memory bitmap unchanged: the free is deferred
        assert sum(m.fs.allocator.cg_free_frags) == free_before
        run_user(m, m.fs.sync(), name="sync")
        assert sum(m.fs.allocator.cg_free_frags) == free_before + 8

    def test_alloc_init_is_nearly_free(self):
        """Soft updates enforces initialization without extra writes."""
        counts = {}
        for init in (False, True):
            m = make_machine("softupdates", alloc_init=init)

            def user():
                for index in range(10):
                    yield from m.fs.write_file(f"/f{index}", b"d" * 4096)
                yield from m.fs.sync()

            run_user(m, user())
            counts[init] = len(write_requests(m))
        assert counts[True] <= counts[False] * 1.15
