"""The drive: one-request-at-a-time mechanical service.

Command queueing at the disk is deliberately *not* modelled ("Command
queueing at the disk is not utilized", section 2): the device driver owns all
scheduling and hands the drive one (possibly concatenated) request at a time.

:meth:`Disk.service` is a simulated-process subroutine: the device driver
calls it with ``yield from`` and regains control when the media operation is
done.  Writes become persistent in the :class:`SectorStore` at transfer
completion; a crash mid-transfer applies the sector prefix that had already
passed under the head (see ``in_flight`` and ``repro.integrity.crash``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.sim.engine import Engine
from repro.disk.cache import PrefetchCache
from repro.disk.geometry import DiskGeometry
from repro.disk.mechanics import DiskParameters
from repro.disk.storage import SectorStore


@dataclass
class InFlightWrite:
    """Descriptor of the write currently being transferred to media."""

    lbn: int
    data: bytes
    transfer_start: float
    sector_period: float

    def sectors_applied_by(self, when: float, sector_size: int) -> int:
        """How many sectors had fully reached the media by time *when*."""
        if when <= self.transfer_start:
            return 0
        elapsed = when - self.transfer_start
        return min(int(elapsed / self.sector_period), len(self.data) // sector_size)


@dataclass
class DiskStats:
    """Aggregate drive-side instrumentation."""

    reads: int = 0
    writes: int = 0
    cache_hit_reads: int = 0
    sectors_read: int = 0
    sectors_written: int = 0
    busy_time: float = 0.0
    seek_time: float = 0.0
    rotation_time: float = 0.0
    transfer_time: float = 0.0
    service_times: list = field(default_factory=list)


class Disk:
    """An HP C2447-class drive attached to the simulation engine."""

    def __init__(self, engine: Engine,
                 geometry: Optional[DiskGeometry] = None,
                 params: Optional[DiskParameters] = None,
                 cache_segments: int = 2,
                 prefetch_sectors: int = 64) -> None:
        self.engine = engine
        self.geometry = geometry or DiskGeometry()
        self.params = params or DiskParameters()
        self.storage = SectorStore(self.geometry)
        self.cache = PrefetchCache(cache_segments, prefetch_sectors,
                                   self.geometry.total_sectors)
        self.stats = DiskStats()
        obs = engine.obs
        self._obs = obs
        if obs is not None:
            registry = obs.registry
            self._m_service = registry.histogram("disk.service_time")
            self._m_seek = registry.counter("disk.seek_time")
            self._m_rotation = registry.counter("disk.rotation_time")
            self._m_transfer = registry.counter("disk.transfer_time")
            self._m_cache_hits = registry.counter("disk.cache_hit_reads")
        else:
            self._m_service = None
        self._current_cylinder = 0
        #: set to True to make service() free (image population, not benchmarks)
        self.instant = False
        #: populated while a write transfer is on the media (crash injection)
        self.in_flight: Optional[InFlightWrite] = None
        #: optional observer called with each InFlightWrite as its transfer
        #: begins (the crash-exploration recorder enumerates boundaries here)
        self.on_transfer_start = None

    # ------------------------------------------------------------------
    def service(self, lbn: int, nsectors: int, is_write: bool,
                data: Optional[bytes] = None) -> Generator:
        """Perform one media operation; returns the service time in seconds.

        For writes, *data* must be ``nsectors * sector_size`` bytes and is
        applied to the sector store at transfer completion.
        """
        if is_write:
            if data is None:
                raise ValueError("write without data")
            if len(data) != nsectors * self.geometry.sector_size:
                raise ValueError(
                    f"write data is {len(data)} bytes; expected "
                    f"{nsectors * self.geometry.sector_size}")
        if self.instant:
            self._finish(lbn, nsectors, is_write, data)
            return 0.0
        start = self.engine.now
        if is_write:
            self.stats.writes += 1
            self.stats.sectors_written += nsectors
        else:
            self.stats.reads += 1
            self.stats.sectors_read += nsectors

        if not is_write and self.cache.lookup(lbn, nsectors):
            # on-board cache hit: controller overhead + bus transfer only
            self.stats.cache_hit_reads += 1
            service = (self.params.controller_overhead
                       + self.params.bus_time(self.geometry, nsectors))
            yield self.engine.timeout(service)
            self._account(start, 0.0, 0.0, 0.0)
            if self._obs is not None:
                self._m_cache_hits.inc()
                self._m_service.observe(self.engine.now - start)
                self._obs.tracer.record(
                    "disk.cache_hit", "disk", start, self.engine.now, "drive",
                    args={"lbn": lbn, "nsectors": nsectors})
            return self.engine.now - start

        cylinder, _head, sector = self.geometry.decompose(lbn)
        seek = self.params.seek_time(self._current_cylinder, cylinder)
        arrival = start + self.params.controller_overhead + seek
        rotation = self.params.rotational_delay(self.geometry, arrival, sector)
        transfer = self.params.transfer_time(self.geometry, nsectors)

        if is_write:
            yield self.engine.timeout(
                self.params.controller_overhead + seek + rotation)
            self.in_flight = InFlightWrite(
                lbn=lbn, data=data, transfer_start=self.engine.now,
                sector_period=self.params.sector_period(self.geometry))
            if self.on_transfer_start is not None:
                self.on_transfer_start(self.in_flight)
            yield self.engine.timeout(transfer)
            self.in_flight = None
        else:
            yield self.engine.timeout(
                self.params.controller_overhead + seek + rotation + transfer)

        self._finish(lbn, nsectors, is_write, data)
        self._current_cylinder = self.geometry.cylinder_of(lbn + nsectors - 1)
        self._account(start, seek, rotation, transfer)
        if self._obs is not None:
            self._record_service(start, seek, rotation, transfer,
                                 lbn, nsectors, is_write)
        return self.engine.now - start

    # ------------------------------------------------------------------
    def _record_service(self, start: float, seek: float, rotation: float,
                        transfer: float, lbn: int, nsectors: int,
                        is_write: bool) -> None:
        """Tracing-on accounting: the mechanical phase breakdown as spans.

        The drive serves one request at a time, so these intervals nest
        properly on the dedicated ``drive`` track.  Built entirely from
        timestamps already computed by :meth:`service`.
        """
        obs = self._obs
        end = self.engine.now
        self._m_service.observe(end - start)
        self._m_seek.inc(seek)
        self._m_rotation.inc(rotation)
        self._m_transfer.inc(transfer)
        name = "disk.write" if is_write else "disk.read"
        outer = obs.tracer.record(
            name, "disk", start, end, "drive",
            args={"lbn": lbn, "nsectors": nsectors})
        record = obs.tracer.record
        at = start + self.params.controller_overhead
        if seek:
            record("seek", "disk", at, at + seek, "drive", parent=outer.id)
        at += seek
        if rotation:
            record("rotate", "disk", at, at + rotation, "drive",
                   parent=outer.id)
        at += rotation
        if transfer:
            record("transfer", "disk", at, at + transfer, "drive",
                   parent=outer.id)

    def _finish(self, lbn: int, nsectors: int, is_write: bool,
                data: Optional[bytes]) -> None:
        if is_write:
            self.storage.write(lbn, data)
            self.cache.invalidate(lbn, nsectors)
        else:
            self.cache.insert_after_read(lbn, nsectors)

    def _account(self, start: float, seek: float, rotation: float,
                 transfer: float) -> None:
        service = self.engine.now - start
        self.stats.busy_time += service
        self.stats.seek_time += seek
        self.stats.rotation_time += rotation
        self.stats.transfer_time += transfer
        self.stats.service_times.append(service)

    def read_now(self, lbn: int, nsectors: int) -> bytes:
        """Zero-time read of persistent bytes (setup/inspection paths only)."""
        return self.storage.read(lbn, nsectors)

    def write_now(self, lbn: int, data: bytes) -> None:
        """Zero-time persistent write (setup/inspection paths only)."""
        self.storage.write(lbn, data)
        self.cache.invalidate(lbn, len(data) // self.geometry.sector_size)
