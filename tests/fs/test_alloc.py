"""Unit + property tests for the cylinder-group bitmaps and allocator."""

import pytest
from hypothesis import given, strategies as st

from repro.fs.alloc import CG_MAGIC, CgView
from repro.fs.layout import FSGeometry
from tests.conftest import SMALL_GEOMETRY, make_machine, run_user

GEO = SMALL_GEOMETRY


def fresh_view():
    data = bytearray(GEO.block_size)
    view = CgView.initialize(data, 0, GEO)
    view.free_inodes = GEO.ipg
    view.free_frags = GEO.dfrags_per_cg
    return view


class TestCgView:
    def test_initialize_sets_magic_and_counts(self):
        view = fresh_view()
        assert view.magic == CG_MAGIC
        assert view.free_inodes == GEO.ipg
        assert view.free_frags == GEO.dfrags_per_cg

    def test_set_frags_updates_count_and_bits(self):
        view = fresh_view()
        view.set_frags(10, 3, True)
        assert view.frag_used(11)
        assert not view.frag_used(13)
        assert view.free_frags == GEO.dfrags_per_cg - 3
        view.set_frags(10, 3, False)
        assert view.free_frags == GEO.dfrags_per_cg

    def test_double_set_rejected(self):
        view = fresh_view()
        view.set_frags(0, 1, True)
        with pytest.raises(RuntimeError, match="already"):
            view.set_frags(0, 1, True)
        view.set_inode(5, True)
        with pytest.raises(RuntimeError, match="already"):
            view.set_inode(5, True)

    def test_find_block_skips_partial_blocks(self):
        view = fresh_view()
        view.set_frags(2, 1, True)  # block 0 partially used
        assert view.find_block() == 8  # next block boundary

    def test_find_block_wraps_from_rotor(self):
        view = fresh_view()
        last_block = GEO.dfrags_per_cg - 8
        found = view.find_block(rotor=last_block + 4)
        assert found is not None

    def test_find_frag_run_prefers_partial_blocks(self):
        view = fresh_view()
        view.set_frags(0, 3, True)  # block 0: 5 frags free
        run = view.find_frag_run(2)
        assert 3 <= run <= 6  # inside the partial block, not a fresh one

    def test_find_frag_run_falls_back_to_free_block(self):
        view = fresh_view()
        assert view.find_frag_run(5) == 0  # carve the first free block

    def test_find_frag_run_none_when_full(self):
        view = fresh_view()
        view.set_frags(0, GEO.dfrags_per_cg, True)
        assert view.find_frag_run(1) is None
        assert view.find_block() is None

    @given(st.lists(st.tuples(st.integers(0, GEO.dfrags_per_cg // 8 - 1),
                              st.integers(1, 8)), max_size=25),
           st.integers(1, 8))
    def test_found_runs_are_really_free_property(self, occupied, want):
        """Whatever is pre-allocated, a found run is free, in-bounds, and
        does not cross a block boundary."""
        view = fresh_view()
        for block, count in occupied:
            base = block * 8
            for frag in range(base, base + count):
                if not view.frag_used(frag):
                    view.set_frags(frag, 1, True)
        run = view.find_frag_run(want, rotor=0)
        if run is not None:
            assert view.run_free(run, want)
            assert run // 8 == (run + want - 1) // 8  # single block


class TestAllocatorPolicies:
    def test_directories_spread_across_groups(self):
        m = make_machine("noorder")

        def user():
            for index in range(4):
                yield from m.fs.mkdir(f"/d{index}")
            inos = []
            for index in range(4):
                st_ = yield from m.fs.stat(f"/d{index}")
                _ = st_
            return [ip.ino for ip in m.fs.itable.values() if ip.is_dir]

        dir_inos = run_user(m, user())
        groups = {m.fs.geometry.cg_of_inode(ino) for ino in dir_inos}
        assert len(groups) == 2  # both cylinder groups used

    def test_files_follow_their_directory(self):
        m = make_machine("noorder")

        def user():
            yield from m.fs.mkdir("/d0")
            yield from m.fs.write_file("/d0/child", b"x")
            dir_st = yield from m.fs.stat("/d0")
            file_st = yield from m.fs.read_file("/d0/child")
            return dir_st

        run_user(m, user())
        geo = m.fs.geometry
        inos = {ip.ino: ip for ip in m.fs.itable.values()}
        dirs = [i for i, ip in inos.items() if ip.is_dir and i != 2]
        files = [i for i, ip in inos.items() if not ip.is_dir]
        assert geo.cg_of_inode(dirs[0]) == geo.cg_of_inode(files[0])

    def test_summaries_match_headers_after_churn(self):
        m = make_machine("softupdates")

        def user():
            for index in range(15):
                yield from m.fs.write_file(f"/f{index}", b"y" * 3000)
            for index in range(0, 15, 2):
                yield from m.fs.unlink(f"/f{index}")
            yield from m.fs.sync()

        run_user(m, user())
        # reload from disk and compare with the in-memory summaries
        from repro.fs.alloc import Allocator
        checker = Allocator(m.fs.geometry, m.cache)

        def verify():
            yield from checker.load_summaries()
            return checker.cg_free_frags, checker.cg_free_inodes

        frags, inodes = run_user(m, verify())
        assert frags == m.fs.allocator.cg_free_frags
        assert inodes == m.fs.allocator.cg_free_inodes
