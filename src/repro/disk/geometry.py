"""Platter geometry and logical-block mapping.

A single-zone geometry is used (the HP C2447 had zones; zoning changes
absolute transfer rates slightly but none of the scheme comparisons).  LBNs
map in the classic order: sector, then head (track within cylinder), then
cylinder, so consecutive LBNs are rotationally consecutive.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DiskGeometry:
    """Physical layout of the drive.

    The defaults give 1750 * 16 * 72 sectors * 512 B = 1.03 GB, matching the
    HP C2447's 1 GB capacity.
    """

    cylinders: int = 1750
    heads: int = 16
    sectors_per_track: int = 72
    sector_size: int = 512

    def __post_init__(self) -> None:
        for name in ("cylinders", "heads", "sectors_per_track", "sector_size"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    @property
    def sectors_per_cylinder(self) -> int:
        return self.heads * self.sectors_per_track

    @property
    def total_sectors(self) -> int:
        return self.cylinders * self.sectors_per_cylinder

    @property
    def capacity_bytes(self) -> int:
        return self.total_sectors * self.sector_size

    def cylinder_of(self, lbn: int) -> int:
        """Cylinder containing logical block *lbn*."""
        self._check(lbn)
        return lbn // self.sectors_per_cylinder

    def head_of(self, lbn: int) -> int:
        """Head (track index within the cylinder) for *lbn*."""
        self._check(lbn)
        return (lbn % self.sectors_per_cylinder) // self.sectors_per_track

    def sector_of(self, lbn: int) -> int:
        """Rotational sector index within the track for *lbn*."""
        self._check(lbn)
        return lbn % self.sectors_per_track

    def decompose(self, lbn: int) -> tuple[int, int, int]:
        """Return ``(cylinder, head, sector)`` for *lbn*."""
        return self.cylinder_of(lbn), self.head_of(lbn), self.sector_of(lbn)

    def lbn_of(self, cylinder: int, head: int, sector: int) -> int:
        """Inverse of :meth:`decompose`."""
        if not (0 <= cylinder < self.cylinders):
            raise ValueError(f"cylinder {cylinder} out of range")
        if not (0 <= head < self.heads):
            raise ValueError(f"head {head} out of range")
        if not (0 <= sector < self.sectors_per_track):
            raise ValueError(f"sector {sector} out of range")
        return (cylinder * self.sectors_per_cylinder
                + head * self.sectors_per_track + sector)

    def _check(self, lbn: int) -> None:
        if not (0 <= lbn < self.total_sectors):
            raise ValueError(f"LBN {lbn} outside disk (0..{self.total_sectors - 1})")
