"""fsck unit tests: clean images pass; synthetic damage is detected."""

import struct

import pytest

from repro.fs.layout import Dinode, FileType
from repro.integrity import fsck
from tests.conftest import SMALL_GEOMETRY, make_machine, run_user


def build_populated_machine(scheme="noorder"):
    m = make_machine(scheme)

    def setup():
        yield from m.fs.mkdir("/docs")
        yield from m.fs.write_file("/docs/a.txt", b"alpha" * 100)
        yield from m.fs.write_file("/docs/b.txt", b"beta" * 3000)
        yield from m.fs.write_file("/top", b"top")
        yield from m.fs.link("/top", "/docs/top-link")
        yield from m.fs.sync()

    run_user(m, setup())
    return m


def frag_bytes(m, daddr, frags=8):
    spf = m.fs.geometry.frag_size // 512
    return m.disk.storage.read(daddr * spf, frags * spf)


def poke(m, daddr, offset, data):
    spf = m.fs.geometry.frag_size // 512
    base = daddr * spf
    sector, within = divmod(offset, 512)
    raw = bytearray(m.disk.storage.read(base + sector, 1))
    raw[within:within + len(data)] = data
    m.disk.storage.write(base + sector, bytes(raw))


class TestCleanImages:
    def test_fresh_fs_is_clean(self):
        m = make_machine("noorder")
        report = fsck(m.disk.storage, SMALL_GEOMETRY)
        assert report.clean, report.errors
        assert not report.warnings, report.warnings

    def test_synced_populated_fs_is_clean(self):
        m = build_populated_machine()
        report = fsck(m.disk.storage, SMALL_GEOMETRY)
        assert report.clean, report.errors
        assert not report.warnings, report.warnings
        names = {name for refs in report.references.values()
                 for _d, name in refs}
        assert {"a.txt", "b.txt", "docs", "top", "top-link"} <= names

    def test_all_schemes_produce_identical_clean_state(self):
        """After a full sync, every scheme must land the same structure."""
        for scheme in ("conventional", "flag", "chains", "softupdates"):
            m = build_populated_machine(scheme)
            report = fsck(m.disk.storage, SMALL_GEOMETRY)
            assert report.clean, (scheme, report.errors)
            assert not report.warnings, (scheme, report.warnings)
            assert len(report.inodes) == 5  # root, docs, a.txt, b.txt, top
            top_ino = [ino for ino, refs in report.references.items()
                       if ("top" in {n for _d, n in refs})]
            assert report.inodes[top_ino[0]].nlink == 2

    def test_garbage_superblock_reported(self):
        m = make_machine("noorder")
        m.disk.storage.write(SMALL_GEOMETRY.superblock_daddr * 2,
                             b"\x00" * 512)
        report = fsck(m.disk.storage, SMALL_GEOMETRY)
        assert not report.clean
        assert "superblock" in report.errors[0]


class TestDamageDetection:
    def test_entry_to_unallocated_inode(self):
        m = build_populated_machine()
        geo = m.fs.geometry
        root_daddr = geo.cg_data_start(0)
        # find 'top' entry offset in the root block and point it at a free ino
        from repro.fs import directory
        raw = frag_bytes(m, root_daddr)
        entry = next(e for e in directory.iter_entries(raw)
                     if e.name == "top")
        poke(m, root_daddr, entry.offset, struct.pack("<I", 99))
        report = fsck(m.disk.storage, SMALL_GEOMETRY)
        assert any("unallocated inode 99" in e for e in report.errors)

    def test_duplicate_block_claim(self):
        m = build_populated_machine()
        geo = m.fs.geometry
        report0 = fsck(m.disk.storage, SMALL_GEOMETRY)
        # pick two regular files and make one point at the other's block
        files = [ino for ino, d in report0.inodes.items()
                 if d.ftype is FileType.REGULAR and d.direct[0]]
        a, b = files[0], files[1]
        victim = report0.inodes[b].direct[0]
        iblk = geo.inode_block_daddr(a)
        at = geo.inode_offset_in_block(a) + 28  # direct[0] offset
        poke(m, iblk, at, struct.pack("<I", victim))
        report = fsck(m.disk.storage, SMALL_GEOMETRY)
        assert any("claimed by both" in e for e in report.errors)

    def test_pointer_outside_data_area(self):
        m = build_populated_machine()
        geo = m.fs.geometry
        report0 = fsck(m.disk.storage, SMALL_GEOMETRY)
        ino = next(i for i, d in report0.inodes.items()
                   if d.ftype is FileType.REGULAR)
        iblk = geo.inode_block_daddr(ino)
        at = geo.inode_offset_in_block(ino) + 28
        poke(m, iblk, at, struct.pack("<I", 1))  # boot area
        report = fsck(m.disk.storage, SMALL_GEOMETRY)
        assert any("outside the data area" in e for e in report.errors)

    def test_corrupt_directory_block(self):
        m = build_populated_machine()
        geo = m.fs.geometry
        root_daddr = geo.cg_data_start(0)
        poke(m, root_daddr, 4, struct.pack("<H", 3))  # bad reclen
        report = fsck(m.disk.storage, SMALL_GEOMETRY)
        assert any("corrupt" in e for e in report.errors)

    def test_undercounted_links_is_repairable_warning(self):
        m = build_populated_machine()
        geo = m.fs.geometry
        report0 = fsck(m.disk.storage, SMALL_GEOMETRY)
        # 'top' has two links; force nlink=1 on disk
        ino = next(i for i, d in report0.inodes.items() if d.nlink == 2
                   and d.ftype is FileType.REGULAR)
        iblk = geo.inode_block_daddr(ino)
        at = geo.inode_offset_in_block(ino) + 2  # nlink offset
        poke(m, iblk, at, struct.pack("<H", 1))
        report = fsck(m.disk.storage, SMALL_GEOMETRY)
        assert report.clean
        assert any("below actual" in w for w in report.warnings)

    def test_overcounted_links_is_only_warning(self):
        m = build_populated_machine()
        geo = m.fs.geometry
        report0 = fsck(m.disk.storage, SMALL_GEOMETRY)
        ino = next(i for i, d in report0.inodes.items()
                   if d.ftype is FileType.REGULAR)
        iblk = geo.inode_block_daddr(ino)
        at = geo.inode_offset_in_block(ino) + 2
        poke(m, iblk, at, struct.pack("<H", 9))
        report = fsck(m.disk.storage, SMALL_GEOMETRY)
        assert report.clean
        assert any("above actual" in w for w in report.warnings)

    def test_bitmap_leak_is_only_warning(self):
        m = build_populated_machine()
        geo = m.fs.geometry
        from repro.fs.alloc import CgView
        spf = geo.frag_size // 512
        raw = bytearray(m.disk.storage.read(geo.cg_base(1) * spf,
                                            geo.frags_per_block * spf))
        CgView(raw, geo).set_frags(100, 2, True)  # mark used, unreferenced
        m.disk.storage.write(geo.cg_base(1) * spf, bytes(raw))
        report = fsck(m.disk.storage, SMALL_GEOMETRY)
        assert report.clean
        assert any("leak" in w for w in report.warnings)
