"""Span recording on the simulated clock.

A :class:`Span` is one named interval of simulated time on a *track* (a
simulated process, the device driver queue, or the drive head).  Spans nest:
``begin`` pushes onto the track's open-span stack and records the innermost
open span as the parent, so a syscall span parents the buffer-cache waits it
contains, which parent the driver/drive work they trigger (cross-track
parents are threaded explicitly, e.g. through ``DiskRequest.trace_parent``).

The tracer is strictly passive: it reads ``engine.now`` and appends to a
list.  It never creates events, never touches the engine heap, and therefore
can never perturb simulated timestamps -- the property
``tests/obs/test_equivalence.py`` verifies end to end.

Sync spans (``begin``/``end``, or retrospective :meth:`Tracer.record`) must
nest properly within their track; overlapping intervals -- driver queue
residencies, in-flight writes -- are recorded as *async* spans
(:meth:`Tracer.record_async`), which the Perfetto exporter emits as ``b``/
``e`` event pairs keyed by id instead of complete events.

Memory is bounded: the span list stops growing at ``max_spans`` (default
:data:`DEFAULT_MAX_SPANS`, overridable via ``REPRO_TRACE_MAX_SPANS`` or the
constructor).  Past the cap, spans still *behave* normally -- ids advance,
nesting stacks stay consistent, the per-layer profiler keeps counting --
but they are not retained; ``Tracer.dropped`` counts them (mirrored into
the ``tracer.spans_dropped`` metric and flagged by the flame summary), so
always-on tracing over million-event sweeps degrades to a warning instead
of exhausting RAM.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:
    from repro.sim.engine import Engine

#: track used when no simulated process is current (driver completions,
#: engine callbacks)
KERNEL_TRACK = "kernel"

#: retained-span ceiling when neither the constructor nor the
#: ``REPRO_TRACE_MAX_SPANS`` environment variable says otherwise (a span
#: is ~200 bytes; 1M spans keeps worst-case tracer memory in the
#: hundreds of MB, far below a million-event distributed sweep's output)
DEFAULT_MAX_SPANS = 1_000_000


def default_max_spans() -> int:
    """The span cap: ``REPRO_TRACE_MAX_SPANS`` or the module default
    (0 or a negative value disables the cap entirely)."""
    env = os.environ.get("REPRO_TRACE_MAX_SPANS")
    if env is None:
        return DEFAULT_MAX_SPANS
    try:
        return int(env)
    except ValueError:
        return DEFAULT_MAX_SPANS


class Span:
    """One recorded interval.  ``end < 0`` means still open."""

    __slots__ = ("id", "name", "cat", "track", "start", "end", "parent",
                 "args", "async_id")

    def __init__(self, span_id: int, name: str, cat: str, track: str,
                 start: float, parent: Optional[int],
                 args: Optional[dict] = None,
                 async_id: Optional[int] = None) -> None:
        self.id = span_id
        self.name = name
        self.cat = cat
        self.track = track
        self.start = start
        self.end = -1.0
        self.parent = parent
        self.args = args
        self.async_id = async_id

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    @property
    def closed(self) -> bool:
        return self.end >= 0.0

    def __repr__(self) -> str:
        state = f"{self.start:.6f}..{self.end:.6f}" if self.closed \
            else f"{self.start:.6f}.."
        return f"<Span #{self.id} {self.name!r} [{self.cat}] {state}>"


class _SpanHandle:
    """Context-manager handle returned by :meth:`Tracer.span`."""

    __slots__ = ("tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self.tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        self.tracer.end(self.span)


class _NullSpanHandle:
    """Shared no-op handle used when tracing is disabled."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NULL_SPAN = _NullSpanHandle()


class Tracer:
    """Collects spans against one engine's simulated clock."""

    def __init__(self, engine: "Engine",
                 max_spans: Optional[int] = None) -> None:
        self.engine = engine
        self.spans: list[Span] = []
        self._next_id = 0
        #: per-track stacks of currently open sync spans
        self._stacks: dict[str, list[Span]] = {}
        #: retained-span ceiling; <= 0 means unbounded
        self.max_spans = default_max_spans() if max_spans is None \
            else max_spans
        #: spans not retained because the cap was hit
        self.dropped = 0
        #: optional metrics Counter mirroring ``dropped`` (wired by
        #: :class:`~repro.obs.session.Observability`)
        self.dropped_counter = None
        #: optional :class:`~repro.obs.profiler.LayerProfiler`, called as
        #: every span closes -- including spans the cap dropped, so the
        #: layer attribution stays exact past the cap
        self.profiler = None

    def _retain(self, span: Span) -> None:
        """Append *span* unless the cap is hit (then count the drop)."""
        if self.max_spans > 0 and len(self.spans) >= self.max_spans:
            self.dropped += 1
            if self.dropped_counter is not None:
                self.dropped_counter.inc()
            return
        self.spans.append(span)

    # -- track resolution ----------------------------------------------
    def _track(self, track: Optional[str]) -> str:
        if track is not None:
            return track
        process = self.engine.current_process
        return process.name if process is not None else KERNEL_TRACK

    def current(self, track: Optional[str] = None) -> Optional[int]:
        """Id of the innermost open span on *track* (default: current
        process's track); None when nothing is open there."""
        stack = self._stacks.get(self._track(track))
        return stack[-1].id if stack else None

    # -- sync spans ------------------------------------------------------
    def begin(self, name: str, cat: str, track: Optional[str] = None,
              parent: Optional[int] = None,
              args: Optional[dict] = None) -> Span:
        """Open a span at ``engine.now``; returns the handle to pass to
        :meth:`end`.  Parent defaults to the innermost open span on the
        same track."""
        track = self._track(track)
        stack = self._stacks.setdefault(track, [])
        if parent is None and stack:
            parent = stack[-1].id
        self._next_id += 1
        span = Span(self._next_id, name, cat, track, self.engine.now,
                    parent, args)
        stack.append(span)
        self._retain(span)
        return span

    def end(self, span: Span, args: Optional[dict] = None) -> Span:
        """Close *span* at ``engine.now``."""
        span.end = self.engine.now
        if args:
            span.args = {**(span.args or {}), **args}
        stack = self._stacks.get(span.track)
        profiler = self.profiler
        if stack and span in stack:
            # close any children left open (crash/exception unwind)
            while stack:
                top = stack.pop()
                if top is span:
                    break
                if not top.closed:
                    top.end = self.engine.now
                    if profiler is not None:
                        profiler.close(top)
        if profiler is not None:
            profiler.close(span)
        return span

    def span(self, name: str, cat: str, track: Optional[str] = None,
             args: Optional[dict] = None) -> _SpanHandle:
        """``with tracer.span(...):`` convenience around begin/end."""
        return _SpanHandle(self, self.begin(name, cat, track, args=args))

    # -- retrospective spans ----------------------------------------------
    def record(self, name: str, cat: str, start: float, end: float,
               track: str, parent: Optional[int] = None,
               args: Optional[dict] = None) -> Span:
        """Record an already-finished interval from saved timestamps.

        Used where the natural instrumentation point is a completion path
        that already holds begin/end stamps (the driver trace, the drive's
        mechanical phases).  The interval must nest properly within *track*;
        overlapping intervals belong in :meth:`record_async`.
        """
        self._next_id += 1
        span = Span(self._next_id, name, cat, track, start, parent, args)
        span.end = end
        self._retain(span)
        if self.profiler is not None:
            self.profiler.close(span)
        return span

    def record_async(self, name: str, cat: str, start: float, end: float,
                     track: str, async_id: int,
                     parent: Optional[int] = None,
                     args: Optional[dict] = None) -> Span:
        """Record a finished interval that may overlap others on its track
        (driver queue residency).  *async_id* groups the begin/end pair in
        the Perfetto export."""
        self._next_id += 1
        span = Span(self._next_id, name, cat, track, start, parent, args,
                    async_id=async_id)
        span.end = end
        self._retain(span)
        if self.profiler is not None:
            self.profiler.close(span)
        return span

    # -- introspection ---------------------------------------------------
    def closed_spans(self) -> list[Span]:
        return [span for span in self.spans if span.closed]

    def tracks(self) -> list[str]:
        seen: dict[str, None] = {}
        for span in self.spans:
            seen.setdefault(span.track)
        return list(seen)

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:
        return f"<Tracer spans={len(self.spans)} tracks={len(self.tracks())}>"
