"""Swappable event-loop kernels: the engine room behind :class:`Engine`.

The kernel owns the event queue and the run loops -- everything between
"this event is due" and "its callbacks ran".  :class:`~repro.sim.engine.Engine`
keeps the public API, the simulated clock attribute, process bookkeeping and
the trace hook; events and the engine talk to the kernel through a narrow
interface:

* ``schedule(event, delay)``  -- enqueue *event* at ``now + delay``;
* ``wake(event)``             -- enqueue *event* at the current instant
  (the ``succeed``/``fail`` path);
* ``schedule_call(delay, fn, args)`` -- run a bare callable at ``now +
  delay`` (the ``call_later`` path; no caller ever sees the event object,
  so a kernel may elide it);
* ``defer(fn, event)``        -- deliver a late subscription to an
  already-processed event: the callback runs before the next dispatch and
  is flushed when any run loop exits, so it can never be silently dropped;
* ``advance()`` / ``run`` / ``run_to`` / ``run_until`` -- the run loops;
* ``peek()`` / ``pending()`` / ``events_processed`` -- introspection.

Two kernels are registered:

* :class:`PythonKernel` (``"python"``, the default) -- a faithful binary
  heap processing one event at a time.  It is the *equivalence oracle*:
  every other kernel must reproduce its event order, timestamps and event
  counts exactly (``tests/sim/test_kernel_conformance.py``), and the
  benchmark grid must emit byte-identical tables under every kernel.
* :class:`FastKernel` (``"fast"``) -- batched heap operations over
  array-of-struct storage: schedules append to flat ``(when, seq, obj)``
  array columns and are folded into a sorted spine lazily (numpy
  ``lexsort`` when available and the batch is large, Timsort's galloping
  run-merge otherwise), so a mass-scheduled workload pays one C-speed sort
  instead of a sift per event, and pops are ``list.pop()`` instead of a
  heap sift-down.  Bare timeouts and ``schedule_call`` timers dispatch
  without a Python method call per event.

Selection: ``MachineConfig.kernel``, ``Engine(kernel=...)`` or the
``REPRO_KERNEL`` environment variable (the config wins when both are set).
"""

from __future__ import annotations

import os
from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Optional

from repro.sim.events import Event, Timeout

try:  # optional: the fast kernel falls back to pure-python batch sorts
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free hosts
    _np = None

__all__ = ["KERNELS", "FastKernel", "Kernel", "PythonKernel",
           "SimulationError", "kernel_name", "resolve_kernel"]


class SimulationError(RuntimeError):
    """Raised when the simulation cannot make progress or a process crashed."""


_DRAINED_MSG = ("event heap drained at t={:.6f} before the awaited "
                "event fired (deadlock or missing wakeup)")


class Kernel:
    """Interface and shared plumbing for event-loop kernels."""

    #: registry key; subclasses must override
    name = "abstract"

    __slots__ = ("engine", "_deferred")

    def __init__(self) -> None:
        self.engine = None
        #: late subscriptions to already-processed events, delivered before
        #: the next dispatch and flushed at every run-loop exit
        self._deferred: deque = deque()

    def bind(self, engine) -> "Kernel":
        """Attach to *engine*; called exactly once, by ``Engine.__init__``."""
        if self.engine is not None:
            raise RuntimeError(f"kernel {self.name!r} is already bound")
        self.engine = engine
        return self

    # -- deferred late-callback delivery --------------------------------
    def defer(self, fn: Callable, event) -> None:
        """Queue ``fn(event)`` for delivery before the next dispatch."""
        self._deferred.append((fn, event))

    def _drain_deferred(self) -> None:
        deferred = self._deferred
        while deferred:
            fn, event = deferred.popleft()
            fn(event)

    # -- the narrow interface (implemented per kernel) -------------------
    def schedule(self, event, delay: float = 0.0) -> None:
        raise NotImplementedError

    def wake(self, event) -> None:
        raise NotImplementedError

    def schedule_call(self, delay: float, fn: Callable, args: tuple = ()) -> None:
        raise NotImplementedError

    def advance(self) -> None:
        raise NotImplementedError

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        raise NotImplementedError

    def run_to(self, when: float, max_events: Optional[int] = None) -> None:
        raise NotImplementedError

    def run_until(self, event, max_events: Optional[int] = None) -> Any:
        raise NotImplementedError

    def peek(self) -> Optional[float]:
        """The next event's timestamp, or None when nothing is pending."""
        raise NotImplementedError

    def pending(self) -> int:
        """Number of scheduled-but-undispatched entries."""
        raise NotImplementedError

    @property
    def events_processed(self) -> int:
        raise NotImplementedError


class PythonKernel(Kernel):
    """The reference kernel: a binary heap, one event at a time.

    This is a faithful port of the original inlined ``Engine`` run loops
    and serves as the equivalence oracle for every other kernel.  Keep it
    boring: correctness here defines correctness everywhere.
    """

    name = "python"

    __slots__ = ("_heap", "_seq", "_event_count")

    def __init__(self) -> None:
        super().__init__()
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._event_count = 0

    # -- scheduling ------------------------------------------------------
    def schedule(self, event, delay: float = 0.0) -> None:
        self._seq += 1
        heappush(self._heap, (self.engine.now + delay, self._seq, event))

    def wake(self, event) -> None:
        self._seq += 1
        heappush(self._heap, (self.engine.now, self._seq, event))

    def schedule_call(self, delay: float, fn: Callable, args: tuple = ()) -> None:
        event = Timeout(self.engine, delay)
        event.callbacks.append(lambda _ev, _fn=fn, _args=args: _fn(*_args))

    # -- introspection ---------------------------------------------------
    def peek(self) -> Optional[float]:
        return self._heap[0][0] if self._heap else None

    def pending(self) -> int:
        return len(self._heap)

    @property
    def events_processed(self) -> int:
        return self._event_count

    # -- run loops -------------------------------------------------------
    # The loops inline advance()'s body: they are the hottest frames of
    # every simulation (one iteration per event), and the method call +
    # repeated attribute lookups cost ~15% of total runtime at benchmark
    # scale.  advance() stays as the single-event API.

    def advance(self) -> None:
        if self._deferred:
            self._drain_deferred()
        if not self._heap:
            raise SimulationError("step() on an empty event heap")
        engine = self.engine
        when, _seq, event = heappop(self._heap)
        if when < engine.now:
            raise SimulationError(f"time went backwards: {when} < {engine.now}")
        engine.now = when
        self._event_count += 1
        hook = engine.trace_hook
        if hook is not None:
            hook(when, event)
        event._process()

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        engine = self.engine
        heap = self._heap
        pop = heappop
        hook = engine.trace_hook
        deferred = self._deferred
        processed = 0
        if deferred:
            self._drain_deferred()
        while heap:
            if until is not None and heap[0][0] > until:
                break
            if max_events is not None and processed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events} at t={engine.now:.6f}")
            when, _seq, event = pop(heap)
            if when < engine.now:
                raise SimulationError(
                    f"time went backwards: {when} < {engine.now}")
            engine.now = when
            self._event_count += 1
            if hook is not None:
                hook(when, event)
            event._process()
            processed += 1
            if deferred:
                self._drain_deferred()
        if until is not None and until > engine.now:
            engine.now = until
        if deferred:
            self._drain_deferred()

    def run_to(self, when: float, max_events: Optional[int] = None) -> None:
        engine = self.engine
        heap = self._heap
        pop = heappop
        hook = engine.trace_hook
        deferred = self._deferred
        processed = 0
        if deferred:
            self._drain_deferred()
        while heap and heap[0][0] <= when:
            if max_events is not None and processed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events} at t={engine.now:.6f}")
            event_when, _seq, event = pop(heap)
            if event_when < engine.now:
                raise SimulationError(
                    f"time went backwards: {event_when} < {engine.now}")
            engine.now = event_when
            self._event_count += 1
            if hook is not None:
                hook(event_when, event)
            event._process()
            processed += 1
            if deferred:
                self._drain_deferred()
        engine.now = max(engine.now, when)
        if deferred:
            self._drain_deferred()

    def run_until(self, event, max_events: Optional[int] = None) -> Any:
        engine = self.engine
        heap = self._heap
        pop = heappop
        hook = engine.trace_hook
        deferred = self._deferred
        processed = 0
        if deferred:
            self._drain_deferred()
        while not event._processed:
            if not heap:
                raise SimulationError(_DRAINED_MSG.format(engine.now))
            if max_events is not None and processed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events} at t={engine.now:.6f}")
            when, _seq, next_event = pop(heap)
            if when < engine.now:
                raise SimulationError(
                    f"time went backwards: {when} < {engine.now}")
            engine.now = when
            self._event_count += 1
            if hook is not None:
                hook(when, next_event)
            next_event._process()
            processed += 1
            if deferred:
                self._drain_deferred()
        if deferred:
            self._drain_deferred()
        if not event.ok:
            raise event.value
        return event.value


_INF = float("inf")

#: pending batches smaller than this are bisect-inserted into the spine;
#: larger ones are sorted wholesale and merged (Timsort gallops over the
#: two runs, or numpy lexsorts the batch first when it is big enough)
_INSORT_MAX = 24
_LEXSORT_MIN = 2048


class FastKernel(Kernel):
    """Batched heap operations over array-of-struct storage.

    Scheduling appends to flat parallel columns (``when`` / ``seq`` /
    payload); dispatch pulls from a descending-sorted *spine* list so the
    next event is a ``list.pop()``.  The pending columns are folded into
    the spine only when an appended entry could actually fire before the
    spine's head (tracked with a running minimum), so a burst of K
    schedules costs one batch sort instead of K heap sifts.

    Two per-event fast paths (both invisible to the simulation):

    * ``schedule_call`` timers are stored as bare ``(fn, args)`` tuples --
      no Event object is ever built unless a trace hook needs to see one;
    * an :class:`Event`/:class:`Timeout` with no callbacks is marked
      processed inline, skipping the ``_process`` method call.

    Semantics are identical to :class:`PythonKernel` -- same ``(when,
    seq)`` total order, same ``events_processed`` accounting, same error
    messages -- which the conformance suite asserts for every registered
    kernel.
    """

    name = "fast"

    #: True when numpy is available to vectorize large batch sorts
    vectorized = _np is not None

    __slots__ = ("_spine", "_p_when", "_p_seq", "_p_obj", "_p_min",
                 "_seq", "_event_count")

    def __init__(self) -> None:
        super().__init__()
        #: sorted spine, DESCENDING by (when, seq): next event at the end
        self._spine: list[tuple] = []
        #: unsorted pending columns (array-of-struct storage)
        self._p_when: list[float] = []
        self._p_seq: list[int] = []
        self._p_obj: list = []
        #: running min of the pending whens: merges happen only when an
        #: appended entry could beat the spine's head
        self._p_min = _INF
        self._seq = 0
        self._event_count = 0

    # -- scheduling ------------------------------------------------------
    def schedule(self, event, delay: float = 0.0) -> None:
        self._seq = seq = self._seq + 1
        when = self.engine.now + delay
        self._p_when.append(when)
        self._p_seq.append(seq)
        self._p_obj.append(event)
        if when < self._p_min:
            self._p_min = when

    wake = schedule

    def schedule_call(self, delay: float, fn: Callable, args: tuple = ()) -> None:
        if self.engine.trace_hook is not None:
            # a hook observes every dispatched event, so materialize the
            # exact object the reference kernel would have built
            event = Timeout(self.engine, delay)
            event.callbacks.append(lambda _ev, _fn=fn, _args=args: _fn(*_args))
            return
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        self._seq = seq = self._seq + 1
        when = self.engine.now + delay
        self._p_when.append(when)
        self._p_seq.append(seq)
        self._p_obj.append((fn, args))
        if when < self._p_min:
            self._p_min = when

    # -- pending-batch merge --------------------------------------------
    def _merge(self) -> None:
        """Fold the pending columns into the sorted spine (in place)."""
        p_when = self._p_when
        p_seq = self._p_seq
        p_obj = self._p_obj
        spine = self._spine
        n = len(p_when)
        if n <= _INSORT_MAX:
            for item in zip(p_when, p_seq, p_obj):
                # bisect into the descending spine (stdlib bisect assumes
                # ascending order, so inline the halving loop)
                lo, hi = 0, len(spine)
                while lo < hi:
                    mid = (lo + hi) // 2
                    if spine[mid] > item:
                        lo = mid + 1
                    else:
                        hi = mid
                spine.insert(lo, item)
        else:
            if _np is not None and n >= _LEXSORT_MIN:
                order = _np.lexsort((_np.asarray(p_seq, dtype=_np.int64),
                                     _np.asarray(p_when)))[::-1].tolist()
                batch = [(p_when[i], p_seq[i], p_obj[i]) for i in order]
            else:
                batch = sorted(zip(p_when, p_seq, p_obj), reverse=True)
            if not spine or spine[-1] >= batch[0]:
                spine.extend(batch)
            else:
                spine.extend(batch)
                spine.sort(reverse=True)
        del p_when[:], p_seq[:], p_obj[:]
        self._p_min = _INF

    # -- introspection ---------------------------------------------------
    def peek(self) -> Optional[float]:
        head = self._spine[-1][0] if self._spine else None
        if self._p_when:
            return self._p_min if head is None else min(head, self._p_min)
        return head

    def pending(self) -> int:
        return len(self._spine) + len(self._p_when)

    @property
    def events_processed(self) -> int:
        return self._event_count

    # -- run loops -------------------------------------------------------
    # Every loop keeps ``now`` and the event count in locals and flushes
    # them to the engine before any user code (callbacks, timer fns,
    # hooks) can observe them, and again on exit -- so the observable
    # clock/count behaviour matches the reference kernel exactly while
    # bare timeouts pay no attribute traffic at all.

    def advance(self) -> None:
        if self._deferred:
            self._drain_deferred()
        spine = self._spine
        if self._p_when and (not spine or spine[-1][0] > self._p_min):
            self._merge()
        if not spine:
            raise SimulationError("step() on an empty event heap")
        engine = self.engine
        when, _seq, obj = spine.pop()
        if when < engine.now:
            raise SimulationError(f"time went backwards: {when} < {engine.now}")
        engine.now = when
        self._event_count += 1
        hook = engine.trace_hook
        if obj.__class__ is tuple:
            fn, args = obj
            fn(*args)
            return
        if hook is not None:
            hook(when, obj)
        obj._process()

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        engine = self.engine
        spine = self._spine
        p_when = self._p_when
        deferred = self._deferred
        hook = engine.trace_hook
        processed = 0
        now = engine.now
        count = self._event_count
        try:
            while True:
                if deferred:
                    engine.now = now
                    self._event_count = count
                    self._drain_deferred()
                if p_when and (not spine or spine[-1][0] > self._p_min):
                    self._merge()
                if not spine:
                    break
                when = spine[-1][0]
                if until is not None and when > until:
                    break
                if max_events is not None and processed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} at t={now:.6f}")
                obj = spine.pop()[2]
                if when < now:
                    raise SimulationError(
                        f"time went backwards: {when} < {now}")
                now = when
                count += 1
                processed += 1
                cls = obj.__class__
                if cls is tuple:
                    engine.now = now
                    self._event_count = count
                    fn, args = obj
                    fn(*args)
                    now = engine.now
                    count = self._event_count
                elif (hook is None and (cls is Timeout or cls is Event)
                        and not obj.callbacks):
                    obj._processed = True
                else:
                    engine.now = now
                    self._event_count = count
                    if hook is not None:
                        hook(when, obj)
                    obj._process()
                    now = engine.now
                    count = self._event_count
        finally:
            engine.now = now
            self._event_count = count
        if until is not None and until > engine.now:
            engine.now = until
        if deferred:
            self._drain_deferred()

    def run_to(self, when: float, max_events: Optional[int] = None) -> None:
        engine = self.engine
        spine = self._spine
        p_when = self._p_when
        deferred = self._deferred
        hook = engine.trace_hook
        processed = 0
        now = engine.now
        count = self._event_count
        try:
            while True:
                if deferred:
                    engine.now = now
                    self._event_count = count
                    self._drain_deferred()
                if p_when and (not spine or spine[-1][0] > self._p_min):
                    self._merge()
                if not spine:
                    break
                event_when = spine[-1][0]
                if event_when > when:
                    break
                if max_events is not None and processed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} at t={now:.6f}")
                obj = spine.pop()[2]
                if event_when < now:
                    raise SimulationError(
                        f"time went backwards: {event_when} < {now}")
                now = event_when
                count += 1
                processed += 1
                cls = obj.__class__
                if cls is tuple:
                    engine.now = now
                    self._event_count = count
                    fn, args = obj
                    fn(*args)
                    now = engine.now
                    count = self._event_count
                elif (hook is None and (cls is Timeout or cls is Event)
                        and not obj.callbacks):
                    obj._processed = True
                else:
                    engine.now = now
                    self._event_count = count
                    if hook is not None:
                        hook(event_when, obj)
                    obj._process()
                    now = engine.now
                    count = self._event_count
        finally:
            engine.now = now
            self._event_count = count
        engine.now = max(engine.now, when)
        if deferred:
            self._drain_deferred()

    def run_until(self, event, max_events: Optional[int] = None) -> Any:
        engine = self.engine
        spine = self._spine
        p_when = self._p_when
        deferred = self._deferred
        hook = engine.trace_hook
        processed = 0
        now = engine.now
        count = self._event_count
        try:
            while not event._processed:
                if deferred:
                    engine.now = now
                    self._event_count = count
                    self._drain_deferred()
                if p_when and (not spine or spine[-1][0] > self._p_min):
                    self._merge()
                if not spine:
                    raise SimulationError(_DRAINED_MSG.format(now))
                if max_events is not None and processed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} at t={now:.6f}")
                when, _seq, obj = spine.pop()
                if when < now:
                    raise SimulationError(
                        f"time went backwards: {when} < {now}")
                now = when
                count += 1
                processed += 1
                cls = obj.__class__
                if cls is tuple:
                    engine.now = now
                    self._event_count = count
                    fn, args = obj
                    fn(*args)
                    now = engine.now
                    count = self._event_count
                elif (hook is None and (cls is Timeout or cls is Event)
                        and not obj.callbacks):
                    obj._processed = True
                else:
                    engine.now = now
                    self._event_count = count
                    if hook is not None:
                        hook(when, obj)
                    obj._process()
                    now = engine.now
                    count = self._event_count
        finally:
            engine.now = now
            self._event_count = count
        if deferred:
            self._drain_deferred()
        if not event.ok:
            raise event.value
        return event.value


#: registered kernels, keyed by the name ``MachineConfig.kernel`` /
#: ``REPRO_KERNEL`` select on
KERNELS: dict[str, type] = {
    PythonKernel.name: PythonKernel,
    FastKernel.name: FastKernel,
}


def kernel_name(explicit: Optional[str] = None) -> str:
    """Resolve a kernel name: *explicit* beats ``REPRO_KERNEL`` beats
    the default (``"python"``, the reference oracle)."""
    name = explicit or os.environ.get("REPRO_KERNEL") or PythonKernel.name
    if name not in KERNELS:
        raise ValueError(
            f"unknown kernel {name!r}; registered: {sorted(KERNELS)}")
    return name


def resolve_kernel(spec=None) -> Kernel:
    """Build the kernel *spec* names: a registered name, a Kernel class or
    instance, or None (``REPRO_KERNEL`` / the python default)."""
    if isinstance(spec, Kernel):
        return spec
    if isinstance(spec, type) and issubclass(spec, Kernel):
        return spec()
    return KERNELS[kernel_name(spec)]()
