"""The buffer cache: getblk/bread/bwrite and friends.

Addressing: ``daddr`` is a *fragment* number (FFS disk addresses); a buffer
covers ``size`` bytes = a whole number of fragments.  The cache maps a daddr
to at most one buffer, and the file system guarantees (by invalidating on
deallocation) that live buffers never overlap.

Write mechanics and the section 3.3 write lock:

* ``block_copy=False`` (classic): issuing a disk write holds the buffer
  ``busy`` until the media operation completes, so any process updating that
  metadata again stalls for the full disk access -- the behaviour the paper
  measures as "processes still wait for them in many cases".
* ``block_copy=True`` (the -CB enhancement): the write request carries an
  in-memory copy of the block, the buffer is released at issue time, and the
  only cost is a kernel memcpy (charged to the issuing process).

In both modes the written image is snapshotted at issue time after running
the buffer's ``pre_write`` hooks, which is where soft updates applies its
undo (rollback) so every image sent to the disk is consistent.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generator, Optional

from repro.costs import CostModel
from repro.driver.driver import DeviceDriver
from repro.driver.request import DiskRequest
from repro.faults import MediaError, is_retryable
from repro.sim.cpu import CPU
from repro.sim.engine import Engine
from repro.sim.primitives import WaitQueue
from repro.cache.buffer import Buffer


class BufferCache:
    """Fixed-capacity cache of disk buffers with LRU replacement."""

    def __init__(self, engine: Engine, driver: DeviceDriver, cpu: CPU,
                 costs: CostModel, frag_size: int = 1024,
                 capacity_bytes: int = 8 * 1024 * 1024,
                 block_copy: bool = False) -> None:
        sector = driver.disk.geometry.sector_size
        if frag_size % sector != 0:
            raise ValueError("fragment size must be a multiple of the sector size")
        self.engine = engine
        self.driver = driver
        self.cpu = cpu
        self.costs = costs
        self.frag_size = frag_size
        self.sectors_per_frag = frag_size // sector
        self.capacity_bytes = capacity_bytes
        self.block_copy = block_copy
        self._buffers: dict[int, Buffer] = {}
        self._lru: OrderedDict[int, Buffer] = OrderedDict()
        self.used_bytes = 0
        #: bytes held by in-flight write snapshots (the -CB copies of
        #: section 3.3 are real memory; unbounded queues of them are what
        #: throttled the paper's machine when activity exceeded its 44 MB)
        self.inflight_bytes = 0
        self._space = WaitQueue(engine)
        # instrumentation
        self.hits = 0
        self.misses = 0
        self.flushes_forced = 0
        # fault bookkeeping: reads that surfaced EIO, failed writes that were
        # re-dirtied for retry, and writes lost for good ((daddr, code, time))
        self.read_errors = 0
        self.write_retries = 0
        self.lost_writes: list[tuple[int, str, float]] = []
        obs = engine.obs
        self._obs = obs
        if obs is not None:
            registry = obs.registry
            self._m_lock_wait = registry.histogram("cache.lock_wait")
            self._m_lock_waits = registry.counter("cache.lock_waits")
            self._m_hits = registry.counter("cache.hits")
            self._m_misses = registry.counter("cache.misses")
            self._m_forced = registry.counter("cache.forced_flushes")
            self._m_reclaim_waits = registry.counter("cache.reclaim_waits")
        else:
            self._m_lock_wait = None
        #: optional provider of extra dependency ids attached to every write
        #: (scheduler chains' barrier-dealloc ablation mode)
        self.global_write_deps = None

    # -- address helpers ---------------------------------------------------
    def _lbn(self, daddr: int) -> int:
        return daddr * self.sectors_per_frag

    def frags_of(self, buf: Buffer) -> int:
        """Size of *buf* in fragments."""
        return buf.size // self.frag_size

    # -- acquisition ---------------------------------------------------------
    def getblk(self, daddr: int, size: int) -> Generator:
        """Acquire the buffer for ``size`` bytes at fragment *daddr* (locked).

        The returned buffer may be invalid (contents undefined); use
        :meth:`bread` when existing disk contents are needed.  Subroutine:
        call with ``yield from``.
        """
        if size <= 0 or size % self.frag_size != 0:
            raise ValueError(f"buffer size {size} is not a whole fragment count")
        yield from self.cpu.compute(self.costs.time("getblk"))
        # uncontended same-size hit: what the loop below does on its first
        # pass when nothing blocks, minus the bookkeeping it never reaches
        buf = self._buffers.get(daddr)
        if buf is not None and not buf.busy and buf.size == size:
            self._make_busy(buf)
            self.hits += 1
            if self._obs is not None:
                self._m_hits.inc()
            return buf
        # lock-wait accounting is opened lazily on the first sleep and closed
        # on whichever exit path acquires the buffer; the loop structure (and
        # therefore every wakeup and timestamp) is identical with tracing off
        obs = self._obs
        wait_span = None
        wait_start = 0.0
        while True:
            buf = self._buffers.get(daddr)
            if buf is not None:
                if buf.busy:
                    if obs is not None and wait_span is None:
                        wait_start = self.engine.now
                        wait_span = obs.tracer.begin(
                            "cache.lock_wait", "cache",
                            args={"daddr": daddr, "owner": buf.owner})
                        self._m_lock_waits.inc()
                    yield buf.waitq.wait()
                    continue
                if size > buf.size:
                    # fragment extension in place: grow with zeros
                    self.used_bytes += size - buf.size
                    buf.data.extend(bytes(size - buf.size))
                    buf.size = size
                    buf.dir_index = None
                elif size < buf.size:
                    raise RuntimeError(
                        f"getblk({daddr}, {size}) found a larger live buffer "
                        f"({buf.size} bytes); missing invalidation?")
                self._make_busy(buf)
                self.hits += 1
                if obs is not None:
                    self._m_hits.inc()
                    if wait_span is not None:
                        obs.tracer.end(wait_span)
                        self._m_lock_wait.observe(self.engine.now - wait_start)
                return buf
            yield from self._reclaim(size)
            if daddr in self._buffers:
                continue  # someone else created it while we slept
            buf = Buffer(self.engine, daddr, size)
            self._buffers[daddr] = buf
            self.used_bytes += size
            self._make_busy(buf)
            self.misses += 1
            if obs is not None:
                self._m_misses.inc()
                if wait_span is not None:
                    obs.tracer.end(wait_span)
                    self._m_lock_wait.observe(self.engine.now - wait_start)
            return buf

    def bread(self, daddr: int, size: int) -> Generator:
        """Acquire the buffer and ensure it holds the disk contents."""
        buf = yield from self.getblk(daddr, size)
        if not buf.valid:
            obs = self._obs
            span = obs.tracer.begin("cache.read_miss", "cache",
                                    args={"daddr": daddr}) \
                if obs is not None else None
            yield from self.cpu.compute(self.costs.time("io_setup"))
            nsectors = (size // self.frag_size) * self.sectors_per_frag
            request = self.driver.read(self._lbn(daddr), nsectors,
                                       issuer=self._issuer())
            yield request.done
            if request.error is not None:
                # the driver's retries are spent and the sector is gone:
                # this is where a UNIX process gets EIO from the kernel
                self.read_errors += 1
                faults = self.driver.disk.faults
                if faults is not None:
                    faults.log(self.engine.now, "read_eio",
                               f"daddr={daddr} ({request.error})")
                if span is not None:
                    obs.tracer.end(span)
                self._unbusy(buf)
                raise MediaError(daddr, f"read failed ({request.error})")
            buf.data[:] = self.driver.disk.storage.read(
                self._lbn(daddr), size // self.frag_size * self.sectors_per_frag)
            buf.valid = True
            buf.dir_index = None
            if span is not None:
                obs.tracer.end(span)
        return buf

    def peek(self, daddr: int) -> Optional[Buffer]:
        """Non-blocking lookup (no lock taken); None if absent."""
        return self._buffers.get(daddr)

    # -- release paths ------------------------------------------------------
    def brelse(self, buf: Buffer) -> None:
        """Release a held buffer without scheduling a write."""
        self._unbusy(buf)

    def bdwrite(self, buf: Buffer) -> None:
        """Delayed write: mark dirty, release; the syncer flushes it later."""
        buf.mark_dirty(self.engine.now)
        buf.valid = True
        self._unbusy(buf)

    def bawrite(self, buf: Buffer, flag: bool = False,
                depends_on: Optional[frozenset[int]] = None) -> Generator:
        """Asynchronous write: issue now, do not wait.  Returns the request.

        Consumes the caller's hold on the buffer: with block copy the buffer
        is released immediately; without it the buffer stays busy until the
        media write completes (the section 3.3 write lock).
        """
        if self.block_copy:
            yield from self.cpu.compute(self.costs.block_copy(buf.size))
        yield from self.cpu.compute(self.costs.time("io_setup"))
        return self._issue_write(buf, flag, depends_on)

    def bwrite(self, buf: Buffer, flag: bool = False,
               depends_on: Optional[frozenset[int]] = None) -> Generator:
        """Synchronous write: issue and wait for completion."""
        if self.block_copy:
            yield from self.cpu.compute(self.costs.block_copy(buf.size))
        yield from self.cpu.compute(self.costs.time("io_setup"))
        obs = self._obs
        span = obs.tracer.begin("cache.write_wait", "cache",
                                args={"daddr": buf.daddr}) \
            if obs is not None else None
        request = self._issue_write(buf, flag, depends_on)
        yield request.done
        if span is not None:
            obs.tracer.end(span)
        if request.error is not None and not is_retryable(request.error):
            # the synchronous write is permanently lost: the blocked syscall
            # gets EIO, like bwrite's B_ERROR path.  (A *retryable* failure
            # re-dirtied the buffer in _write_done; the syncer will carry it
            # the rest of the way, so the caller is not failed for it.)
            faults = self.driver.disk.faults
            if faults is not None:
                faults.log(self.engine.now, "sync_write_failed",
                           f"daddr={buf.daddr} ({request.error})")
            raise MediaError(buf.daddr, f"write failed ({request.error})")
        return request

    def start_flush(self, buf: Buffer) -> Optional[DiskRequest]:
        """Background flush of an idle dirty buffer (syncer / reclaim path).

        Returns None if the buffer is not flushable right now (busy, already
        being written, or not dirty).
        """
        if buf.busy or buf.write_outstanding or not buf.dirty or not buf.valid:
            return None
        if not self.block_copy:
            buf.busy = True
            buf.owner = "flush"
        return self._issue_write(buf, flag=False, depends_on=None,
                                 from_flush=True)

    # -- write plumbing -------------------------------------------------------
    def _issue_write(self, buf: Buffer, flag: bool,
                     depends_on: Optional[frozenset[int]],
                     from_flush: bool = False) -> DiskRequest:
        image = bytearray(buf.data)
        for hook in list(buf.pre_write):
            hook(buf, image)
        deps = set(depends_on or ())
        deps |= buf.flush_deps
        buf.flush_deps = set()
        if self.global_write_deps is not None:
            deps |= self.global_write_deps()
        buf.dirty = False
        buf.marked = False
        buf.valid = True
        buf.write_outstanding = True
        request = self.driver.write(self._lbn(buf.daddr), bytes(image),
                                    flag=flag,
                                    depends_on=frozenset(deps) if deps else None,
                                    issuer=self._issuer() if not from_flush
                                    else "syncer")
        if self.block_copy:
            # the write's source is a kernel copy; charge it to memory until
            # the media operation completes (without -CB the locked buffer
            # itself is the source, already accounted in used_bytes)
            nbytes = len(image)
            self.inflight_bytes += nbytes
            request.on_complete.append(
                lambda _req, n=nbytes: self._copy_released(n))
        request.on_complete.append(lambda req, b=buf: self._write_done(b, req))
        if self.block_copy and not from_flush:
            self._unbusy(buf)
        return request

    def _write_done(self, buf: Buffer, request: DiskRequest) -> None:
        """I/O completion (driver context; must not block).

        A failed write sets ``buf.error`` (B_ERROR) before the scheme's
        ``post_write`` hooks run, so soft updates can refuse to retire the
        dependencies riding on it.  Retryable failures re-dirty the buffer
        *first* -- the data in memory is still newer than disk and the
        syncer must write it again (and NVRAM must keep its mirror);
        non-retryable failures are recorded as lost writes.
        """
        buf.write_outstanding = False
        error = request.error
        buf.error = error
        if error is not None:
            if is_retryable(error) and buf.valid:
                self.write_retries += 1
                buf.mark_dirty(self.engine.now)
                faults = self.driver.disk.faults
                if faults is not None:
                    faults.log(self.engine.now, "redirty",
                               f"daddr={buf.daddr} ({error})")
            elif not is_retryable(error):
                self.lost_writes.append((buf.daddr, error, self.engine.now))
                faults = self.driver.disk.faults
                if faults is not None:
                    faults.log(self.engine.now, "lost_write",
                               f"daddr={buf.daddr} ({error})")
        for hook in list(buf.post_write):
            hook(buf)
        if buf.busy and buf.owner in ("io", "flush"):
            self._unbusy(buf)
        elif not self.block_copy and buf.busy:
            # non-CB foreground write: the lock was transferred to the I/O
            self._unbusy(buf)
        self._space.broadcast()

    # -- invalidation (deallocation support) -----------------------------------
    def invalidate(self, daddr: int, frags: int) -> None:
        """Drop buffers inside a freed fragment range; cancels delayed writes.

        Buffers with a write already outstanding keep their identity until
        the write lands (the driver's overlap FIFO orders any reuse), but are
        marked invalid so nobody trusts their contents.
        """
        for fragment in range(daddr, daddr + frags):
            buf = self._buffers.get(fragment)
            if buf is None:
                continue
            buf.dirty = False
            buf.valid = False
            buf.marked = False
            buf.dir_index = None
            if not buf.busy and not buf.write_outstanding and buf.hold_count == 0:
                self._evict(buf)

    # -- reclamation -----------------------------------------------------------
    def _copy_released(self, nbytes: int) -> None:
        self.inflight_bytes -= nbytes
        self._space.broadcast()

    def _reclaim(self, need: int) -> Generator:
        """Make room for *need* bytes, evicting or flushing as required."""
        while self.used_bytes + self.inflight_bytes + need > self.capacity_bytes:
            victim = self._find_clean_victim()
            if victim is not None:
                self._evict(victim)
                continue
            started = 0
            for buf in list(self._lru.values()):
                if self.start_flush(buf) is not None:
                    started += 1
                    self.flushes_forced += 1
                    if started >= 16:
                        break
            if self._obs is not None:
                self._m_forced.inc(started)
                self._m_reclaim_waits.inc()
            yield self._space.wait()
        return None

    def _find_clean_victim(self) -> Optional[Buffer]:
        for buf in self._lru.values():
            if (not buf.dirty and not buf.busy and not buf.write_outstanding
                    and buf.hold_count == 0 and not buf.flush_deps):
                return buf
        return None

    def _evict(self, buf: Buffer) -> None:
        del self._buffers[buf.daddr]
        self._lru.pop(buf.daddr, None)
        self.used_bytes -= buf.size
        buf.valid = False
        self._space.broadcast()

    # -- busy/LRU bookkeeping -----------------------------------------------
    def _make_busy(self, buf: Buffer) -> None:
        buf.busy = True
        process = self.engine.current_process
        buf.owner = process.name if process is not None else "?"
        self._lru.pop(buf.daddr, None)

    def _unbusy(self, buf: Buffer) -> None:
        buf.busy = False
        buf.owner = ""
        buf.last_release = self.engine.now
        if buf.daddr in self._buffers:
            self._lru[buf.daddr] = buf
            self._lru.move_to_end(buf.daddr)
        buf.waitq.broadcast()

    # -- sync ------------------------------------------------------------------
    def dirty_buffers(self) -> list[Buffer]:
        """All currently dirty buffers (snapshot)."""
        return [buf for buf in self._buffers.values() if buf.dirty]

    def sync(self) -> Generator:
        """Flush everything and wait for the driver to drain.

        Repeats until no dirty buffers remain, because completion processing
        (soft updates) may re-dirty buffers or schedule further writes.
        """
        for _round in range(1000):
            dirty = [buf for buf in self._buffers.values()
                     if buf.dirty and not buf.write_outstanding]
            if not dirty and self.driver.idle:
                return
            for buf in dirty:
                if buf.busy:
                    while buf.busy:
                        yield buf.waitq.wait()
                self.start_flush(buf)
            yield from self.driver.drain()
            yield self.engine.timeout(0.0)
        raise RuntimeError("sync() failed to converge after 1000 rounds")

    def _issuer(self) -> str:
        process = self.engine.current_process
        return process.name if process is not None else "?"
