"""The device driver: queue, C-LOOK elevator, concatenation, tracing.

Matches the paper's base system (section 2): "The scheduling code in the
device driver concatenates sequential requests" and no command queueing at
the disk -- the driver dispatches one (possibly concatenated) operation at a
time and schedules the rest while the drive works.

Every completed request is appended to ``trace`` with issue/dispatch/complete
timestamps, mirroring the paper's instrumented driver (their 4 MB trace
buffer); ``repro.harness.metrics`` summarises the trace into the statistics
the tables and figures report.

Dispatch selection is driven by an incremental **eligibility index** rather
than a per-dispatch scan of the whole queue.  Under the ordering schemes the
held-back queue reaches thousands of requests (the figure 2/4 removes), so
rescanning ``_pending`` per dispatch was quadratic at paper scale.  Instead,
every pending request lives in exactly one bucket:

* ``_eligible`` -- dispatchable now; mirrored in ``_eligible_keys``, a
  ``(lbn, id)``-sorted list the C-LOOK sweep bisects into.
* ``_fifo_held`` -- writes behind an older overlapping write (the driver's
  media-order invariant); woken when they reach the head of every per-sector
  FIFO.
* ``_policy_held`` -- a min-id heap for monotone policies (flag semantics):
  after each completion the driver pops eligible requests off the front and
  stops at the first still-blocked one.
* ``_dep_waiters`` -- chains-style requests watching one incomplete
  dependency each; a completion wakes exactly its watchers.
* ``_read_waiters`` -- conflict-checked reads watching the specific
  incomplete write that blocks them.
* ``_generic_held`` -- fallback for policies with no declared structure;
  rechecked wholesale on every issue/completion (the old cost, paid only by
  third-party policies).

Bucket transitions happen on issue, on completion, and on policy release
(barrier retirement / dependency completion -- both surfaced through
completions), so ``_select_batch`` is O(eligible), not O(pending).  The
dispatch order is byte-identical to the reference full-scan implementation;
``tests/driver/test_dispatch_index.py`` holds the executable spec.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, insort
from collections import deque
from typing import Optional

from repro.faults import EIO, EXHAUSTED, NOSPARE
from repro.sim.engine import Engine
from repro.sim.primitives import WaitQueue
from repro.disk.drive import Disk
from repro.driver.ordering import OrderingPolicy
from repro.driver.request import DiskRequest, IOKind


class DeviceDriver:
    """Queues requests, enforces ordering policy, drives the disk."""

    def __init__(self, engine: Engine, disk: Disk, policy: OrderingPolicy,
                 max_batch_sectors: int = 128, max_retries: int = 4,
                 retry_backoff: float = 0.01) -> None:
        self.engine = engine
        self.disk = disk
        self.policy = policy
        self.max_batch_sectors = max_batch_sectors
        #: bounded recovery for faulted media operations (see _service_retried)
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.retries = 0
        self.remaps = 0
        self.io_errors = 0
        #: keep completed requests' payload bytes in the trace (debugging /
        #: recorders only; the default drops them so the trace stays flat)
        self.retain_payloads = False
        # issue-ordered (dicts preserve insertion order); keyed by id so
        # dispatch removal is O(1) even with thousands queued
        self._pending: dict[int, DiskRequest] = {}
        self._work = WaitQueue(engine)
        self._next_id = 0
        self._head_lbn = 0
        # Overlapping writes must reach the media in issue order no matter
        # what the ordering policy allows (a driver invariant: with the -CB
        # block-copy enhancement or freed-block reuse, two in-queue writes
        # can cover the same sectors, and dispatching the younger one first
        # would let stale bytes land last).  sector -> ids in issue order;
        # deques because completion always retires the head (dispatch is
        # gated on being first everywhere, so completions pop left).
        self._write_fifo: dict[int, deque[int]] = {}
        # -- the eligibility index (see module docstring) ------------------
        self._eligible: dict[int, DiskRequest] = {}
        self._eligible_keys: list[tuple[int, int]] = []
        # mirror sorted by (end_lbn, id): backward concatenation bisects
        # here instead of scanning every eligible request per dispatch
        self._eligible_ends: list[tuple[int, int]] = []
        self._fifo_held: set[int] = set()
        self._policy_held: list[int] = []
        self._dep_waiters: dict[int, list[int]] = {}
        self._read_waiters: dict[int, list[int]] = {}
        self._generic_held: dict[int, DiskRequest] = {}
        #: completed requests, in completion order
        self.trace: list[DiskRequest] = []
        self.requests_issued = 0
        # observability (None = off; instruments captured once, updates are
        # a single is-not-None check on the hot paths)
        obs = engine.obs
        self._obs = obs
        if obs is not None:
            registry = obs.registry
            self._m_queue_wait = registry.histogram("driver.queue_wait")
            self._m_reads = registry.counter("driver.reads")
            self._m_writes = registry.counter("driver.writes")
            self._m_flagged = registry.counter("driver.flagged_writes")
            self._m_batches = registry.counter("driver.batches")
            self._m_queue_peak = registry.gauge("driver.queue_peak")
        else:
            self._m_queue_wait = None
        # recovery instruments are created lazily on the first fault so
        # fault-free traced runs keep identical metric snapshots
        self._m_retries = None
        self._process = engine.process(self._run(), name="disk-driver")

    # -- public API -------------------------------------------------------
    def issue(self, kind: IOKind, lbn: int, nsectors: int,
              data: Optional[bytes] = None, flag: bool = False,
              depends_on: Optional[frozenset[int]] = None,
              issuer: str = "") -> DiskRequest:
        """Create and enqueue a request; returns it immediately.

        The caller decides whether to wait: ``yield request.done`` makes the
        write synchronous from the issuing process's point of view.
        """
        self._next_id += 1
        request = DiskRequest(self.engine, self._next_id, kind, lbn, nsectors,
                              data=data, flag=flag, depends_on=depends_on,
                              issuer=issuer)
        request.issue_time = self.engine.now
        if request.is_write:
            for sector in range(request.lbn, request.end_lbn):
                fifo = self._write_fifo.get(sector)
                if fifo is None:
                    self._write_fifo[sector] = deque((request.id,))
                else:
                    fifo.append(request.id)
        self.policy.on_issue(request)
        self._pending[request.id] = request
        self.requests_issued += 1
        obs = self._obs
        if obs is not None:
            request.trace_parent = obs.tracer.current()
            self._m_queue_peak.track_max(len(self._pending))
            if flag:
                self._m_flagged.inc()
        if self.policy.eligibility == "generic":
            self._recheck_generic_eligible()
        self._classify(request)
        # broadcast, not signal: both the dispatch loop and any drain()
        # waiters sleep on the same queue and must all re-check
        self._work.broadcast()
        return request

    def read(self, lbn: int, nsectors: int, issuer: str = "") -> DiskRequest:
        """Issue a read request (convenience wrapper over :meth:`issue`)."""
        return self.issue(IOKind.READ, lbn, nsectors, issuer=issuer)

    def write(self, lbn: int, data: bytes, flag: bool = False,
              depends_on: Optional[frozenset[int]] = None,
              issuer: str = "") -> DiskRequest:
        """Issue a write request (convenience wrapper over :meth:`issue`)."""
        nsectors = len(data) // self.disk.geometry.sector_size
        return self.issue(IOKind.WRITE, lbn, nsectors, data=data, flag=flag,
                          depends_on=depends_on, issuer=issuer)

    @property
    def queue_depth(self) -> int:
        """Requests waiting in the driver queue (excludes the one in flight)."""
        return len(self._pending)

    @property
    def last_issued_id(self) -> int:
        """Id of the most recently issued request (0 if none yet)."""
        return self._next_id

    @property
    def idle(self) -> bool:
        """True when nothing is queued and nothing is at the drive."""
        return not self._pending and not self._in_flight

    def drain(self):
        """Subroutine: wait until the driver queue is empty and disk idle.

        Usable from simulated processes: ``yield from driver.drain()``.
        """
        while self._pending or self._in_flight:
            yield self._idle_check_event()

    def _idle_check_event(self):
        # piggyback on completion signals: wake on next completion
        return self._work.wait()

    # -- the eligibility index --------------------------------------------
    def _classify(self, request: DiskRequest) -> None:
        """Place a pending request into the bucket its state demands.

        Called on issue and whenever a wake condition fires; the caller has
        already removed the request from its previous bucket.
        """
        if request.is_write and not self._write_fifo_ok(request):
            self._fifo_held.add(request.id)
            return
        policy = self.policy
        eligibility = policy.eligibility
        if eligibility == "none":
            self._promote(request)
        elif not request.is_write and policy.conflict_checked_reads:
            blocker = self._conflict_blocker(request)
            if blocker is None:
                self._promote(request)
            else:
                self._read_waiters.setdefault(blocker, []).append(request.id)
        elif eligibility == "monotone":
            held = self._policy_held
            # if an older request is already policy-held, monotonicity says
            # this one is too -- no need to consult the policy (this is what
            # makes issue O(log n) with a thousand-deep held-back queue)
            if held and held[0] < request.id:
                heapq.heappush(held, request.id)
            elif policy.may_dispatch(request):
                self._promote(request)
            else:
                heapq.heappush(held, request.id)
        elif eligibility == "deps":
            blockers = policy.blocking_deps(request)
            if blockers:
                self._dep_waiters.setdefault(blockers[0], []) \
                    .append(request.id)
            else:
                self._promote(request)
        elif policy.may_dispatch(request):
            self._promote(request)
        else:
            self._generic_held[request.id] = request

    def _promote(self, request: DiskRequest) -> None:
        self._eligible[request.id] = request
        insort(self._eligible_keys, (request.lbn, request.id))
        insort(self._eligible_ends, (request.end_lbn, request.id))

    def _remove_eligible(self, request: DiskRequest) -> None:
        del self._eligible[request.id]
        keys = self._eligible_keys
        index = bisect_left(keys, (request.lbn, request.id))
        del keys[index]
        ends = self._eligible_ends
        index = bisect_left(ends, (request.end_lbn, request.id))
        del ends[index]

    def _conflict_blocker(self, request: DiskRequest) -> Optional[int]:
        """Oldest incomplete *earlier* write overlapping *request*.

        Only earlier writes block a conflict-checked read (the paper's -NR
        rule); the per-sector FIFO fronts are the oldest ids, so one
        comparison per sector decides.  Later writes never block an
        already-issued read -- which also means issuing a write can never
        retract a read's eligibility.
        """
        fifo = self._write_fifo
        request_id = request.id
        for sector in range(request.lbn, request.end_lbn):
            ids = fifo.get(sector)
            if ids and ids[0] < request_id:
                return ids[0]
        return None

    def _recheck_generic_eligible(self) -> None:
        """Generic policies may retract eligibility on issue: recheck all."""
        policy = self.policy
        demoted = [request for request in self._eligible.values()
                   if not policy.may_dispatch(request)]
        for request in demoted:
            self._remove_eligible(request)
            self._generic_held[request.id] = request

    def _after_completions(self, batch: list[DiskRequest]) -> None:
        """Wake whatever this batch's completions made dispatchable."""
        pending = self._pending
        # writes that may have reached the head of every sector FIFO
        sectors: set[int] = set()
        for request in batch:
            if request.is_write:
                sectors.update(range(request.lbn, request.end_lbn))
        if sectors:
            fifo = self._write_fifo
            candidates: set[int] = set()
            for sector in sectors:
                ids = fifo.get(sector)
                if ids:
                    candidates.add(ids[0])
            for candidate in sorted(candidates & self._fifo_held):
                request = pending[candidate]
                if self._write_fifo_ok(request):
                    self._fifo_held.discard(candidate)
                    self._classify(request)
        # conflict-checked reads watching a completed write, and chains
        # requests watching a completed dependency
        for request in batch:
            for waiter in self._read_waiters.pop(request.id, ()):
                self._classify(pending[waiter])
            for waiter in self._dep_waiters.pop(request.id, ()):
                self._classify(pending[waiter])
        # monotone policies release the held-back queue in issue order:
        # pop until the first still-blocked request (all later ones are
        # blocked too, so nothing past it needs a look)
        held = self._policy_held
        if held:
            policy = self.policy
            while held:
                request = pending.get(held[0])
                if request is None:  # defensive; held ids are pending
                    heapq.heappop(held)
                    continue
                if not policy.may_dispatch(request):
                    break
                heapq.heappop(held)
                self._promote(request)
        if self._generic_held:
            policy = self.policy
            released = [request for request in self._generic_held.values()
                        if policy.may_dispatch(request)]
            for request in released:
                del self._generic_held[request.id]
                self._promote(request)

    # -- the dispatch loop -------------------------------------------------
    _in_flight: bool = False

    def _run(self):
        while True:
            batch = self._select_batch()
            if batch is None:
                yield self._work.wait()
                continue
            now = self.engine.now
            for request in batch:
                request.dispatch_time = now
                del self._pending[request.id]
                self._remove_eligible(request)
            self._in_flight = True
            first = batch[0]
            total_sectors = sum(r.nsectors for r in batch)
            if first.is_write:
                data = b"".join(r.data for r in batch)
                yield from self._service_retried(
                    first.lbn, total_sectors, True, data, batch)
            else:
                yield from self._service_retried(
                    first.lbn, total_sectors, False, None, batch)
            self._in_flight = False
            self._head_lbn = first.lbn + total_sectors
            done_at = self.engine.now
            for request in batch:
                request.complete_time = done_at
                # the payload is on the platters now; keeping it would make
                # the trace hold the whole workload's bytes (paper-scale
                # runs move hundreds of MB)
                if not self.retain_payloads:
                    request.data = None
                if request.is_write:
                    for sector in range(request.lbn, request.end_lbn):
                        ids = self._write_fifo[sector]
                        # dispatch is gated on being first everywhere, so
                        # the completing write is the head in each FIFO
                        ids.popleft()
                        if not ids:
                            del self._write_fifo[sector]
                self.policy.on_complete(request)
                self.trace.append(request)
            if self._obs is not None:
                self._record_batch(batch)
            self._after_completions(batch)
            # completion callbacks run after *all* policy bookkeeping so a
            # callback that issues new I/O sees a consistent policy state
            for request in batch:
                for callback in request.on_complete:
                    callback(request)
                # release the callbacks too: their closures reference cache
                # buffers, and the trace keeps requests for the whole run
                request.on_complete = []
                request.done.succeed(request)
            # wake anyone waiting for queue drain / eligibility changes
            self._work.broadcast()

    def _service_retried(self, lbn: int, nsectors: int, is_write: bool,
                         data, batch: list[DiskRequest]):
        """One media operation with bounded retry, backoff, and reassignment.

        The fault-free path is a single ``disk.service`` call and one
        ``sense is None`` check -- byte-identical to the pre-fault driver.
        Recovery policy on failure:

        * transient / torn / timeout -- re-issue after an escalating backoff,
          up to ``max_retries`` attempts; each retry redraws, so recovery is
          the overwhelmingly common outcome.
        * medium error on a write -- SCSI REASSIGN BLOCKS the defective
          sector, then re-issue immediately.  Reassignments make progress
          (the defect is gone) so they do not count against the retry
          budget; the spare pool bounds them instead.
        * medium error on a read -- the sector's data is gone; no retry can
          recover it.  Fail at once.

        A request that cannot be recovered completes *normally* through the
        driver (FIFO retirement, policy bookkeeping, callbacks) with
        ``request.error`` set; the buffer cache decides what failure means.
        """
        disk = self.disk
        yield from disk.service(lbn, nsectors, is_write, data)
        sense = disk.sense
        if sense is None:
            return
        attempts = 0
        while sense is not None:
            if sense.code == "medium":
                if not is_write:
                    self._fail_batch(batch, EIO, sense.code)
                    return
                if not disk.reassign_block(sense.bad_lbn):
                    self._fail_batch(batch, NOSPARE, sense.code)
                    return
                self.remaps += 1
            else:
                attempts += 1
                if attempts > self.max_retries:
                    self._fail_batch(batch,
                                     EXHAUSTED if is_write else EIO,
                                     sense.code)
                    return
                if self.retry_backoff:
                    yield self.engine.timeout(self.retry_backoff * attempts)
            self.retries += 1
            disk.faults.log(self.engine.now, "retry",
                            f"{'write' if is_write else 'read'} lbn={lbn} "
                            f"after {sense.code} (attempt {attempts})")
            if self._obs is not None:
                if self._m_retries is None:
                    self._m_retries = self._obs.registry.counter(
                        "driver.retries")
                self._m_retries.inc()
            yield from disk.service(lbn, nsectors, is_write, data)
            sense = disk.sense

    def _fail_batch(self, batch: list[DiskRequest], code: str,
                    sense_code: str) -> None:
        """Mark every request in a doomed batch with a typed error code."""
        self.io_errors += len(batch)
        for request in batch:
            request.error = code
        self.disk.faults.log(
            self.engine.now, "io_error",
            f"{code} ({sense_code}) ids={[r.id for r in batch]} "
            f"lbn={batch[0].lbn}")

    def _record_batch(self, batch: list[DiskRequest]) -> None:
        """Tracing-on completion path: queue-residency spans + metrics.

        Purely retrospective -- built from the stamps the driver keeps
        anyway, so the traced dispatch sequence is identical to untraced.
        """
        tracer = self._obs.tracer
        queue_wait = self._m_queue_wait
        self._m_batches.inc()
        for request in batch:
            queue_wait.observe(request.queue_delay)
            (self._m_writes if request.is_write else self._m_reads).inc()
            name = ("driver.queue.write" if request.is_write
                    else "driver.queue.read")
            tracer.record_async(
                name, "driver", request.issue_time, request.dispatch_time,
                "driver.queue", async_id=request.id,
                parent=request.trace_parent,
                args={"id": request.id, "lbn": request.lbn,
                      "nsectors": request.nsectors, "issuer": request.issuer,
                      "flag": request.flag})

    # -- selection ----------------------------------------------------------
    def _select_batch(self) -> Optional[list[DiskRequest]]:
        """Pick the next dispatch: C-LOOK among eligible, then concatenate.

        The eligible set is maintained incrementally (see module docstring);
        selection bisects the ``(lbn, id)``-sorted keys for the first entry
        at or past the head (the C-LOOK sweep) and wraps to the global
        minimum when the sweep is past everything.
        """
        keys = self._eligible_keys
        if not keys:
            return None
        index = bisect_left(keys, (self._head_lbn, 0))
        if index == len(keys):
            index = 0
        chosen = self._eligible[keys[index][1]]
        return self._concatenate(chosen)

    def _write_fifo_ok(self, request: DiskRequest) -> bool:
        """True unless an older incomplete write overlaps this write."""
        if not request.is_write:
            return True
        fifo = self._write_fifo
        request_id = request.id
        return all(fifo[sector][0] == request_id
                   for sector in range(request.lbn, request.end_lbn))

    def _lowest_at(self, lbn: int, kind: IOKind,
                   chosen: DiskRequest) -> Optional[DiskRequest]:
        """First-issued eligible *kind* request starting at *lbn* (not
        *chosen*); keys are (lbn, id)-sorted, so the bisect lands on the
        lowest id and the walk only skips other-kind requests."""
        keys = self._eligible_keys
        eligible = self._eligible
        index = bisect_left(keys, (lbn, 0))
        while index < len(keys) and keys[index][0] == lbn:
            request = eligible[keys[index][1]]
            if request.kind is kind and request is not chosen:
                return request
            index += 1
        return None

    def _concatenate(self, chosen: DiskRequest) -> list[DiskRequest]:
        """Merge LBN-contiguous, same-direction eligible requests.

        First-issued (lowest id) wins whenever two eligible requests could
        anchor the same extension point -- in both the forward (by start
        LBN) and backward (by end LBN) directions.  Backward candidates are
        drawn from the forward pass's residue: only the first-issued
        request at its start LBN may anchor a backward extension, and never
        one the forward pass already consumed.  Both directions bisect the
        sorted key mirrors, so a dispatch costs O(batch · log eligible)
        instead of a scan of every eligible request
        (``tests/driver/test_concat_index.py`` holds the executable spec).
        """
        kind = chosen.kind
        max_total = self.max_batch_sectors
        batch = [chosen]
        total = chosen.nsectors
        consumed: set[int] = set()
        # extend forward
        cursor = chosen.end_lbn
        while total < max_total:
            nxt = self._lowest_at(cursor, kind, chosen)
            if nxt is None:
                break
            batch.append(nxt)
            consumed.add(nxt.id)
            total += nxt.nsectors
            cursor = nxt.end_lbn
        # extend backward
        ends = self._eligible_ends
        eligible = self._eligible
        cursor = chosen.lbn
        while total < max_total:
            index = bisect_left(ends, (cursor, 0))
            prev = None
            while index < len(ends) and ends[index][0] == cursor:
                request = eligible[ends[index][1]]
                if (request.kind is kind and request is not chosen
                        and request.id not in consumed
                        and self._lowest_at(request.lbn, kind, chosen)
                        is request):
                    prev = request
                    break
                index += 1
            if prev is None:
                break
            batch.insert(0, prev)
            consumed.add(prev.id)
            total += prev.nsectors
            cursor = prev.lbn
        return batch
