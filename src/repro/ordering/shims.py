"""Rule-breaking shim schemes: seeded mutations for the monitor's tests.

Each shim is the conventional scheme with exactly ONE ordered write
dropped or delayed -- a seeded ordering breach -- while still *declaring*
the safe ``allows_corruption=False`` guarantees.  A correct monitor must
therefore catch each breach as an **unexpected** violation at commit time
(and the crash sweep's fsck must catch it post-crash): these schemes are
the mutation tests proving the verification machinery actually fires, not
production orderings.

* :class:`BreakRule3Scheme` -- the directory entry is forced to disk
  *before* the new inode's initialization (rule 3 inverted): a crash in
  between leaves an entry naming an uninitialized inode.
* :class:`BreakRule1Scheme` -- the inode is freed while the directory
  entry clearing is merely delayed (rule 1 inverted): the free can land
  before the entry clears, leaving a dangling reference.
* :class:`BreakRule2Scheme` -- blocks return to the free pool while the
  on-disk inode still points at them (rule 2 inverted): a later
  allocation reuses a fragment the old owner never disowned on disk.
"""

from __future__ import annotations

from typing import Generator

from repro.ordering.conventional import ConventionalScheme
from repro.ordering.guarantees import CrashGuarantees


class BreakRule3Scheme(ConventionalScheme):
    """Dirent first, inode later: 'never point to an uninitialized
    structure' violated on every create."""

    name = "Shim(rule 3 broken)"
    # the lie under test: declares itself safe while breaking rule 3
    declared_guarantees = CrashGuarantees(allows_corruption=False)

    def link_added(self, dp, dbuf, offset, ip, new_inode: bool) -> Generator:
        ibuf = yield from self._release_on_error(
            self.fs.load_inode_buf(ip.ino), dbuf)
        self.fs.store_inode(ip, ibuf)
        # BREACH: the entry is forced out first; the inode it names
        # follows lazily through the syncer
        yield from self._release_on_error(self._ordered_wait(
            self.fs.cache.bwrite(dbuf), "sync_stall", point="link_added"),
            ibuf)
        self.fs.cache.bdwrite(ibuf)


class BreakRule1Scheme(ConventionalScheme):
    """Free the inode while the entry clear is still delayed: 'never reset
    the old pointer before the new value is written' violated on every
    remove."""

    name = "Shim(rule 1 broken)"
    declared_guarantees = CrashGuarantees(allows_corruption=False)

    def link_removed(self, dp, dbuf, offset, ip) -> Generator:
        # BREACH: the cleared entry is merely delayed; the link drop (and
        # a possible inode free) proceeds immediately
        self.fs.cache.bdwrite(dbuf)
        yield from self.fs.drop_link(ip)


class BreakRule2Scheme(ConventionalScheme):
    """Free the blocks while the on-disk inode still points at them:
    'never reuse a resource before nullifying all pointers' violated on
    every delete."""

    name = "Shim(rule 2 broken)"
    declared_guarantees = CrashGuarantees(allows_corruption=False)

    def release_inode(self, ip) -> Generator:
        runs = yield from self.fs.collect_blocks(ip)
        self.fs.clear_block_pointers(ip)
        ino = ip.ino
        yield from self.fs.free_inode_record(ip)
        ibuf = yield from self.fs.load_inode_buf(ino)
        at = self.fs.geometry.inode_offset_in_block(ino)
        ibuf.data[at:at + 128] = bytes(128)
        # BREACH: the pointer reset is merely delayed while the blocks
        # return to the free pool at once -- a later allocation can land
        # on disk before the old owner's on-disk pointers clear
        self.fs.cache.bdwrite(ibuf)
        yield from self.fs.free_block_list(runs)


#: mutation-test registry: shim name -> (scheme class, rule key the
#: monitor must attribute the breach to)
SHIMS = {
    "shim-rule1": (BreakRule1Scheme, "free-while-referenced"),
    "shim-rule2": (BreakRule2Scheme, "reuse-before-nullify"),
    "shim-rule3": (BreakRule3Scheme, "dirent-uninitialized"),
}
