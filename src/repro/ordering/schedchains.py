"""Scheduler Chains: asynchronous writes with explicit dependency lists.

Section 3.2: each disk request carries "a list of requests on which it
depends", avoiding the false dependencies of the one-bit flag.  A new
request may only depend on previously issued requests, so the antecedent of
every ordering pair is issued (asynchronously) at update time; the dependent
update can stay delayed, with the requirement recorded on its buffer
(``Buffer.flush_deps``) and attached whenever the buffer is finally written.

Block deallocation (the tricky case the paper discusses) supports both
approaches compared in section 3.2:

* ``dealloc_barrier=False`` (default, the better performer): freed blocks
  and inode slots are remembered until the pointer-reset write completes;
  reallocating one makes the new owner's first write depend on the reset.
* ``dealloc_barrier=True``: the reset write acts as a Part-NR-style barrier
  -- every subsequently issued write depends on it (the simpler, slower
  fallback; benchmarked by the A1 ablation).
"""

from __future__ import annotations

from typing import Generator

from repro.ordering.base import AllocContext, OrderingScheme
from repro.ordering.guarantees import CrashGuarantees


class SchedulerChainsScheme(OrderingScheme):
    """Per-request dependency lists enforced by the disk scheduler."""

    # explicit dependency chains uphold all three rules without the flag's
    # false dependencies; repairable wear is still possible
    declared_guarantees = CrashGuarantees(allows_corruption=False)

    def __init__(self, alloc_init: bool = False, block_copy: bool = True,
                 dealloc_barrier: bool = False) -> None:
        super().__init__(alloc_init=alloc_init)
        self.uses_block_copy = block_copy
        self.dealloc_barrier = dealloc_barrier
        self.name = "Scheduler Chains"
        # recently freed resources -> the reset request they wait for
        self._freed_frags: dict[int, int] = {}     # daddr -> request id
        self._freed_inodes: dict[int, int] = {}    # ino -> request id
        self._barriers: set[int] = set()

    def attach(self, fs) -> None:
        super().attach(fs)
        if self.dealloc_barrier:
            fs.cache.global_write_deps = lambda: set(self._barriers)

    # -- the four structural changes --------------------------------------
    def link_added(self, dp, dbuf, offset, ip, new_inode: bool) -> Generator:
        ibuf = yield from self._release_on_error(
            self.fs.load_inode_buf(ip.ino), dbuf)
        self.fs.store_inode(ip, ibuf)
        if new_inode:
            self._inherit_freed_inode(ip.ino, ibuf)
        request = yield from self.fs.cache.bawrite(ibuf)
        # the directory block's eventual write depends on the inode write
        dbuf.flush_deps.add(request.id)
        self._bump("ordering.chain_links")
        self.fs.cache.bdwrite(dbuf)

    def link_removed(self, dp, dbuf, offset, ip) -> Generator:
        request = yield from self.fs.cache.bawrite(dbuf)
        # the inode's next write (link count drop / reset) depends on it
        ibuf = yield from self.fs.load_inode_buf(ip.ino)
        ibuf.flush_deps.add(request.id)
        self._bump("ordering.chain_links")
        self.fs.cache.brelse(ibuf)
        yield from self.fs.drop_link(ip)

    def block_allocated(self, ctx: AllocContext) -> Generator:
        must_init = ctx.is_metadata or self.alloc_init
        moved = bool(ctx.old_daddr) and ctx.old_daddr != ctx.new_daddr
        # reallocation of recently freed fragments: "the new owner (inode or
        # indirect block) becomes dependent on the write of the old owner.
        # In fact, we make the newly allocated block itself dependent"
        pending_resets = {self._freed_frags[fragment]
                          for fragment in range(ctx.new_daddr,
                                                ctx.new_daddr + ctx.new_frags)
                          if fragment in self._freed_frags}
        ctx.data_buf.flush_deps |= pending_resets
        self._bump("ordering.chain_links", len(pending_resets))
        if moved:
            # issue the pointer update now so the old run's reuse can name it
            ibuf2 = yield from self._release_on_error(
                self.fs.load_inode_buf(ctx.ip.ino), ctx.ibuf, ctx.data_buf)
            self.fs.store_inode(ctx.ip, ibuf2)
            reset = yield from self.fs.cache.bawrite(ibuf2)
            for daddr in range(ctx.old_daddr, ctx.old_daddr + ctx.old_frags):
                self._track_frag(daddr, reset)
        if not must_init and not pending_resets:
            if ctx.ibuf is not None:
                self.fs.cache.bdwrite(ctx.ibuf)
            self.fs.cache.brelse(ctx.data_buf)
        else:
            # hold the pointer-owning buffer across the init-write issue so
            # its dependencies are recorded before any flush can happen
            if ctx.owner_kind == "inode":
                owner = yield from self._release_on_error(
                    self.fs.load_inode_buf(ctx.ip.ino),
                    ctx.ibuf, ctx.data_buf)
            else:
                owner = ctx.ibuf
            owner.flush_deps |= pending_resets
            self._bump("ordering.chain_links", len(pending_resets))
            if must_init:
                init_request = yield from self.fs.cache.bawrite(ctx.data_buf)
                owner.flush_deps.add(init_request.id)
                self._bump("ordering.chain_links")
            else:
                self.fs.cache.brelse(ctx.data_buf)
            if ctx.owner_kind == "inode":
                self.fs.cache.brelse(owner)
            else:
                self.fs.cache.bdwrite(owner)
        if moved:
            self.fs.cache.invalidate(ctx.old_daddr, ctx.old_frags)
            yield from self.fs.allocator.free_frags(ctx.old_daddr,
                                                    ctx.old_frags)

    def truncated(self, ip, runs) -> Generator:
        ibuf = yield from self.fs.load_inode_buf(ip.ino)
        self.fs.store_inode(ip, ibuf)
        reset = yield from self.fs.cache.bawrite(ibuf)
        if self.dealloc_barrier:
            self._barriers.add(reset.id)
            reset.on_complete.append(
                lambda req: self._barriers.discard(req.id))
        else:
            for daddr, frags in runs:
                for fragment in range(daddr, daddr + frags):
                    self._track_frag(fragment, reset)
        yield from self.fs.free_block_list(runs)

    def release_inode(self, ip) -> Generator:
        runs = yield from self.fs.collect_blocks(ip)
        self.fs.clear_block_pointers(ip)
        ino = ip.ino
        yield from self.fs.free_inode_record(ip)
        ibuf = yield from self.fs.load_inode_buf(ino)
        at = self.fs.geometry.inode_offset_in_block(ino)
        ibuf.data[at:at + 128] = bytes(128)
        reset = yield from self.fs.cache.bawrite(ibuf)  # carries flush_deps
        if self.dealloc_barrier:
            self._barriers.add(reset.id)
            reset.on_complete.append(
                lambda req: self._barriers.discard(req.id))
        else:
            for daddr, frags in runs:
                for fragment in range(daddr, daddr + frags):
                    self._track_frag(fragment, reset)
            self._freed_inodes[ino] = reset.id
            reset.on_complete.append(
                lambda req, i=ino: self._untrack_inode(i, req.id))
        yield from self.fs.free_block_list(runs)

    # -- freed-resource tracking (section 3.2's better approach) ------------
    def _track_frag(self, daddr: int, request) -> None:
        self._freed_frags[daddr] = request.id
        request.on_complete.append(
            lambda req, d=daddr: self._untrack_frag(d, req.id))

    def _untrack_frag(self, daddr: int, request_id: int) -> None:
        if self._freed_frags.get(daddr) == request_id:
            del self._freed_frags[daddr]

    def _untrack_inode(self, ino: int, request_id: int) -> None:
        if self._freed_inodes.get(ino) == request_id:
            del self._freed_inodes[ino]

    def _inherit_freed_frag(self, daddr: int, frags: int, buf) -> None:
        """New owner of a recently freed run depends on the old reset write.

        "In fact, we make the newly allocated block itself dependent on the
        old owner.  This prevents new data from being added to the old file
        due to untimely system failure."
        """
        for fragment in range(daddr, daddr + frags):
            pending = self._freed_frags.get(fragment)
            if pending is not None:
                buf.flush_deps.add(pending)

    def _inherit_freed_inode(self, ino: int, ibuf) -> None:
        pending = self._freed_inodes.get(ino)
        if pending is not None:
            ibuf.flush_deps.add(pending)

    def pending_work(self) -> int:
        return len(self._freed_frags) + len(self._freed_inodes)
