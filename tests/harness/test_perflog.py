"""Rotation of the BENCH_perf.json trajectory into its history sidecar,
plus the host-fact enrichment/migration the regression gate relies on."""

import json
import os

import pytest

from repro.harness.perflog import (
    DEFAULT_KEEP,
    append_record,
    build_session_record,
    history_path_for,
    load_history,
    load_records,
    migrate_record,
)


def record(n: int) -> dict:
    return {"session": n, "wall_seconds": float(n)}


def sessions(records: list) -> list:
    return [r["session"] for r in records]


class TestHistoryPath:
    def test_json_suffix_swapped(self, tmp_path):
        assert history_path_for(tmp_path / "BENCH_perf.json") \
            == tmp_path / "BENCH_perf.history.jsonl"

    def test_other_suffixes_appended(self, tmp_path):
        assert history_path_for(tmp_path / "perf.dat").name \
            == "perf.dat.history.jsonl"


class TestLoadRecords:
    def test_missing_file_is_empty(self, tmp_path):
        assert load_records(tmp_path / "nope.json") == []

    def test_legacy_single_dict_wrapped_and_migrated(self, tmp_path):
        path = tmp_path / "perf.json"
        path.write_text(json.dumps(record(1)))
        loaded = load_records(path)
        assert sessions(loaded) == [1]
        # lenient migration: stratification keys appear as placeholders
        assert loaded[0]["host"] == {"platform": None, "python": None,
                                     "cpus": None, "numpy": None}
        assert loaded[0]["kernel"] is None
        assert loaded[0]["scale"] is None

    def test_garbage_tolerated(self, tmp_path):
        path = tmp_path / "perf.json"
        path.write_text("{not json")
        assert load_records(path) == []


class TestMigration:
    def test_partial_host_block_completed(self):
        migrated = migrate_record({"host": {"cpus": 4}, "kernel": "fast"})
        assert migrated["host"]["cpus"] == 4
        assert migrated["host"]["numpy"] is None
        assert migrated["kernel"] == "fast"

    def test_existing_values_never_clobbered(self):
        migrated = migrate_record({"scale": 0.15, "jobs": 2})
        assert migrated["scale"] == 0.15
        assert migrated["jobs"] == 2

    def test_non_dict_passed_through(self):
        assert migrate_record("junk") == "junk"


class TestAppendRecord:
    def test_appends_below_cap_without_history(self, tmp_path):
        path = tmp_path / "perf.json"
        for n in range(3):
            retained = append_record(path, record(n), keep=5)
        assert sessions(retained) == [0, 1, 2]
        assert sessions(load_records(path)) == [0, 1, 2]
        assert not history_path_for(path).exists()

    def test_append_enriches_with_real_host_facts(self, tmp_path):
        path = tmp_path / "perf.json"
        retained = append_record(path, record(0), keep=5)
        host = retained[0]["host"]
        assert host["cpus"] == (os.cpu_count() or 1)
        assert isinstance(host["numpy"], bool)
        assert host["platform"]
        # an explicit host block is preserved, not overwritten
        retained = append_record(
            path, {"session": 1, "host": {"cpus": 99}}, keep=5)
        assert retained[1]["host"]["cpus"] == 99

    def test_rotates_overflow_into_history_jsonl(self, tmp_path):
        path = tmp_path / "perf.json"
        for n in range(7):
            append_record(path, record(n), keep=3)
        # main file: the newest 3 only
        assert sessions(load_records(path)) == [4, 5, 6]
        # history: the 4 rotated-out sessions, oldest first, one per line
        lines = history_path_for(path).read_text().splitlines()
        assert [json.loads(line)["session"] for line in lines] == [0, 1, 2, 3]
        # and the history loader migrates them too
        history = load_history(history_path_for(path))
        assert sessions(history) == [0, 1, 2, 3]
        assert all("host" in r for r in history)

    def test_main_file_never_exceeds_keep(self, tmp_path):
        path = tmp_path / "perf.json"
        for n in range(2 * DEFAULT_KEEP + 5):
            retained = append_record(path, record(n))
            assert len(retained) <= DEFAULT_KEEP
        assert len(load_records(path)) == DEFAULT_KEEP

    def test_explicit_history_path(self, tmp_path):
        path = tmp_path / "perf.json"
        history = tmp_path / "elsewhere.jsonl"
        append_record(path, record(0), keep=1, history_path=history)
        append_record(path, record(1), keep=1, history_path=history)
        assert json.loads(history.read_text().splitlines()[0])["session"] == 0
        assert not history_path_for(path).exists()

    def test_legacy_dict_file_upgraded_in_place(self, tmp_path):
        path = tmp_path / "perf.json"
        path.write_text(json.dumps(record(0)))
        retained = append_record(path, record(1), keep=5)
        assert sessions(retained) == [0, 1]

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            append_record(tmp_path / "perf.json", record(0), keep=0)


class TestBuildSessionRecord:
    def test_schema_matches_gate_expectations(self):
        from repro.harness.parallel import CellStats, GridReport
        grid = GridReport(name="g", jobs=2, wall_seconds=1.0)
        grid.cells.append(CellStats(key="('copy', 'Soft Updates')",
                                    wall_seconds=0.5, sim_events=1000,
                                    extra={"kernel": "fast"}))
        rec = build_session_record([grid], scale=0.15, jobs=2,
                                   kernel="python", timestamp="t")
        assert rec["kernel"] == "python"
        assert rec["host"]["cpus"] == (os.cpu_count() or 1)
        cell = rec["grids"][0]["cells"][0]
        assert cell["wall_seconds"] == 0.5
        assert cell["events_per_second"] == 2000
        assert cell["kernel"] == "fast"
