"""Partial-write crash semantics of ``crash_image``.

The drive lays sectors down in LBN order and each sector carries its own
ECC (paper, footnote 1), so a power failure mid-transfer leaves exactly a
sector *prefix* of the in-flight request -- never torn bytes inside a
sector, never a suffix.  These tests pin that contract, which the crash
explorer's mid-transfer enumeration depends on, and the NVRAM rule that
surviving mirror contents replay *over* whatever the platters hold.
"""

import pytest

from repro.costs import CostModel
from repro.disk.drive import InFlightWrite
from repro.integrity.crash import crash_image
from repro.integrity.explorer import build_machine, build_workload
from repro.harness.recording import record_run
from repro.integrity.invariants import classify_report
from repro.integrity.fsck import fsck
from repro.machine import Machine, MachineConfig

NSECTORS = 8


def sector_pattern(tag: int, sector_size: int) -> bytes:
    return bytes([tag]) * sector_size


def make_raw_machine() -> Machine:
    """A machine used as a raw block device (no file system needed)."""
    return Machine(MachineConfig(costs=CostModel(scale=0.0)))


def run_write_until_transfer(machine: Machine, lbn: int, data: bytes):
    """Issue one write and step until its media transfer is under way."""

    def writer():
        request = machine.driver.write(lbn, data, issuer="test")
        yield request.done

    machine.spawn(writer(), name="writer")
    guard = 0
    while machine.disk.in_flight is None:
        machine.engine.step()
        guard += 1
        assert guard < 100_000, "write never reached the media"
    return machine.disk.in_flight


class TestSectorsAppliedBy:
    """The pure arithmetic of the prefix model."""

    def test_boundaries(self):
        write = InFlightWrite(lbn=0, data=bytes(4 * 512),
                              transfer_start=10.0, sector_period=0.5)
        assert write.sectors_applied_by(9.0, 512) == 0
        assert write.sectors_applied_by(10.0, 512) == 0
        # a sector counts only once fully transferred
        assert write.sectors_applied_by(10.49, 512) == 0
        assert write.sectors_applied_by(10.5, 512) == 1
        assert write.sectors_applied_by(11.25, 512) == 2
        # ... and the count never exceeds the request
        assert write.sectors_applied_by(12.0, 512) == 4
        assert write.sectors_applied_by(99.0, 512) == 4

    def test_monotone_in_time(self):
        write = InFlightWrite(lbn=0, data=bytes(NSECTORS * 512),
                              transfer_start=0.0, sector_period=0.125)
        counts = [write.sectors_applied_by(t / 16, 512) for t in range(40)]
        assert counts == sorted(counts)
        assert counts[-1] == NSECTORS


@pytest.mark.parametrize("applied", range(NSECTORS + 1))
def test_mid_transfer_crash_keeps_exact_sector_prefix(applied):
    """Crash after k sectors: image = k new sectors + (n-k) old ones."""
    machine = make_raw_machine()
    sector_size = machine.disk.geometry.sector_size
    lbn = 5000
    old = b"".join(sector_pattern(0x10 + i, sector_size)
                   for i in range(NSECTORS))
    new = b"".join(sector_pattern(0xA0 + i, sector_size)
                   for i in range(NSECTORS))
    machine.disk.storage.write(lbn, old)

    in_flight = run_write_until_transfer(machine, lbn, new)
    assert in_flight.lbn == lbn and in_flight.data == new
    if applied == NSECTORS:
        crash_at = in_flight.transfer_start \
            + NSECTORS * in_flight.sector_period
    else:
        crash_at = in_flight.transfer_start \
            + (applied + 0.5) * in_flight.sector_period
    machine.engine.run_to(crash_at, max_events=100_000)

    image = crash_image(machine)
    survivor = image.read(lbn, NSECTORS)
    cut = applied * sector_size
    assert survivor[:cut] == new[:cut]
    assert survivor[cut:] == old[cut:]
    # neighbours untouched
    assert image.read(lbn - 1) == bytes(sector_size)
    assert image.read(lbn + NSECTORS) == bytes(sector_size)


def test_start_boundary_keeps_old_contents():
    machine = make_raw_machine()
    sector_size = machine.disk.geometry.sector_size
    lbn = 4096
    old = sector_pattern(0x11, sector_size) * NSECTORS
    new = sector_pattern(0xEE, sector_size) * NSECTORS
    machine.disk.storage.write(lbn, old)
    in_flight = run_write_until_transfer(machine, lbn, new)
    machine.engine.run_to(in_flight.transfer_start, max_events=100_000)
    assert crash_image(machine).read(lbn, NSECTORS) == old


def test_completion_boundary_keeps_new_contents():
    machine = make_raw_machine()
    sector_size = machine.disk.geometry.sector_size
    lbn = 4096
    old = sector_pattern(0x11, sector_size) * NSECTORS
    new = sector_pattern(0xEE, sector_size) * NSECTORS
    machine.disk.storage.write(lbn, old)
    in_flight = run_write_until_transfer(machine, lbn, new)
    complete = in_flight.transfer_start \
        + NSECTORS * in_flight.sector_period
    machine.engine.run_to(complete, max_events=100_000)
    assert machine.disk.in_flight is None, \
        "completion event at the boundary must have been processed"
    assert crash_image(machine).read(lbn, NSECTORS) == new


def test_crash_image_is_a_snapshot():
    """Mutating the image must not leak back into the live platters."""
    machine = make_raw_machine()
    sector_size = machine.disk.geometry.sector_size
    machine.disk.storage.write(100, sector_pattern(0x01, sector_size))
    image = crash_image(machine)
    image.write(100, sector_pattern(0xFF, sector_size))
    assert machine.disk.storage.read(100) == \
        sector_pattern(0x01, sector_size)


class TestNvramReplay:
    def test_mirror_wins_over_stale_platter(self):
        machine = build_machine("nvram")
        scheme = machine.scheme
        geometry = machine.config.fs_geometry
        spf = machine.fs.cache.sectors_per_frag
        sector_size = machine.disk.geometry.sector_size
        daddr = geometry.cg_data_start(0) + 40
        stale = sector_pattern(0x22, sector_size) * spf
        fresh = sector_pattern(0x99, sector_size) * spf
        machine.disk.storage.write(daddr * spf, stale)
        scheme._mirror[daddr] = fresh
        scheme.used_bytes += len(fresh)

        image = crash_image(machine)
        assert image.read(daddr * spf, spf) == fresh
        # the platters themselves were not rewritten -- only the image
        assert machine.disk.storage.read(daddr * spf, spf) == stale

    def test_mirror_wins_over_in_flight_partial(self):
        """NVRAM replay is applied after the in-flight prefix."""
        machine = build_machine("nvram")
        scheme = machine.scheme
        geometry = machine.config.fs_geometry
        spf = machine.fs.cache.sectors_per_frag
        sector_size = machine.disk.geometry.sector_size
        daddr = geometry.cg_data_start(0) + 41
        lbn = daddr * spf
        in_transit = sector_pattern(0x33, sector_size) * spf
        fresh = sector_pattern(0x44, sector_size) * spf
        machine.disk.in_flight = InFlightWrite(
            lbn=lbn, data=in_transit,
            transfer_start=machine.engine.now - 1.0, sector_period=1e9)
        scheme._mirror[daddr] = fresh
        scheme.used_bytes += len(fresh)
        assert crash_image(machine).read(lbn, spf) == fresh

    def test_unflushed_metadata_survives_via_replay(self):
        """Crash right when the workload ends, before any syncer flush:

        the dirty metadata exists only in memory + NVRAM, and the replayed
        image must still pass fsck with no corruption.
        """
        recording_machine = build_machine("nvram")
        recorded = record_run(
            recording_machine,
            build_workload(recording_machine, "microbench", 0, 12))

        machine = build_machine("nvram")
        workload = build_workload(machine, "microbench", 0, 12)
        machine.engine.process(workload, name="victim")
        machine.engine.run_to(recorded.workload_done, max_events=20_000_000)
        image = crash_image(machine)
        report = fsck(image, machine.config.fs_geometry)
        violations = classify_report(report)
        assert not any(v.is_corruption for v in violations), \
            [v.message for v in violations]
