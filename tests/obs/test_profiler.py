"""The per-layer counting profiler: attribution sanity, conservation
against the offline flame fold, report rendering, and the determinism
discipline -- a profiled run is the same simulation as a bare one."""

import pytest

from repro.obs import (
    LAYERS,
    flame_summary,
    format_profile_report,
    profile_rows,
    summarize,
)
from tests.conftest import SCHEME_FACTORIES, make_machine, run_user
from tests.obs.test_equivalence import churn, driver_trace_digest


def run_profiled(scheme_name, profile=True):
    machine = make_machine(scheme_name, free_cpu=False, observe=profile,
                           profile=profile)
    run_user(machine, churn(machine)(), name="user0")
    machine.sync_and_settle()
    return machine


class TestAttribution:
    def test_layers_see_their_time(self):
        snapshot = run_profiled("softupdates").obs.snapshot()
        # syscalls, cache waits and drive mechanics all burned sim time
        assert snapshot["profile.vfs.sim"] > 0
        assert snapshot["profile.cache.sim"] > 0
        assert snapshot["profile.drive.sim"] > 0
        # driver queue residencies are async: counted, never folded
        assert snapshot["profile.driver.spans"] > 0
        assert snapshot["profile.driver.sim"] == 0.0
        for layer in LAYERS:
            assert snapshot[f"profile.{layer}.sim"] >= 0.0

    def test_self_time_conserved_against_flame_fold(self):
        """The online fold (child subtraction, retrospective parents) must
        agree with the offline flame summary's self-time totals."""
        machine = run_profiled("softupdates")
        snapshot = machine.obs.snapshot()
        online = sum(snapshot[f"profile.{layer}.sim"] for layer in LAYERS)
        offline = sum(stat.self_time
                      for summary in summarize(machine.obs).values()
                      for stat in summary.paths.values())
        assert online == pytest.approx(offline, abs=1e-9)

    def test_unprofiled_snapshot_has_no_profile_keys(self):
        machine = make_machine("softupdates", observe=True)
        run_user(machine, churn(machine)(), name="user0")
        assert not any(key.startswith("profile.")
                       for key in machine.obs.snapshot())


class TestPerfExtra:
    def test_run_result_carries_profile_slice(self):
        from repro.harness.metrics import collect
        machine = run_profiled("conventional")
        result = collect(machine, [], 0)
        assert result.perf_extra
        assert all(key.startswith("profile.") or key in ("kernel", "store")
                   for key in result.perf_extra)
        assert result.perf_extra["profile.vfs.sim"] \
            == result.extra["profile.vfs.sim"]

    def test_carries_store_provenance(self):
        from repro.harness.metrics import collect
        machine = run_profiled("conventional")
        result = collect(machine, [], 0)
        assert result.perf_extra["store"] == machine.disk.storage.name

    def test_setter_merges_host_tags(self):
        from repro.harness.metrics import RunResult
        result = RunResult(scheme="x")
        result.perf_extra = {"kernel": "python"}
        assert result.extra["kernel"] == "python"
        assert result.perf_extra == {"kernel": "python"}

    def test_empty_without_profiler(self):
        from repro.harness.metrics import RunResult
        assert RunResult(scheme="x", extra={"other": 1}).perf_extra == {}


class TestReportRendering:
    def test_rows_share_and_wall_proration(self):
        snapshot = run_profiled("softupdates").obs.snapshot()
        rows = profile_rows(snapshot, wall_seconds=2.0)
        assert [row[0] for row in rows] == list(LAYERS)
        assert sum(row[3] for row in rows) == pytest.approx(1.0)
        assert sum(row[4] for row in rows) == pytest.approx(2.0)

    def test_rows_empty_without_profile_keys(self):
        assert profile_rows({"engine.events": 5}) == []

    def test_report_skips_unprofiled_cells(self):
        snapshot = run_profiled("softupdates").obs.snapshot()
        report = format_profile_report(
            [("profiled", 1.0, snapshot), ("bare", 1.0, {})])
        assert "profiled" in report
        assert "bare" not in report
        assert "vfs" in report

    def test_report_names_the_knob_when_nothing_profiled(self):
        report = format_profile_report([("bare", 1.0, {})])
        assert "REPRO_PROFILE" in report


class TestDeterminismDiscipline:
    @pytest.mark.parametrize("scheme_name", sorted(SCHEME_FACTORIES))
    def test_profiled_run_is_simulation_identical(self, scheme_name):
        bare = run_profiled(scheme_name, profile=False)
        profiled = run_profiled(scheme_name, profile=True)
        assert profiled.obs is not None and bare.obs is None
        assert profiled.engine.events_processed \
            == bare.engine.events_processed
        assert profiled.engine.now == bare.engine.now
        assert driver_trace_digest(profiled) == driver_trace_digest(bare)

    def test_profiled_rerun_snapshot_deterministic(self):
        a = run_profiled("chains").obs.snapshot()
        b = run_profiled("chains").obs.snapshot()
        assert a == b

    def test_profiler_keeps_counting_past_the_span_cap(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_MAX_SPANS", "30")
        capped = run_profiled("softupdates")
        monkeypatch.setenv("REPRO_TRACE_MAX_SPANS", "0")
        full = run_profiled("softupdates")
        assert capped.obs.tracer.dropped > 0
        for layer in LAYERS:
            for suffix in ("sim", "spans"):
                key = f"profile.{layer}.{suffix}"
                assert capped.obs.snapshot()[key] \
                    == full.obs.snapshot()[key]
        assert "profile.* metrics" in flame_summary(capped.obs)
