"""The single scheme registry and every harness surface that consumes it.

A scheme registered once in :data:`repro.ordering.registry.REGISTRY` must
appear in the benchmark runner's standard list, the crash explorer's
table, the fault sweep's defaults and the trace CLI's aliases -- no more
per-surface hand-maintained lists drifting apart (the journal scheme was
added by touching exactly one table; this suite holds it that way).
"""

import pytest

from repro.machine import MachineConfig
from repro.ordering import JournalScheme, OrderingScheme
from repro.ordering.registry import (
    REGISTRY,
    SchemeInfo,
    by_display_name,
    display_aliases,
    scheme_classes,
    standard_display_names,
    standard_slugs,
)


def test_registry_has_all_six_schemes():
    assert set(REGISTRY) >= {"conventional", "flag", "chains",
                             "softupdates", "journal", "noorder"}
    # nvram is registered too (non-standard: a what-if, not a table row)
    assert "nvram" in REGISTRY
    assert not REGISTRY["nvram"].standard


def test_every_entry_is_wellformed():
    for slug, info in REGISTRY.items():
        assert info.slug == slug
        assert issubclass(info.cls, OrderingScheme)
        assert info.display_name
        assert info.guarantees is info.cls.declared_guarantees


def test_every_scheme_builds():
    for info in REGISTRY.values():
        assert isinstance(info.build(), info.cls)
        assert isinstance(info.build_standard(), info.cls)
        if info.takes_alloc_init:
            assert info.build_standard(alloc_init=True).alloc_init is True


def test_standard_order_puts_noorder_last():
    # No Order is the baseline the tables normalize against
    assert standard_display_names()[-1] == "No Order"
    assert standard_slugs()[-1] == "noorder"


def test_by_display_name_rejects_unknown():
    with pytest.raises(ValueError, match="unknown scheme"):
        by_display_name("Journalling")  # the common misspelling


# ----------------------------------------------------------------------
# every harness surface enumerates the registry
# ----------------------------------------------------------------------
def test_runner_standard_schemes_come_from_registry():
    from repro.harness.runner import STANDARD_SCHEMES, standard_scheme_config
    assert STANDARD_SCHEMES == standard_display_names()
    for name in STANDARD_SCHEMES:
        config = standard_scheme_config(name)
        assert isinstance(config, MachineConfig)
        assert type(config.scheme) is by_display_name(name).cls


def test_explorer_table_covers_registry_plus_shims():
    from repro.integrity.explorer import SCHEMES
    from repro.ordering.shims import SHIMS
    for slug, cls in scheme_classes().items():
        assert SCHEMES[slug] is cls
    for name in SHIMS:
        assert name in SCHEMES  # the mutation shims still ride along


def test_fault_sweep_defaults_are_the_standard_slugs():
    from repro.harness.faults import DEFAULT_SCHEMES
    assert DEFAULT_SCHEMES == standard_slugs()


def test_trace_cli_aliases_cover_registry():
    from repro.harness.__main__ import SCHEME_ALIASES
    assert SCHEME_ALIASES == display_aliases()
    for info in REGISTRY.values():
        assert SCHEME_ALIASES[info.slug] == info.display_name


def test_journal_standard_configuration():
    info = REGISTRY["journal"]
    scheme = info.build_standard()
    assert isinstance(scheme, JournalScheme)
    assert scheme.wants_journal
    # like soft updates, journaling enforces allocation initialization by
    # default -- the commit barrier orders inode inits for free, data
    # blocks are synced before the pointer commits
    assert scheme.alloc_init is True
    assert not info.guarantees.allows_corruption
