"""Systematic crash-point exploration with parallel fsck verification.

The paper's argument is that each ordering scheme keeps metadata
recoverable after a power failure at *any* instant.  The legacy
:class:`~repro.integrity.crash.CrashScheduler` samples a handful of
hand-picked instants; this engine instead *enumerates* the interesting
ones:

1. **Record** -- run the victim workload once on an instrumented machine
   (:func:`repro.harness.recording.record_run`) and collect every media
   write transfer window, through natural quiescence (the background write
   tail included).  The same run captures the **media write-log**
   (:mod:`repro.integrity.medialog`): every sector that actually reached
   the platters, with payload, LBN, and per-sector commit timing --
   torn-write prefixes and faulted/remapped outcomes included.
2. **Enumerate** -- every window contributes its start boundary (power
   fails before any sector lands), its completion boundary (the whole
   request is on the platters), and sampled mid-transfer instants (a
   sector *prefix* survives, per the drive's per-sector ECC semantics in
   ``crash_image``).  Every crash state any power failure could produce is
   one of these, or identical to one of these: between boundaries the
   platters do not change.
3. **Verify** -- for each crash point, *synthesize* the surviving image
   from the media log (base image + sectors committed before the crash
   instant + the ECC-consistent partial prefix of the in-flight window --
   no simulation at all), run ``fsck`` on the survivor, and classify the
   outcome against the declarative invariant set
   (:mod:`repro.integrity.invariants`) and the scheme's own
   :class:`~repro.ordering.guarantees.CrashGuarantees`.  Per-point cost is
   O(sector application + fsck) instead of O(full prefix replay).

The old per-point replay (fresh machine, ``engine.run_to(t)``,
:func:`~repro.integrity.crash.crash_image`) is kept as a **verification
oracle** behind ``--replay``: synthesized images are byte-identical to
replay-derived ones (``tests/integrity/test_synthesis_equivalence.py``),
and schemes whose crash state lives partly in memory (NVRAM's
battery-backed mirror) fall back to it automatically.

Verification fans out over a ``multiprocessing`` pool: workers inherit the
base image and the media log copy-on-write through the fork context (no
per-task pickling), and each worker receives a time-sorted chunk of crash
points so the image builds incrementally within the chunk.  Serial and
parallel sweeps produce identical findings.

CLI::

    python -m repro.integrity.explorer --scheme softupdates \
        --workload microbench --jobs 4 --monitor --fsck-jobs 1

``--monitor`` additionally attaches the online ordering-rule monitor
(:mod:`repro.integrity.monitor`) to the recording run, so breaches are
flagged at commit time as well as post-crash; ``--fsck-jobs N`` runs each
per-image fsck pFSCK-style over a per-cylinder-group pool (serial sweeps
only -- pool workers cannot nest pools).

Exit status is 0 when every crash state falls within the scheme's declared
guarantees (for No Order that includes corruption -- it declares itself
unsafe) AND the monitor, when attached, saw no unexpected online
violations; 1 when a scheme broke its own declaration, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import random
import sys
import time
from dataclasses import dataclass
from typing import Generator, Optional

from repro.costs import CostModel
from repro.faults import PROFILES
from repro.fs.layout import FSGeometry
from repro.harness.parallel import Heartbeat
from repro.harness.parallel import heartbeat_interval as _env_heartbeat
from repro.harness.parallel import stall_timeout as _env_stall
from repro.harness.recording import RecordedRun, record_run
from repro.obs.observatory import append_ledger
from repro.integrity.crash import crash_image
from repro.integrity.findings import CrashFinding, ExplorationReport
from repro.integrity.fsck import fsck, repair
from repro.integrity.invariants import (
    Violation,
    classify_report,
    invariant_by_key,
    unexpected,
)
from repro.integrity.medialog import ImageSynthesizer, MediaLog
from repro.integrity.monitor import OrderingMonitor, monitor_supported
from repro.integrity.secrets import find_secret_leaks, plant_secrets
from repro.machine import Machine, MachineConfig
from repro.ordering.registry import scheme_classes
from repro.ordering.shims import SHIMS
from repro.workloads.churn import churn_workload, microbench_churn, \
    remove_churn, reuse_churn

#: the exploration testbed: 2 cylinder groups, 256 inodes each, 2 MB data
#: each -- small enough that a full sweep fscks hundreds of images fast
EXPLORER_GEOMETRY = FSGeometry(ipg=256, dfrags_per_cg=2048, ncg=2)

#: slug -> class, straight from the single scheme registry
SCHEMES = scheme_classes()
# the rule-breaking mutation shims ride along so breaches are
# reproducible from the CLI (and the mutation tests can sweep them)
SCHEMES.update({name: cls for name, (cls, _rule) in SHIMS.items()})


def _microbench(machine: Machine, seed: int, ops: int) -> Generator:
    return microbench_churn(machine, seed=seed, files=ops)


def _churn(machine: Machine, seed: int, ops: int) -> Generator:
    return churn_workload(machine, seed=seed, operations=ops)


def _remove(machine: Machine, seed: int, ops: int) -> Generator:
    return remove_churn(machine, seed=seed, files=ops)


def _reuse(machine: Machine, seed: int, ops: int) -> Generator:
    return reuse_churn(machine, seed=seed, files=ops)


#: name -> (generator factory, default ops)
WORKLOADS = {
    "microbench": (_microbench, 24),
    "churn": (_churn, 40),
    "remove": (_remove, 12),
    "reuse": (_reuse, 12),
}


def build_machine(scheme_name: str, secrets: bool = False,
                  fault_profile: Optional[str] = None,
                  fault_seed: int = 0,
                  kernel: Optional[str] = None) -> Machine:
    """A formatted exploration machine (deterministic for a given name).

    *fault_profile* names an entry of :data:`repro.faults.PROFILES`; the
    resulting plan is seeded with *fault_seed* so record and replay see the
    identical fault sequence.

    *kernel* picks the event-loop kernel (default: ``REPRO_KERNEL``, then
    the reference).  Kernels are simulation-identical, so recording and
    replay need not even agree on one -- the crash images come out the
    same either way.
    """
    try:
        # only the lookup belongs in the try: a scheme constructor that
        # happens to raise KeyError must not masquerade as "unknown scheme"
        scheme_cls = SCHEMES[scheme_name]
    except KeyError:
        raise ValueError(f"unknown scheme {scheme_name!r}; "
                         f"choose from {sorted(SCHEMES)}") from None
    scheme = scheme_cls()
    faults = None
    if fault_profile is not None:
        try:
            faults = PROFILES[fault_profile](fault_seed)
        except KeyError:
            raise ValueError(f"unknown fault profile {fault_profile!r}; "
                             f"choose from {sorted(PROFILES)}") from None
    config = MachineConfig(scheme=scheme,
                           fs_geometry=EXPLORER_GEOMETRY,
                           cache_bytes=2 * 1024 * 1024,
                           costs=CostModel(scale=0.0),
                           faults=faults,
                           kernel=kernel)
    machine = Machine(config)
    machine.format()
    if secrets:
        plant_secrets(machine.disk.storage, EXPLORER_GEOMETRY)
        machine.drop_caches()
    return machine


def build_workload(machine: Machine, workload_name: str, seed: int,
                   ops: Optional[int]) -> Generator:
    try:
        factory, default_ops = WORKLOADS[workload_name]
    except KeyError:
        raise ValueError(f"unknown workload {workload_name!r}; "
                         f"choose from {sorted(WORKLOADS)}") from None
    return factory(machine, seed, ops if ops is not None else default_ops)


def synthesis_supported(machine: Machine) -> bool:
    """True when the scheme's crash state lives entirely on the media.

    NVRAM keeps battery-backed survivors in memory
    (``scheme.apply_to_image``); a synthesized image cannot see them, so
    such schemes verify through the replay oracle.
    """
    return getattr(machine.scheme, "apply_to_image", None) is None


# ----------------------------------------------------------------------
# crash-point enumeration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CrashPoint:
    """One instant worth pulling the plug at."""

    index: int
    time: float
    label: str


def _enumerate_raw(recorded: RecordedRun,
                   samples_per_write: int) -> list[tuple[float, str]]:
    """The full (unbudgeted) crash-point enumeration, in time order."""
    raw: list[tuple[float, str]] = []
    for wi, window in enumerate(recorded.windows):
        base = f"write {wi} (lbn {window.lbn}+{window.nsectors})"
        raw.append((window.transfer_start, f"{base} start"))
        if samples_per_write > 0 and window.nsectors > 1:
            span = window.nsectors
            cuts = sorted({
                max(1, min(span - 1,
                           round(j * span / (samples_per_write + 1))))
                for j in range(1, samples_per_write + 1)})
            for k in cuts:
                raw.append((window.transfer_start
                            + (k + 0.5) * window.sector_period,
                            f"{base} after {k}/{span} sectors"))
        raw.append((window.complete_time, f"{base} complete"))
    return raw


def enumerate_crash_points(recorded: RecordedRun,
                           samples_per_write: int = 2,
                           max_points: Optional[int] = None,
                           sample_seed: int = 0) -> list[CrashPoint]:
    """Every write's start/completion boundary + sampled partial prefixes.

    A window of ``n`` sectors has ``n - 1`` distinct mid-transfer states
    (``k`` sectors applied, ``0 < k < n``); ``samples_per_write`` of them
    are taken at evenly spaced ``k`` (all of them when the window is small
    enough).  When the full enumeration exceeds *max_points*, a
    deterministic sample (seeded by *sample_seed*) is kept -- the budget is
    explicit, never a silent truncation of the tail, and the sweep report
    states enumerated vs verified counts.
    """
    raw = _enumerate_raw(recorded, samples_per_write)
    if max_points is not None and len(raw) > max_points:
        rng = random.Random(sample_seed)
        keep = sorted(rng.sample(range(len(raw)), max_points))
        raw = [raw[i] for i in keep]
    return [CrashPoint(index, time, label)
            for index, (time, label) in enumerate(raw)]


# ----------------------------------------------------------------------
# per-point verification: the replay oracle (the pool worker)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _Task:
    """Everything a worker needs to rebuild and verify one crash state."""

    scheme: str
    workload: str
    seed: int
    ops: Optional[int]
    secrets: bool
    verify_repair: bool
    index: int
    crash_time: float
    label: str
    fault_profile: Optional[str] = None
    fault_seed: int = 0
    fsck_jobs: int = 1


def _classify_image(image, geometry, secrets: bool, verify_repair: bool,
                    guarantees, index: int, crash_time: float,
                    label: str, fsck_jobs: int = 1) -> CrashFinding:
    """fsck + invariant classification of one surviving image."""
    report = fsck(image, geometry, jobs=fsck_jobs)
    leaks = find_secret_leaks(image, geometry) if secrets else []
    violations = classify_report(report, leaks)
    if verify_repair and not any(v.is_corruption for v in violations):
        # the paper's recovery story: every error-free image must come out
        # of classic fsck repair fully consistent
        repaired = repair(image.snapshot(), geometry)
        residue = repaired.errors + repaired.warnings
        if residue:
            inv = invariant_by_key("unrepairable")
            violations.append(Violation(
                inv.key, inv.severity,
                f"repair left {len(residue)} findings: {residue[0]}"))
    return CrashFinding(
        index=index, crash_time=crash_time, label=label,
        errors=len(report.errors), warnings=len(report.warnings),
        violations=tuple(violations),
        unexpected=tuple(unexpected(violations, guarantees)))


def verify_crash_point(task: _Task) -> CrashFinding:
    """Replay to the crash instant, fsck the survivor, classify.

    The oracle path: a fresh machine re-simulates the workload prefix.
    The synthesis path (:func:`_verify_synth_chunk`) must produce findings
    equal to this, point for point.
    """
    machine = build_machine(task.scheme, secrets=task.secrets,
                            fault_profile=task.fault_profile,
                            fault_seed=task.fault_seed)
    workload = build_workload(machine, task.workload, task.seed, task.ops)
    process = machine.engine.process(workload, name="victim")
    machine.engine.run_to(task.crash_time, max_events=20_000_000)
    if process.triggered and not process.ok:
        raise process.value
    image = crash_image(machine)
    return _classify_image(image, machine.config.fs_geometry, task.secrets,
                           task.verify_repair, machine.scheme.crash_guarantees,
                           task.index, task.crash_time, task.label,
                           fsck_jobs=task.fsck_jobs)


# ----------------------------------------------------------------------
# per-chunk verification: crash-image synthesis (the pool worker)
# ----------------------------------------------------------------------
@dataclass
class _SynthContext:
    """Shared read-only state for synthesis workers.

    Installed as a module-level global before the pool forks so children
    inherit the base image and media log copy-on-write; pickled once per
    worker (via the pool initializer) only on platforms without ``fork``.
    """

    base: object           # SectorStore
    log: MediaLog
    geometry: FSGeometry
    secrets: bool
    verify_repair: bool
    guarantees: object     # CrashGuarantees
    fsck_jobs: int = 1


_SYNTH_CONTEXT: Optional[_SynthContext] = None

#: the active chunk list + shared start stamps for the synthesis pool's
#: heartbeat monitor (fork-inherited like the context; both None when the
#: monitor is off or the platform cannot fork)
_SYNTH_CHUNKS: Optional[list] = None
_SYNTH_STARTS = None


def _synth_init(context: _SynthContext) -> None:
    global _SYNTH_CONTEXT
    _SYNTH_CONTEXT = context


def _verify_synth_chunk(chunk: list[CrashPoint]) -> list[CrashFinding]:
    """Synthesize and verify a time-sorted chunk of crash points.

    The synthesizer applies sectors incrementally: point *k+1* reuses the
    image built for point *k* and applies only the sectors committed in
    between, so a chunk of *m* points costs one base snapshot + one pass
    over the log + *m* fscks -- zero simulation.
    """
    ctx = _SYNTH_CONTEXT
    synthesizer = ImageSynthesizer(ctx.base, ctx.log)
    findings = []
    for point in chunk:
        image = synthesizer.image_at(point.time)
        findings.append(_classify_image(
            image, ctx.geometry, ctx.secrets, ctx.verify_repair,
            ctx.guarantees, point.index, point.time, point.label,
            fsck_jobs=ctx.fsck_jobs))
    return findings


def _verify_synth_chunk_indexed(index: int):
    """Pool task for the heartbeat path: stamp pickup, lead with index."""
    if _SYNTH_STARTS is not None:
        _SYNTH_STARTS[index] = time.time()
    return index, _verify_synth_chunk(_SYNTH_CHUNKS[index])


def _chunk_label(chunk: list) -> str:
    """A heartbeat/stall label naming a chunk's crash-point range."""
    if len(chunk) == 1:
        return f"point #{chunk[0].index} ({chunk[0].label})"
    return (f"points #{chunk[0].index}..#{chunk[-1].index} "
            f"(t={chunk[0].time:.4f}..{chunk[-1].time:.4f})")


def _chunk(points: list[CrashPoint], chunks: int) -> list[list[CrashPoint]]:
    """Split time-sorted points into at most *chunks* contiguous runs."""
    chunks = max(1, min(chunks, len(points)))
    size, extra = divmod(len(points), chunks)
    out, at = [], 0
    for i in range(chunks):
        step = size + (1 if i < extra else 0)
        out.append(points[at:at + step])
        at += step
    return out


# ----------------------------------------------------------------------
# the sweep
# ----------------------------------------------------------------------
def explore(scheme: str, workload: str = "microbench", seed: int = 0,
            ops: Optional[int] = None, jobs: int = 1,
            samples_per_write: int = 2, max_points: Optional[int] = 240,
            secrets: bool = False, verify_repair: bool = False,
            points: Optional[list[CrashPoint]] = None,
            fault_profile: Optional[str] = None,
            fault_seed: int = 0,
            synthesize: bool = True,
            monitor: bool = False,
            fsck_jobs: int = 1,
            heartbeat: Optional[float] = None,
            stall_timeout: Optional[float] = None,
            on_heartbeat=None) -> ExplorationReport:
    """Record once, enumerate, verify every crash point; returns the report.

    ``synthesize=True`` (the default) materializes each crash image from
    the media write-log with zero post-recording simulation;
    ``synthesize=False`` replays every point from scratch (the equivalence
    oracle).  Schemes whose crash state lives partly in memory (NVRAM)
    fall back to replay automatically.  Either way, ``jobs > 1`` fans the
    verification out over a process pool and results are deterministic in
    (scheme, workload, seed, ops, samples_per_write, max_points) --
    independent of ``jobs``, ``fsck_jobs`` and the verification mode.

    *fault_profile* adds the fault dimension: the victim runs against an
    unreliable disk (crash AND fault, then fsck).  Use a profile without
    latent defects (e.g. ``"transient"``) so the driver recovers every
    fault and the victim workload itself never aborts on EIO.

    ``monitor=True`` attaches the online :class:`OrderingMonitor` to the
    recording run; its violations land in the report (and fail
    ``report.exit_status``) without changing the simulation timeline.
    ``fsck_jobs > 1`` runs each per-image fsck with a pFSCK-style
    per-cylinder-group pool; it is honoured only when the exploration
    itself is serial (``jobs == 1``), because daemonic pool workers
    cannot fork their own pools.

    *heartbeat* / *stall_timeout* (seconds; ``None`` defers to
    ``REPRO_HEARTBEAT`` / ``REPRO_STALL_TIMEOUT``, 0 disables) attach a
    :class:`~repro.harness.parallel.Heartbeat` to the verification pool:
    periodic progress lines (via *on_heartbeat*, default stderr) and a
    :class:`~repro.harness.parallel.GridStallError` naming the wedged
    crash-point chunk instead of a silent hang.  Pure observers -- the
    findings are identical with or without them.
    """
    machine = build_machine(scheme, secrets=secrets,
                            fault_profile=fault_profile,
                            fault_seed=fault_seed)
    mode = "synthesize" if synthesize and synthesis_supported(machine) \
        else "replay"
    monitor_state = "off"
    watcher = None
    if monitor:
        if monitor_supported(machine):
            monitor_state = "online"
            watcher = OrderingMonitor(
                machine.config.fs_geometry,
                machine.scheme.crash_guarantees,
                registry=machine.obs.registry if machine.obs else None)
        else:
            monitor_state = "unsupported"
    effective_fsck_jobs = fsck_jobs if jobs <= 1 else 1
    record_start = time.perf_counter()
    recorded = record_run(machine,
                          build_workload(machine, workload, seed, ops),
                          capture_media=(mode == "synthesize"),
                          monitor=watcher)
    record_wall = time.perf_counter() - record_start
    enumerated = len(_enumerate_raw(recorded, samples_per_write))
    if points is None:
        points = enumerate_crash_points(recorded, samples_per_write,
                                        max_points, sample_seed=seed)
    pulse = Heartbeat(
        name=f"explore {scheme}/{workload} ({mode})", labels=[],
        interval=_env_heartbeat() if heartbeat is None else heartbeat,
        timeout=_env_stall() if stall_timeout is None else stall_timeout,
        emit=on_heartbeat)
    verify_start = time.perf_counter()
    if mode == "synthesize":
        findings = _explore_synthesized(machine, recorded, points, jobs,
                                        secrets, verify_repair,
                                        effective_fsck_jobs,
                                        monitor=pulse)
        replays = 0
    else:
        findings = _explore_replayed(scheme, workload, seed, ops, secrets,
                                     verify_repair, points, jobs,
                                     fault_profile, fault_seed,
                                     effective_fsck_jobs,
                                     monitor=pulse)
        replays = len(points)
    verify_wall = time.perf_counter() - verify_start
    return ExplorationReport(
        scheme=scheme, workload=workload, seed=seed,
        guarantees=machine.scheme.crash_guarantees, findings=findings,
        quiesce_time=recorded.quiesce_time,
        write_windows=len(recorded.windows),
        fault_profile=fault_profile, fault_seed=fault_seed,
        mode=mode, enumerated_points=enumerated,
        max_points=max_points, replays=replays, jobs=jobs,
        record_wall_seconds=record_wall, verify_wall_seconds=verify_wall,
        log_bytes=(recorded.media_log.payload_bytes
                   if recorded.media_log is not None else 0),
        sim_events=recorded.events_processed,
        monitor=monitor_state,
        monitor_windows=watcher.windows_seen if watcher else 0,
        monitor_violations=tuple(watcher.violations) if watcher else (),
        fsck_jobs=effective_fsck_jobs)


def _explore_synthesized(machine: Machine, recorded: RecordedRun,
                         points: list[CrashPoint], jobs: int,
                         secrets: bool, verify_repair: bool,
                         fsck_jobs: int = 1,
                         monitor: Optional[Heartbeat] = None
                         ) -> list[CrashFinding]:
    """Verify *points* from the media log: zero simulation replays."""
    global _SYNTH_CONTEXT, _SYNTH_CHUNKS, _SYNTH_STARTS
    context = _SynthContext(
        base=recorded.base_image, log=recorded.media_log,
        geometry=machine.config.fs_geometry, secrets=secrets,
        verify_repair=verify_repair,
        guarantees=machine.scheme.crash_guarantees,
        fsck_jobs=fsck_jobs)
    ordered = sorted(points, key=lambda p: (p.time, p.index))
    if jobs > 1 and len(ordered) > 1:
        chunks = _chunk(ordered, jobs * 4)
        methods = multiprocessing.get_all_start_methods()
        monitored = monitor is not None and monitor.active \
            and "fork" in methods
        if monitored:
            monitor.labels = [_chunk_label(chunk) for chunk in chunks]
            starts = multiprocessing.Array("d", len(chunks), lock=False)
        else:
            starts = None
        previous = (_SYNTH_CONTEXT, _SYNTH_CHUNKS, _SYNTH_STARTS)
        _SYNTH_CONTEXT, _SYNTH_CHUNKS, _SYNTH_STARTS = \
            context, chunks, starts
        try:
            if "fork" in methods:
                # workers inherit base image + log by address space; only
                # point lists and findings cross the pipe
                pool_ctx = multiprocessing.get_context("fork")
                pool_kwargs = {}
            else:
                pool_ctx = multiprocessing.get_context(None)
                pool_kwargs = {"initializer": _synth_init,
                               "initargs": (context,)}
            with pool_ctx.Pool(min(jobs, len(chunks)),
                               **pool_kwargs) as pool:
                if monitored:
                    results_iter = monitor.drain(
                        pool.imap_unordered(_verify_synth_chunk_indexed,
                                            range(len(chunks)),
                                            chunksize=1), starts)
                    per_chunk = [chunk_findings for _index, chunk_findings
                                 in results_iter]
                else:
                    per_chunk = pool.map(_verify_synth_chunk, chunks,
                                         chunksize=1)
        finally:
            _SYNTH_CONTEXT, _SYNTH_CHUNKS, _SYNTH_STARTS = previous
        findings = [finding for chunk in per_chunk for finding in chunk]
    else:
        previous_ctx, _SYNTH_CONTEXT = _SYNTH_CONTEXT, context
        try:
            findings = _verify_synth_chunk(ordered)
        finally:
            _SYNTH_CONTEXT = previous_ctx
    findings.sort(key=lambda f: f.index)
    return findings


#: the active replay task list + shared start stamps (fork-inherited),
#: used only when a heartbeat monitor is attached
_REPLAY_TASKS: Optional[list] = None
_REPLAY_STARTS = None


def _verify_point_indexed(index: int):
    """Pool task for the heartbeat path: stamp pickup, lead with index."""
    if _REPLAY_STARTS is not None:
        _REPLAY_STARTS[index] = time.time()
    return index, verify_crash_point(_REPLAY_TASKS[index])


def _explore_replayed(scheme: str, workload: str, seed: int,
                      ops: Optional[int], secrets: bool, verify_repair: bool,
                      points: list[CrashPoint], jobs: int,
                      fault_profile: Optional[str],
                      fault_seed: int,
                      fsck_jobs: int = 1,
                      monitor: Optional[Heartbeat] = None
                      ) -> list[CrashFinding]:
    """The oracle: one full prefix replay per crash point."""
    global _REPLAY_TASKS, _REPLAY_STARTS
    tasks = [_Task(scheme, workload, seed, ops, secrets, verify_repair,
                   point.index, point.time, point.label,
                   fault_profile, fault_seed, fsck_jobs)
             for point in points]
    if jobs > 1 and len(tasks) > 1:
        methods = multiprocessing.get_all_start_methods()
        monitored = monitor is not None and monitor.active \
            and "fork" in methods
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None)
        chunk = max(1, len(tasks) // (jobs * 4))
        if monitored:
            monitor.labels = [f"point #{task.index} ({task.label})"
                              for task in tasks]
            starts = multiprocessing.Array("d", len(tasks), lock=False)
            previous = (_REPLAY_TASKS, _REPLAY_STARTS)
            _REPLAY_TASKS, _REPLAY_STARTS = tasks, starts
            try:
                with context.Pool(jobs) as pool:
                    findings = [None] * len(tasks)
                    results_iter = monitor.drain(
                        pool.imap_unordered(_verify_point_indexed,
                                            range(len(tasks)),
                                            chunksize=chunk), starts)
                    for index, finding in results_iter:
                        findings[index] = finding
            finally:
                _REPLAY_TASKS, _REPLAY_STARTS = previous
        else:
            with context.Pool(jobs) as pool:
                findings = pool.map(verify_crash_point, tasks,
                                    chunksize=chunk)
    else:
        findings = [verify_crash_point(task) for task in tasks]
    return findings


def check_equivalence(scheme: str, workload: str = "microbench",
                      seed: int = 0, ops: Optional[int] = None,
                      jobs: int = 1, samples_per_write: int = 2,
                      max_points: Optional[int] = 240,
                      fault_profile: Optional[str] = None,
                      fault_seed: int = 0) -> tuple[bool, str]:
    """Run synthesis and replay over the same points; diff the findings.

    Returns ``(equal, summary)``.  The CI smoke uses this as a cheap
    end-to-end proof that the synthesized images stay byte-equivalent to
    the replay oracle's.
    """
    synth = explore(scheme, workload, seed=seed, ops=ops, jobs=jobs,
                    samples_per_write=samples_per_write,
                    max_points=max_points, fault_profile=fault_profile,
                    fault_seed=fault_seed, synthesize=True)
    replay = explore(scheme, workload, seed=seed, ops=ops, jobs=jobs,
                     samples_per_write=samples_per_write,
                     max_points=max_points, fault_profile=fault_profile,
                     fault_seed=fault_seed, synthesize=False)
    mismatches = [
        (s, r) for s, r in zip(synth.findings, replay.findings) if s != r]
    equal = (not mismatches
             and len(synth.findings) == len(replay.findings))
    lines = [f"equivalence {scheme} x {workload} (seed {seed}, "
             f"fault={fault_profile or 'none'}): "
             f"{synth.points} synthesized vs {replay.points} replayed "
             f"points, {len(mismatches)} mismatches",
             f"  synthesis: {synth.verify_wall_seconds:.2f}s verify "
             f"({synth.points_per_second:.0f} points/s, 0 replays)",
             f"  replay:    {replay.verify_wall_seconds:.2f}s verify "
             f"({replay.points_per_second:.0f} points/s, "
             f"{replay.replays} replays)"]
    for s, r in mismatches[:5]:
        lines.append(f"  MISMATCH point #{s.index} t={s.crash_time:.6f}: "
                     f"synth errors={s.errors} warnings={s.warnings} "
                     f"violations={len(s.violations)} | replay "
                     f"errors={r.errors} warnings={r.warnings} "
                     f"violations={len(r.violations)}")
    return equal, "\n".join(lines)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _parse_args(argv: list[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.integrity.explorer",
        description="Sweep every disk-write crash boundary of a workload "
                    "and fsck each surviving image.")
    parser.add_argument("--scheme", required=True, choices=sorted(SCHEMES))
    parser.add_argument("--workload", default="microbench",
                        choices=sorted(WORKLOADS))
    parser.add_argument("--seed", type=int, default=0,
                        help="workload RNG seed (findings name it)")
    parser.add_argument("--ops", type=int, default=None,
                        help="workload size (files/operations; "
                             "per-workload default)")
    parser.add_argument("--jobs", type=int,
                        default=max(1, min(4, os.cpu_count() or 1)),
                        help="verification pool size (default: up to 4)")
    parser.add_argument("--fsck-jobs", type=int, default=1,
                        help="pFSCK pool size per crash image (honoured "
                             "only with --jobs 1: pool workers cannot "
                             "nest pools)")
    parser.add_argument("--monitor", action="store_true",
                        help="attach the online ordering-rule monitor to "
                             "the recording run; unexpected online "
                             "violations fail the sweep")
    parser.add_argument("--heartbeat", type=float, default=None,
                        metavar="SECONDS",
                        help="progress line every SECONDS during "
                             "verification (default REPRO_HEARTBEAT; "
                             "0 = off)")
    parser.add_argument("--stall-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="abort, naming the wedged crash-point chunk, "
                             "once any pool task is in flight this long "
                             "(default REPRO_STALL_TIMEOUT; 0 = off)")
    parser.add_argument("--samples-per-write", type=int, default=2,
                        help="mid-transfer partial-prefix points per write")
    parser.add_argument("--max-points", type=int, default=240,
                        help="crash-point budget (0 = unlimited)")
    parser.add_argument("--point", type=int, default=None,
                        help="verify only this crash-point index "
                             "(reproduce a reported finding)")
    parser.add_argument("--secrets", action="store_true",
                        help="plant deleted-data markers and check the "
                             "allocation-initialization security hole")
    parser.add_argument("--verify-repair", action="store_true",
                        help="also require every error-free image to "
                             "repair to a fully consistent state")
    parser.add_argument("--fault-profile", default=None,
                        choices=sorted(PROFILES),
                        help="run the victim against an unreliable disk "
                             "(crash AND fault, then fsck); prefer a "
                             "profile without latent defects")
    parser.add_argument("--fault-seed", type=int, default=0,
                        help="fault-injection RNG seed")
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--synthesize", dest="synthesize",
                      action="store_true", default=True,
                      help="synthesize crash images from the media "
                           "write-log (the default: zero replays)")
    mode.add_argument("--replay", dest="synthesize", action="store_false",
                      help="replay every crash point from scratch "
                           "(the slow verification oracle)")
    parser.add_argument("--check-equivalence", action="store_true",
                        help="run BOTH modes and fail unless their "
                             "findings are identical")
    parser.add_argument("--json", action="store_true",
                        help="emit the machine-readable report")
    return parser.parse_args(argv)


def main(argv: Optional[list[str]] = None) -> int:
    args = _parse_args(sys.argv[1:] if argv is None else argv)
    max_points = None if args.max_points == 0 else args.max_points
    if args.check_equivalence:
        equal, summary = check_equivalence(
            args.scheme, args.workload, seed=args.seed, ops=args.ops,
            jobs=args.jobs, samples_per_write=args.samples_per_write,
            max_points=max_points, fault_profile=args.fault_profile,
            fault_seed=args.fault_seed)
        print(summary)
        print("PASS: synthesis == replay" if equal
              else "FAIL: synthesis diverged from the replay oracle")
        return 0 if equal else 1
    points = None
    if args.point is not None:
        machine = build_machine(args.scheme, secrets=args.secrets,
                                fault_profile=args.fault_profile,
                                fault_seed=args.fault_seed)
        recorded = record_run(
            machine, build_workload(machine, args.workload, args.seed,
                                    args.ops))
        enumerated = enumerate_crash_points(recorded,
                                            args.samples_per_write,
                                            max_points,
                                            sample_seed=args.seed)
        matches = [p for p in enumerated if p.index == args.point]
        if not matches:
            print(f"no crash point with index {args.point} "
                  f"(enumerated {len(enumerated)})", file=sys.stderr)
            return 2
        points = matches
    report = explore(args.scheme, args.workload, seed=args.seed,
                     ops=args.ops, jobs=args.jobs,
                     samples_per_write=args.samples_per_write,
                     max_points=max_points, secrets=args.secrets,
                     verify_repair=args.verify_repair, points=points,
                     fault_profile=args.fault_profile,
                     fault_seed=args.fault_seed,
                     synthesize=args.synthesize,
                     monitor=args.monitor,
                     fsck_jobs=args.fsck_jobs,
                     heartbeat=args.heartbeat,
                     stall_timeout=args.stall_timeout)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.format())
    append_ledger("explore", {
        "scheme": args.scheme,
        "workload": args.workload,
        "seed": args.seed,
        "mode": report.mode,
        "jobs": args.jobs,
        "points": report.points,
        "enumerated": report.enumerated_points,
        "unexpected": len(report.unexpected_findings),
        "record_wall_seconds": round(report.record_wall_seconds, 3),
        "verify_wall_seconds": round(report.verify_wall_seconds, 3),
        "points_per_second": round(report.points_per_second, 1),
        "sim_events": report.sim_events,
        "exit_status": report.exit_status,
    })
    return report.exit_status


if __name__ == "__main__":
    raise SystemExit(main(argv=None))
