"""Shared fixtures: a small engine + disk + driver + cache rig."""

import pytest

from repro.costs import CostModel
from repro.cache import BufferCache, SyncerDaemon
from repro.disk import Disk
from repro.driver import DeviceDriver, FlagPolicy, FlagSemantics
from repro.sim import CPU, Engine


class CacheRig:
    def __init__(self, capacity_bytes=64 * 1024, block_copy=False,
                 syncer=False, free_cpu=True):
        self.engine = Engine()
        self.disk = Disk(self.engine)
        self.driver = DeviceDriver(self.engine, self.disk,
                                   FlagPolicy(FlagSemantics.IGNORE))
        self.cpu = CPU(self.engine)
        self.costs = CostModel(scale=0.0 if free_cpu else 1.0)
        self.cache = BufferCache(self.engine, self.driver, self.cpu,
                                 self.costs, capacity_bytes=capacity_bytes,
                                 block_copy=block_copy)
        self.syncer = (SyncerDaemon(self.engine, self.cache, sweep_passes=2)
                       if syncer else None)

    def run(self, generator, name="test-proc"):
        return self.engine.run_until(
            self.engine.process(generator, name=name), max_events=2_000_000)


@pytest.fixture
def rig():
    return CacheRig()
