"""Tests for the NVRAM extension scheme (section 7's comparison point)."""

import pytest

from repro.costs import CostModel
from repro.integrity import CrashScheduler, fsck
from repro.machine import Machine, MachineConfig
from repro.ordering import NvramScheme
from tests.conftest import SMALL_GEOMETRY, run_user
from tests.integrity.test_crash import churn_workload


def nvram_machine(capacity=4 * 1024 * 1024):
    machine = Machine(MachineConfig(scheme=NvramScheme(capacity),
                                    fs_geometry=SMALL_GEOMETRY,
                                    cache_bytes=2 * 1024 * 1024,
                                    costs=CostModel(scale=0.0)))
    machine.format()
    return machine


class TestBasics:
    def test_roundtrip_and_clean_state(self):
        m = nvram_machine()

        def user():
            yield from m.fs.mkdir("/d")
            yield from m.fs.write_file("/d/f", b"n" * 5000)
            yield from m.fs.unlink("/d/f")
            yield from m.fs.rmdir("/d")
            yield from m.fs.sync()

        run_user(m, user())
        report = fsck(m.disk.storage, SMALL_GEOMETRY)
        assert report.clean and not report.warnings

    def test_mirror_drains_as_disk_destages(self):
        m = nvram_machine()

        def user():
            for index in range(10):
                yield from m.fs.write_file(f"/f{index}", b"x" * 2000)
            yield from m.fs.sync()

        run_user(m, user())
        assert m.scheme.stores > 0
        assert m.scheme.used_bytes == 0  # everything destaged

    def test_no_sync_write_waits(self):
        """Metadata persists without the process waiting on the disk."""
        m = nvram_machine()

        def user():
            yield from m.fs.write_file("/warm", b"w")
            before = m.engine.now
            handle = yield from m.fs.create("/f")
            waited = m.engine.now - before
            yield from m.fs.close(handle)
            return waited

        assert run_user(m, user()) < 0.003


class TestCrashSafety:
    @pytest.mark.parametrize("crash_at", [0.3, 1.0, 2.5, 5.0])
    def test_crash_states_are_consistent(self, crash_at):
        m = nvram_machine()
        image = CrashScheduler(m).run_and_crash(
            churn_workload(m, seed=5, operations=35), crash_at=crash_at)
        report = fsck(image, SMALL_GEOMETRY)
        assert report.clean, report.errors[:4]

    def test_metadata_created_just_before_crash_survives(self):
        """Unlike every disk-only scheme, NVRAM loses (almost) nothing."""
        m = nvram_machine()

        def user():
            yield from m.fs.write_file("/instant", b"i" * 100)

        run_user(m, user())
        # crash immediately: no flush of any kind has happened
        from repro.integrity import crash_image
        report = fsck(crash_image(m), SMALL_GEOMETRY)
        names = {name for refs in report.references.values()
                 for _d, name in refs}
        assert "instant" in names


class TestCapacityPressure:
    def test_tiny_nvram_forces_destage_stalls(self):
        m = nvram_machine(capacity=2 * 8192)  # two blocks of NVRAM

        def user():
            # spread metadata across many distinct blocks: several
            # directories (each its own block, placed round-robin across
            # cylinder groups) with files in each
            for dir_index in range(6):
                yield from m.fs.mkdir(f"/d{dir_index}")
                for file_index in range(5):
                    yield from m.fs.write_file(
                        f"/d{dir_index}/f{file_index}", b"y" * 1500)
            yield from m.fs.sync()

        run_user(m, user())
        assert m.scheme.destage_stalls > 0
