"""fsck: audit a (possibly crashed) disk image.

Violations (``errors`` -- structural integrity is lost, fsck cannot decide
the right repair):

* a directory entry points to an unallocated or out-of-range inode (rule 3
  for inodes / rule 1 for rename),
* a data fragment is claimed by two files, or claimed and also outside the
  data area (rule 2),
* an inode holds a pointer outside the volume or into metadata regions,
* directory contents are structurally corrupt.

Repairable inconsistencies (``warnings`` -- classic fsck fixes these
mechanically, the paper's schemes deliberately allow them):

* link count differing from the number of references, in either direction:
  fsck recomputes the reference count from the (intact) directory tree and
  rewrites ``nlink``, so both too-high (remove ordered entry-first) and
  too-low (an existing inode gained an entry -- e.g. a new subdirectory's
  '..' -- before its nlink bump landed) are mechanical repairs.  Note rule 3
  concerns *uninitialized* inodes; pointing at an initialized, live inode
  early only skews the count,
* allocated-but-unreferenced inodes or fragments (leaks),
* bitmap says free but the fragment/inode is referenced (fsck re-marks it),
* bitmap says used but nothing references it.

Parallel mode (pFSCK-style, arxiv 2004.05524): ``fsck(image, jobs=N)`` fans
the per-cylinder-group scans -- inode pointer walks, directory parsing, and
bitmap audits -- over a ``multiprocessing`` pool.  Each phase is split into
a *pure* per-inode pass that reads only the image (safe to run anywhere)
and a *replay* pass that folds the resulting op-stream into the global
claim table and reference map in ascending inode order.  Because the
replay is identical whether the streams were produced inline (serial) or
by workers (parallel), the two modes return byte-identical finding lists
-- same messages, same order.  Workers inherit the image copy-on-write
through the fork context; only op-streams cross the pipe.
"""

from __future__ import annotations

import gc
import multiprocessing
import struct
from dataclasses import dataclass, field
from typing import Optional

from repro.disk.storage import SectorStore
from repro.fs import directory, journal
from repro.fs.alloc import CG_MAGIC, CgView
from repro.fs.layout import Dinode, FileType, FSGeometry, ROOT_INO
from repro.fs.superblock import Superblock


@dataclass
class FsckReport:
    """Outcome of one audit."""

    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    #: ino -> Dinode for every allocated inode
    inodes: dict[int, Dinode] = field(default_factory=dict)
    #: path-ish names discovered, for tests: ino -> list of (dir ino, name)
    references: dict[int, list[tuple[int, str]]] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.errors

    def summary(self) -> str:
        return (f"fsck: {len(self.errors)} errors, {len(self.warnings)} "
                f"warnings, {len(self.inodes)} inodes")


# ----------------------------------------------------------------------
# pure per-inode scans: read the image, emit op-streams
#
# These know nothing about other inodes, so they parallelize freely; all
# cross-inode judgement (double claims, unallocated targets) happens when
# the streams are replayed, in ascending inode order, against the global
# tables.  The monitor (repro.integrity.monitor) reuses them so its claim
# semantics match fsck's exactly.
# ----------------------------------------------------------------------
def read_image_frags(image: SectorStore, geo: FSGeometry,
                     daddr: int, frags: int) -> bytes:
    spf = geo.frag_size // image.geometry.sector_size
    return image.read(daddr * spf, frags * spf)


def read_image_inode(image: SectorStore, geo: FSGeometry,
                     ino: int) -> Dinode:
    block = read_image_frags(image, geo, geo.inode_block_daddr(ino),
                             geo.frags_per_block)
    at = geo.inode_offset_in_block(ino)
    return Dinode.unpack(block[at:at + 128])


def scan_cg_inodes(image: SectorStore, geo: FSGeometry,
                   cg: int) -> list[tuple[int, Dinode]]:
    """All allocated dinodes of one cylinder group, ascending.

    Reads each inode-table block once (not once per inode slot) -- the
    dinodes and their order are exactly what a per-slot walk produces, so
    replaying the result is byte-identical to the slot-by-slot scan.
    """
    table = geo.cg_inode_table(cg)
    per_block = geo.inodes_per_block
    out: list[tuple[int, Dinode]] = []
    for block_index in range(geo.inode_blocks_per_cg):
        raw = read_image_frags(image, geo,
                               table + block_index * geo.frags_per_block,
                               geo.frags_per_block)
        base = cg * geo.ipg + block_index * per_block
        for slot in range(per_block):
            ino = base + slot
            if ino < ROOT_INO:
                continue  # burned inodes
            din = Dinode.unpack(raw[slot * 128:(slot + 1) * 128])
            if din.allocated:
                out.append((ino, din))
    return out


class _FlatImage:
    """Contiguous read-only view of a SectorStore's file-system span.

    The dict-backed reference store is a sparse map of one ``bytes``
    object per sector; forking a pool over a large image makes every
    worker's first pass copy-on-write the whole object heap just by
    touching refcounts.  ``store.flat_view`` hands back one contiguous
    buffer instead: a zero-copy view of the flat store's own backing, or
    a single materialization of the dict store.  Workers share it via
    fork (or one pickle on spawn platforms) and reads are plain slices.
    """

    __slots__ = ("geometry", "_buf")

    def __init__(self, store, total_sectors: int) -> None:
        self.geometry = store.geometry
        self._buf = store.flat_view(total_sectors)

    def read(self, lbn: int, nsectors: int = 1) -> bytes:
        size = self.geometry.sector_size
        # bytes() of a bytes slice is the slice itself; the flat store's
        # memoryview/ndarray slices convert without an extra pass
        return bytes(self._buf[lbn * size:(lbn + nsectors) * size])

    # spawn-platform pools pickle the fsck context; a zero-copy view of
    # the flat store's backing is not picklable, the materialized bytes are
    def __getstate__(self):
        return self.geometry, bytes(self._buf)

    def __setstate__(self, state):
        self.geometry, self._buf = state


class _JournalView:
    """A SectorStore view with the committed journal overlay applied.

    A crashed journaling file system is judged *with* its log: recovery
    replays every committed transaction, so the recoverable state -- the
    state fsck must audit -- is the raw image plus the scan overlay.  The
    view composes reads sector-by-sector (``.read``) and exposes a merged
    ``flat_view`` so :class:`_FlatImage` (the parallel path) bakes the
    overlay in.  Images without a journal area never construct one, so
    non-journaling reports are bit-identical to before.
    """

    __slots__ = ("geometry", "_base", "_sector_overlay")

    def __init__(self, base: SectorStore, geo: FSGeometry,
                 overlay: dict[int, bytes]) -> None:
        self.geometry = base.geometry
        self._base = base
        size = base.geometry.sector_size
        spf = geo.frag_size // size
        self._sector_overlay: dict[int, bytes] = {}
        for frag, data in overlay.items():
            for s in range(spf):
                self._sector_overlay[frag * spf + s] = bytes(
                    data[s * size:(s + 1) * size])

    def read(self, lbn: int, nsectors: int = 1) -> bytes:
        out = []
        for sector in range(lbn, lbn + nsectors):
            hit = self._sector_overlay.get(sector)
            out.append(hit if hit is not None
                       else self._base.read(sector, 1))
        return b"".join(out)

    def flat_view(self, nsectors: int) -> bytes:
        """The base's flat span with the journal overlay applied."""
        size = self.geometry.sector_size
        buf = bytearray(self._base.flat_view(nsectors))
        for sector, data in self._sector_overlay.items():
            if sector < nsectors:
                buf[sector * size:(sector + 1) * size] = data
        return bytes(buf)


def journal_overlay_view(image: SectorStore, geo: FSGeometry):
    """*image* as recovery would leave it (identity when there is no log)."""
    if not geo.journal_frags:
        return image
    spf = geo.frag_size // image.geometry.sector_size
    result = journal.scan_journal(
        lambda daddr, n: image.read(daddr * spf, n * spf), geo)
    if not result.overlay:
        return image
    return _JournalView(image, geo, result.overlay)


def valid_data_frag(geo: FSGeometry, daddr: int) -> bool:
    try:
        geo.data_index(daddr)
        return True
    except ValueError:
        return False


def block_frags(geo: FSGeometry, din: Dinode, lblk: int) -> int:
    """Fragments held by logical block *lblk* (tail blocks may be short)."""
    if din.ftype is FileType.DIRECTORY:
        return geo.frags_per_block
    size = din.size
    last = (size - 1) // geo.block_size if size else 0
    if (lblk < last or lblk >= geo.NDADDR
            or size > geo.NDADDR * geo.block_size):
        return geo.frags_per_block
    tail = size - lblk * geo.block_size
    return max(1, (tail + geo.frag_size - 1) // geo.frag_size)


def inode_claim_ops(image: SectorStore, geo: FSGeometry, ino: int,
                    din: Dinode) -> list[tuple]:
    """Phase-1 op-stream for one inode: ``("frag", daddr)`` claims (in the
    exact order the serial walk visits them) and ``("error", msg)`` for
    pointers that leave the data area."""
    ops: list[tuple] = []

    def claim(daddr: int, frags: int) -> None:
        for fragment in range(daddr, daddr + frags):
            if not valid_data_frag(geo, fragment):
                ops.append(("error",
                            f"inode {ino} points outside the data area "
                            f"(daddr {fragment})"))
                return
            ops.append(("frag", fragment))

    def claim_indirect(daddr: int, depth: int) -> None:
        if not valid_data_frag(geo, daddr):
            ops.append(("error",
                        f"inode {ino} indirect pointer outside data area "
                        f"({daddr})"))
            return
        claim(daddr, geo.frags_per_block)
        raw = read_image_frags(image, geo, daddr, geo.frags_per_block)
        for pointer in struct.unpack(f"<{geo.nindir}I", raw):
            if not pointer:
                continue
            if depth > 1:
                claim_indirect(pointer, depth - 1)
            else:
                claim(pointer, geo.frags_per_block)

    blocks = (din.size + geo.block_size - 1) // geo.block_size
    for lblk in range(min(blocks, geo.NDADDR)):
        daddr = din.direct[lblk]
        if daddr:
            claim(daddr, block_frags(geo, din, lblk))
    if din.sindirect:
        claim_indirect(din.sindirect, depth=1)
    if din.dindirect:
        claim_indirect(din.dindirect, depth=2)
    return ops


def directory_events(image: SectorStore, geo: FSGeometry, ino: int,
                     din: Dinode) -> list[tuple]:
    """Phase-2 event-stream for one directory: structural ``("error", msg)``
    findings plus ``("ref", target, name)`` for every live entry (replayed
    against the global inode table by :meth:`_Checker.note_reference`)."""
    events: list[tuple] = []
    seen_dot = seen_dotdot = False
    blocks = (din.size + geo.block_size - 1) // geo.block_size
    for lblk in range(min(blocks, geo.NDADDR)):
        daddr = din.direct[lblk]
        if not daddr:
            events.append(("error",
                           f"directory {ino} has a hole at block {lblk}"))
            continue
        if not valid_data_frag(geo, daddr):
            continue  # already reported by the claim walk
        raw = read_image_frags(image, geo, daddr, geo.frags_per_block)
        try:
            entries = list(directory.iter_entries(raw))
        except directory.CorruptDirectory as exc:
            events.append(("error",
                           f"directory {ino} block {lblk} corrupt: {exc}"))
            continue
        for entry in entries:
            if not entry.live:
                continue
            if entry.name == ".":
                seen_dot = True
                if entry.ino != ino:
                    events.append(("error",
                                   f"directory {ino}: '.' points to "
                                   f"{entry.ino}"))
                continue
            if entry.name == "..":
                seen_dotdot = True
                events.append(("ref", entry.ino, ".."))
                continue
            events.append(("ref", entry.ino, entry.name))
    if din.size and not (seen_dot and seen_dotdot):
        events.append(("error", f"directory {ino} missing '.' or '..'"))
    return events


def cg_bitmap_findings(image: SectorStore, geo: FSGeometry, cg: int,
                       claims: dict[int, int],
                       allocated) -> list[tuple[str, str]]:
    """Phase-4 findings for one cylinder group: ``(kind, msg)`` tuples,
    kind ``"error"`` or ``"warning"``.  *claims* maps fragment daddr ->
    owning ino (may be restricted to this group's range); *allocated* is a
    container answering ``ino in allocated``."""
    findings: list[tuple[str, str]] = []
    raw = bytearray(read_image_frags(image, geo, geo.cg_base(cg),
                                     geo.frags_per_block))
    view = CgView(raw, geo)
    if view.magic != CG_MAGIC:
        findings.append(("error", f"cylinder group {cg} bad magic"))
        return findings
    base = geo.cg_data_start(cg)
    for index in range(geo.dfrags_per_cg):
        daddr = base + index
        used = view.frag_used(index)
        claimed = daddr in claims
        if claimed and not used:
            findings.append(("warning",
                             f"fragment {daddr} in use by inode "
                             f"{claims[daddr]} but marked free "
                             f"(fsck repairs)"))
        elif used and not claimed:
            findings.append(("warning",
                             f"fragment {daddr} marked used but "
                             f"unreferenced (leak)"))
    for index in range(geo.ipg):
        ino = cg * geo.ipg + index
        if ino < ROOT_INO:
            continue
        used = view.inode_used(index)
        is_alloc = ino in allocated
        if is_alloc and not used:
            findings.append(("warning",
                             f"inode {ino} allocated but bitmap says free "
                             f"(fsck repairs)"))
        elif used and not is_alloc and ino != ROOT_INO:
            findings.append(("warning",
                             f"inode {ino} bitmap used but dinode free "
                             f"(leak)"))
    return findings


class _Checker:
    """Replays op-streams into the global report (the serial core)."""

    def __init__(self, image: SectorStore, geometry: FSGeometry) -> None:
        self.image = image
        self.geo = geometry
        self.report = FsckReport()
        self.claims: dict[int, int] = {}  # fragment daddr -> claiming ino

    # -- raw readers ------------------------------------------------------
    def read_frags(self, daddr: int, frags: int) -> bytes:
        return read_image_frags(self.image, self.geo, daddr, frags)

    def read_inode(self, ino: int) -> Dinode:
        return read_image_inode(self.image, self.geo, ino)

    # -- phase 1: inodes and block claims ------------------------------------
    def scan_inodes(self) -> None:
        for cg in range(self.geo.ncg):
            for ino, din in scan_cg_inodes(self.image, self.geo, cg):
                self.report.inodes[ino] = din
                self.apply_claim_ops(
                    ino, inode_claim_ops(self.image, self.geo, ino, din))

    def apply_claim_ops(self, ino: int, ops: list[tuple]) -> None:
        """Fold one inode's claim stream into the global claim table."""
        for op in ops:
            if op[0] == "error":
                self.report.errors.append(op[1])
                continue
            fragment = op[1]
            owner = self.claims.get(fragment)
            if owner is not None and owner != ino:
                self.report.errors.append(
                    f"fragment {fragment} claimed by both inode {owner} "
                    f"and inode {ino} (rule 2 violated)")
            else:
                self.claims[fragment] = ino

    # -- phase 2: directory structure ----------------------------------------
    def scan_directories(self) -> None:
        for ino, din in self.report.inodes.items():
            if din.ftype is not FileType.DIRECTORY:
                continue
            self.apply_directory_events(
                ino, directory_events(self.image, self.geo, ino, din))

    def apply_directory_events(self, ino: int, events: list[tuple]) -> None:
        for event in events:
            if event[0] == "error":
                self.report.errors.append(event[1])
            else:
                self.note_reference(event[1], ino, event[2])

    def note_reference(self, target: int, dir_ino: int, name: str) -> None:
        if not (0 <= target < self.geo.total_inodes):
            self.report.errors.append(
                f"directory {dir_ino} entry {name!r} points to out-of-range "
                f"inode {target}")
            return
        if target not in self.report.inodes:
            self.report.errors.append(
                f"directory {dir_ino} entry {name!r} points to unallocated "
                f"inode {target} (rule 3 violated)")
            return
        self.report.references.setdefault(target, []).append((dir_ino, name))

    # -- phase 3: link counts -------------------------------------------------
    def check_links(self) -> None:
        for ino, din in self.report.inodes.items():
            if ino != ROOT_INO and not self.report.references.get(ino):
                self.report.warnings.append(
                    f"inode {ino} allocated but unreferenced (orphan; "
                    f"fsck reclaims)")
                continue
            refs = len(self.report.references.get(ino, []))
            if din.ftype is FileType.DIRECTORY:
                refs += 1  # its own '.'
            if din.nlink < refs:
                self.report.warnings.append(
                    f"inode {ino} link count {din.nlink} below actual "
                    f"references {refs} (fsck repairs)")
            elif din.nlink > refs:
                self.report.warnings.append(
                    f"inode {ino} link count {din.nlink} above actual "
                    f"references {refs} (fsck repairs)")

    # -- phase 4: bitmaps -------------------------------------------------------
    def check_bitmaps(self) -> None:
        for cg in range(self.geo.ncg):
            self.apply_bitmap_findings(cg_bitmap_findings(
                self.image, self.geo, cg, self.claims, self.report.inodes))

    def apply_bitmap_findings(self,
                              findings: list[tuple[str, str]]) -> None:
        for kind, msg in findings:
            (self.report.errors if kind == "error"
             else self.report.warnings).append(msg)


# ----------------------------------------------------------------------
# parallel scan workers (pFSCK-style per-cylinder-group fan-out)
# ----------------------------------------------------------------------
@dataclass
class _FsckContext:
    """Read-only state for scan workers.

    Installed as a module-level global before the pool forks so children
    inherit the image copy-on-write; pickled once per worker (via the pool
    initializer) only on platforms without ``fork``.
    """

    image: SectorStore
    geo: FSGeometry


_FSCK_CONTEXT: Optional[_FsckContext] = None


def _fsck_init(context: Optional[_FsckContext] = None) -> None:
    global _FSCK_CONTEXT
    if context is not None:
        _FSCK_CONTEXT = context
    # the worker inherited (or was handed) a large object graph it will
    # only ever read; freezing it keeps the cycle collector from touching
    # refcounts across the copy-on-write heap and dirtying every page
    gc.freeze()


def _scan_cg(cg: int):
    """Pure scans for one cylinder group: allocated dinodes, their claim
    streams, and directory event streams -- all in ascending inode order."""
    ctx = _FSCK_CONTEXT
    inodes: list[tuple[int, Dinode]] = scan_cg_inodes(ctx.image, ctx.geo, cg)
    claim_ops: list[list[tuple]] = [
        inode_claim_ops(ctx.image, ctx.geo, ino, din)
        for ino, din in inodes]
    dir_events: list[tuple[int, list[tuple]]] = []
    for ino, din in inodes:
        if din.ftype is FileType.DIRECTORY:
            dir_events.append(
                (ino, directory_events(ctx.image, ctx.geo, ino, din)))
    return inodes, claim_ops, dir_events


def _scan_cg_bitmaps(payload):
    """Bitmap audit for one cylinder group against the merged claims."""
    cg, claims, allocated = payload
    ctx = _FSCK_CONTEXT
    return cg_bitmap_findings(ctx.image, ctx.geo, cg, claims, allocated)


def _fsck_parallel(image: SectorStore, geo: FSGeometry,
                   jobs: int) -> FsckReport:
    """Fan the per-cg scans over a pool, then merge serially.

    The merge replays every op-stream in ascending inode order, so the
    report is byte-identical to the serial checker's.
    """
    global _FSCK_CONTEXT
    spf = geo.frag_size // image.geometry.sector_size
    flat = _FlatImage(image, geo.total_frags * spf)
    context = _FsckContext(image=flat, geo=geo)
    methods = multiprocessing.get_all_start_methods()
    previous, _FSCK_CONTEXT = _FSCK_CONTEXT, context
    try:
        if "fork" in methods:
            pool_ctx = multiprocessing.get_context("fork")
            pool_kwargs = {"initializer": _fsck_init}
        else:
            pool_ctx = multiprocessing.get_context(None)
            pool_kwargs = {"initializer": _fsck_init, "initargs": (context,)}
        with pool_ctx.Pool(min(jobs, geo.ncg), **pool_kwargs) as pool:
            scans = pool.map(_scan_cg, range(geo.ncg), chunksize=1)
            checker = _Checker(image, geo)
            # phase 1: replay claim streams in global inode order
            for inodes, claim_ops, _events in scans:
                for (ino, din), ops in zip(inodes, claim_ops):
                    checker.report.inodes[ino] = din
                    checker.apply_claim_ops(ino, ops)
            if ROOT_INO not in checker.report.inodes:
                checker.report.errors.append("root inode missing")
                return checker.report
            # phase 2: replay directory events in global inode order
            for _inodes, _ops, events in scans:
                for ino, stream in events:
                    checker.apply_directory_events(ino, stream)
            # phase 3 is a pure reduction over the merged maps
            checker.check_links()
            # phase 4: fan back out with the merged claims, split per cg
            claims_by_cg: list[dict[int, int]] = [{} for _ in range(geo.ncg)]
            for daddr, owner in checker.claims.items():
                claims_by_cg[geo.cg_of_daddr(daddr)][daddr] = owner
            inos_by_cg: list[set] = [set() for _ in range(geo.ncg)]
            for ino in checker.report.inodes:
                inos_by_cg[geo.cg_of_inode(ino)].add(ino)
            payloads = [(cg, claims_by_cg[cg], inos_by_cg[cg])
                        for cg in range(geo.ncg)]
            for findings in pool.map(_scan_cg_bitmaps, payloads,
                                     chunksize=1):
                checker.apply_bitmap_findings(findings)
    finally:
        _FSCK_CONTEXT = previous
    return checker.report


def repair(image: SectorStore,
           geometry: FSGeometry | None = None) -> FsckReport:
    """Repair an image in place (warnings only); returns the re-audit.

    Implements classic fsck's mechanical fixes for the inconsistencies the
    paper's safe schemes deliberately allow: link counts are rewritten to
    the observed reference counts, referenced-but-free bitmap bits are
    re-marked, unreferenced used bits are released, and orphaned inodes are
    cleared with their blocks returned to the free pool.  Images with true
    integrity *errors* are not repairable; callers should check
    :func:`fsck` first.
    """
    geometry = geometry or FSGeometry()
    report = fsck(image, geometry)
    geo = Superblock.unpack(image.read(
        geometry.superblock_daddr * (geometry.frag_size
                                     // image.geometry.sector_size),
        geometry.frag_size // image.geometry.sector_size)).geometry
    spf = geo.frag_size // image.geometry.sector_size
    if geo.journal_frags:
        # recovery proper: physically replay the committed log and retire
        # it, so the repairs below operate on the recovered image and the
        # repaired image mounts with an empty log
        journal.replay_into(
            lambda daddr, n: image.read(daddr * spf, n * spf),
            lambda daddr, data: image.write(daddr * spf, data),
            geo)
    checker = _Checker(image, geo)
    checker.scan_inodes()
    checker.scan_directories()

    # orphan detection cascades: clearing an unreferenced directory removes
    # its entries, which can orphan its children (and drops the '..'
    # reference it contributed to its parent's link count)
    orphans: set[int] = set()
    changed = True
    while changed:
        changed = False
        for ino in checker.report.inodes:
            if ino == ROOT_INO or ino in orphans:
                continue
            live_refs = [dir_ino for dir_ino, _name
                         in checker.report.references.get(ino, [])
                         if dir_ino not in orphans]
            if not live_refs:
                orphans.add(ino)
                changed = True

    def write_inode(ino: int, din: Dinode) -> None:
        daddr = geo.inode_block_daddr(ino)
        block = bytearray(image.read(daddr * spf,
                                     geo.frags_per_block * spf))
        at = geo.inode_offset_in_block(ino)
        block[at:at + 128] = din.pack()
        image.write(daddr * spf, bytes(block))

    # fix link counts (counting only references that survive the orphan
    # sweep); clear orphans
    for ino, din in checker.report.inodes.items():
        if ino in orphans:
            write_inode(ino, Dinode())
            continue
        refs = sum(1 for dir_ino, _name
                   in checker.report.references.get(ino, [])
                   if dir_ino not in orphans)
        if din.ftype is FileType.DIRECTORY:
            refs += 1
        if din.nlink != refs:
            din.nlink = refs
            write_inode(ino, din)

    # rebuild the bitmaps from the surviving (non-orphan) claims
    claims = {daddr for daddr, owner in checker.claims.items()
              if owner not in orphans}
    for cg in range(geo.ncg):
        raw = bytearray(image.read(geo.cg_base(cg) * spf,
                                   geo.frags_per_block * spf))
        view = CgView(raw, geo)
        base = geo.cg_data_start(cg)
        free_frags = free_inodes = 0
        for index in range(geo.dfrags_per_cg):
            wanted = (base + index) in claims
            if view.frag_used(index) != wanted:
                view.set_frags(index, 1, wanted)
            free_frags += 0 if wanted else 1
        for index in range(geo.ipg):
            ino = cg * geo.ipg + index
            wanted = (ino < ROOT_INO and cg == 0) or (
                ino in checker.report.inodes and ino not in orphans)
            if view.inode_used(index) != wanted:
                view.set_inode(index, wanted)
            free_inodes += 0 if wanted else 1
        view.free_frags = free_frags
        view.free_inodes = free_inodes
        image.write(geo.cg_base(cg) * spf, bytes(raw))

    return fsck(image, geometry)


def fsck(image: SectorStore, geometry: FSGeometry | None = None,
         jobs: int = 1) -> FsckReport:
    """Audit *image*; returns the :class:`FsckReport`.

    ``jobs > 1`` fans the per-cylinder-group scans over a process pool
    (pFSCK-style); the finding lists are byte-identical to the serial
    audit's.  Pool workers are daemonic and cannot have children, so when
    this is called from inside another ``multiprocessing`` worker (the
    explorer's verification pool, a fault-sweep grid cell) ``jobs > 1``
    silently degrades to the serial audit -- same report, one process.
    """
    geometry = geometry or FSGeometry()
    spf = geometry.frag_size // image.geometry.sector_size
    try:
        superblock = Superblock.unpack(
            image.read(geometry.superblock_daddr * spf, spf))
    except ValueError as exc:
        report = FsckReport()
        report.errors.append(f"superblock unreadable: {exc}")
        return report
    geo = superblock.geometry
    # a journaling image is audited in its *recovered* state: raw image
    # plus the committed log overlay (identity for journal-less layouts)
    image = journal_overlay_view(image, geo)
    if jobs > 1 and geo.ncg > 1 \
            and not multiprocessing.current_process().daemon:
        return _fsck_parallel(image, geo, jobs)
    checker = _Checker(image, geo)
    checker.scan_inodes()
    if ROOT_INO not in checker.report.inodes:
        checker.report.errors.append("root inode missing")
        return checker.report
    checker.scan_directories()
    checker.check_links()
    checker.check_bitmaps()
    return checker.report
