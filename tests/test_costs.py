"""Unit tests for the CPU cost model."""

import pytest

from repro.costs import CostModel


def test_scale_multiplies_everything():
    live = CostModel(scale=1.0)
    free = CostModel(scale=0.0)
    double = CostModel(scale=2.0)
    assert free.time("create") == 0.0
    assert free.copy_bytes(10_000) == 0.0
    assert double.time("create") == pytest.approx(2 * live.time("create"))
    assert double.block_copy(8192) == pytest.approx(2 * live.block_copy(8192))


def test_multiplier_applies_per_occurrence():
    costs = CostModel()
    assert costs.time("dirent_scan", 100) \
        == pytest.approx(100 * costs.dirent_scan)


def test_calibration_sanity_1994_ranges():
    """The knobs stay in plausible 33 MHz i486 territory."""
    costs = CostModel()
    # a create is milliseconds, not micro- or full seconds
    assert 0.002 < costs.create < 0.05
    # byte copies land between 0.5 and 10 MB/s
    assert 0.1e-6 < costs.copy_per_byte < 2e-6
    # a syscall entry is tens of microseconds
    assert 10e-6 < costs.syscall < 1e-3
    # the -CB memcpy is cheaper per byte than a user copy
    assert costs.block_copy_per_byte < costs.copy_per_byte


def test_unknown_cost_name_raises():
    with pytest.raises(AttributeError):
        CostModel().time("warp_drive")
