"""The buffer: one cached run of disk fragments.

Buffers are identified by their starting fragment address (``daddr``) and
have a size that is a whole number of fragments -- matching FFS, where a
cached "block" may be a full block or a fragment run.  A buffer is held
exclusively (``busy``) while a process reads or modifies it, exactly like the
B_BUSY discipline of the UNIX buffer cache; that lock is what makes
section 3.3's write-lock stalls happen when a buffer is also the source of an
in-flight disk write.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.engine import Engine
from repro.sim.primitives import WaitQueue


class Buffer:
    """A cached, byte-addressable image of ``size`` bytes at fragment ``daddr``.

    Hook points used by the ordering schemes:

    * ``pre_write(buf, image)`` -- called with a *copy* of the data just
      before a disk write is issued; soft updates uses this to roll back
      updates with unsatisfied dependencies so the written image is always
      consistent with the on-disk state.
    * ``post_write(buf)`` -- called at I/O completion, in driver (ISR)
      context; must not block.  Soft updates processes completed
      dependencies here and re-dirties the buffer if rollbacks remain.
    """

    __slots__ = ("daddr", "size", "data", "valid", "dirty", "busy", "marked",
                 "write_outstanding", "hold_count", "waitq", "pre_write",
                 "post_write", "dep_info", "dirtied_at", "last_release",
                 "owner", "flush_deps", "error", "dir_index")

    def __init__(self, engine: Engine, daddr: int, size: int) -> None:
        self.daddr = daddr
        self.size = size
        self.data = bytearray(size)
        #: data reflects disk (or newer in-memory) contents
        self.valid = False
        #: in-memory contents newer than disk
        self.dirty = False
        #: exclusively held (B_BUSY) by a process or a non-CB write
        self.busy = False
        #: syncer two-pass sweep mark
        self.marked = False
        #: a disk write of this buffer is queued or in flight
        self.write_outstanding = False
        #: >0 pins the buffer in the cache (soft updates dependency anchors)
        self.hold_count = 0
        self.waitq = WaitQueue(engine)
        self.pre_write: list[Callable[["Buffer", bytearray], None]] = []
        self.post_write: list[Callable[["Buffer"], None]] = []
        #: per-scheme attachment point (soft updates hangs its dep lists here)
        self.dep_info: Any = None
        #: request ids the *next* write of this buffer must depend on
        #: (scheduler chains; attached and cleared by the cache at issue)
        self.flush_deps: set[int] = set()
        self.dirtied_at: float = -1.0
        self.last_release: float = 0.0
        #: debugging: name of the process holding the buffer
        self.owner: str = ""
        #: B_ERROR analogue: error code of the last completed write of this
        #: buffer (None = succeeded); set by the cache at I/O completion so
        #: post_write hooks and waiting writers see the failure
        self.error: Optional[str] = None
        #: host-side directory lookup index (repro.fs.directory.DirIndex),
        #: None = not built, False = bytes are corrupt (fall back to scan);
        #: dropped by anything that changes ``data``
        self.dir_index: Any = None

    def mark_dirty(self, now: float) -> None:
        """Mark newer-than-disk, stamping when the buffer first dirtied."""
        if not self.dirty:
            self.dirtied_at = now
        self.dirty = True

    def __repr__(self) -> str:
        flags = "".join(flag for flag, on in [
            ("V", self.valid), ("D", self.dirty), ("B", self.busy),
            ("W", self.write_outstanding), ("H", self.hold_count > 0),
        ] if on)
        return f"<Buffer daddr={self.daddr} size={self.size} [{flags}]>"
