"""In-core inodes.

"The file system always copies an inode's contents from the buffer cache
into an in-core (or internal) inode structure before accessing them.  So, the
inode structure manipulated by the file system is always separate from the
corresponding source block for disk writes."  (paper, appendix)

That separation matters: schemes decide when the in-core image is copied to
the inode *block* buffer and written, and soft updates can roll back the
block image without disturbing the in-core copy.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.fs.layout import Dinode, FileType
from repro.sim.engine import Engine
from repro.sim.primitives import Lock


class Inode:
    """An in-core inode: the live ``Dinode`` plus locking and references."""

    __slots__ = ("ino", "din", "lock", "refs", "dep_info", "deleted")

    def __init__(self, engine: Engine, ino: int, din: Dinode) -> None:
        self.ino = ino
        self.din = din
        self.lock = Lock(engine)
        self.refs = 0
        #: per-scheme attachment (soft updates inodedep)
        self.dep_info: Any = None
        #: set once the inode has been released to the free pool
        self.deleted = False

    @property
    def ftype(self) -> FileType:
        return self.din.ftype

    @property
    def is_dir(self) -> bool:
        return self.din.ftype is FileType.DIRECTORY

    def __repr__(self) -> str:
        return (f"<Inode {self.ino} {self.din.ftype.name.lower()} "
                f"nlink={self.din.nlink} size={self.din.size}>")


class InodeTable:
    """The in-core inode table (iget/iput).

    In-core inodes persist while referenced; unreferenced clean inodes may be
    recycled.  For simulation simplicity the table is unbounded (the paper's
    15-second reload path for soft updates dependency structures is driven by
    the dependency manager's own timer instead).
    """

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        self._inodes: dict[int, Inode] = {}

    def get_cached(self, ino: int) -> Optional[Inode]:
        return self._inodes.get(ino)

    def install(self, ino: int, din: Dinode) -> Inode:
        if ino in self._inodes:
            raise RuntimeError(f"inode {ino} already in core")
        inode = Inode(self.engine, ino, din)
        self._inodes[ino] = inode
        return inode

    def drop(self, ino: int) -> None:
        self._inodes.pop(ino, None)

    def __len__(self) -> int:
        return len(self._inodes)

    def values(self) -> list[Inode]:
        return list(self._inodes.values())
