"""Scheduler Flag: asynchronous writes carrying the one-bit ordering flag.

Section 3.1: "Write requests that would previously have been synchronous for
ordering purposes are issued asynchronously with their ordering flags set."
The driver's :class:`~repro.driver.ordering.FlagPolicy` gives the flag its
meaning (Full / Back / Part, optionally -NR); this scheme only decides which
writes carry it.  Because the flag constrains every *later-issued* request,
the writes that must land first are issued immediately (flagged) while the
dependent updates stay delayed and are flushed later -- automatically
ordered behind the flagged request.

The -CB block-copy enhancement (section 3.3) is selected via
``use_block_copy``; the headline configuration in section 5 is Part-NR/CB.
"""

from __future__ import annotations

from typing import Generator

from repro.ordering.base import AllocContext, OrderingScheme
from repro.ordering.guarantees import CrashGuarantees


class SchedulerFlagScheme(OrderingScheme):
    """Asynchronous flagged writes; ordering enforced by the disk scheduler."""

    # flagged writes keep the ordering rules intact end to end; the delayed
    # dependents admit the usual repairable wear
    declared_guarantees = CrashGuarantees(allows_corruption=False)

    def __init__(self, alloc_init: bool = False,
                 block_copy: bool = True) -> None:
        super().__init__(alloc_init=alloc_init)
        self.uses_block_copy = block_copy
        self.name = "Scheduler Flag"

    def link_added(self, dp, dbuf, offset, ip, new_inode: bool) -> Generator:
        # the inode write is flagged: the (delayed, later-issued) directory
        # block write cannot be scheduled before it
        ibuf = yield from self._release_on_error(
            self.fs.load_inode_buf(ip.ino), dbuf)
        self.fs.store_inode(ip, ibuf)
        self._bump("ordering.flag_tags")
        yield from self.fs.cache.bawrite(ibuf, flag=True)
        self.fs.cache.bdwrite(dbuf)

    def link_removed(self, dp, dbuf, offset, ip) -> Generator:
        # the cleared-entry write is flagged; the inode updates that
        # drop_link issues afterwards are ordered behind it
        self._bump("ordering.flag_tags")
        yield from self.fs.cache.bawrite(dbuf, flag=True)
        yield from self.fs.drop_link(ip)

    def block_allocated(self, ctx: AllocContext) -> Generator:
        must_init = ctx.is_metadata or self.alloc_init
        moved = bool(ctx.old_daddr) and ctx.old_daddr != ctx.new_daddr
        if moved:
            # flagged pointer-update write; any write reusing the old run is
            # issued later and therefore ordered behind it
            yield from self._flush_inode_flagged(ctx.ip)
        if ctx.ibuf is not None:
            self.fs.cache.bdwrite(ctx.ibuf)
        if must_init:
            # rule 3: flagged initialization write (for regular data this is
            # the zero-filled reserved block of section 3.3; the real data
            # arrives with a later write)
            self._bump("ordering.flag_tags")
            yield from self.fs.cache.bawrite(ctx.data_buf, flag=True)
        else:
            self.fs.cache.brelse(ctx.data_buf)
        if moved:
            self.fs.cache.invalidate(ctx.old_daddr, ctx.old_frags)
            yield from self.fs.allocator.free_frags(ctx.old_daddr,
                                                    ctx.old_frags)

    def truncated(self, ip, runs) -> Generator:
        # flagged reset write: reusers' writes are issued later (rule 2)
        yield from self._flush_inode_flagged(ip)
        yield from self.fs.free_block_list(runs)

    def release_inode(self, ip) -> Generator:
        runs = yield from self.fs.collect_blocks(ip)
        self.fs.clear_block_pointers(ip)
        ino = ip.ino
        yield from self.fs.free_inode_record(ip)
        ibuf = yield from self.fs.load_inode_buf(ino)
        at = self.fs.geometry.inode_offset_in_block(ino)
        ibuf.data[at:at + 128] = bytes(128)
        # flagged reset write: any write that reuses these blocks or this
        # inode slot is issued later and ordered behind it (rule 2)
        self._bump("ordering.flag_tags")
        yield from self.fs.cache.bawrite(ibuf, flag=True)
        yield from self.fs.free_block_list(runs)

    def _flush_inode_flagged(self, ip) -> Generator:
        ibuf = yield from self.fs.load_inode_buf(ip.ino)
        self.fs.store_inode(ip, ibuf)
        self._bump("ordering.flag_tags")
        yield from self.fs.cache.bawrite(ibuf, flag=True)
