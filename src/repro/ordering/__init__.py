"""The metadata-update ordering schemes.

Each scheme plugs into the same file system at the same four structural
change points (block allocation, block deallocation, link addition, link
removal) and decides *how* the affected metadata reaches the disk:

* :class:`NoOrderScheme` -- delayed writes, ordering ignored (section 5's
  baseline; fast and unsafe).
* :class:`ConventionalScheme` -- synchronous writes at every ordering point
  (the classic FFS approach).
* :class:`SchedulerFlagScheme` -- asynchronous writes with the one-bit
  ordering flag (section 3.1); pair with a
  :class:`~repro.driver.ordering.FlagPolicy` driver.
* :class:`SchedulerChainsScheme` -- asynchronous writes with explicit
  request dependency lists (section 3.2); pair with
  :class:`~repro.driver.ordering.ChainsPolicy`.
* :class:`SoftUpdatesScheme` -- delayed writes with fine-grained dependency
  records, undo/redo rollback and deferred deallocation (section 4.2 and the
  appendix).
* :class:`JournalScheme` -- write-ahead metadata journaling (section 6's
  "logging" alternative): block images into a reserved log, an ordered
  commit record, lazy checkpointing, recovery by replay.

:data:`REGISTRY` (:mod:`repro.ordering.registry`) is the single source the
harness surfaces -- benchmark runner, crash explorer, fault sweep, trace
CLI -- enumerate schemes from.
"""

from repro.ordering.base import AllocContext, OrderingScheme
from repro.ordering.guarantees import CrashGuarantees
from repro.ordering.noorder import NoOrderScheme
from repro.ordering.conventional import ConventionalScheme
from repro.ordering.schedflag import SchedulerFlagScheme
from repro.ordering.schedchains import SchedulerChainsScheme
from repro.ordering.softupdates import SoftUpdatesScheme
from repro.ordering.nvram import NvramScheme
from repro.ordering.journal import JournalScheme
from repro.ordering.registry import REGISTRY, SchemeInfo

__all__ = [
    "AllocContext",
    "ConventionalScheme",
    "CrashGuarantees",
    "JournalScheme",
    "NoOrderScheme",
    "NvramScheme",
    "OrderingScheme",
    "REGISTRY",
    "SchedulerChainsScheme",
    "SchedulerFlagScheme",
    "SchemeInfo",
    "SoftUpdatesScheme",
]
