"""The automated regression gate: stratified medians, both verdict
directions, the CLI exit contract, and the escape hatch."""

import copy
import json

import pytest

from repro.harness.parallel import CellStats, GridReport
from repro.harness.perflog import append_record, build_session_record
from repro.harness.regress import (
    ALLOW_ENV,
    compare_records,
    format_regression_report,
    gate,
    main,
    stratum_of,
)


def session(wall_by_cell, kernel="python", scale=0.1, jobs=1,
            timestamp="t", store="flat"):
    """A schema-true session record via the producer's own builder."""
    grid = GridReport(name="paper_tables", jobs=jobs)
    for key, wall in wall_by_cell.items():
        grid.cells.append(CellStats(key=key, wall_seconds=wall,
                                    sim_events=1000))
    grid.wall_seconds = sum(wall_by_cell.values())
    return build_session_record([grid], scale=scale, jobs=jobs,
                                kernel=kernel, timestamp=timestamp,
                                store=store)


BASELINE = {"('copy', 'Soft Updates')": 1.0, "('remove', 'No Order')": 0.4}


def priors(n=3, **kwargs):
    return [session(BASELINE, timestamp=f"prior{i}", **kwargs)
            for i in range(n)]


class TestStratum:
    def test_matches_on_kernel_host_scale_jobs(self):
        assert stratum_of(session(BASELINE)) == stratum_of(session(BASELINE))
        assert stratum_of(session(BASELINE, kernel="fast")) \
            != stratum_of(session(BASELINE))
        assert stratum_of(session(BASELINE, scale=0.2)) \
            != stratum_of(session(BASELINE))
        assert stratum_of(session(BASELINE, jobs=4)) \
            != stratum_of(session(BASELINE))
        assert stratum_of(session(BASELINE, store="dict")) \
            != stratum_of(session(BASELINE))

    def test_migrated_legacy_record_matches_nothing_real(self):
        legacy = {"wall_seconds": 1.0, "host": {}, "kernel": None,
                  "scale": None, "jobs": None}
        assert stratum_of(legacy) != stratum_of(session(BASELINE))


class TestCompareRecords:
    def test_unchanged_rerun_is_ok(self):
        verdicts = compare_records(session(BASELINE), priors())
        assert [v.status for v in verdicts] == ["ok", "ok"]

    def test_slowdown_flagged_with_cell_named(self):
        fresh = session({**BASELINE, "('copy', 'Soft Updates')": 3.0})
        verdicts = compare_records(fresh, priors())
        by_key = {v.key: v for v in verdicts}
        bad = by_key["('copy', 'Soft Updates')"]
        assert bad.status == "regression"
        assert bad.ratio == pytest.approx(3.0)
        assert "('copy', 'Soft Updates')" in bad.describe()
        assert by_key["('remove', 'No Order')"].status == "ok"

    def test_speedup_reported_as_improvement(self):
        fresh = session({**BASELINE, "('copy', 'Soft Updates')": 0.3})
        statuses = {v.key: v.status
                    for v in compare_records(fresh, priors())}
        assert statuses["('copy', 'Soft Updates')"] == "improved"

    def test_median_is_robust_to_one_outlier_prior(self):
        history = priors(4) + [session(
            {**BASELINE, "('copy', 'Soft Updates')": 50.0},
            timestamp="outlier")]
        verdicts = compare_records(session(BASELINE), history)
        assert all(v.status == "ok" for v in verdicts)

    def test_min_runs_required(self):
        verdicts = compare_records(session(BASELINE), priors(2),
                                   min_runs=3)
        assert all(v.status == "no-baseline" for v in verdicts)

    def test_other_stratum_priors_never_count(self):
        # 3 priors exist, but from a different kernel: no baseline
        verdicts = compare_records(session(BASELINE),
                                   priors(kernel="fast"))
        assert all(v.status == "no-baseline" for v in verdicts)

    def test_abs_floor_suppresses_small_absolute_jitter(self):
        tiny = {"('copy', 'Soft Updates')": 0.010}
        fresh = session({"('copy', 'Soft Updates')": 0.030})
        history = [session(tiny, timestamp=f"p{i}") for i in range(3)]
        verdicts = compare_records(fresh, history, abs_floor=0.05)
        assert verdicts[0].status == "ok"   # 3x, but only +20ms

    def test_cell_level_kernel_must_match(self):
        def kernel_cell(kernel):
            record = session({"('timer', 'x')": 1.0})
            record["grids"][0]["cells"][0]["kernel"] = kernel
            return record
        fresh = kernel_cell("fast")
        history = [copy.deepcopy(kernel_cell("python"))
                   for _ in range(3)]
        verdicts = compare_records(fresh, history)
        assert verdicts[0].status == "no-baseline"


class TestReportAndGate:
    def write_trajectory(self, path, records):
        for record in records:
            append_record(path, record, keep=50)

    def test_gate_reads_trajectory_and_history(self, tmp_path):
        perf = tmp_path / "BENCH_perf.json"
        # keep=2 rotates the early priors into the history sidecar; the
        # gate must still find them there
        for record in priors() + [session(BASELINE, timestamp="fresh")]:
            append_record(perf, record, keep=2)
        verdicts, fresh = gate(perf)
        assert fresh["timestamp"] == "fresh"
        assert [v.baseline_runs for v in verdicts] == [3, 3]

    def test_gate_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            gate(tmp_path / "nope.json")

    def test_report_names_policy_and_regression(self):
        fresh = session({**BASELINE, "('copy', 'Soft Updates')": 3.0})
        verdicts = compare_records(fresh, priors())
        report = format_regression_report(verdicts, fresh, tolerance=0.5,
                                          min_runs=3, abs_floor=0.05,
                                          allowed=False)
        assert "median * 1.5" in report
        assert "REGRESSION" in report
        assert "('copy', 'Soft Updates')" in report
        assert "regressions: 1" in report


class TestCli:
    @pytest.fixture(autouse=True)
    def quiet_ledger(self, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER", "off")
        monkeypatch.delenv(ALLOW_ENV, raising=False)

    def run(self, tmp_path, records, extra_args=()):
        perf = tmp_path / "BENCH_perf.json"
        perf.write_text(json.dumps(records))
        out = tmp_path / "regression_report.txt"
        code = main(["--perf-json", str(perf), "--out", str(out),
                     *extra_args])
        return code, out

    def test_clean_rerun_exits_zero(self, tmp_path, capsys):
        code, out = self.run(tmp_path,
                             priors() + [session(BASELINE,
                                                 timestamp="fresh")])
        assert code == 0
        assert "regressions: 0" in out.read_text()

    def test_synthetic_slowdown_exits_one_naming_cell(self, tmp_path,
                                                      capsys):
        slow = session({**BASELINE, "('copy', 'Soft Updates')": 3.0},
                       timestamp="fresh")
        code, out = self.run(tmp_path, priors() + [slow])
        assert code == 1
        report = out.read_text()
        assert "REGRESSION" in report
        assert "('copy', 'Soft Updates')" in report
        err = capsys.readouterr().err
        assert "REGRESSION" in err and "('copy', 'Soft Updates')" in err

    def test_escape_hatch_exits_zero_but_reports(self, tmp_path,
                                                 monkeypatch, capsys):
        monkeypatch.setenv(ALLOW_ENV, "1")
        slow = session({**BASELINE, "('copy', 'Soft Updates')": 3.0},
                       timestamp="fresh")
        code, out = self.run(tmp_path, priors() + [slow])
        assert code == 0
        report = out.read_text()
        assert "REGRESSION" in report
        assert ALLOW_ENV in report

    def test_no_baseline_session_passes(self, tmp_path):
        code, out = self.run(tmp_path, [session(BASELINE)])
        assert code == 0
        assert "no-baseline" in out.read_text()

    def test_missing_trajectory_exits_two(self, tmp_path, capsys):
        code = main(["--perf-json", str(tmp_path / "nope.json"),
                     "--out", str(tmp_path / "r.txt")])
        assert code == 2

    def test_tolerance_flag_tightens_the_band(self, tmp_path):
        mild = session({**BASELINE, "('copy', 'Soft Updates')": 1.3},
                       timestamp="fresh")
        code, _ = self.run(tmp_path, priors() + [mild])
        assert code == 0
        code, _ = self.run(tmp_path, priors() + [mild],
                           extra_args=["--tolerance", "0.2"])
        assert code == 1
