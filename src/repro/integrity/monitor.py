"""Online ordering-rule monitor: flag violations *as commits land*.

The paper's schemes promise that metadata writes reach the platters in an
order that keeps the image recoverable at every instant.  Crash
exploration checks this after the fact -- fsck over a sweep of synthesized
crash images.  The monitor (SquirrelFS-style, arxiv 2406.09649) checks it
*online*: it subscribes to the drive's ``on_write_commit`` stream, mirrors
every durable sector prefix into a private shadow image, and re-derives
exactly the structural state fsck would compute -- inode claims, directory
entries, reference sets -- incrementally, touching only what each commit
changed.  The moment a commit lands out of order, the affected structure
is inconsistent *on the shadow image itself* and a typed
:class:`OrderingViolation` fires, naming the rule, the offending write
window (lbn + sectors), and the simulated instant.

The rule catalogue is the paper's three ordering rules plus the structural
soundness they protect:

* ``dirent-uninitialized`` -- rule 3: never point a directory entry at an
  uninitialized (unallocated) inode,
* ``free-while-referenced`` -- rule 1: never reset the old pointer (free
  the inode) while directory entries still reference it,
* ``reuse-before-nullify`` -- rule 2: never reuse a fragment before the
  previous owner's pointer to it is nullified,
* ``pointer-invalid`` -- an inode pointer left the data area,
* ``dir-unsound`` -- a referenced directory block must always parse, hold
  its '.'/'..' pair, and have no holes,
* ``fs-unsound`` -- the superblock and cylinder-group headers must stay
  readable,
* ``journal-checkpoint-order`` -- write-ahead journaling's one ordering
  obligation: a journaled block image must not reach its home location
  before the transaction's commit record is durable.

Journaling support: for layouts with a journal area the monitor judges the
*recoverable* state -- its shadow image plus the committed log overlay
(recovery replays the log, so that composite is what fsck would audit).
Journal-region commits trigger a rescan; home frags covered by the overlay
are effectively unchanged by their own checkpoint writes, so lazy
checkpointing never trips a rule.

Per-scheme rulesets derive from :class:`~repro.ordering.guarantees.
CrashGuarantees`: every rule above guards corruption-class state, so a hit
is *expected* only for schemes declaring ``allows_corruption`` (No Order).
Repairable wear -- link skew, leaks, bitmap drift -- is deliberately not
monitored: the safe schemes produce it by design and classic fsck repairs
it mechanically.

Soft updates' rollback windows need no special casing: the scheme writes
*rolled-back* buffer versions precisely so every media state is
consistent, which is exactly what the shadow image sees.

Correctness argument (proved empirically by the monitor-vs-fsck
differential suite, ``tests/integrity/test_monitor_differential.py``): the
corruption-class predicates only change when a sector reaches the
platters; the base image is clean; the monitor re-checks every predicate
whose inputs a commit changed, using the same op-stream helpers fsck
itself runs (:func:`repro.integrity.fsck.inode_claim_ops`).  Hence "no
violation at any commit" agrees with "no fsck error at any commit
boundary", and mid-window sector prefixes are covered because each
prefix's prerequisites landed in earlier windows (the sweep's sampled
mid-transfer points check this independently).

The monitor is an *observer*: it reads only its own shadow state and the
callback arguments, schedules nothing, and never touches machine state --
attaching it leaves the simulation timeline bit-identical
(``tests/integrity/test_monitor.py`` holds the proof, same discipline as
``tests/obs/test_equivalence.py``).  NVRAM's crash state lives partly in
a battery-backed memory mirror, not on the media, so a media-stream
monitor cannot judge it: :func:`monitor_supported` mirrors the explorer's
``synthesis_supported``.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Optional

from repro.fs import directory, journal
from repro.fs.alloc import CG_MAGIC, CgView
from repro.fs.layout import Dinode, FileType, FSGeometry, INODE_SIZE, ROOT_INO
from repro.fs.superblock import Superblock
from repro.integrity.fsck import inode_claim_ops, valid_data_frag
from repro.ordering.guarantees import SAFE_DEFAULT, CrashGuarantees

#: rule key -> what it protects
RULES = {
    "dirent-uninitialized": "rule 3: never point a directory entry at an "
                            "uninitialized inode",
    "free-while-referenced": "rule 1: never free an inode while directory "
                             "entries still reference it",
    "reuse-before-nullify": "rule 2: never reuse a fragment before the old "
                            "owner's pointer is nullified",
    "pointer-invalid": "inode pointers must stay inside the data area",
    "dir-unsound": "referenced directory blocks must parse and keep "
                   "'.'/'..'",
    "fs-unsound": "superblock and cylinder-group headers must stay "
                  "readable",
    "journal-checkpoint-order": "a journaled block must not be "
                                "checkpointed home before its commit "
                                "record is durable",
}


@dataclass(frozen=True)
class OrderingViolation:
    """One ordering-rule hit, attributed to the commit that caused it."""

    rule: str
    message: str
    #: simulated instant the offending media operation ended
    when: float
    #: the offending write window
    lbn: int
    nsectors: int
    #: within the scheme's CrashGuarantees declaration (No Order only)
    expected: bool

    def format(self) -> str:
        flag = "" if self.expected else " [UNEXPECTED]"
        return (f"t={self.when:.6f} write lbn {self.lbn}+{self.nsectors} "
                f"{self.rule}: {self.message}{flag}")


@dataclass
class _Tracked:
    """Everything the monitor derived from one allocated inode."""

    din: Dinode
    raw: bytes
    claims: set = field(default_factory=set)
    indirect: set = field(default_factory=set)
    dir_blocks: list = field(default_factory=list)


def _safe_ftype(din: Dinode) -> Optional[FileType]:
    try:
        return din.ftype
    except ValueError:
        return None


class _EffectiveImage:
    """The monitor's *recoverable* view: shadow image + committed log.

    Recovery replays committed journal transactions over home locations,
    so the state every structural predicate must judge is the composite,
    overlay-first.  Duck-types the SectorStore read interface
    (:func:`repro.integrity.fsck.read_image_frags` and friends)."""

    __slots__ = ("_monitor", "geometry")

    def __init__(self, monitor: "OrderingMonitor") -> None:
        self._monitor = monitor
        self.geometry = monitor._image.geometry

    def read(self, lbn: int, nsectors: int = 1) -> bytes:
        monitor = self._monitor
        overlay = monitor._j_overlay
        if not overlay:
            return monitor._image.read(lbn, nsectors)
        spf = monitor._spf
        sector_size = monitor._sector_size
        out = []
        for sector in range(lbn, lbn + nsectors):
            data = overlay.get(sector // spf)
            if data is None:
                out.append(monitor._image.read(sector, 1))
            else:
                at = (sector % spf) * sector_size
                out.append(bytes(data[at:at + sector_size]))
        return b"".join(out)


def monitor_supported(machine) -> bool:
    """True when the scheme's crash state lives entirely on the media.

    Mirrors ``repro.integrity.explorer.synthesis_supported``: NVRAM keeps
    battery-backed survivors in memory, so its media stream alone is not
    the crash state and the monitor would mis-fire.
    """
    return getattr(machine.scheme, "apply_to_image", None) is None


class OrderingMonitor:
    """Declarative dependency-rule engine over the write-commit stream.

    Chainable observer: :meth:`attach` preserves any already-installed
    ``on_write_commit`` callback (the media write-log) and calls it first,
    so recording and monitoring compose.
    """

    def __init__(self, geometry: FSGeometry,
                 guarantees: CrashGuarantees = SAFE_DEFAULT,
                 registry=None) -> None:
        self.geo = geometry
        self.guarantees = guarantees
        self.violations: list[OrderingViolation] = []
        self.windows_seen = 0
        self.commits_applied = 0
        self._m_windows = (registry.counter("monitor.windows")
                           if registry is not None else None)
        self._m_violations = (registry.counter("monitor.violations")
                              if registry is not None else None)
        # shadow image + derived structural state (set at attach)
        self._image = None
        self._sector_size = 0
        self._spf = 0
        self._tracked: dict[int, _Tracked] = {}
        #: fragment -> set of claiming inos (rule 2 transitions)
        self._frag_owners: dict[int, set] = {}
        #: fragment -> ino whose indirect block lives there
        self._indirect_owner: dict[int, int] = {}
        #: fragment -> block daddr of the registered directory block
        self._dir_frag_block: dict[int, int] = {}
        #: block daddr -> owning directory ino
        self._block_owner: dict[int, int] = {}
        #: block daddr -> {entry offset: (name, target ino)} ('.' excluded)
        self._block_entries: dict[int, dict] = {}
        #: block daddr -> (has '.', has '..')
        self._block_dots: dict[int, tuple] = {}
        #: target ino -> {(block daddr, offset): (dir ino, name)}
        self._refs_to: dict[int, dict] = {}
        #: target ino -> {(block daddr, offset)} awaiting allocation
        self._dangling: dict[int, set] = {}
        #: condition keys currently true (violations fire on transitions)
        self._active: set = set()
        #: committed-but-unretired journal images: home frag -> logged bytes
        self._j_overlay: dict[int, bytes] = {}
        #: the head transaction's not-yet-committed images (checkpoint rule)
        self._j_open: dict[int, bytes] = {}
        self._eff: Optional[_EffectiveImage] = None
        self._window = (0.0, -1, 0)
        self._chained = None
        self._attached = None

    # -- lifecycle ----------------------------------------------------------
    def attach(self, disk) -> None:
        """Snapshot the current media state and start watching commits."""
        if self._attached is not None:
            raise RuntimeError("monitor already attached")
        self._image = disk.storage.snapshot()
        self._sector_size = disk.geometry.sector_size
        self._spf = self.geo.frag_size // self._sector_size
        self._eff = _EffectiveImage(self)
        if self.geo.journal_frags:
            self._j_overlay, self._j_open = self._journal_rescan()
        self._bootstrap()
        self._chained = disk.on_write_commit
        disk.on_write_commit = self._on_commit
        self._attached = disk

    def detach(self, disk) -> None:
        disk.on_write_commit = self._chained
        self._chained = None
        self._attached = None

    # -- reporting ------------------------------------------------------------
    @property
    def clean(self) -> bool:
        return not self.violations

    @property
    def unexpected(self) -> list[OrderingViolation]:
        return [v for v in self.violations if not v.expected]

    def summary(self) -> str:
        return (f"monitor: {self.windows_seen} windows, "
                f"{self.commits_applied} durable commits, "
                f"{len(self.violations)} ordering violations "
                f"({len(self.unexpected)} outside the declaration)")

    # -- the observer -----------------------------------------------------------
    def _on_commit(self, lbn: int, data: bytes, transfer_start: float,
                   sector_period: float, end: float, durable: int) -> None:
        if self._chained is not None:
            self._chained(lbn, data, transfer_start, sector_period, end,
                          durable)
        self.windows_seen += 1
        if self._m_windows is not None:
            self._m_windows.inc()
        if not durable:
            return  # a transient fault's pass left nothing on the platters
        self.commits_applied += 1
        self._window = (end, lbn, len(data) // self._sector_size)
        self._image.write_partial(lbn, data, durable)
        self._scan_commit(lbn, durable)

    def _fire(self, rule: str, message: str) -> None:
        when, lbn, nsectors = self._window
        self.violations.append(OrderingViolation(
            rule=rule, message=message, when=when, lbn=lbn,
            nsectors=nsectors,
            expected=self.guarantees.allows_corruption))
        if self._m_violations is not None:
            self._m_violations.inc()

    def _fire_once(self, key: tuple, rule: str, message: str) -> None:
        """Fire on the transition into a (persisting) bad state."""
        if key not in self._active:
            self._active.add(key)
            self._fire(rule, message)

    # -- commit digestion ----------------------------------------------------
    def _scan_commit(self, lbn: int, durable: int) -> None:
        """Re-check every predicate whose inputs this commit changed."""
        sectors = list(range(lbn, lbn + durable))
        if not self.geo.journal_frags:
            self._digest(sectors)
            return
        home = [sector for sector in sectors
                if self._classify(sector // self._spf)[0] != "journal"]
        if home:
            self._check_checkpoint_order(home)
        if len(home) != durable:
            # the log changed: rescan it and re-derive every home frag
            # whose *effective* (recoverable) content the change moved
            home += self._journal_refresh()
        self._digest(home)

    def _digest(self, sectors: list[int]) -> None:
        inode_changes: list[tuple[int, bytes]] = []
        dir_blocks: set = set()
        indirect_owners: set = set()
        cg_headers: set = set()
        sb_touched = False
        per_sector_inodes = self._sector_size // INODE_SIZE
        for sector in sectors:
            frag = sector // self._spf
            region = self._classify(frag)
            kind = region[0]
            if kind in ("boot", "beyond", "journal"):
                continue
            if kind == "sb":
                sb_touched = True
            elif kind == "cg":
                if region[2] == 0:  # header magic lives in the first frag
                    cg_headers.add(region[1])
            elif kind == "itab":
                base_ino = self._first_ino_of_sector(region[1], sector)
                raw = self._eff.read(sector, 1)
                for slot in range(per_sector_inodes):
                    ino = base_ino + slot
                    raw128 = raw[slot * INODE_SIZE:(slot + 1) * INODE_SIZE]
                    tracked = self._tracked.get(ino)
                    if tracked is None or tracked.raw != raw128:
                        if tracked is not None or raw128.count(0) != len(raw128):
                            inode_changes.append((ino, raw128))
            else:  # data area
                block = self._dir_frag_block.get(frag)
                if block is not None:
                    dir_blocks.add(block)
                owner = self._indirect_owner.get(frag)
                if owner is not None:
                    indirect_owners.add(owner)

        # 1. retire every changed inode's derived state
        freed: list[int] = []
        adopted: list[tuple[int, Dinode, bytes]] = []
        seen = set()
        for ino, raw128 in sorted(set(inode_changes)):
            if ino < ROOT_INO or ino in seen:
                continue
            seen.add(ino)
            was_tracked = ino in self._tracked
            if was_tracked:
                self._forget(ino)
            din = Dinode.unpack(raw128)
            if din.mode != 0:
                adopted.append((ino, din, raw128))
            elif was_tracked:
                freed.append(ino)
        # an untouched inode whose indirect block changed re-derives too
        for owner in sorted(indirect_owners):
            if owner in self._tracked and owner not in seen:
                seen.add(owner)
                tracked = self._tracked[owner]
                din, raw128 = tracked.din, tracked.raw
                self._forget(owner)
                adopted.append((owner, din, raw128))
        # 2. register allocations first: a ref added by this same commit to
        #    an inode also initialized by it is in order
        for ino, din, raw128 in adopted:
            self._tracked[ino] = _Tracked(din=din, raw=raw128)
            pending = self._dangling.pop(ino, None)
            if pending:
                for key in pending:
                    self._active.discard(("ref3",) + key + (ino,))
        # 3. re-derive claims, pointers, and directory registrations
        for ino, din, _raw in adopted:
            self._adopt_structure(ino, din)
        # 4. re-parse externally-touched directory blocks
        for daddr in sorted(dir_blocks):
            owner = self._block_owner.get(daddr)
            if owner is not None:
                self._reparse_block(owner, daddr)
                self._check_dots(owner)
        # 5. rule 1: a free must come after every referencing entry cleared
        for ino in freed:
            refs = self._refs_to.get(ino)
            if refs:
                dir_ino, name = next(iter(refs.values()))
                self._fire(
                    "free-while-referenced",
                    f"inode {ino} freed while directory {dir_ino} entry "
                    f"{name!r} still references it (rule 1 violated)")
        # 6. metadata headers
        if sb_touched:
            self._check_superblock()
        for cg in sorted(cg_headers):
            self._check_cg_header(cg)

    # -- region arithmetic ------------------------------------------------------
    def _classify(self, frag: int) -> tuple:
        geo = self.geo
        if frag < geo.cg_start:
            return ("sb",) if frag == geo.superblock_daddr else ("boot",)
        if frag >= geo.total_frags:
            return ("beyond",)
        if geo.journal_frags and frag >= geo.journal_start:
            return ("journal",)
        cg = (frag - geo.cg_start) // geo.cg_frags
        offset = (frag - geo.cg_start) % geo.cg_frags
        if offset < geo.frags_per_block:
            return ("cg", cg, offset)
        if offset < geo.frags_per_block * (1 + geo.inode_blocks_per_cg):
            return ("itab", cg)
        return ("data",)

    def _first_ino_of_sector(self, cg: int, sector: int) -> int:
        geo = self.geo
        table = geo.cg_inode_table(cg)
        frag = sector // self._spf
        block_index = (frag - table) // geo.frags_per_block
        block_first_sector = (table
                              + block_index * geo.frags_per_block) * self._spf
        sector_in_block = sector - block_first_sector
        return (cg * geo.ipg + block_index * geo.inodes_per_block
                + sector_in_block * (self._sector_size // INODE_SIZE))

    def _read_frags(self, daddr: int, frags: int) -> bytes:
        return self._eff.read(daddr * self._spf, frags * self._spf)

    # -- journal tracking --------------------------------------------------------
    def _journal_rescan(self) -> tuple[dict, dict]:
        """Scan the shadow image's log region.

        Returns (committed overlay, open-transaction images): frag -> the
        logged bytes recovery would replay, and frag -> the head (valid
        descriptor, no commit record yet) transaction's images -- home
        writes matching the latter are checkpoints running ahead of their
        commit record."""
        geo = self.geo
        spf = self._spf

        def read_frag(daddr: int, nfrags: int) -> bytes:
            return self._image.read(daddr * spf, nfrags * spf)

        result = journal.scan_journal(read_frag, geo)
        open_images: dict[int, bytes] = {}
        if result.open_frags:
            base = geo.journal_start + 1
            log_frags = geo.journal_frags - 1
            frag_size = geo.frag_size
            for pos in dict.fromkeys((result.head_pos, 0)):
                entries = journal.parse_descriptor(read_frag(base + pos, 1),
                                                   result.head_seq)
                if entries is None:
                    continue
                if pos + journal.record_extent(entries) > log_frags:
                    continue
                at = pos + 1
                for entry in entries:
                    if entry.kind != journal.IMAGE:
                        continue
                    data = read_frag(base + at, entry.nfrags)
                    for i in range(entry.nfrags):
                        open_images[entry.daddr + i] = bytes(
                            data[i * frag_size:(i + 1) * frag_size])
                    at += entry.nfrags
                break
            open_images = {frag: data for frag, data in open_images.items()
                           if frag in result.open_frags}
        return dict(result.overlay), open_images

    def _journal_refresh(self) -> list[int]:
        """Rescan after a log-region commit; return the home sectors whose
        effective content moved (commit made images authoritative, retire
        dropped them back to -- now checkpointed -- home copies)."""
        old_overlay, old_open = self._j_overlay, self._j_open
        self._j_overlay, self._j_open = self._journal_rescan()
        for frag in old_open:
            if frag not in self._j_open:
                self._active.discard(("jco", frag))
        spf = self._spf
        changed: list[int] = []
        for frag in set(old_overlay) | set(self._j_overlay):
            before = old_overlay.get(frag)
            after = self._j_overlay.get(frag)
            if before == after:
                continue
            if before is None or after is None:
                home = self._image.read(frag * spf, spf)
                before = before if before is not None else home
                after = after if after is not None else home
            if before != after:
                changed.extend(range(frag * spf, (frag + 1) * spf))
        return changed

    def _check_checkpoint_order(self, home_sectors: list[int]) -> None:
        """The journal's one ordering rule: a logged image must not land at
        its home address while its commit record is still not durable."""
        if not self._j_open:
            return
        spf = self._spf
        for frag in sorted({sector // spf for sector in home_sectors}):
            want = self._j_open.get(frag)
            if want is None:
                continue
            if self._image.read(frag * spf, spf) == want:
                self._fire_once(
                    ("jco", frag), "journal-checkpoint-order",
                    f"fragment {frag} checkpointed home before its "
                    f"transaction's commit record is durable")

    # -- derived-state maintenance ---------------------------------------------
    def _bootstrap(self) -> None:
        """Derive the initial structural state from the attach-time image.

        The pre-workload image is expected consistent, but the derivation
        runs the same checks as live commits -- a dirty starting image
        reports its violations at attach (window lbn -1)."""
        for ino in range(self.geo.total_inodes):
            if ino < ROOT_INO:
                continue
            block = self._read_frags(self.geo.inode_block_daddr(ino),
                                     self.geo.frags_per_block)
            at = self.geo.inode_offset_in_block(ino)
            raw128 = bytes(block[at:at + INODE_SIZE])
            din = Dinode.unpack(raw128)
            if din.mode != 0:
                self._tracked[ino] = _Tracked(din=din, raw=raw128)
        for ino in sorted(self._tracked):
            self._adopt_structure(ino, self._tracked[ino].din)

    def _adopt_structure(self, ino: int, din: Dinode) -> None:
        """(Re-)derive one allocated inode: claims, pointers, dir blocks."""
        tracked = self._tracked[ino]
        ftype = _safe_ftype(din)
        if ftype is None:
            self._fire_once(("ptr", ino, "mode"), "fs-unsound",
                            f"inode {ino} mode {din.mode:#06x} unparseable")
            return
        for op in inode_claim_ops(self._eff, self.geo, ino, din):
            if op[0] == "error":
                self._fire_once(("ptr", ino, op[1]), "pointer-invalid",
                                op[1])
                continue
            frag = op[1]
            tracked.claims.add(frag)
            owners = self._frag_owners.setdefault(frag, set())
            others = owners - {ino}
            owners.add(ino)
            if others:
                self._fire_once(
                    ("dup", frag), "reuse-before-nullify",
                    f"fragment {frag} claimed by inode {ino} while inode "
                    f"{min(others)} still points to it (rule 2 violated)")
        tracked.indirect = self._indirect_frags(din)
        for frag in tracked.indirect:
            self._indirect_owner[frag] = ino
        if ftype is FileType.DIRECTORY:
            blocks = ((din.size + self.geo.block_size - 1)
                      // self.geo.block_size)
            for lblk in range(min(blocks, self.geo.NDADDR)):
                daddr = din.direct[lblk]
                if not daddr:
                    self._fire_once(
                        ("hole", ino, lblk), "dir-unsound",
                        f"directory {ino} has a hole at block {lblk}")
                    continue
                if valid_data_frag(self.geo, daddr):
                    self._register_block(ino, daddr)
            self._check_dots(ino)

    def _indirect_frags(self, din: Dinode) -> set:
        """Fragments holding this inode's indirect pointer blocks."""
        geo = self.geo
        frags: set = set()

        def add_block(daddr: int) -> None:
            frags.update(range(daddr, daddr + geo.frags_per_block))

        if din.sindirect and valid_data_frag(geo, din.sindirect):
            add_block(din.sindirect)
        if din.dindirect and valid_data_frag(geo, din.dindirect):
            add_block(din.dindirect)
            raw = self._read_frags(din.dindirect, geo.frags_per_block)
            for pointer in struct.unpack(f"<{geo.nindir}I", raw):
                if pointer and valid_data_frag(geo, pointer):
                    add_block(pointer)
        return frags

    def _register_block(self, ino: int, daddr: int) -> None:
        tracked = self._tracked[ino]
        tracked.dir_blocks.append(daddr)
        self._block_owner[daddr] = ino
        self._block_entries.setdefault(daddr, {})
        for frag in range(daddr, daddr + self.geo.frags_per_block):
            self._dir_frag_block[frag] = daddr
        self._reparse_block(ino, daddr)

    def _reparse_block(self, ino: int, daddr: int) -> None:
        raw = self._read_frags(daddr, self.geo.frags_per_block)
        old = self._block_entries.get(daddr, {})
        try:
            entries = list(directory.iter_entries(raw))
        except directory.CorruptDirectory as exc:
            self._fire_once(
                ("corrupt", daddr), "dir-unsound",
                f"directory {ino} block at daddr {daddr} corrupt: {exc}")
            for offset, (name, target) in old.items():
                self._drop_ref(daddr, offset, target)
            self._block_entries[daddr] = {}
            self._block_dots[daddr] = (False, False)
            return
        self._active.discard(("corrupt", daddr))
        new: dict = {}
        seen_dot = seen_dotdot = False
        for entry in entries:
            if not entry.live:
                continue
            if entry.name == ".":
                seen_dot = True
                if entry.ino != ino:
                    self._fire_once(
                        ("dot", ino), "dir-unsound",
                        f"directory {ino}: '.' points to {entry.ino}")
                else:
                    self._active.discard(("dot", ino))
                continue
            if entry.name == "..":
                seen_dotdot = True
            new[entry.offset] = (entry.name, entry.ino)
        for offset, (name, target) in old.items():
            if new.get(offset) != (name, target):
                self._drop_ref(daddr, offset, target)
        for offset, (name, target) in new.items():
            if old.get(offset) != (name, target):
                self._add_ref(ino, daddr, offset, target, name)
        self._block_entries[daddr] = new
        self._block_dots[daddr] = (seen_dot, seen_dotdot)

    def _check_dots(self, ino: int) -> None:
        tracked = self._tracked.get(ino)
        if tracked is None:
            return
        if not tracked.din.size:
            return
        seen_dot = any(self._block_dots.get(d, (False, False))[0]
                       for d in tracked.dir_blocks)
        seen_dotdot = any(self._block_dots.get(d, (False, False))[1]
                          for d in tracked.dir_blocks)
        if seen_dot and seen_dotdot:
            self._active.discard(("dots", ino))
        else:
            self._fire_once(("dots", ino), "dir-unsound",
                            f"directory {ino} missing '.' or '..'")

    def _add_ref(self, dir_ino: int, daddr: int, offset: int, target: int,
                 name: str) -> None:
        if not (0 <= target < self.geo.total_inodes):
            self._fire_once(
                ("ref3", daddr, offset, target), "dirent-uninitialized",
                f"directory {dir_ino} entry {name!r} points to out-of-range "
                f"inode {target} (rule 3 violated)")
            return
        if target not in self._tracked:
            self._fire_once(
                ("ref3", daddr, offset, target), "dirent-uninitialized",
                f"directory {dir_ino} entry {name!r} points to unallocated "
                f"inode {target} (rule 3 violated)")
            self._dangling.setdefault(target, set()).add((daddr, offset))
        self._refs_to.setdefault(target, {})[(daddr, offset)] = (dir_ino,
                                                                 name)

    def _drop_ref(self, daddr: int, offset: int, target: int) -> None:
        refs = self._refs_to.get(target)
        if refs is not None:
            refs.pop((daddr, offset), None)
            if not refs:
                del self._refs_to[target]
        self._active.discard(("ref3", daddr, offset, target))
        pending = self._dangling.get(target)
        if pending is not None:
            pending.discard((daddr, offset))
            if not pending:
                del self._dangling[target]

    def _forget(self, ino: int) -> None:
        """Retire one inode's derived state (free or pre-rederive)."""
        tracked = self._tracked.pop(ino)
        for frag in tracked.claims:
            owners = self._frag_owners.get(frag)
            if owners is None:
                continue
            owners.discard(ino)
            if len(owners) <= 1:
                self._active.discard(("dup", frag))
            if not owners:
                del self._frag_owners[frag]
        for frag in tracked.indirect:
            if self._indirect_owner.get(frag) == ino:
                del self._indirect_owner[frag]
        for daddr in tracked.dir_blocks:
            if self._block_owner.get(daddr) != ino:
                continue
            for offset, (name, target) in \
                    self._block_entries.get(daddr, {}).items():
                self._drop_ref(daddr, offset, target)
            self._block_entries.pop(daddr, None)
            self._block_dots.pop(daddr, None)
            del self._block_owner[daddr]
            for frag in range(daddr, daddr + self.geo.frags_per_block):
                if self._dir_frag_block.get(frag) == daddr:
                    del self._dir_frag_block[frag]
        self._active = {key for key in self._active
                        if not (key[0] in ("ptr", "hole", "dot", "dots")
                                and key[1] == ino)}

    # -- header soundness -------------------------------------------------------
    def _check_superblock(self) -> None:
        try:
            Superblock.unpack(self._read_frags(self.geo.superblock_daddr, 1))
        except ValueError as exc:
            self._fire_once(("sb",), "fs-unsound",
                            f"superblock unreadable: {exc}")
        else:
            self._active.discard(("sb",))

    def _check_cg_header(self, cg: int) -> None:
        raw = bytearray(self._read_frags(self.geo.cg_base(cg),
                                         self.geo.frags_per_block))
        if CgView(raw, self.geo).magic != CG_MAGIC:
            self._fire_once(("cg", cg), "fs-unsound",
                            f"cylinder group {cg} bad magic")
        else:
            self._active.discard(("cg", cg))
