"""Seeded metadata-churn workloads for crash exploration.

These are not paper benchmarks: they are adversarial workloads whose point
is to keep many *ordering-sensitive* metadata updates in flight at once
(creates, removes, mkdirs, renames), so that a crash at any disk-write
boundary lands in the middle of some ordered sequence.  Everything is
deterministic in the seed -- the crash-exploration engine replays the same
workload many times and crashes it at different instants, so two runs with
the same seed must issue byte-identical operation streams.
"""

from __future__ import annotations

import random
from typing import Generator

from repro.machine import Machine

#: the figure-5 microbenchmark file payload size
MICRO_FILE_SIZE = 1024


def churn_workload(machine: Machine, seed: int = 0,
                   operations: int = 40) -> Generator:
    """A random mix of creates, writes, removes, mkdirs and renames."""
    rng = random.Random(seed)
    live_files: list[str] = []
    live_dirs = ["/"]
    counter = 0
    for _ in range(operations):
        action = rng.random()
        if action < 0.45 or not live_files:
            parent = rng.choice(live_dirs)
            path = f"{parent.rstrip('/')}/f{counter}"
            counter += 1
            size = rng.choice([300, 1024, 5000, 9000, 20000])
            yield from machine.fs.write_file(path, b"d" * size)
            live_files.append(path)
        elif action < 0.70:
            path = live_files.pop(rng.randrange(len(live_files)))
            yield from machine.fs.unlink(path)
        elif action < 0.85 and len(live_dirs) < 5:
            path = f"/dir{counter}"
            counter += 1
            yield from machine.fs.mkdir(path)
            live_dirs.append(path)
        else:
            old = live_files.pop(rng.randrange(len(live_files)))
            new = f"/renamed{counter}"
            counter += 1
            yield from machine.fs.rename(old, new)
            live_files.append(new)


def microbench_churn(machine: Machine, seed: int = 0,
                     files: int = 24) -> Generator:
    """Figure-5-shaped churn: create 1 KB files, then remove a slice.

    The create phase exercises rule 3 (inode initialized before the
    directory entry lands); the remove phase exercises rules 1-2 (entry
    cleared before the link drop, pointers reset before reuse).  The seed
    perturbs which files are removed and which survive, so different seeds
    explore different dependency interleavings.
    """
    rng = random.Random(seed)
    payload = bytes([seed % 251]) * MICRO_FILE_SIZE
    yield from machine.fs.mkdir("/micro")
    for index in range(files):
        yield from machine.fs.write_file(f"/micro/f{index}", payload)
    victims = [index for index in range(files) if rng.random() < 0.6]
    for index in victims:
        yield from machine.fs.unlink(f"/micro/f{index}")
    # a short re-create tail: freed inodes/fragments get reused, the
    # classic rule-2 hazard window
    for index in victims[: max(1, len(victims) // 3)]:
        yield from machine.fs.write_file(f"/micro/g{index}", payload)
