"""Property-based driver tests: ordering invariants under random traffic."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.disk import Disk
from repro.driver import ChainsPolicy, DeviceDriver, FlagPolicy, FlagSemantics
from repro.sim import Engine


def random_traffic(draw_ops, policy_factory):
    """Replay a drawn op list against a fresh driver; return the trace."""
    engine = Engine()
    driver = DeviceDriver(engine, Disk(engine), policy_factory())
    issued = []
    for op in draw_ops:
        kind, lbn_step, nsectors, flagged, dep_back = op
        lbn = (7919 * lbn_step) % 500_000
        if kind == "read":
            issued.append(driver.read(lbn, nsectors))
        else:
            deps = None
            if dep_back and issued:
                wants = issued[max(0, len(issued) - dep_back):]
                deps = frozenset(r.id for r in wants if r.is_write)
            issued.append(driver.write(lbn, b"\x5c" * (512 * nsectors),
                                       flag=flagged,
                                       depends_on=deps or None))
    for request in issued:
        engine.run_until(request.done, max_events=2_000_000)
    return driver.trace


ops_strategy = st.lists(
    st.tuples(st.sampled_from(["read", "write", "write"]),
              st.integers(0, 1000), st.sampled_from([2, 8, 16]),
              st.booleans(), st.integers(0, 3)),
    min_size=1, max_size=40)


class TestFlagInvariants:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(ops=ops_strategy)
    def test_part_semantics_hold_in_completion_order(self, ops):
        """No request issued after a flagged write completes before it."""
        trace = random_traffic(ops, lambda: FlagPolicy(FlagSemantics.PART))
        for flagged in (r for r in trace if r.flag):
            for other in trace:
                if other.id > flagged.id:
                    assert other.dispatch_time >= flagged.complete_time - 1e-9

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(ops=ops_strategy)
    def test_full_semantics_barrier_both_ways(self, ops):
        trace = random_traffic(ops, lambda: FlagPolicy(FlagSemantics.FULL))
        for flagged in (r for r in trace if r.flag):
            for other in trace:
                if other.id > flagged.id:
                    assert other.dispatch_time >= flagged.complete_time - 1e-9
                elif other.id < flagged.id:
                    assert flagged.dispatch_time >= other.complete_time - 1e-9

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(ops=ops_strategy)
    def test_nr_reads_never_conflict(self, ops):
        """With -NR, a read never dispatches while an older overlapping
        write is incomplete."""
        trace = random_traffic(
            ops, lambda: FlagPolicy(FlagSemantics.PART, read_bypass=True))
        for read in (r for r in trace if not r.is_write):
            for write in (r for r in trace if r.is_write):
                if write.id < read.id and write.overlaps(read.lbn,
                                                         read.nsectors):
                    assert read.dispatch_time >= write.complete_time - 1e-9


class TestBackInvariants:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(ops=ops_strategy)
    def test_back_blocks_later_requests_behind_the_barrier(self, ops):
        """With BACK semantics a request issued after a flagged one may not
        be scheduled before it *or anything issued before it* (the flagged
        request itself reorders freely with its elders -- the freedom PART
        extends further and FULL removes)."""
        trace = random_traffic(ops, lambda: FlagPolicy(FlagSemantics.BACK))
        for flagged in (r for r in trace if r.flag):
            elders = [r for r in trace if r.id <= flagged.id]
            barrier_clear = max(r.complete_time for r in elders)
            for later in (r for r in trace if r.id > flagged.id):
                assert later.dispatch_time >= barrier_clear - 1e-9

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(ops=ops_strategy)
    def test_back_is_weaker_than_or_equal_to_full(self, ops):
        """Everything BACK allows must still satisfy PART's guarantee."""
        trace = random_traffic(ops, lambda: FlagPolicy(FlagSemantics.BACK))
        for flagged in (r for r in trace if r.flag):
            for other in trace:
                if other.id > flagged.id:
                    assert other.dispatch_time >= flagged.complete_time - 1e-9


class TestChainsInvariants:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(ops=ops_strategy)
    def test_dependencies_complete_before_dispatch(self, ops):
        trace = random_traffic(ops, ChainsPolicy)
        by_id = {r.id: r for r in trace}
        for request in trace:
            for dep in request.depends_on:
                assert by_id[dep].complete_time <= request.dispatch_time + 1e-9

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(ops=ops_strategy)
    def test_transitive_dependencies_complete_before_dispatch(self, ops):
        """The whole ancestor DAG -- not just direct edges -- lands first."""
        trace = random_traffic(ops, ChainsPolicy)
        by_id = {r.id: r for r in trace}
        closure: dict[int, frozenset[int]] = {}
        for request in sorted(trace, key=lambda r: r.id):
            ancestors = set(request.depends_on)
            for dep in request.depends_on:
                ancestors |= closure.get(dep, frozenset())
            closure[request.id] = frozenset(ancestors)
        for request in trace:
            for ancestor in closure[request.id]:
                assert by_id[ancestor].complete_time \
                    <= request.dispatch_time + 1e-9


def last_writer_traffic(draw_ops, policy_factory):
    """Random overlapping writes with per-request bytes; returns the disk."""
    engine = Engine()
    disk = Disk(engine)
    driver = DeviceDriver(engine, disk, policy_factory())
    issued, payloads = [], []
    for i, op in enumerate(draw_ops):
        _kind, lbn_step, nsectors, flagged, _dep = op
        lbn = 1000 + (509 * lbn_step) % 64  # force heavy overlap
        data = bytes([i + 1]) * (512 * nsectors)
        issued.append(driver.write(lbn, data, flag=flagged))
        payloads.append((lbn, data))
    for request in issued:
        engine.run_until(request.done, max_events=2_000_000)
    return payloads, disk


class TestLastWriterWins:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(ops=ops_strategy,
           semantics=st.sampled_from(list(FlagSemantics)))
    def test_platters_hold_the_last_issued_write(self, ops, semantics):
        """Whatever reordering a policy permits, the media must end up
        with the youngest issued data on every sector (the driver's write
        FIFO made observable)."""
        payloads, disk = last_writer_traffic(
            ops, lambda: FlagPolicy(semantics))
        expected: dict[int, bytes] = {}
        sector_size = disk.geometry.sector_size
        for lbn, data in payloads:  # issue order
            for i in range(len(data) // sector_size):
                expected[lbn + i] = data[i * sector_size:(i + 1) * sector_size]
        for sector, data in expected.items():
            assert disk.storage.read(sector) == data


class TestUniversalInvariants:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(ops=ops_strategy,
           semantics=st.sampled_from(list(FlagSemantics)))
    def test_overlapping_writes_complete_in_issue_order(self, ops, semantics):
        """The driver's write FIFO holds under every policy."""
        trace = random_traffic(ops, lambda: FlagPolicy(semantics))
        writes = [r for r in trace if r.is_write]
        for i, first in enumerate(writes):
            for second in writes[i + 1:]:
                if first.id < second.id and first.overlaps(second.lbn,
                                                           second.nsectors):
                    assert first.complete_time <= second.complete_time + 1e-9

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(ops=ops_strategy)
    def test_every_request_completes_with_sane_timestamps(self, ops):
        trace = random_traffic(ops, lambda: FlagPolicy(FlagSemantics.IGNORE))
        assert len(trace) == len(ops)
        for request in trace:
            assert 0 <= request.issue_time <= request.dispatch_time \
                <= request.complete_time
