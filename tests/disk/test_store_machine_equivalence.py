"""Whole-machine store equivalence: scheme x fault profile x store.

The sector store is below the driver, so swapping it must leave every
simulated observable untouched: the event timeline, the table-row
measurements, the persistent image digest, the crash image, and fsck's
verdict on that image.  This drives a small metadata-heavy workload under
every ordering scheme (including journaling), with and without transient
fault injection, once per registered store -- and requires the outputs to
be byte-identical.
"""

import pytest

from repro.costs import CostModel
from repro.disk import STORES
from repro.faults import FaultPlan
from repro.fs.layout import FSGeometry
from repro.integrity.crash import crash_image
from repro.integrity.fsck import fsck
from repro.machine import Machine, MachineConfig
from repro.ordering import JournalScheme

from tests.conftest import SCHEME_FACTORIES, SMALL_GEOMETRY, make_machine

SCHEMES = list(SCHEME_FACTORIES) + ["journal"]
FAULTS = {
    "none": None,
    "transient": FaultPlan(seed=11, transient_read_rate=0.02,
                           transient_write_rate=0.02),
}


def build(scheme_name, faults, store):
    if scheme_name == "journal":
        machine = Machine(MachineConfig(
            scheme=JournalScheme(),
            fs_geometry=FSGeometry(ipg=256, dfrags_per_cg=2048, ncg=2),
            cache_bytes=2 * 1024 * 1024, costs=CostModel(scale=0.0),
            faults=faults, store=store))
        machine.format()
        return machine
    return make_machine(scheme_name, faults=faults, store=store)


def observe(scheme_name, fault_name, store):
    machine = build(scheme_name, FAULTS[fault_name], store)
    fs = machine.fs

    def user():
        yield from fs.mkdir("/d")
        yield from fs.mkdir("/d/sub")
        for i in range(12):
            handle = yield from fs.create(f"/d/f{i}")
            yield from fs.write(handle, bytes([i + 1]) * (1024 + 512 * i))
            yield from fs.close(handle)
        yield from fs.link("/d/f3", "/d/sub/hard")
        for i in range(0, 12, 3):
            yield from fs.unlink(f"/d/f{i}")

    machine.engine.run_until(machine.engine.process(user(), name="user"),
                             max_events=5_000_000)
    machine.sync_and_settle()
    storage = machine.disk.storage
    assert storage.name == store
    image = crash_image(machine)
    report = fsck(image, machine.fs.geometry)
    return {
        "events": machine.engine.events_processed,
        "now": machine.engine.now,
        "requests": len(machine.driver.trace),
        "digest": storage.digest(),
        "written": storage.sectors_written,
        "distinct": len(storage),
        "crash_digest": image.digest(),
        "fsck": (sorted(report.errors), sorted(report.warnings)),
    }


class TestStoreInvisibility:
    @pytest.mark.parametrize("fault_name", list(FAULTS))
    @pytest.mark.parametrize("scheme_name", SCHEMES)
    def test_every_observable_identical_across_stores(self, scheme_name,
                                                      fault_name):
        results = [observe(scheme_name, fault_name, store)
                   for store in sorted(STORES)]
        reference = results[0]
        for other in results[1:]:
            assert other == reference
