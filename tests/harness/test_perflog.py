"""Rotation of the BENCH_perf.json trajectory into its history sidecar."""

import json

import pytest

from repro.harness.perflog import (
    DEFAULT_KEEP,
    append_record,
    history_path_for,
    load_records,
)


def record(n: int) -> dict:
    return {"session": n, "wall_seconds": float(n)}


class TestHistoryPath:
    def test_json_suffix_swapped(self, tmp_path):
        assert history_path_for(tmp_path / "BENCH_perf.json") \
            == tmp_path / "BENCH_perf.history.jsonl"

    def test_other_suffixes_appended(self, tmp_path):
        assert history_path_for(tmp_path / "perf.dat").name \
            == "perf.dat.history.jsonl"


class TestLoadRecords:
    def test_missing_file_is_empty(self, tmp_path):
        assert load_records(tmp_path / "nope.json") == []

    def test_legacy_single_dict_wrapped(self, tmp_path):
        path = tmp_path / "perf.json"
        path.write_text(json.dumps(record(1)))
        assert load_records(path) == [record(1)]

    def test_garbage_tolerated(self, tmp_path):
        path = tmp_path / "perf.json"
        path.write_text("{not json")
        assert load_records(path) == []


class TestAppendRecord:
    def test_appends_below_cap_without_history(self, tmp_path):
        path = tmp_path / "perf.json"
        for n in range(3):
            retained = append_record(path, record(n), keep=5)
        assert retained == [record(0), record(1), record(2)]
        assert load_records(path) == retained
        assert not history_path_for(path).exists()

    def test_rotates_overflow_into_history_jsonl(self, tmp_path):
        path = tmp_path / "perf.json"
        for n in range(7):
            append_record(path, record(n), keep=3)
        # main file: the newest 3 only
        assert [r["session"] for r in load_records(path)] == [4, 5, 6]
        # history: the 4 rotated-out sessions, oldest first, one per line
        lines = history_path_for(path).read_text().splitlines()
        assert [json.loads(line)["session"] for line in lines] == [0, 1, 2, 3]

    def test_main_file_never_exceeds_keep(self, tmp_path):
        path = tmp_path / "perf.json"
        for n in range(2 * DEFAULT_KEEP + 5):
            retained = append_record(path, record(n))
            assert len(retained) <= DEFAULT_KEEP
        assert len(load_records(path)) == DEFAULT_KEEP

    def test_explicit_history_path(self, tmp_path):
        path = tmp_path / "perf.json"
        history = tmp_path / "elsewhere.jsonl"
        append_record(path, record(0), keep=1, history_path=history)
        append_record(path, record(1), keep=1, history_path=history)
        assert json.loads(history.read_text().splitlines()[0]) == record(0)
        assert not history_path_for(path).exists()

    def test_legacy_dict_file_upgraded_in_place(self, tmp_path):
        path = tmp_path / "perf.json"
        path.write_text(json.dumps(record(0)))
        retained = append_record(path, record(1), keep=5)
        assert retained == [record(0), record(1)]

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            append_record(tmp_path / "perf.json", record(0), keep=0)
