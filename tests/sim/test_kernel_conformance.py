"""Kernel conformance: every registered kernel is the same simulation.

:data:`repro.sim.KERNELS` maps names to swappable event-loop kernels; the
pure-python kernel is the reference oracle.  A kernel is conformant when no
simulated workload can tell it apart from the reference: same event order
at equal timestamps (FIFO by schedule sequence), same clock-leave semantics
for every run-loop flavour, same error detection, same ``events_processed``
accounting, and -- the end-to-end check -- byte-identical driver traces for
a full file-system workload under every ordering scheme.

Each test either asserts an absolute property per kernel or compares a
kernel's observable trace against the reference kernel's on an identical
scripted schedule.
"""

import pytest

from repro.sim import KERNELS, Engine, SimulationError, kernel_name
from tests.conftest import SCHEME_FACTORIES, make_machine, run_user
from tests.obs.test_equivalence import churn, driver_trace_digest

ALL_KERNELS = sorted(KERNELS)
#: every kernel that must match the reference (today: just "fast")
CANDIDATE_KERNELS = [name for name in ALL_KERNELS if name != "python"]


@pytest.fixture(params=ALL_KERNELS)
def kern(request):
    return request.param


# ---------------------------------------------------------------------------
# a scripted schedule exercising every enqueue path with equal-time ties
# ---------------------------------------------------------------------------

def scripted_run(kernel, hook_log=None):
    """Run a fixed mixed workload; return (engine, observable trace).

    The script mixes processes, awaited timeouts, bare (never-awaited)
    timeouts, ``call_later`` timers and event wakes, with several events
    landing at the same instant -- the FIFO tie-break is where a batched
    kernel is most likely to diverge.
    """
    eng = Engine(kernel=kernel)
    if hook_log is not None:
        eng.trace_hook = lambda when, event: hook_log.append(
            (when, type(event).__name__))
    trace = []
    gate = eng.event()

    def ticker(tag, period, count):
        for index in range(count):
            yield eng.timeout(period)
            trace.append((tag, index, eng.now))

    def opener():
        yield eng.timeout(3.0)
        trace.append(("open", eng.now))
        gate.succeed("opened")

    def waiter(tag):
        value = yield gate
        trace.append((tag, value, eng.now))
        yield eng.timeout(0.5)
        trace.append((tag, "after", eng.now))

    eng.process(ticker("a", 1.0, 6), name="a")
    eng.process(ticker("b", 1.5, 4), name="b")
    eng.process(opener(), name="opener")
    for index in range(3):
        eng.process(waiter(f"w{index}"), name=f"w{index}")
    for delay in (2.0, 2.0, 2.0, 4.25):
        eng.call_later(delay, lambda d=delay: trace.append(
            ("timer", d, eng.now)))
    eng.timeout(2.5)   # bare timeout: scheduled, never awaited
    eng.timeout(10.0)  # bare timeout landing after everything else
    eng.run()
    return eng, trace


class TestScriptedEquivalence:
    def test_trace_identical_to_reference(self):
        ref_eng, ref_trace = scripted_run("python")
        assert ref_trace  # the script actually did something
        for name in CANDIDATE_KERNELS:
            eng, trace = scripted_run(name)
            assert trace == ref_trace, f"kernel {name!r} diverged"
            assert eng.now == ref_eng.now
            assert eng.events_processed == ref_eng.events_processed

    def test_trace_hook_sees_identical_dispatch_stream(self):
        """With a hook installed every kernel must surface the exact same
        (timestamp, event type) dispatch stream -- fast paths that elide
        event objects must switch themselves off."""
        ref_hook = []
        scripted_run("python", hook_log=ref_hook)
        assert ref_hook
        for name in CANDIDATE_KERNELS:
            hook = []
            scripted_run(name, hook_log=hook)
            assert hook == ref_hook, f"kernel {name!r} hook stream diverged"

    def test_determinism_across_repeated_runs(self, kern):
        eng_a, trace_a = scripted_run(kern)
        eng_b, trace_b = scripted_run(kern)
        assert trace_a == trace_b
        assert eng_a.now == eng_b.now
        assert eng_a.events_processed == eng_b.events_processed

    def test_single_stepping_matches_run(self, kern):
        """advance()/step() one event at a time reaches the same end state
        as one run() call, with peek() honest at every step."""
        ref_eng, ref_trace = scripted_run("python")
        eng = Engine(kernel=kern)
        trace = []
        for delay in (3.0, 1.0, 2.0, 2.0, 1.0):
            eng.call_later(delay, lambda d=delay: trace.append((d, eng.now)))
        steps = 0
        while eng.pending_events:
            upcoming = eng.next_event_time
            eng.step()
            assert eng.now == upcoming
            steps += 1
        assert steps == 5
        assert trace == [(1.0, 1.0), (1.0, 1.0), (2.0, 2.0), (2.0, 2.0),
                         (3.0, 3.0)]
        assert eng.events_processed == 5


class TestBasicSemantics:
    def test_equal_time_events_fire_fifo(self, kern):
        eng = Engine(kernel=kern)
        order = []
        for tag in range(8):
            eng.call_later(1.0, order.append, tag)
        eng.run()
        assert order == list(range(8))

    def test_time_went_backwards_detected_by_run(self, kern):
        eng = Engine(kernel=kern)
        eng.timeout(1.0)
        eng.now = 5.0  # corrupt the clock past the scheduled event
        with pytest.raises(SimulationError, match="backwards"):
            eng.run()

    def test_time_went_backwards_detected_by_step(self, kern):
        eng = Engine(kernel=kern)
        eng.timeout(1.0)
        eng.now = 5.0
        with pytest.raises(SimulationError, match="backwards"):
            eng.step()

    def test_step_on_empty_heap_raises(self, kern):
        with pytest.raises(SimulationError, match="empty"):
            Engine(kernel=kern).step()

    def test_deadlock_detected_by_run_until(self, kern):
        eng = Engine(kernel=kern)
        ev = eng.event()  # never triggered

        def waiter():
            yield ev

        with pytest.raises(SimulationError, match="deadlock|drained"):
            eng.run_until(eng.process(waiter()))


class TestClockLeaveSemantics:
    def test_run_drains_and_keeps_last_event_time(self, kern):
        eng = Engine(kernel=kern)
        eng.timeout(2.0)
        eng.run()
        assert eng.now == 2.0
        eng.run()  # empty heap: no-op
        assert eng.now == 2.0

    def test_run_until_horizon_reached_past_drain(self, kern):
        eng = Engine(kernel=kern)
        eng.timeout(1.0)
        eng.run(until=7.0)
        assert eng.now == 7.0

    def test_run_never_rewinds_clock(self, kern):
        eng = Engine(kernel=kern)
        eng.timeout(5.0)
        eng.run()
        eng.run(until=2.0)
        assert eng.now == 5.0
        eng.run_to(2.0)
        assert eng.now == 5.0

    def test_run_stops_before_events_past_horizon(self, kern):
        eng = Engine(kernel=kern)
        seen = []
        for delay in (1.0, 4.0, 4.0, 9.0):
            eng.call_later(delay, seen.append, delay)
        eng.run(until=4.0)
        assert seen == [1.0, 4.0, 4.0]
        assert eng.now == 4.0
        assert eng.pending_events == 1

    def test_run_to_matches_run_until_state(self, kern):
        def build():
            eng = Engine(kernel=kern)
            seen = []
            for delay in (1.0, 3.0, 3.0, 8.0):
                eng.call_later(delay, seen.append, delay)
            return eng, seen

        a, seen_a = build()
        a.run(until=3.0)
        b, seen_b = build()
        b.run_to(3.0)
        assert a.now == b.now == 3.0
        assert seen_a == seen_b == [1.0, 3.0, 3.0]
        assert a.events_processed == b.events_processed

    def test_run_until_leaves_clock_at_completion(self, kern):
        eng = Engine(kernel=kern)

        def worker():
            yield eng.timeout(1.5)
            return "done"

        proc = eng.process(worker())
        eng.timeout(9.0)  # later event must not be dispatched
        assert eng.run_until(proc) == "done"
        assert eng.now == 1.5
        assert eng.pending_events == 1


class TestSelection:
    def test_default_is_the_reference_kernel(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        assert kernel_name() == "python"
        assert Engine().kernel_name == "python"

    def test_environment_selects_kernel(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "fast")
        assert kernel_name() == "fast"
        assert Engine().kernel_name == "fast"

    def test_explicit_name_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "fast")
        assert kernel_name("python") == "python"
        assert Engine(kernel="python").kernel_name == "python"

    def test_unknown_kernel_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match="unknown kernel"):
            Engine(kernel="turbo")
        monkeypatch.setenv("REPRO_KERNEL", "turbo")
        with pytest.raises(ValueError, match="unknown kernel"):
            Engine()

    def test_machine_config_selects_kernel(self):
        machine = make_machine("noorder", kernel="fast")
        assert machine.engine.kernel_name == "fast"


# ---------------------------------------------------------------------------
# end-to-end: a full file-system workload per scheme, python vs candidate
# ---------------------------------------------------------------------------

def churn_run(scheme_name, kernel):
    machine = make_machine(scheme_name, free_cpu=False, kernel=kernel)
    run_user(machine, churn(machine)(), name="user0")
    machine.sync_and_settle()
    return machine


@pytest.mark.parametrize("kernel", CANDIDATE_KERNELS)
@pytest.mark.parametrize("scheme_name", sorted(SCHEME_FACTORIES))
def test_full_workload_driver_trace_identical(scheme_name, kernel):
    reference = churn_run(scheme_name, "python")
    candidate = churn_run(scheme_name, kernel)
    assert candidate.engine.events_processed == \
        reference.engine.events_processed
    assert candidate.engine.now == reference.engine.now
    assert driver_trace_digest(candidate) == driver_trace_digest(reference)
