"""An FFS-like file system with a real on-disk byte layout.

This is the ``ufs`` of the paper's testbed, rebuilt: superblock, cylinder
groups with inode and fragment bitmaps, 128-byte on-disk inodes with
12 direct + single + double indirect pointers, FFS-style variable-length
directory entries packed into 512-byte chunks, and block/fragment allocation
(small files end in fragment runs, extended by copy when they outgrow them).

Every metadata structure lives in real bytes on the simulated disk, which is
what lets ``repro.integrity.fsck`` audit crash states, and every structural
change is routed through an ordering scheme (``repro.ordering``) exactly at
the paper's four update points: block allocation, block deallocation, link
addition, link removal.
"""

from repro.fs.layout import FSGeometry, Dinode, FileType
from repro.fs.superblock import Superblock
from repro.fs.mkfs import mkfs
from repro.fs.vfs import FileSystem, FsError, OpenFile

__all__ = ["Dinode", "FSGeometry", "FileSystem", "FileType", "FsError",
           "OpenFile", "Superblock", "mkfs"]
