"""The write-ahead journaling scheme, end to end.

Covers the scheme's whole life cycle on a small testbed: commit-then-
checkpoint during normal operation, recovery by replay after a crash at
an arbitrary instant, the drain that retires the log at unmount, the
degraded-mode fallback to synchronous ordering when the log itself
fails, and the stale-data audit (journaled metadata must never replay a
previous owner's bytes into a file).
"""

import pytest

from repro.costs import CostModel
from repro.fs import journal
from repro.fs.layout import FSGeometry
from repro.integrity.explorer import explore
from repro.integrity.fsck import fsck, repair
from repro.machine import Machine, MachineConfig
from repro.ordering import JournalScheme

SMALL = FSGeometry(ipg=256, dfrags_per_cg=2048, ncg=2)


def small_machine() -> Machine:
    return Machine(MachineConfig(scheme=JournalScheme(),
                                 fs_geometry=SMALL,
                                 cache_bytes=2 * 1024 * 1024,
                                 costs=CostModel(scale=0.0)))


def scan(machine):
    storage = machine.disk.storage
    geo = machine.config.fs_geometry
    spf = geo.frag_size // machine.disk.geometry.sector_size
    return journal.scan_journal(
        lambda daddr, n: storage.read(daddr * spf, n * spf), geo)


def test_machine_reserves_journal_area():
    machine = small_machine()
    geo = machine.config.fs_geometry
    assert geo.journal_frags >= 24
    machine.format()
    assert machine.scheme.fs is machine.fs
    # mkfs + mount left a parseable, empty log
    result = scan(machine)
    assert result.overlay == {} and result.transactions == []


def test_journal_scheme_requires_journal_area():
    machine = Machine(MachineConfig(scheme=JournalScheme(),
                                    fs_geometry=SMALL,
                                    costs=CostModel(scale=0.0)))
    # sabotage: strip the reserved area after construction
    machine.config.fs_geometry = SMALL
    with pytest.raises(RuntimeError, match="journal"):
        machine.format()


def test_workload_settles_with_no_pending_work():
    machine = small_machine()
    machine.format()

    def work(fs):
        yield from fs.mkdir("/d")
        for i in range(10):
            yield from fs.write_file(f"/d/f{i}", b"x" * 6000)
        for i in range(0, 10, 2):
            yield from fs.unlink(f"/d/f{i}")
        yield from fs.rename("/d/f1", "/d/renamed")

    machine.run(machine.spawn(work(machine.fs), name="work"))
    assert machine.scheme._pending  # commits landed in the log
    machine.sync_and_settle()
    assert machine.scheme.pending_work() == 0
    assert not machine.scheme._degraded
    report = fsck(machine.disk.storage.snapshot(),
                  machine.config.fs_geometry)
    assert not report.errors, report.errors


def test_crash_recovery_replays_committed_state():
    """fsync makes a file durable through the *log* alone: crash before
    any checkpoint, repair, remount -- the bytes are there."""
    machine = small_machine()
    machine.format()

    def work(fs):
        yield from fs.mkdir("/d")
        yield from fs.write_file("/d/keep", b"K" * 5000)
        handle = yield from fs.open("/d/keep")
        yield from fs.fsync(handle)
        yield from fs.close(handle)
        # uncheckpointed, possibly unflushed trailing work rides along
        yield from fs.write_file("/d/tail", b"T" * 3000)

    machine.run(machine.spawn(work(machine.fs), name="work"))
    crash = machine.disk.storage.snapshot()
    geo = machine.config.fs_geometry

    # the *recovered* view is already sound: fsck reads through the log
    report = fsck(crash, geo)
    assert not report.errors, report.errors

    # physical recovery retires the log and leaves a clean image
    repair(crash, geo)
    after = fsck(crash, geo)
    assert not after.errors and not after.warnings, (after.errors,
                                                     after.warnings)

    survivor = Machine(MachineConfig(scheme=JournalScheme(),
                                     fs_geometry=SMALL,
                                     cache_bytes=2 * 1024 * 1024,
                                     costs=CostModel(scale=0.0)))
    survivor.adopt_image(crash)

    def read(fs):
        return (yield from fs.read_file("/d/keep"))

    [data] = survivor.run(survivor.spawn(read(survivor.fs), name="read"))
    assert data == b"K" * 5000


def test_replay_without_repair_on_remount():
    """Mounting a crashed image replays the log in place (the scheme's
    own recovery path, no fsck involved)."""
    machine = small_machine()
    machine.format()

    def work(fs):
        yield from fs.write_file("/f", b"J" * 4096)
        handle = yield from fs.open("/f")
        yield from fs.fsync(handle)
        yield from fs.close(handle)

    machine.run(machine.spawn(work(machine.fs), name="work"))
    crash = machine.disk.storage.snapshot()

    survivor = Machine(MachineConfig(scheme=JournalScheme(),
                                     fs_geometry=SMALL,
                                     cache_bytes=2 * 1024 * 1024,
                                     costs=CostModel(scale=0.0)))
    survivor.adopt_image(crash)
    # mount-time replay retired the log
    result = scan(survivor)
    assert result.overlay == {} and result.transactions == []

    def read(fs):
        return (yield from fs.read_file("/f"))

    [data] = survivor.run(survivor.spawn(read(survivor.fs), name="read"))
    assert data == b"J" * 4096


def test_unmount_drains_and_retires_log():
    machine = small_machine()
    machine.format()

    def work(fs):
        yield from fs.mkdir("/d")
        yield from fs.write_file("/d/f", b"z" * 8000)

    machine.run(machine.spawn(work(machine.fs), name="work"))
    machine.engine.run_until(
        machine.engine.process(machine.fs.unmount(), name="unmount"))
    result = scan(machine)
    assert result.overlay == {} and result.transactions == []
    assert machine.scheme.pending_work() == 0
    report = fsck(machine.disk.storage.snapshot(),
                  machine.config.fs_geometry)
    assert not report.errors and not report.warnings


def test_degraded_fallback_keeps_ordering():
    """When the log itself cannot be written the scheme falls back to
    synchronous ordering writes -- slower, never less safe."""
    machine = small_machine()
    machine.format()

    def failing_raw_write(daddr, data):
        return False
        yield  # pragma: no cover -- makes this a (empty) generator

    machine.scheme._raw_write = failing_raw_write

    def work(fs):
        yield from fs.mkdir("/d")
        for i in range(6):
            yield from fs.write_file(f"/d/f{i}", b"y" * 4000)
        yield from fs.unlink("/d/f0")

    machine.run(machine.spawn(work(machine.fs), name="work"))
    assert machine.scheme._degraded
    assert machine.scheme.pending_work() == 0
    machine.sync_and_settle()
    report = fsck(machine.disk.storage.snapshot(),
                  machine.config.fs_geometry)
    assert not report.errors, report.errors


def test_counters_register_commits_and_checkpoints():
    machine = Machine(MachineConfig(scheme=JournalScheme(),
                                    fs_geometry=SMALL,
                                    cache_bytes=2 * 1024 * 1024,
                                    costs=CostModel(scale=0.0),
                                    observe=True))
    machine.format()

    def work(fs):
        yield from fs.mkdir("/d")
        for i in range(8):
            yield from fs.write_file(f"/d/f{i}", b"c" * 4000)

    machine.run(machine.spawn(work(machine.fs), name="work"))
    machine.engine.run_until(
        machine.engine.process(machine.fs.unmount(), name="unmount"))
    counters = {name: counter.value for name, counter
                in machine.obs.registry.counters.items()}
    assert counters.get("journal.commits", 0) > 0
    assert counters.get("journal.checkpoints", 0) > 0
    assert counters.get("journal.degraded", 0) == 0


# ----------------------------------------------------------------------
# the stale-data audit (paper section 1's security hole)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workload", ["reuse", "remove"])
def test_journal_never_leaks_planted_secrets(workload):
    """Every free fragment is filled with a marker before the victim
    workload runs; no crash point -- including mid-checkpoint partial
    writes -- may leave a file exposing it through replayed blocks."""
    report = explore("journal", workload, seed=0, jobs=1, max_points=60,
                     secrets=True)
    assert report.exit_status == 0, \
        [(f.index, f.label) for f in report.unexpected_findings][:5]
    assert not report.unexpected_findings
