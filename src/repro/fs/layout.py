"""On-disk layout: sizes, addresses, and the Dinode codec.

Disk addresses (``daddr``) are in *fragments*, FFS-style.  The layout is::

    frag 0 .. FRAGS_PER_BLOCK-1        boot area (unused)
    frag FRAGS_PER_BLOCK .. 2*FPB-1    superblock
    cylinder group 0
    cylinder group 1
    ...
    journal area (``journal_frags`` fragments; 0 unless mkfs reserved one)

and each cylinder group is::

    1 block   cg header (magic, counts, inode bitmap, fragment bitmap)
    N blocks  inode table (ipg inodes, 64 per block)
    M frags   data area

Bitmap convention: bit set = allocated.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field, replace


class FileType(enum.IntEnum):
    """File type, stored in the top bits of ``Dinode.mode``."""

    NONE = 0
    REGULAR = 0x8000
    DIRECTORY = 0x4000

    @staticmethod
    def of(mode: int) -> "FileType":
        return FileType(mode & 0xF000)


#: mode permission default
DEFAULT_PERM = 0o644
#: reserved inode numbers
ROOT_INO = 2
FIRST_INO = 2  # inodes 0 and 1 are never allocated (0 = "unused" marker)

#: inode codec: mode, nlink, uid, gid, size, atime, mtime, ctime,
#: 12 direct, single indirect, double indirect, frags-held, generation, flags
_DINODE_FMT = "<HHHHQIII12IIIIII"
_DINODE_USED = struct.calcsize(_DINODE_FMT)
INODE_SIZE = 128
assert _DINODE_USED <= INODE_SIZE


@dataclass(frozen=True)
class FSGeometry:
    """File system shape parameters (fixed at mkfs time)."""

    block_size: int = 8192
    frag_size: int = 1024
    #: inodes per cylinder group
    ipg: int = 2048
    #: data fragments per cylinder group
    dfrags_per_cg: int = 16384
    #: number of cylinder groups (12 x ~17 MB ~= 200 MB: comfortable
    #: headroom for the paper-scale 4-user copy, ~120 MB of data)
    ncg: int = 12
    #: fragments reserved after the last cylinder group for a write-ahead
    #: metadata journal (header fragment + circular log); 0 = no journal
    journal_frags: int = 0

    def __post_init__(self) -> None:
        if self.block_size % self.frag_size != 0:
            raise ValueError("block size must be a multiple of fragment size")
        if self.ipg % self.inodes_per_block != 0:
            raise ValueError("ipg must fill whole inode blocks")
        if self.dfrags_per_cg % self.frags_per_block != 0:
            raise ValueError("data area must be whole blocks")
        if self.ncg < 1:
            raise ValueError("need at least one cylinder group")
        if self.journal_frags and self.journal_frags < 24:
            # header + room for the largest single transaction (descriptor,
            # a handful of block images, commit) with slack to circulate
            raise ValueError("journal area must be 0 or at least 24 frags")

    # -- derived sizes ---------------------------------------------------
    @property
    def frags_per_block(self) -> int:
        return self.block_size // self.frag_size

    @property
    def inodes_per_block(self) -> int:
        return self.block_size // INODE_SIZE

    @property
    def inode_blocks_per_cg(self) -> int:
        return self.ipg // self.inodes_per_block

    @property
    def cg_frags(self) -> int:
        """Total fragments per cylinder group (header + inodes + data)."""
        return (self.frags_per_block
                + self.inode_blocks_per_cg * self.frags_per_block
                + self.dfrags_per_cg)

    @property
    def cg_start(self) -> int:
        """Fragment address of cylinder group 0 (after boot + superblock)."""
        return 2 * self.frags_per_block

    @property
    def superblock_daddr(self) -> int:
        return self.frags_per_block

    @property
    def journal_start(self) -> int:
        """Fragment address of the journal header (just past the last cg)."""
        return self.cg_start + self.ncg * self.cg_frags

    @property
    def total_frags(self) -> int:
        return self.journal_start + self.journal_frags

    @property
    def total_inodes(self) -> int:
        return self.ncg * self.ipg

    #: direct pointers per inode and indirect fan-out
    NDADDR = 12

    @property
    def nindir(self) -> int:
        """Pointers per indirect block."""
        return self.block_size // 4

    @property
    def max_file_blocks(self) -> int:
        return self.NDADDR + self.nindir + self.nindir * self.nindir

    # -- cylinder group addressing ------------------------------------------
    def cg_base(self, cg: int) -> int:
        """Fragment address of cylinder group *cg*'s header."""
        self._check_cg(cg)
        return self.cg_start + cg * self.cg_frags

    def cg_inode_table(self, cg: int) -> int:
        """Fragment address of *cg*'s first inode block."""
        return self.cg_base(cg) + self.frags_per_block

    def cg_data_start(self, cg: int) -> int:
        """Fragment address of *cg*'s data area."""
        return (self.cg_inode_table(cg)
                + self.inode_blocks_per_cg * self.frags_per_block)

    def cg_of_inode(self, ino: int) -> int:
        self._check_ino(ino)
        return ino // self.ipg

    def inode_block_daddr(self, ino: int) -> int:
        """Fragment address of the inode block containing *ino*."""
        cg = self.cg_of_inode(ino)
        index = ino % self.ipg
        block = index // self.inodes_per_block
        return self.cg_inode_table(cg) + block * self.frags_per_block

    def inode_offset_in_block(self, ino: int) -> int:
        """Byte offset of *ino* within its inode block."""
        return (ino % self.inodes_per_block) * INODE_SIZE

    def cg_of_daddr(self, daddr: int) -> int:
        """Cylinder group owning data fragment *daddr*.

        Journal-area fragments are deliberately outside every cylinder
        group: a file pointer aimed into the journal is as invalid as one
        aimed at the boot block.
        """
        if daddr < self.cg_start or daddr >= self.journal_start:
            raise ValueError(f"daddr {daddr} outside cylinder groups")
        return (daddr - self.cg_start) // self.cg_frags

    def data_index(self, daddr: int) -> int:
        """Index of *daddr* within its cylinder group's data-area bitmap."""
        cg = self.cg_of_daddr(daddr)
        index = daddr - self.cg_data_start(cg)
        if not (0 <= index < self.dfrags_per_cg):
            raise ValueError(f"daddr {daddr} is not in a data area")
        return index

    def _check_cg(self, cg: int) -> None:
        if not (0 <= cg < self.ncg):
            raise ValueError(f"cylinder group {cg} out of range")

    def _check_ino(self, ino: int) -> None:
        if not (0 <= ino < self.total_inodes):
            raise ValueError(f"inode {ino} out of range")


def with_journal(geometry: FSGeometry) -> FSGeometry:
    """*geometry* with a journal area sized to the file system.

    Roughly 1.5% of the data area, clamped so small test geometries still
    wrap their log (exercising space reclaim) and paper-scale ones do not
    spend megabytes on it.  Idempotent: a geometry that already reserves a
    journal is returned unchanged.
    """
    if geometry.journal_frags:
        return geometry
    log = min(2048, max(128, (geometry.ncg * geometry.dfrags_per_cg) // 64))
    return replace(geometry, journal_frags=log + 1)


@dataclass
class Dinode:
    """The 128-byte on-disk inode."""

    mode: int = 0
    nlink: int = 0
    uid: int = 0
    gid: int = 0
    size: int = 0
    atime: int = 0
    mtime: int = 0
    ctime: int = 0
    direct: list[int] = field(default_factory=lambda: [0] * FSGeometry.NDADDR)
    sindirect: int = 0
    dindirect: int = 0
    frags_held: int = 0
    generation: int = 0
    flags: int = 0

    @property
    def ftype(self) -> FileType:
        return FileType.of(self.mode)

    @property
    def allocated(self) -> bool:
        return self.mode != 0

    def pack(self) -> bytes:
        raw = struct.pack(_DINODE_FMT, self.mode, self.nlink, self.uid,
                          self.gid, self.size, self.atime, self.mtime,
                          self.ctime, *self.direct, self.sindirect,
                          self.dindirect, self.frags_held, self.generation,
                          self.flags)
        return raw + bytes(INODE_SIZE - len(raw))

    @classmethod
    def unpack(cls, raw: bytes) -> "Dinode":
        if len(raw) < _DINODE_USED:
            raise ValueError(f"short inode record: {len(raw)} bytes")
        fields = struct.unpack_from(_DINODE_FMT, raw)
        return cls(mode=fields[0], nlink=fields[1], uid=fields[2],
                   gid=fields[3], size=fields[4], atime=fields[5],
                   mtime=fields[6], ctime=fields[7],
                   direct=list(fields[8:20]), sindirect=fields[20],
                   dindirect=fields[21], frags_held=fields[22],
                   generation=fields[23], flags=fields[24])

    def copy(self) -> "Dinode":
        clone = Dinode.unpack(self.pack())
        return clone
