"""Unit tests for the sector store and on-board prefetch cache."""

import pytest
from hypothesis import given, strategies as st

from repro.disk import DiskGeometry, SectorStore
from repro.disk.cache import PrefetchCache


@pytest.fixture
def store():
    return SectorStore(DiskGeometry())


class TestSectorStore:
    def test_holes_read_as_zeros(self, store):
        assert store.read(100) == bytes(512)

    def test_write_read_roundtrip(self, store):
        payload = bytes(range(256)) * 2
        store.write(7, payload)
        assert store.read(7) == payload

    def test_multisector_roundtrip(self, store):
        payload = b"\xab" * (512 * 3)
        store.write(10, payload)
        assert store.read(10, 3) == payload
        assert store.read(11) == b"\xab" * 512

    def test_unaligned_write_rejected(self, store):
        with pytest.raises(ValueError):
            store.write(0, b"short")

    def test_out_of_range_rejected(self, store):
        with pytest.raises(ValueError):
            store.read(store.geometry.total_sectors, 1)
        with pytest.raises(ValueError):
            store.read(0, 0)

    def test_partial_write_applies_prefix_only(self, store):
        data = b"\x01" * 512 + b"\x02" * 512 + b"\x03" * 512
        store.write_partial(50, data, 2)
        assert store.read(50) == b"\x01" * 512
        assert store.read(51) == b"\x02" * 512
        assert store.read(52) == bytes(512)

    def test_snapshot_is_independent(self, store):
        store.write(0, b"\x11" * 512)
        snap = store.snapshot()
        store.write(0, b"\x22" * 512)
        assert snap.read(0) == b"\x11" * 512
        assert store.read(0) == b"\x22" * 512

    @given(st.lists(st.tuples(st.integers(0, 1000),
                              st.binary(min_size=512, max_size=512)),
                    max_size=20))
    def test_last_write_wins(self, writes):
        store = SectorStore(DiskGeometry())
        expected = {}
        for lbn, data in writes:
            store.write(lbn, data)
            expected[lbn] = data
        for lbn, data in expected.items():
            assert store.read(lbn) == data


class TestPrefetchCache:
    def test_miss_then_hit_after_insert(self):
        cache = PrefetchCache(segments=2, prefetch_sectors=8)
        assert not cache.lookup(100, 4)
        cache.insert_after_read(100, 4)
        assert cache.lookup(100, 4)

    def test_prefetch_extends_coverage(self):
        cache = PrefetchCache(segments=2, prefetch_sectors=8)
        cache.insert_after_read(100, 4)
        assert cache.lookup(104, 8)       # the prefetched run
        assert not cache.lookup(104, 9)   # beyond it

    def test_sequential_reads_extend_segment(self):
        cache = PrefetchCache(segments=1, prefetch_sectors=4)
        cache.insert_after_read(0, 4)
        cache.insert_after_read(4, 4)
        assert cache.segments == [(0, 12)]

    def test_lru_eviction(self):
        cache = PrefetchCache(segments=2, prefetch_sectors=0)
        cache.insert_after_read(0, 4)
        cache.insert_after_read(100, 4)
        cache.insert_after_read(200, 4)   # evicts the (0,4) segment
        assert not cache.lookup(0, 4)
        assert cache.lookup(100, 4)
        assert cache.lookup(200, 4)

    def test_write_invalidates_overlap(self):
        cache = PrefetchCache(segments=2, prefetch_sectors=0)
        cache.insert_after_read(10, 10)
        cache.invalidate(15, 1)
        assert not cache.lookup(10, 4)

    def test_write_elsewhere_keeps_segment(self):
        cache = PrefetchCache(segments=2, prefetch_sectors=0)
        cache.insert_after_read(10, 10)
        cache.invalidate(50, 4)
        assert cache.lookup(10, 10)

    def test_zero_segments_never_hits(self):
        cache = PrefetchCache(segments=0)
        cache.insert_after_read(0, 4)
        assert not cache.lookup(0, 1)

    def test_prefetch_clipped_at_disk_end(self):
        cache = PrefetchCache(segments=1, prefetch_sectors=100, total_sectors=110)
        cache.insert_after_read(100, 5)
        assert cache.segments == [(100, 110)]
