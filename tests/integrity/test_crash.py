"""Crash-consistency tests: the paper's integrity claims, verified.

Safe schemes (Conventional, Scheduler Flag, Scheduler Chains, Soft Updates)
must never leave an fsck *error* behind, whatever instant the power fails.
No Order must be demonstrably unsafe.  Allocation initialization must close
the stale-data security hole.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.integrity import (
    CrashScheduler,
    crash_image,
    find_secret_leaks,
    fsck,
    plant_secrets,
)
from tests.conftest import SMALL_GEOMETRY, make_machine, run_user


def churn_workload(machine, seed, operations=40):
    """A random mix of creates, writes, removes, mkdirs and renames."""
    rng = random.Random(seed)

    def body():
        live_files = []
        live_dirs = ["/"]
        counter = 0
        for _ in range(operations):
            action = rng.random()
            if action < 0.45 or not live_files:
                parent = rng.choice(live_dirs)
                path = f"{parent.rstrip('/')}/f{counter}"
                counter += 1
                size = rng.choice([300, 1024, 5000, 9000, 20000])
                yield from machine.fs.write_file(path, b"d" * size)
                live_files.append(path)
            elif action < 0.70:
                path = live_files.pop(rng.randrange(len(live_files)))
                yield from machine.fs.unlink(path)
            elif action < 0.85 and len(live_dirs) < 5:
                path = f"/dir{counter}"
                counter += 1
                yield from machine.fs.mkdir(path)
                live_dirs.append(path)
            else:
                old = live_files.pop(rng.randrange(len(live_files)))
                new = f"/renamed{counter}"
                counter += 1
                yield from machine.fs.rename(old, new)
                live_files.append(new)

    return body()


class TestSafeSchemesSurviveCrashes:
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 10_000), crash_at=st.floats(0.05, 3.0))
    @pytest.mark.parametrize("scheme", ["conventional", "flag", "chains",
                                        "softupdates"])
    def test_random_crash_leaves_no_integrity_errors(self, scheme, seed,
                                                     crash_at):
        machine = make_machine(scheme)
        scheduler = CrashScheduler(machine)
        image = scheduler.run_and_crash(churn_workload(machine, seed),
                                        crash_at=crash_at)
        report = fsck(image, SMALL_GEOMETRY)
        assert report.clean, (scheme, seed, crash_at, report.errors[:5])

    @pytest.mark.parametrize("scheme", ["conventional", "flag", "chains",
                                        "softupdates"])
    def test_crash_storm_fixed_seeds(self, scheme):
        """A denser deterministic sweep of crash instants."""
        for seed in (1, 2, 3):
            for crash_at in (0.01, 0.1, 0.35, 0.8, 1.5, 2.5, 5.0):
                machine = make_machine(scheme)
                scheduler = CrashScheduler(machine)
                image = scheduler.run_and_crash(
                    churn_workload(machine, seed, operations=30),
                    crash_at=crash_at)
                report = fsck(image, SMALL_GEOMETRY)
                assert report.clean, (scheme, seed, crash_at,
                                      report.errors[:5])


class TestNoOrderIsUnsafe:
    def test_entry_to_uninitialized_inode_after_crash(self):
        """Directory block flushed before the inode block: rule 3 violated."""
        machine = make_machine("noorder")

        def create_one():
            yield from machine.fs.write_file("/danger", b"x" * 1024)

        run_user(machine, create_one())
        # flush ONLY the root directory block, then crash
        root_daddr = machine.fs.geometry.cg_data_start(0)
        dbuf = machine.cache.peek(root_daddr)
        assert dbuf is not None and dbuf.dirty
        machine.cache.start_flush(dbuf)
        run_user(machine, machine.driver.drain(), name="drain")
        report = fsck(crash_image(machine), SMALL_GEOMETRY)
        assert any("unallocated inode" in e for e in report.errors), \
            report.errors

    def test_random_crashes_eventually_violate(self):
        """Across seeds and crash instants, No Order breaks integrity."""
        violations = 0
        for seed in range(3):
            for crash_at in (2.2, 4.0, 5.5, 7.0):
                machine = make_machine("noorder")
                scheduler = CrashScheduler(machine)
                image = scheduler.run_and_crash(
                    churn_workload(machine, seed, operations=40),
                    crash_at=crash_at)
                report = fsck(image, SMALL_GEOMETRY)
                violations += 0 if report.clean else 1
        assert violations > 0


class TestSafeSchemesWithPartialWrites:
    @pytest.mark.parametrize("scheme", ["conventional", "softupdates"])
    def test_crash_mid_transfer_is_still_consistent(self, scheme):
        """Crash instants chosen to land inside write transfers."""
        machine = make_machine(scheme)
        scheduler = CrashScheduler(machine)
        # crash time drawn finely to catch in-flight transfers
        for crash_at in [0.2 + 0.013 * k for k in range(12)]:
            m = make_machine(scheme)
            s = CrashScheduler(m)
            image = s.run_and_crash(churn_workload(m, 7, operations=25),
                                    crash_at=crash_at)
            report = fsck(image, SMALL_GEOMETRY)
            assert report.clean, (scheme, crash_at, report.errors[:5])


class TestAllocationInitialization:
    def test_soft_updates_never_leaks_stale_data(self):
        machine = make_machine("softupdates")  # alloc_init defaults on
        planted = plant_secrets(machine.disk.storage, SMALL_GEOMETRY)
        assert planted > 0
        machine.drop_caches()
        for crash_at in (0.1, 0.5, 1.2, 2.0):
            m = make_machine("softupdates")
            plant_secrets(m.disk.storage, SMALL_GEOMETRY)
            m.drop_caches()
            scheduler = CrashScheduler(m)
            image = scheduler.run_and_crash(
                churn_workload(m, 11, operations=30), crash_at=crash_at)
            assert find_secret_leaks(image, SMALL_GEOMETRY) == []

    def test_conventional_with_init_never_leaks(self):
        for crash_at in (0.2, 0.9, 1.8):
            m = make_machine("conventional", alloc_init=True)
            plant_secrets(m.disk.storage, SMALL_GEOMETRY)
            m.drop_caches()
            scheduler = CrashScheduler(m)
            image = scheduler.run_and_crash(
                churn_workload(m, 13, operations=25), crash_at=crash_at)
            assert find_secret_leaks(image, SMALL_GEOMETRY) == []

    def test_no_init_can_leak_stale_data(self):
        """Without allocation initialization, a crafted crash exposes the
        previous owner's bytes (the security hole of section 1)."""
        machine = make_machine("conventional", alloc_init=False)
        plant_secrets(machine.disk.storage, SMALL_GEOMETRY)
        machine.drop_caches()

        def create_one():
            yield from machine.fs.write_file("/leaky", b"y" * 8192)

        run_user(machine, create_one())
        # push only the metadata out: flush the inode block, not the data
        geo = machine.fs.geometry
        report0 = fsck(crash_image(machine), SMALL_GEOMETRY)
        ino = max(report0.inodes)  # the new file's inode (in memory already
        # written through the conventional sync create path)
        ibuf = machine.cache.peek(geo.inode_block_daddr(ino))
        if ibuf is not None and ibuf.dirty:
            machine.cache.start_flush(ibuf)
            run_user(machine, machine.driver.drain(), name="drain")
        leaks = find_secret_leaks(crash_image(machine), SMALL_GEOMETRY)
        assert leaks, "expected the stale-data hole without alloc init"
