"""Figure 4: flag implementation enhancements, 4-user remove.

Same four implementations as figure 3 but on the metadata-only removal
workload, where "the performance differences are more substantial" and the
queueing delays are far larger.
"""

from repro.driver import FlagSemantics
from repro.harness.report import format_table
from repro.harness.runner import flag_variant, run_remove
from repro.workloads.trees import TreeSpec

from benchmarks.conftest import SCALE, emit, run_grid, scaled_cache

VARIANTS = [
    ("Part", False, False),
    ("Part-NR", True, False),
    ("Part-CB", False, True),
    ("Part-NR/CB", True, True),
]


def test_fig4_flag_implementations_remove(once):
    tree = TreeSpec().scaled(SCALE)

    def cell(label, bypass, block_copy):
        def run():
            config = flag_variant(FlagSemantics.PART, bypass,
                                  block_copy=block_copy,
                                  cache_bytes=scaled_cache())
            return run_remove(config, users=4, tree=tree,
                              label=label, cold_cache=True)
        return label, run

    def experiment():
        return run_grid("fig4_flag_impl_remove",
                        [cell(*variant) for variant in VARIANTS])

    results = once(experiment)
    rows = [[label, r.elapsed, r.cpu_time, r.driver_response_avg * 1000,
             r.disk_requests]
            for label, r in results.items()]
    emit("fig4_flag_impl_remove", format_table(
        f"Figure 4: flag implementation enhancements, 4-user remove "
        f"(scale={SCALE}, simulated seconds)",
        ["Implementation", "Elapsed (s)", "CPU (s)",
         "Avg driver response (ms)", "Disk requests"], rows))

    elapsed = {label: r.elapsed for label, r in results.items()}
    assert elapsed["Part-NR/CB"] <= min(elapsed.values()) * 1.001
    # without the block copy, removal stalls on write-locked metadata
    assert elapsed["Part"] > elapsed["Part-NR/CB"]
    assert elapsed["Part-CB"] >= elapsed["Part-NR/CB"]
