"""Unit tests for Process semantics: joining, return values, crashes."""

import pytest

from repro.sim import Engine, ProcessCrashed, SimulationError


@pytest.fixture
def eng():
    return Engine()


def test_yield_from_composes_subroutines(eng):
    def helper():
        yield eng.timeout(1.0)
        return 10

    def main():
        a = yield from helper()
        b = yield from helper()
        return a + b

    proc = eng.process(main())
    assert eng.run_until(proc) == 20
    assert eng.now == 2.0


def test_join_another_process(eng):
    def child():
        yield eng.timeout(3.0)
        return "child-result"

    def parent():
        result = yield eng.process(child())
        return result

    assert eng.run_until(eng.process(parent())) == "child-result"


def test_crash_propagates_to_joiner(eng):
    def bad():
        yield eng.timeout(1.0)
        raise KeyError("oops")

    def parent():
        try:
            yield eng.process(bad())
        except ProcessCrashed as crash:
            return type(crash.original).__name__
        return "no crash"

    assert eng.run_until(eng.process(parent())) == "KeyError"


def test_crash_surfaces_through_run_until(eng):
    def bad():
        yield eng.timeout(1.0)
        raise RuntimeError("kaboom")

    with pytest.raises(ProcessCrashed):
        eng.run_until(eng.process(bad()))


def test_yielding_non_event_crashes_process(eng):
    def bad():
        yield 42

    with pytest.raises(ProcessCrashed, match="must.*yield Event"):
        eng.run_until(eng.process(bad()))


def test_process_lifetime_bookkeeping(eng):
    def worker():
        yield eng.timeout(5.0)

    proc = eng.process(worker())
    assert proc.alive
    assert proc.started_at == 0.0
    eng.run_until(proc)
    assert not proc.alive
    assert proc.finished_at == 5.0


def test_immediate_return_process(eng):
    def instant():
        return "now"
        yield  # pragma: no cover - makes this a generator

    assert eng.run_until(eng.process(instant())) == "now"


def test_two_processes_interleave(eng):
    log = []

    def ticker(tag, period):
        for _ in range(3):
            yield eng.timeout(period)
            log.append((eng.now, tag))

    procs = [eng.process(ticker("a", 1.0)), eng.process(ticker("b", 1.5))]
    eng.run_all(procs)
    # at t=3.0 both fire; b's timeout was enqueued first (at t=1.5) so FIFO
    # ordering resumes b first
    assert log == [(1.0, "a"), (1.5, "b"), (2.0, "a"), (3.0, "b"),
                   (3.0, "a"), (4.5, "b")]


def test_run_until_deadlocked_children(eng):
    def waits_forever():
        yield eng.event()

    proc = eng.process(waits_forever())
    with pytest.raises(SimulationError):
        eng.run_until(proc, max_events=1000)
