"""Sector-store data-path throughput: the flat store against the dict oracle.

The sector store sits below the driver, so swapping implementations must
be invisible to the simulation (the conformance and whole-machine
equivalence suites prove that).  What the flat store buys is *host* wall
clock on the verification data path: the crash explorer snapshots the
image at every crash boundary, materializes a flat view for fsck, and
digests it -- per crash point.  The dict store pays O(image) per snapshot
and one dict lookup per sector of flat view; the flat store snapshots by
copy-on-write chunk sharing and assembles views with per-chunk memcpy.

Three cells run the same deterministic op sequence (FS-shaped write
traffic, scattered reads, then rounds of snapshot -> flat_view -- the
per-crash-point image materialization -- plus digest rounds) under each
backing: the dict oracle, the flat store, and the flat store forced onto
its pure-python scan path.  The digests must be byte-identical -- and the
flat store must deliver at least 2x the oracle's image-materialization
throughput (best-of-``REPEATS``, so a host hiccup cannot fail the run;
the margin is algorithmic -- CoW snapshots and per-chunk memcpy vs a full
dict copy and per-sector lookups -- so it does not depend on the host).
The digest phase is reported but not gated: sha256 hashing dominates it
identically under every backing.

Per-cell walls land in ``BENCH_perf.json`` with the store name in each
record, so the speedup is part of the recorded performance trajectory.
"""

import random
import time
from dataclasses import dataclass, field

from repro.harness.report import format_table

from benchmarks.conftest import emit, run_grid

SECTOR = 512
#: ops confined to the first REGION sectors (the image ends ~55% dense)
REGION = 192_000
SEQ_RUNS = 12_000       # 8-sector sequential writes (data traffic)
META_WRITES = 12_000    # scattered 1-sector writes + overwrites (metadata)
READS = 8_000
IMAGE_ROUNDS = 12       # snapshot -> flat_view, per crash point
DIGEST_ROUNDS = 3
REPEATS = 3

REFERENCE = "dict"
VARIANTS = ["dict", "flat", "flat-fallback"]


def build_store(variant: str):
    from repro.disk import DiskGeometry, FlatSectorStore, SectorStore

    geometry = DiskGeometry()
    if variant == "dict":
        return SectorStore(geometry)
    store = FlatSectorStore(geometry)
    if variant == "flat-fallback":
        store._use_np = False
        store.backend = "bytearray"
    return store


@dataclass
class DataPathResult:
    """One store's data-path measurement (best-of-``REPEATS`` walls)."""

    store: str
    write_seconds: float = 0.0
    read_seconds: float = 0.0
    image_seconds: float = 0.0
    digest_seconds: float = 0.0
    digest: str = ""
    sim_events: int = 0  # host-only benchmark: no simulator runs
    perf_extra: dict = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return (self.write_seconds + self.read_seconds
                + self.image_seconds + self.digest_seconds)


def datapath(variant: str) -> DataPathResult:
    result = DataPathResult(store=variant,
                            write_seconds=float("inf"),
                            read_seconds=float("inf"),
                            image_seconds=float("inf"),
                            digest_seconds=float("inf"))
    for _ in range(REPEATS):
        store = build_store(variant)
        rng = random.Random(1994)

        start = time.perf_counter()
        run = b"\xd7" * (SECTOR * 8)
        for index in range(SEQ_RUNS):
            store.write((index * 8) % (REGION - 8), run)
        for _n in range(META_WRITES):
            lbn = rng.randrange(REGION)
            store.write(lbn, lbn.to_bytes(8, "little") * (SECTOR // 8))
        write_wall = time.perf_counter() - start

        start = time.perf_counter()
        for _n in range(READS):
            store.read(rng.randrange(REGION - 8), 1 + rng.randrange(8))
        read_wall = time.perf_counter() - start

        start = time.perf_counter()
        for _n in range(IMAGE_ROUNDS):
            snap = store.snapshot()
            view = snap.flat_view(REGION)
            del view
        image_wall = time.perf_counter() - start

        start = time.perf_counter()
        for _n in range(DIGEST_ROUNDS):
            digest = store.digest()
        digest_wall = time.perf_counter() - start

        result.write_seconds = min(result.write_seconds, write_wall)
        result.read_seconds = min(result.read_seconds, read_wall)
        result.image_seconds = min(result.image_seconds, image_wall)
        result.digest_seconds = min(result.digest_seconds, digest_wall)
        result.digest = digest
    result.perf_extra = {
        "store": variant,
        "write_seconds": round(result.write_seconds, 4),
        "read_seconds": round(result.read_seconds, 4),
        "image_seconds": round(result.image_seconds, 4),
        "digest_seconds": round(result.digest_seconds, 4),
    }
    return result


def test_store_throughput(once):
    def experiment():
        cells = [(("datapath", variant), lambda v=variant: datapath(v))
                 for variant in VARIANTS]
        # timing cells must not overlap on a shared core
        return run_grid("store_throughput", cells, jobs=1)

    results = once(experiment)
    stores = {variant: results[("datapath", variant)]
              for variant in VARIANTS}
    ref = stores[REFERENCE]

    rows = []
    for variant in VARIANTS:
        r = stores[variant]
        rows.append([variant, round(r.write_seconds, 3),
                     round(r.read_seconds, 3), round(r.image_seconds, 3),
                     round(r.digest_seconds, 3), round(r.total_seconds, 3),
                     round(ref.image_seconds / r.image_seconds, 2)])
    emit("store_throughput", format_table(
        f"Sector-store data path ({SEQ_RUNS}x8 + {META_WRITES} writes, "
        f"{READS} reads, {IMAGE_ROUNDS} crash images, {DIGEST_ROUNDS} "
        f"digests; best of {REPEATS}, host wall clock)",
        ["Store", "Write (s)", "Read (s)", "Image (s)", "Digest (s)",
         "Total (s)", f"Image speedup vs {REFERENCE}"], rows))

    # every backing holds the same bytes...
    for variant in VARIANTS:
        assert stores[variant].digest == ref.digest, \
            f"store {variant!r} diverged from the oracle"

    # ...and the flat store actually pays off where the explorer spends
    # its time (CoW snapshot + chunked view assembly vs per-sector dict)
    for variant in ("flat", "flat-fallback"):
        ratio = ref.image_seconds / stores[variant].image_seconds
        assert ratio >= 2.0, \
            f"{variant} image path only {ratio:.2f}x the dict oracle"
