"""NVRAM-backed metadata (section 7's proposed comparison point).

"NVRAM can greatly increase data persistence and provide slight performance
improvements as compared to soft updates (by reducing syncer daemon
activity), but is very expensive."

Model: every metadata update is mirrored, atomically and instantly, into a
battery-backed store that survives power failure.  No write ordering is
needed at all -- the NVRAM always holds the latest consistent metadata --
and the dirty blocks destage to the disk lazily through the normal syncer
path, dropping their NVRAM copy once the disk catches up.  Crash recovery
replays the surviving NVRAM over the disk image
(:meth:`NvramScheme.apply_to_image`, consulted by ``repro.integrity.crash``).

The capacity limit is what makes NVRAM "very expensive": when the store is
full, a metadata update must wait for a destage, so an under-provisioned
NVRAM degrades toward the conventional scheme.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generator

from repro.disk.storage import SectorStore
from repro.ordering.base import AllocContext, OrderingScheme
from repro.ordering.guarantees import CrashGuarantees


class NvramScheme(OrderingScheme):
    """Delayed writes with an NVRAM mirror of all metadata updates."""

    # the replayed mirror always holds the latest consistent metadata, so
    # recovery sees neither corruption nor leaks; only the data-block
    # stale-data hole stays open (metadata-only NVRAM, see below)
    declared_guarantees = CrashGuarantees(allows_corruption=False)

    name = "NVRAM"
    uses_block_copy = True
    # metadata-only NVRAM cannot order *data* initialization (the data bytes
    # never pass through it), so the stale-data hole of section 1 stays open
    # unless data blocks are journaled too -- one reason the paper's authors
    # still prefer soft updates
    alloc_init = False

    def __init__(self, capacity_bytes: int = 4 * 1024 * 1024,
                 store_cost_per_byte: float = 0.02e-6) -> None:
        super().__init__()
        self.capacity_bytes = capacity_bytes
        self.store_cost_per_byte = store_cost_per_byte
        #: daddr -> latest metadata bytes not yet destaged (insertion order)
        self._mirror: OrderedDict[int, bytes] = OrderedDict()
        self.used_bytes = 0
        self.stores = 0
        self.destage_stalls = 0

    # ------------------------------------------------------------------
    def _mirror_buffer(self, buf) -> Generator:
        """Copy the buffer's current bytes into NVRAM (may stall if full)."""
        while (self.used_bytes + buf.size > self.capacity_bytes
               and buf.daddr not in self._mirror):
            # force a destage of the oldest mirrored block and wait for it
            self.destage_stalls += 1
            oldest = next(iter(self._mirror))
            victim = self.fs.cache.peek(oldest)
            if victim is not None and victim.dirty:
                request = self.fs.cache.start_flush(victim)
                if request is not None:
                    yield request.done
                    continue
                while victim.busy or victim.write_outstanding:
                    yield victim.waitq.wait()
                continue
            # block already clean on disk: its mirror entry is stale
            self._drop(oldest)
        previous = self._mirror.pop(buf.daddr, None)
        if previous is not None:
            self.used_bytes -= len(previous)
        self._mirror[buf.daddr] = bytes(buf.data)
        self.used_bytes += buf.size
        self.stores += 1
        yield from self.fs.cpu.compute(
            self.store_cost_per_byte * buf.size * self.fs.costs.scale)
        if not buf.post_write:
            buf.post_write.append(self._destaged)

    def _destaged(self, buf) -> None:
        """Disk caught up with this block: the NVRAM copy can be dropped.

        Only when the buffer is clean: a completed write may carry an older
        snapshot than the mirror (the block was updated again after the
        flush was issued), and dropping then would lose the newer state.
        """
        if not buf.dirty and not buf.write_outstanding:
            self._drop(buf.daddr)

    def _drop(self, daddr: int) -> None:
        data = self._mirror.pop(daddr, None)
        if data is not None:
            self.used_bytes -= len(data)

    # -- crash integration ------------------------------------------------
    def apply_to_image(self, image: SectorStore) -> None:
        """Replay surviving NVRAM contents over a crashed disk image."""
        spf = self.fs.cache.sectors_per_frag
        for daddr, data in self._mirror.items():
            image.write(daddr * spf, data)

    # -- the four structural changes ---------------------------------------
    def link_added(self, dp, dbuf, offset, ip, new_inode: bool) -> Generator:
        ibuf = yield from self._release_on_error(
            self.fs.load_inode_buf(ip.ino), dbuf)
        self.fs.store_inode(ip, ibuf)
        yield from self._mirror_buffer(ibuf)
        yield from self._mirror_buffer(dbuf)
        self.fs.cache.bdwrite(ibuf)
        self.fs.cache.bdwrite(dbuf)

    def link_removed(self, dp, dbuf, offset, ip) -> Generator:
        yield from self._mirror_buffer(dbuf)
        self.fs.cache.bdwrite(dbuf)
        yield from self.fs.drop_link(ip)

    def block_allocated(self, ctx: AllocContext) -> Generator:
        if ctx.is_metadata:
            yield from self._mirror_buffer(ctx.data_buf)
        if ctx.ibuf is not None:
            yield from self._mirror_buffer(ctx.ibuf)
            self.fs.cache.bdwrite(ctx.ibuf)
        self.fs.cache.bdwrite(ctx.data_buf)
        if ctx.old_daddr and ctx.old_daddr != ctx.new_daddr:
            self.fs.cache.invalidate(ctx.old_daddr, ctx.old_frags)
            yield from self.fs.allocator.free_frags(ctx.old_daddr,
                                                    ctx.old_frags)
            yield from self._mirror_cg_of(ctx.old_daddr)

    def release_inode(self, ip) -> Generator:
        runs = yield from self.fs.collect_blocks(ip)
        self.fs.clear_block_pointers(ip)
        ino = ip.ino
        yield from self.fs.free_inode_record(ip)
        ibuf = yield from self.fs.load_inode_buf(ino)
        at = self.fs.geometry.inode_offset_in_block(ino)
        ibuf.data[at:at + 128] = bytes(128)
        yield from self._mirror_buffer(ibuf)
        self.fs.cache.bdwrite(ibuf)
        yield from self.fs.free_block_list(runs)
        for daddr, _frags in runs:
            yield from self._mirror_cg_of(daddr)
        yield from self._mirror_cg_of_inode(ino)

    def truncated(self, ip, runs) -> Generator:
        ibuf = yield from self.fs.load_inode_buf(ip.ino)
        self.fs.store_inode(ip, ibuf)
        yield from self._mirror_buffer(ibuf)
        self.fs.cache.bdwrite(ibuf)
        yield from self.fs.free_block_list(runs)
        for daddr, _frags in runs:
            yield from self._mirror_cg_of(daddr)

    # -- unordered updates also mirrored (the NVRAM holds ALL metadata) ----
    def inode_updated(self, ip) -> Generator:
        ibuf = yield from self.fs.load_inode_buf(ip.ino)
        self.fs.store_inode(ip, ibuf)
        yield from self._mirror_buffer(ibuf)
        self.fs.cache.bdwrite(ibuf)

    def _mirror_cg_of(self, daddr: int) -> Generator:
        cg = self.fs.geometry.cg_of_daddr(daddr)
        yield from self._mirror_cg(cg)

    def _mirror_cg_of_inode(self, ino: int) -> Generator:
        yield from self._mirror_cg(self.fs.geometry.cg_of_inode(ino))

    def _mirror_cg(self, cg: int) -> Generator:
        buf = yield from self.fs.cache.bread(self.fs.geometry.cg_base(cg),
                                             self.fs.geometry.block_size)
        yield from self._mirror_buffer(buf)
        self.fs.cache.brelse(buf)

    def pending_work(self) -> int:
        return 0
