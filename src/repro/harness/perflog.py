"""Bounded perf-trajectory log with rotation.

``BENCH_perf.json`` holds one record per benchmark session.  Appending
forever makes the file grow without bound (a session at scale 0.15 adds
~1 KB per grid), so :func:`append_record` keeps only the most recent
``keep`` sessions in the JSON file and rotates everything older into a
sibling ``*.history.jsonl`` -- one JSON record per line, append-only, cheap
to grep and safe to truncate independently.
"""

from __future__ import annotations

import json
from pathlib import Path

#: sessions retained in the main JSON file by default
DEFAULT_KEEP = 20


def history_path_for(path: Path) -> Path:
    """The rotation target next to *path* (``BENCH_perf.history.jsonl``)."""
    return path.with_suffix("").with_suffix(".history.jsonl") \
        if path.suffix == ".json" else path.with_name(path.name + ".history.jsonl")


def load_records(path: Path) -> list:
    """The record list currently in *path* (tolerates a legacy single dict,
    a missing file, and unparseable content)."""
    if not path.exists():
        return []
    try:
        records = json.loads(path.read_text())
    except ValueError:
        return []
    return records if isinstance(records, list) else [records]


def append_record(path: Path, record: dict, keep: int = DEFAULT_KEEP,
                  history_path: Path | None = None) -> list:
    """Append *record* to the trajectory at *path*, keeping the last *keep*.

    Overflowing records (oldest first) are appended to *history_path*
    (default: :func:`history_path_for`) as JSON lines before being dropped
    from the main file.  Returns the retained record list.
    """
    if keep < 1:
        raise ValueError("keep must be >= 1")
    path = Path(path)
    records = load_records(path)
    records.append(record)
    overflow, retained = records[:-keep], records[-keep:]
    if overflow:
        target = Path(history_path) if history_path is not None \
            else history_path_for(path)
        with target.open("a") as fh:
            for old in overflow:
                fh.write(json.dumps(old, separators=(",", ":")) + "\n")
    path.write_text(json.dumps(retained, indent=2) + "\n")
    return retained
