"""CLI: validate trace_event JSON files (the CI trace-smoke check).

Usage::

    python -m repro.obs.validate results/traces/*.json

Exits non-zero (printing the offending event) if any file fails the
trace_event schema check in :mod:`repro.obs.export`.
"""

from __future__ import annotations

import sys

from repro.obs.export import TraceFormatError, validate_trace_file


def main(argv: list[str]) -> int:
    paths = argv[1:]
    if not paths:
        print("usage: python -m repro.obs.validate TRACE.json [...]",
              file=sys.stderr)
        return 2
    failures = 0
    for path in paths:
        try:
            count = validate_trace_file(path)
        except (TraceFormatError, ValueError, OSError) as err:
            print(f"FAIL {path}: {err}")
            failures += 1
        else:
            print(f"ok   {path}: {count} events")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
