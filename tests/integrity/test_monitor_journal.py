"""The monitor's journal support and the ``journal-checkpoint-order`` rule.

The journaling scheme's one ordering obligation is the commit barrier: a
logged block image must not reach its home location before the
transaction's commit record is durable.  The breach is staged here at the
media level -- a descriptor and payload written to the log, then the
image checkpointed home with no commit record in sight -- so the test
exercises exactly what the monitor sees (the write-commit stream) with no
scheme cooperation required.

Also pinned: the monitor judges the *recoverable* view (shadow image plus
committed log overlay), so the journal scheme's lazy checkpoints --
arbitrarily delayed home writes of committed images -- never read as
structural violations, and a commit in the log region immediately updates
the structural state the rules run against.
"""

from repro.costs import CostModel
from repro.fs import journal
from repro.fs.layout import FSGeometry
from repro.integrity.monitor import RULES, OrderingMonitor
from repro.machine import Machine, MachineConfig
from repro.ordering import JournalScheme

SMALL = FSGeometry(ipg=256, dfrags_per_cg=2048, ncg=2)


def journal_machine() -> Machine:
    machine = Machine(MachineConfig(scheme=JournalScheme(),
                                    fs_geometry=SMALL,
                                    cache_bytes=2 * 1024 * 1024,
                                    costs=CostModel(scale=0.0)))
    machine.format()
    return machine


def attach_monitor(machine) -> OrderingMonitor:
    monitor = OrderingMonitor(machine.config.fs_geometry,
                              machine.scheme.crash_guarantees)
    monitor.attach(machine.disk)
    return monitor


def test_rule_is_in_the_catalogue():
    assert "journal-checkpoint-order" in RULES


def test_journal_scheme_run_is_clean():
    machine = journal_machine()
    monitor = attach_monitor(machine)

    def work(fs):
        yield from fs.mkdir("/d")
        for i in range(10):
            yield from fs.write_file(f"/d/f{i}", b"x" * 6000)
        for i in range(0, 10, 2):
            yield from fs.unlink(f"/d/f{i}")

    machine.run(machine.spawn(work(machine.fs), name="work"))
    machine.sync_and_settle()
    assert monitor.commits_applied > 0
    assert monitor.clean, [v.format() for v in monitor.violations][:5]


def test_checkpoint_before_commit_fires_and_commit_clears():
    """descriptor + payload durable, image checkpointed home, *then* the
    commit record: one rule hit, attributed to the home write."""
    machine = journal_machine()
    monitor = attach_monitor(machine)
    geo = machine.config.fs_geometry
    spf = geo.frag_size // machine.disk.geometry.sector_size
    base = geo.journal_start + 1
    # a genuinely free data fragment: the first data block belongs to the
    # root directory, so step several blocks past it
    target = geo.cg_data_start(0) + 4 * geo.frags_per_block + 7
    image = b"\xab\xcd" * (geo.frag_size // 2)
    seq = machine.scheme._next_seq
    desc = journal.descriptor_bytes(geo.frag_size, seq,
                                    [journal.Entry(journal.IMAGE,
                                                   target, 1)])

    def breach():
        request = machine.driver.write(base * spf, desc + image,
                                       issuer="breach")
        yield request.done
        # the barrier breach: home write while the commit is nowhere
        request = machine.driver.write(target * spf, image,
                                       issuer="breach")
        yield request.done

    machine.run(machine.spawn(breach(), name="breach"))
    hits = [v for v in monitor.violations
            if v.rule == "journal-checkpoint-order"]
    assert len(hits) == 1, [v.format() for v in monitor.violations]
    assert hits[0].lbn == target * spf
    # the journal scheme declares no corruption: the hit is unexpected
    assert not hits[0].expected
    assert monitor.unexpected == hits

    def commit():
        checksum = journal.txn_checksum(desc, image)
        request = machine.driver.write(
            (base + 2) * spf,
            journal.commit_bytes(geo.frag_size, seq, checksum),
            issuer="breach")
        yield request.done
        # once committed, re-checkpointing the same image is legal
        request = machine.driver.write(target * spf, image,
                                       issuer="breach")
        yield request.done

    machine.run(machine.spawn(commit(), name="commit"))
    hits_after = [v for v in monitor.violations
                  if v.rule == "journal-checkpoint-order"]
    assert hits_after == hits  # no new firing after the commit landed


def test_checkpoint_after_commit_never_fires():
    """The legal order -- record, commit, then checkpoint -- is silent."""
    machine = journal_machine()
    monitor = attach_monitor(machine)
    geo = machine.config.fs_geometry
    spf = geo.frag_size // machine.disk.geometry.sector_size
    base = geo.journal_start + 1
    target = geo.cg_data_start(0) + 4 * geo.frags_per_block + 9
    image = b"\x5a\xa5" * (geo.frag_size // 2)
    seq = machine.scheme._next_seq
    desc = journal.descriptor_bytes(geo.frag_size, seq,
                                    [journal.Entry(journal.IMAGE,
                                                   target, 1)])

    def legal():
        request = machine.driver.write(base * spf, desc + image,
                                       issuer="legal")
        yield request.done
        checksum = journal.txn_checksum(desc, image)
        request = machine.driver.write(
            (base + 2) * spf,
            journal.commit_bytes(geo.frag_size, seq, checksum),
            issuer="legal")
        yield request.done
        request = machine.driver.write(target * spf, image, issuer="legal")
        yield request.done

    machine.run(machine.spawn(legal(), name="legal"))
    assert monitor.clean, [v.format() for v in monitor.violations]


def test_lazy_checkpoints_do_not_false_fire():
    """A workload plus full settle: every committed image eventually
    checkpoints home (arbitrarily later than its commit) and the home
    writes replay older states over newer effective ones -- all silent,
    because the monitor reads the composite view."""
    machine = journal_machine()
    monitor = attach_monitor(machine)

    def work(fs):
        yield from fs.mkdir("/a")
        yield from fs.mkdir("/a/b")
        for i in range(8):
            yield from fs.write_file(f"/a/b/f{i}", b"m" * 5000)
        yield from fs.rename("/a/b/f0", "/a/top")
        for i in range(1, 8):
            yield from fs.unlink(f"/a/b/f{i}")
        yield from fs.rmdir("/a/b")

    machine.run(machine.spawn(work(machine.fs), name="work"))
    machine.sync_and_settle()
    machine.engine.run_until(
        machine.engine.process(machine.fs.unmount(), name="unmount"))
    assert monitor.clean, [v.format() for v in monitor.violations][:5]
    # and the log really did cycle: commits happened while we watched
    assert machine.scheme._next_seq > 1
    assert monitor.commits_applied > 10
