"""Unit tests for on-disk layout, Dinode and Superblock codecs."""

import pytest
from hypothesis import given, strategies as st

from repro.fs.layout import Dinode, FileType, FSGeometry, INODE_SIZE
from repro.fs.superblock import Superblock


@pytest.fixture
def geo():
    return FSGeometry()


class TestGeometry:
    def test_derived_sizes(self, geo):
        assert geo.frags_per_block == 8
        assert geo.inodes_per_block == 64
        assert geo.inode_blocks_per_cg == 32

    def test_regions_are_disjoint_and_ordered(self, geo):
        assert geo.superblock_daddr >= geo.frags_per_block
        previous_end = geo.cg_start
        for cg in range(geo.ncg):
            assert geo.cg_base(cg) == previous_end
            assert geo.cg_inode_table(cg) > geo.cg_base(cg)
            assert geo.cg_data_start(cg) > geo.cg_inode_table(cg)
            previous_end = geo.cg_base(cg) + geo.cg_frags
        assert previous_end == geo.total_frags

    def test_inode_addressing(self, geo):
        assert geo.cg_of_inode(0) == 0
        assert geo.cg_of_inode(geo.ipg) == 1
        assert geo.inode_block_daddr(0) == geo.cg_inode_table(0)
        assert (geo.inode_block_daddr(geo.inodes_per_block)
                == geo.cg_inode_table(0) + geo.frags_per_block)
        assert geo.inode_offset_in_block(1) == INODE_SIZE

    def test_daddr_to_cg_roundtrip(self, geo):
        for cg in range(geo.ncg):
            daddr = geo.cg_data_start(cg) + 5
            assert geo.cg_of_daddr(daddr) == cg
            assert geo.data_index(daddr) == 5

    def test_header_daddr_is_not_data(self, geo):
        with pytest.raises(ValueError):
            geo.data_index(geo.cg_base(1))

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            FSGeometry(block_size=8192, frag_size=3000)
        with pytest.raises(ValueError):
            FSGeometry(ncg=0)
        with pytest.raises(ValueError):
            FSGeometry(ipg=100)  # not whole inode blocks


class TestDinode:
    def test_roundtrip(self):
        din = Dinode(mode=int(FileType.REGULAR) | 0o644, nlink=3, uid=7,
                     gid=8, size=123456, atime=1, mtime=2, ctime=3,
                     direct=[10 * i for i in range(12)], sindirect=999,
                     dindirect=1000, frags_held=42, generation=5, flags=1)
        packed = din.pack()
        assert len(packed) == INODE_SIZE
        assert Dinode.unpack(packed) == din

    def test_zero_inode_is_unallocated(self):
        assert not Dinode.unpack(bytes(INODE_SIZE)).allocated

    def test_ftype(self):
        assert Dinode(mode=int(FileType.DIRECTORY) | 0o700).ftype \
            is FileType.DIRECTORY

    def test_copy_is_independent(self):
        din = Dinode(mode=int(FileType.REGULAR), size=10)
        clone = din.copy()
        clone.size = 20
        assert din.size == 10

    @given(size=st.integers(0, 2**40), nlink=st.integers(0, 65535))
    def test_roundtrip_property(self, size, nlink):
        din = Dinode(mode=int(FileType.REGULAR), nlink=nlink, size=size)
        assert Dinode.unpack(din.pack()) == din


class TestSuperblock:
    def test_roundtrip(self, geo):
        sb = Superblock(geometry=geo, generation=7, clean=False)
        raw = sb.pack(geo.frag_size)
        assert len(raw) == geo.frag_size
        back = Superblock.unpack(raw)
        assert back.geometry == geo
        assert back.generation == 7
        assert back.clean is False

    def test_bad_magic_rejected(self, geo):
        with pytest.raises(ValueError, match="magic"):
            Superblock.unpack(bytes(geo.frag_size))
