"""The file system proper: namei, allocation plumbing, and the syscalls.

Every public operation is a simulated-process subroutine (``yield from``):
it charges CPU through the cost model, blocks on buffer locks and disk I/O,
performs in-memory updates, and defers all *ordering* decisions to the
mounted :class:`~repro.ordering.base.OrderingScheme` at the paper's four
structural change points.
"""

from __future__ import annotations

import struct
from typing import Generator, Optional

from repro.cache.buffer import Buffer
from repro.cache.buffercache import BufferCache
from repro.cache.syncer import SyncerDaemon
from repro.costs import CostModel
from repro.fs import directory
from repro.fs.alloc import Allocator
from repro.fs.inode import Inode, InodeTable
from repro.fs.layout import Dinode, FileType, FSGeometry, ROOT_INO
from repro.fs.superblock import Superblock
from repro.ordering.base import AllocContext, OrderingScheme
from repro.sim.cpu import CPU
from repro.sim.engine import Engine


class FsError(Exception):
    """A file system call failed (POSIX-style code in ``code``)."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code


class OpenFile:
    """A file handle: an in-core inode reference plus a byte offset."""

    __slots__ = ("ip", "offset", "closed")

    def __init__(self, ip: Inode) -> None:
        self.ip = ip
        self.offset = 0
        self.closed = False


def _syscall(fn):
    """Trace a syscall generator method when observability is on.

    With tracing off the original generator is returned untouched -- the
    call costs one attribute check, which keeps the disabled overhead inside
    the budget in ``docs/observability.md``.  With tracing on the generator
    is driven through :meth:`FileSystem._traced_syscall`, which brackets it
    in a ``syscall.<name>`` span and bumps the per-syscall counter.
    """
    name = fn.__name__

    def wrapper(self, *args, **kwargs):
        gen = fn(self, *args, **kwargs)
        obs = self.engine.obs
        if obs is None:
            return gen
        return self._traced_syscall(name, gen, obs)

    wrapper.__name__ = name
    wrapper.__qualname__ = fn.__qualname__
    wrapper.__doc__ = fn.__doc__
    wrapper.__wrapped__ = fn
    return wrapper


def _split(path: str) -> list[str]:
    if not path.startswith("/"):
        raise FsError("EINVAL", f"path must be absolute: {path!r}")
    parts = [p for p in path.split("/") if p]
    for part in parts:
        if part in (".", "..") or len(part) > directory.MAX_NAME:
            raise FsError("EINVAL", f"unsupported path component {part!r}")
    return parts


class FileSystem:
    """A mounted file system instance."""

    def __init__(self, engine: Engine, cache: BufferCache, cpu: CPU,
                 costs: CostModel, scheme: OrderingScheme,
                 syncer: Optional[SyncerDaemon] = None) -> None:
        self.engine = engine
        self.cache = cache
        self.cpu = cpu
        self.costs = costs
        self.scheme = scheme
        self.syncer = syncer
        self.geometry: FSGeometry = None
        self.superblock: Superblock = None
        self.allocator: Allocator = None
        self.itable = InodeTable(engine)
        self._generation = 0
        # instrumentation
        self.op_counts: dict[str, int] = {}

    # ==================================================================
    # mount / unmount
    # ==================================================================
    def mount(self, geometry_hint: Optional[FSGeometry] = None) -> Generator:
        """Read the superblock, load allocation summaries, bind the scheme.

        The superblock's location depends on the geometry it describes; pass
        *geometry_hint* when mounting a non-default layout (mkfs callers
        already know it).
        """
        sb_daddr = (geometry_hint or FSGeometry()).superblock_daddr
        sb_buf = yield from self.cache.bread(sb_daddr, self.cache.frag_size)
        self.superblock = Superblock.unpack(bytes(sb_buf.data))
        self.cache.brelse(sb_buf)
        self.geometry = self.superblock.geometry
        if self.geometry.frag_size != self.cache.frag_size:
            raise FsError("EINVAL", "cache fragment size != fs fragment size")
        self.allocator = Allocator(self.geometry, self.cache)
        yield from self.allocator.load_summaries()
        self.scheme.attach(self)
        self.scheme.mounted()

    def unmount(self) -> Generator:
        """Drain all deferred work and flush everything."""
        yield from self.scheme.drain()
        yield from self.cache.sync()

    # ==================================================================
    # in-core inode services
    # ==================================================================
    def iget(self, ino: int) -> Generator:
        """Fetch the in-core inode (loading from disk if needed); refs++."""
        ip = self.itable.get_cached(ino)
        if ip is None:
            ibuf = yield from self.load_inode_buf(ino)
            at = self.geometry.inode_offset_in_block(ino)
            din = Dinode.unpack(bytes(ibuf.data[at:at + 128]))
            self.cache.brelse(ibuf)
            ip = self.itable.get_cached(ino)  # lost a race while reading?
            if ip is None:
                ip = self.itable.install(ino, din)
        ip.refs += 1
        return ip

    def iput(self, ip: Inode) -> None:
        """Drop a reference taken by :meth:`iget`."""
        ip.refs -= 1

    def load_inode_buf(self, ino: int) -> Generator:
        """bread the inode block containing *ino* (returned held)."""
        buf = yield from self.cache.bread(
            self.geometry.inode_block_daddr(ino), self.geometry.block_size)
        return buf

    def store_inode(self, ip: Inode, ibuf: Buffer) -> None:
        """Copy the in-core inode into its (held) inode-block buffer."""
        at = self.geometry.inode_offset_in_block(ip.ino)
        ibuf.data[at:at + 128] = ip.din.pack()

    def iupdat(self, ip: Inode) -> Generator:
        """Schedule the in-core inode for stable storage (scheme decides how)."""
        yield from self.scheme.inode_updated(ip)

    def flush_inode_sync(self, ip: Inode) -> Generator:
        """Synchronously write the inode block (base fsync building block)."""
        ibuf = yield from self.load_inode_buf(ip.ino)
        self.store_inode(ip, ibuf)
        yield from self.cache.bwrite(ibuf)

    def flush_file_data(self, ip: Inode) -> Generator:
        """Push every dirty buffer of *ip* (data + indirects) to the disk."""
        runs = yield from self.collect_blocks(ip)
        pending = []
        for daddr, _frags in runs:
            buf = self.cache.peek(daddr)
            if buf is None:
                continue
            while buf.busy:
                yield buf.waitq.wait()
            request = self.cache.start_flush(buf)
            if request is not None:
                pending.append(request.done)
            else:
                while buf.write_outstanding:
                    yield self.cache._space.wait()
        for done in pending:
            yield done

    def drop_link(self, ip: Inode) -> Generator:
        """Decrement the link count; release the inode when it hits zero.

        Called by schemes at the moment their ordering rules allow (possibly
        from a deferred workitem).
        """
        ip.din.nlink -= 1
        if ip.din.nlink < 0:
            raise RuntimeError(f"negative link count on inode {ip.ino}")
        if ip.din.nlink > 0 or ip.refs > 0:
            yield from self.iupdat(ip)
            return
        yield from self.scheme.release_inode(ip)

    # -- release building blocks used by the schemes ---------------------
    def collect_blocks(self, ip: Inode) -> Generator:
        """Enumerate every (daddr, frags) run the inode holds, incl. indirects."""
        geo = self.geometry
        runs: list[tuple[int, int]] = []
        nblocks = (ip.din.size + geo.block_size - 1) // geo.block_size
        for lblk in range(min(nblocks, geo.NDADDR)):
            daddr = ip.din.direct[lblk]
            if daddr:
                runs.append((daddr, self._block_frags(ip, lblk)))
        if ip.din.sindirect:
            runs.extend((yield from self._collect_indirect(
                ip.din.sindirect, depth=1)))
        if ip.din.dindirect:
            runs.extend((yield from self._collect_indirect(
                ip.din.dindirect, depth=2)))
        return runs

    def _collect_indirect(self, daddr: int, depth: int) -> Generator:
        geo = self.geometry
        buf = yield from self.cache.bread(daddr, geo.block_size)
        pointers = [p for p in struct.unpack(f"<{geo.nindir}I", bytes(buf.data))
                    if p]
        self.cache.brelse(buf)
        runs = [(daddr, geo.frags_per_block)]
        for pointer in pointers:
            if depth > 1:
                runs.extend((yield from self._collect_indirect(
                    pointer, depth - 1)))
            else:
                runs.append((pointer, geo.frags_per_block))
        return runs

    def clear_block_pointers(self, ip: Inode) -> None:
        """Reset every block pointer in the in-core inode (rule-1 reset)."""
        ip.din.direct = [0] * self.geometry.NDADDR
        ip.din.sindirect = 0
        ip.din.dindirect = 0
        ip.din.size = 0
        ip.din.frags_held = 0

    def free_block_list(self, runs: list[tuple[int, int]]) -> Generator:
        """Return runs to the free pool and drop their cached buffers."""
        for daddr, frags in runs:
            self.cache.invalidate(daddr, frags)
            yield from self.cpu.compute(self.costs.time("free"))
            yield from self.allocator.free_frags(daddr, frags)

    def free_inode_record(self, ip: Inode) -> Generator:
        """Clear the dinode and release the inode number."""
        ip.din = Dinode()
        ip.deleted = True
        self.itable.drop(ip.ino)
        yield from self.allocator.free_inode(ip.ino)

    # ==================================================================
    # path resolution
    # ==================================================================
    def namei(self, path: str) -> Generator:
        """Resolve *path* to a referenced in-core inode."""
        parts = _split(path)
        ip = yield from self.iget(ROOT_INO)
        for part in parts:
            yield from self.cpu.compute(self.costs.time("namei_component"))
            if not ip.is_dir:
                self.iput(ip)
                raise FsError("ENOTDIR", path)
            yield ip.lock.acquire()
            try:
                found = yield from self._dir_lookup(ip, part)
            finally:
                ip.lock.release()
            self.iput(ip)
            if found is None:
                raise FsError("ENOENT", path)
            ip = yield from self.iget(found.ino)
        return ip

    def namei_parent(self, path: str) -> Generator:
        """Resolve to (parent directory inode, final component name)."""
        parts = _split(path)
        if not parts:
            raise FsError("EINVAL", "path has no final component")
        parent_path = "/" + "/".join(parts[:-1])
        dp = yield from self.namei(parent_path)
        if not dp.is_dir:
            self.iput(dp)
            raise FsError("ENOTDIR", parent_path)
        return dp, parts[-1]

    # -- directory internals ------------------------------------------------
    def _dir_block(self, dp: Inode, lblk: int) -> Generator:
        daddr = yield from self.bmap(dp, lblk)
        if daddr == 0:
            raise FsError("EIO", f"hole in directory {dp.ino} at block {lblk}")
        buf = yield from self.cache.bread(daddr, self.geometry.block_size)
        return buf

    def _dir_nblocks(self, dp: Inode) -> int:
        return (dp.din.size + self.geometry.block_size - 1) \
            // self.geometry.block_size

    def _dir_lookup(self, dp: Inode, name: str) -> Generator:
        """Find *name* in locked directory *dp*; returns a DirEntry or None.

        Each block's record table is decoded once into a ``DirIndex`` kept
        on the cache buffer; repeat lookups are a dict probe.  Simulated
        CPU time is charged from the ordinal the index recorded, so the
        timeline is identical to the linear scan.  Corrupt bytes pin a
        ``False`` sentinel and take the scan path, which preserves the
        scan's exact semantics (a name that matches before the corrupt
        record still resolves; reaching the corruption raises).
        """
        bs = self.geometry.block_size
        for lblk in range(self._dir_nblocks(dp)):
            buf = yield from self._dir_block(dp, lblk)
            index = buf.dir_index
            if index is None:
                index = directory.build_index(buf.data)
                buf.dir_index = index if index is not None else False
            if index:
                hit = index.by_name.get(name)
                if hit is not None:
                    ordinal, offset, ino, reclen, ftype = hit
                    entry = directory.DirEntry(lblk * bs + offset, ino,
                                               reclen, name, ftype)
                    scanned = ordinal
                else:
                    entry = None
                    scanned = index.nrecords
            else:
                entry, scanned = directory.lookup(
                    buf.data, name, base_offset=lblk * bs)
            yield from self.cpu.compute(
                self.costs.time("dirent_scan", scanned))
            self.cache.brelse(buf)
            if entry is not None:
                return entry
        return None

    def _dir_add_entry(self, dp: Inode, name: str, ino: int,
                       ftype: FileType) -> Generator:
        """Place an entry; returns the held buffer and the entry offset.

        A block whose index shows ``max_slack < need`` is exactly a block
        ``add_entry`` would scan and refuse, so it is skipped without
        decoding (the bread and its costs still happen, as before).
        """
        bs = self.geometry.block_size
        name_raw = name.encode()
        valid_name = 0 < len(name_raw) <= directory.MAX_NAME
        need = directory.entry_bytes(len(name_raw))
        for lblk in range(self._dir_nblocks(dp)):
            buf = yield from self._dir_block(dp, lblk)
            index = buf.dir_index
            if valid_name and isinstance(index, directory.DirIndex) \
                    and index.max_slack < need:
                self.cache.brelse(buf)
                continue
            offset = directory.add_entry(buf.data, name, ino, ftype)
            if offset is not None:
                buf.dir_index = None
                return buf, lblk * bs + offset
            self.cache.brelse(buf)
        # directory full: grow it by one (full) block of empty chunks
        lblk = self._dir_nblocks(dp)
        buf = yield from self._grow_directory(dp, lblk)
        offset = directory.add_entry(buf.data, name, ino, ftype)
        assert offset is not None
        buf.dir_index = None
        return buf, lblk * bs + offset

    def _grow_directory(self, dp: Inode, lblk: int) -> Generator:
        """Allocate and initialize a fresh directory block (returned held)."""
        bs = self.geometry.block_size
        image = directory.empty_chunk() * (bs // directory.DIRBLKSIZ)
        buf = yield from self._balloc(dp, lblk, bs, is_metadata=True,
                                      init_image=image)
        dp.din.size = (lblk + 1) * bs
        yield from self.iupdat(dp)
        return buf

    # ==================================================================
    # block mapping and allocation
    # ==================================================================
    def _block_frags(self, ip: Inode, lblk: int) -> int:
        """Fragments held by logical block *lblk* given the current size."""
        geo = self.geometry
        if ip.is_dir:
            return geo.frags_per_block
        size = ip.din.size
        last = (size - 1) // geo.block_size if size else 0
        if lblk < last or lblk >= geo.NDADDR or size > geo.NDADDR * geo.block_size:
            return geo.frags_per_block
        tail = size - lblk * geo.block_size
        return max(1, (tail + geo.frag_size - 1) // geo.frag_size)

    def bmap(self, ip: Inode, lblk: int) -> Generator:
        """Logical block -> fragment daddr (0 for a hole)."""
        geo = self.geometry
        if lblk < 0:
            raise FsError("EINVAL", f"negative block {lblk}")
        if lblk < geo.NDADDR:
            return ip.din.direct[lblk]
        lblk -= geo.NDADDR
        if lblk < geo.nindir:
            if not ip.din.sindirect:
                return 0
            daddr = yield from self._indirect_slot(ip.din.sindirect, lblk)
            return daddr
        lblk -= geo.nindir
        if lblk < geo.nindir * geo.nindir:
            if not ip.din.dindirect:
                return 0
            level1 = yield from self._indirect_slot(ip.din.dindirect,
                                                    lblk // geo.nindir)
            if not level1:
                return 0
            daddr = yield from self._indirect_slot(level1, lblk % geo.nindir)
            return daddr
        raise FsError("EFBIG", f"block {lblk} beyond maximum file size")

    def _indirect_slot(self, ind_daddr: int, index: int) -> Generator:
        buf = yield from self.cache.bread(ind_daddr, self.geometry.block_size)
        value = struct.unpack_from("<I", buf.data, 4 * index)[0]
        self.cache.brelse(buf)
        return value

    def _balloc(self, ip: Inode, lblk: int, nbytes: int,
                is_metadata: bool = False,
                init_image: Optional[bytes] = None) -> Generator:
        """Ensure *lblk* has at least *nbytes* of storage; return held buffer.

        Handles fresh allocation, in-place fragment extension, and extension
        by move; routes each through ``scheme.block_allocated``.  The buffer
        is re-acquired after the scheme hook (hooks consume buffers).
        *init_image* supplies the initialization contents for fresh metadata
        blocks (directory chunks; indirect blocks default to zeros).
        """
        geo = self.geometry
        frag = geo.frag_size
        want_frags = geo.frags_per_block if (is_metadata or lblk >= geo.NDADDR
                                             or nbytes >= geo.block_size) \
            else max(1, (nbytes + frag - 1) // frag)
        hint = geo.cg_of_inode(ip.ino)

        owner_kind, ibuf, slot, old_daddr = yield from self._owner_of(ip, lblk)
        old_frags = self._block_frags(ip, lblk) if old_daddr else 0

        if old_daddr and old_frags >= want_frags:
            if ibuf is not None:
                self.cache.brelse(ibuf)
            # existing storage suffices; bread so partial overwrites keep the
            # current contents
            buf = yield from self.cache.bread(old_daddr, old_frags * frag)
            return buf

        yield from self.cpu.compute(self.costs.time("alloc"))
        if old_daddr:
            extended = yield from self.allocator.try_extend_frags(
                old_daddr, old_frags, want_frags)
            if extended:
                buf = yield from self.cache.getblk(old_daddr,
                                                   want_frags * frag)
                ctx = AllocContext(ip=ip, lblk=lblk, owner_kind=owner_kind,
                                   ibuf=ibuf, slot=slot, new_daddr=old_daddr,
                                   new_frags=want_frags, old_daddr=old_daddr,
                                   old_frags=old_frags, data_buf=buf,
                                   is_metadata=is_metadata)
                yield from self.scheme.block_allocated(ctx)
                buf = yield from self.cache.getblk(old_daddr,
                                                   want_frags * frag)
                return buf
            # extension by move: allocate the larger run, copy, free old
            new_daddr = yield from self.allocator.alloc_frags(hint, want_frags)
            old_buf = yield from self.cache.bread(old_daddr, old_frags * frag)
            old_data = bytes(old_buf.data)
            self.cache.brelse(old_buf)
            buf = yield from self.cache.getblk(new_daddr, want_frags * frag)
            buf.data[:len(old_data)] = old_data
            buf.data[len(old_data):] = bytes(len(buf.data) - len(old_data))
            buf.valid = True
            buf.dir_index = None
            yield from self.cpu.compute(self.costs.block_copy(len(old_data)))
        else:
            new_daddr = yield from self.allocator.alloc_frags(hint, want_frags)
            buf = yield from self.cache.getblk(new_daddr, want_frags * frag)
            buf.data[:] = init_image if init_image is not None \
                else bytes(len(buf.data))
            buf.valid = True
            buf.dir_index = None
            old_frags = 0
            old_daddr = 0

        self._set_owner_slot(ip, ibuf, owner_kind, slot, new_daddr)
        ip.din.frags_held += want_frags - old_frags
        ctx = AllocContext(ip=ip, lblk=lblk, owner_kind=owner_kind, ibuf=ibuf,
                           slot=slot, new_daddr=new_daddr,
                           new_frags=want_frags, old_daddr=old_daddr,
                           old_frags=old_frags, data_buf=buf,
                           is_metadata=is_metadata)
        yield from self.scheme.block_allocated(ctx)
        buf = yield from self.cache.getblk(new_daddr, want_frags * frag)
        return buf

    def _owner_of(self, ip: Inode, lblk: int) -> Generator:
        """Locate where *lblk*'s pointer lives, creating indirect blocks.

        Returns (owner_kind, held indirect buffer or None, slot, current
        pointer value).
        """
        geo = self.geometry
        if lblk < geo.NDADDR:
            return "inode", None, lblk, ip.din.direct[lblk]
        index = lblk - geo.NDADDR
        if index < geo.nindir:
            if not ip.din.sindirect:
                yield from self._alloc_indirect(ip, "sindirect")
            ibuf = yield from self.cache.bread(ip.din.sindirect,
                                               geo.block_size)
            current = struct.unpack_from("<I", ibuf.data, 4 * index)[0]
            return "indirect", ibuf, index, current
        index -= geo.nindir
        if index >= geo.nindir * geo.nindir:
            raise FsError("EFBIG", f"block {lblk} beyond maximum file size")
        if not ip.din.dindirect:
            yield from self._alloc_indirect(ip, "dindirect")
        l1buf = yield from self.cache.bread(ip.din.dindirect, geo.block_size)
        l1slot = index // geo.nindir
        level1 = struct.unpack_from("<I", l1buf.data, 4 * l1slot)[0]
        if not level1:
            level1 = yield from self._alloc_indirect_in(ip, l1buf, l1slot)
            l1buf = yield from self.cache.bread(ip.din.dindirect,
                                                geo.block_size)
        self.cache.brelse(l1buf)
        ibuf = yield from self.cache.bread(level1, geo.block_size)
        l2slot = index % geo.nindir
        current = struct.unpack_from("<I", ibuf.data, 4 * l2slot)[0]
        return "indirect", ibuf, l2slot, current

    def _alloc_indirect(self, ip: Inode, which: str) -> Generator:
        """Allocate a root indirect block (pointer lives in the inode)."""
        geo = self.geometry
        daddr = yield from self.allocator.alloc_block(
            geo.cg_of_inode(ip.ino))
        buf = yield from self.cache.getblk(daddr, geo.block_size)
        buf.data[:] = bytes(geo.block_size)
        buf.valid = True
        buf.dir_index = None
        setattr(ip.din, which, daddr)
        ip.din.frags_held += geo.frags_per_block
        slot = geo.NDADDR if which == "sindirect" else geo.NDADDR + 1
        ctx = AllocContext(ip=ip, lblk=-1, owner_kind="inode", ibuf=None,
                           slot=slot, new_daddr=daddr,
                           new_frags=geo.frags_per_block, old_daddr=0,
                           old_frags=0, data_buf=buf, is_metadata=True)
        yield from self.scheme.block_allocated(ctx)

    def _alloc_indirect_in(self, ip: Inode, l1buf: Buffer,
                           slot: int) -> Generator:
        """Allocate a second-level indirect block (pointer in *l1buf*)."""
        geo = self.geometry
        daddr = yield from self.allocator.alloc_block(geo.cg_of_inode(ip.ino))
        buf = yield from self.cache.getblk(daddr, geo.block_size)
        buf.data[:] = bytes(geo.block_size)
        buf.valid = True
        buf.dir_index = None
        struct.pack_into("<I", l1buf.data, 4 * slot, daddr)
        ip.din.frags_held += geo.frags_per_block
        ctx = AllocContext(ip=ip, lblk=-1, owner_kind="indirect", ibuf=l1buf,
                           slot=slot, new_daddr=daddr,
                           new_frags=geo.frags_per_block, old_daddr=0,
                           old_frags=0, data_buf=buf, is_metadata=True)
        yield from self.scheme.block_allocated(ctx)
        return daddr

    def _set_owner_slot(self, ip: Inode, ibuf: Optional[Buffer],
                        owner_kind: str, slot: int, daddr: int) -> None:
        if owner_kind == "inode":
            ip.din.direct[slot] = daddr
        else:
            struct.pack_into("<I", ibuf.data, 4 * slot, daddr)

    # ==================================================================
    # syscalls
    # ==================================================================
    def _count(self, name: str) -> Generator:
        self.op_counts[name] = self.op_counts.get(name, 0) + 1
        yield from self.cpu.compute(self.costs.time("syscall"))

    def _traced_syscall(self, name: str, gen: Generator,
                        obs) -> Generator:
        """Drive *gen* inside a ``syscall.<name>`` span (tracing on only)."""
        obs.registry.counter(f"syscall.{name}").inc()
        span = obs.tracer.begin(f"syscall.{name}", "syscall")
        try:
            result = yield from gen
        finally:
            obs.tracer.end(span)
        return result

    @_syscall
    def create(self, path: str) -> Generator:
        """Create a regular file; returns an :class:`OpenFile`."""
        yield from self._count("create")
        dp, name = yield from self.namei_parent(path)
        yield dp.lock.acquire()
        try:
            existing = yield from self._dir_lookup(dp, name)
            if existing is not None:
                raise FsError("EEXIST", path)
            yield from self.cpu.compute(self.costs.time("create"))
            ino = yield from self.allocator.alloc_inode(
                self.geometry.cg_of_inode(dp.ino), for_directory=False)
            self._generation += 1
            din = Dinode(mode=int(FileType.REGULAR) | 0o644, nlink=1,
                         generation=self._generation,
                         mtime=int(self.engine.now))
            ip = self.itable.install(ino, din)
            ip.refs += 1
            dbuf, offset = yield from self._dir_add_entry(
                dp, name, ino, FileType.REGULAR)
            yield from self.scheme.link_added(dp, dbuf, offset, ip,
                                              new_inode=True)
            yield from self.iupdat(dp)
        finally:
            dp.lock.release()
            self.iput(dp)
        return OpenFile(ip)

    @_syscall
    def mkdir(self, path: str) -> Generator:
        """Create a directory."""
        yield from self._count("mkdir")
        dp, name = yield from self.namei_parent(path)
        yield dp.lock.acquire()
        try:
            existing = yield from self._dir_lookup(dp, name)
            if existing is not None:
                raise FsError("EEXIST", path)
            yield from self.cpu.compute(self.costs.time("create"))
            ino = yield from self.allocator.alloc_inode(
                self.geometry.cg_of_inode(dp.ino), for_directory=True)
            self._generation += 1
            din = Dinode(mode=int(FileType.DIRECTORY) | 0o755, nlink=2,
                         generation=self._generation,
                         mtime=int(self.engine.now))
            ip = self.itable.install(ino, din)
            ip.refs += 1
            # the new directory's first block: '.' and '..'
            bs = self.geometry.block_size
            first = directory.new_dir_contents(ino, dp.ino)
            fill = directory.empty_chunk() * ((bs - len(first))
                                              // directory.DIRBLKSIZ)
            buf = yield from self._balloc(ip, 0, bs, is_metadata=True,
                                          init_image=first + fill)
            ip.din.size = bs
            # '..' is a link to the parent: raise parent's count and order it
            dp.din.nlink += 1
            dotdot, _scanned = directory.lookup(buf.data, "..")
            yield from self.scheme.dotdot_link_added(dp, buf, dotdot.offset)
            # the parent's entry for the new directory
            dbuf, offset = yield from self._dir_add_entry(
                dp, name, ino, FileType.DIRECTORY)
            yield from self.scheme.link_added(dp, dbuf, offset, ip,
                                              new_inode=True)
            yield from self.iupdat(dp)
            self.iput(ip)
        finally:
            dp.lock.release()
            self.iput(dp)

    @_syscall
    def unlink(self, path: str) -> Generator:
        """Remove a file's directory entry (and the file at zero links)."""
        yield from self._count("unlink")
        dp, name = yield from self.namei_parent(path)
        yield dp.lock.acquire()
        try:
            entry = yield from self._dir_lookup(dp, name)
            if entry is None:
                raise FsError("ENOENT", path)
            ip = yield from self.iget(entry.ino)
            if ip.is_dir:
                self.iput(ip)
                raise FsError("EISDIR", path)
            yield from self.cpu.compute(self.costs.time("remove"))
            dbuf, offset = yield from self._dir_delete(dp, entry)
            # drop our transient reference before the scheme runs drop_link,
            # so an immediate release is not mistaken for an open file
            self.iput(ip)
            yield from self.scheme.link_removed(dp, dbuf, offset, ip)
        finally:
            dp.lock.release()
            self.iput(dp)

    @_syscall
    def rmdir(self, path: str) -> Generator:
        """Remove an empty directory."""
        yield from self._count("rmdir")
        dp, name = yield from self.namei_parent(path)
        yield dp.lock.acquire()
        try:
            entry = yield from self._dir_lookup(dp, name)
            if entry is None:
                raise FsError("ENOENT", path)
            ip = yield from self.iget(entry.ino)
            if not ip.is_dir:
                self.iput(ip)
                raise FsError("ENOTDIR", path)
            empty = yield from self._dir_is_empty(ip)
            if not empty:
                self.iput(ip)
                raise FsError("ENOTEMPTY", path)
            yield from self.cpu.compute(self.costs.time("remove"))
            dbuf, offset = yield from self._dir_delete(dp, entry)
            # the victim's '..' link on the parent goes away with it
            dp.din.nlink -= 1
            ip.din.nlink -= 1  # drop '.' ; scheme drops the parent entry link
            self.iput(ip)
            yield from self.scheme.link_removed(dp, dbuf, offset, ip)
            yield from self.iupdat(dp)
        finally:
            dp.lock.release()
            self.iput(dp)

    @_syscall
    def link(self, existing: str, newpath: str) -> Generator:
        """Add a hard link to an existing file."""
        yield from self._count("link")
        ip = yield from self.namei(existing)
        if ip.is_dir:
            self.iput(ip)
            raise FsError("EISDIR", existing)
        dp, name = yield from self.namei_parent(newpath)
        yield dp.lock.acquire()
        try:
            clash = yield from self._dir_lookup(dp, name)
            if clash is not None:
                raise FsError("EEXIST", newpath)
            ip.din.nlink += 1
            dbuf, offset = yield from self._dir_add_entry(
                dp, name, ip.ino, FileType.REGULAR)
            yield from self.scheme.link_added(dp, dbuf, offset, ip,
                                              new_inode=False)
            yield from self.iupdat(dp)
        finally:
            dp.lock.release()
            self.iput(dp)
            self.iput(ip)

    @_syscall
    def rename(self, oldpath: str, newpath: str) -> Generator:
        """Rename: add the new link, then remove the old (paper section 1).

        The new directory entry reaches stable storage before the old one is
        removed, so a crash never loses both names.
        """
        yield from self._count("rename")
        target = yield from self.namei(oldpath)
        if target.is_dir:
            self.iput(target)
            raise FsError("EISDIR", "directory rename not supported")
        try:
            yield from self.unlink(newpath)
        except FsError as err:
            if err.code != "ENOENT":
                self.iput(target)
                raise
        dp, name = yield from self.namei_parent(newpath)
        yield dp.lock.acquire()
        try:
            target.din.nlink += 1
            dbuf, offset = yield from self._dir_add_entry(
                dp, name, target.ino, FileType.REGULAR)
            yield from self.scheme.link_added(dp, dbuf, offset, target,
                                              new_inode=False)
            yield from self.iupdat(dp)
        finally:
            dp.lock.release()
            self.iput(dp)
        self.iput(target)
        yield from self.unlink(oldpath)

    def _dir_delete(self, dp: Inode, entry: directory.DirEntry) -> Generator:
        """Clear *entry* in its buffer; returns (held buffer, offset)."""
        bs = self.geometry.block_size
        lblk, in_block = divmod(entry.offset, bs)
        buf = yield from self._dir_block(dp, lblk)
        directory.remove_entry(buf.data, in_block)
        buf.dir_index = None
        return buf, entry.offset

    def _dir_is_empty(self, ip: Inode) -> Generator:
        for lblk in range(self._dir_nblocks(ip)):
            buf = yield from self._dir_block(ip, lblk)
            empty = directory.is_empty_dir(buf.data)
            self.cache.brelse(buf)
            if not empty:
                return False
        return True

    # -- open / read / write -------------------------------------------------
    @_syscall
    def open(self, path: str) -> Generator:
        """Open an existing file."""
        yield from self._count("open")
        ip = yield from self.namei(path)
        if ip.is_dir:
            self.iput(ip)
            raise FsError("EISDIR", path)
        return OpenFile(ip)

    @_syscall
    def close(self, handle: OpenFile) -> Generator:
        """Close: schedule the inode's timestamps/size for stable storage."""
        yield from self._count("close")
        if handle.closed:
            raise FsError("EINVAL", "double close")
        handle.closed = True
        ip = handle.ip
        yield from self.iupdat(ip)
        self.iput(ip)
        if ip.refs == 0 and ip.din.nlink == 0 and not ip.deleted:
            # last close of an already-unlinked file: release it now
            yield from self.scheme.release_inode(ip)

    @_syscall
    def write(self, handle: OpenFile, data: bytes) -> Generator:
        """Write *data* at the handle's offset; returns bytes written."""
        yield from self._count("write")
        ip = handle.ip
        yield ip.lock.acquire()
        try:
            yield from self.cpu.compute(self.costs.copy_bytes(len(data)))
            bs = self.geometry.block_size
            position = handle.offset
            end = position + len(data)
            cursor = 0
            while position < end:
                lblk = position // bs
                in_block = position % bs
                take = min(bs - in_block, end - position)
                already = min(max(ip.din.size - lblk * bs, 0), bs)
                need_bytes = max(in_block + take, already)
                buf = yield from self._balloc(ip, lblk, need_bytes)
                buf.data[in_block:in_block + take] = \
                    data[cursor:cursor + take]
                buf.valid = True
                if position + take > ip.din.size:
                    ip.din.size = position + take
                yield from self.scheme.data_written(ip, buf)
                position += take
                cursor += take
            handle.offset = position
            ip.din.mtime = int(self.engine.now)
            yield from self.iupdat(ip)
        finally:
            ip.lock.release()
        return len(data)

    @_syscall
    def read(self, handle: OpenFile, nbytes: int) -> Generator:
        """Read up to *nbytes* from the handle's offset."""
        yield from self._count("read")
        ip = handle.ip
        yield ip.lock.acquire()
        try:
            bs = self.geometry.block_size
            position = handle.offset
            end = min(position + nbytes, ip.din.size)
            chunks: list[bytes] = []
            while position < end:
                lblk = position // bs
                in_block = position % bs
                take = min(bs - in_block, end - position)
                daddr = yield from self.bmap(ip, lblk)
                if daddr == 0:
                    chunks.append(bytes(take))  # hole
                else:
                    frags = self._block_frags(ip, lblk)
                    buf = yield from self.cache.bread(
                        daddr, frags * self.geometry.frag_size)
                    chunks.append(bytes(buf.data[in_block:in_block + take]))
                    self.cache.brelse(buf)
                position += take
            data = b"".join(chunks)
            yield from self.cpu.compute(self.costs.copy_bytes(len(data)))
            handle.offset = position
        finally:
            ip.lock.release()
        return data

    # -- path-level conveniences ------------------------------------------
    def write_file(self, path: str, data: bytes,
                   chunk: int = 8192) -> Generator:
        """create + write (in *chunk* pieces, like cp) + close."""
        handle = yield from self.create(path)
        for at in range(0, len(data), chunk):
            yield from self.write(handle, data[at:at + chunk])
        yield from self.close(handle)

    def read_file(self, path: str, chunk: int = 8192) -> Generator:
        """open + read to EOF + close; returns the contents."""
        handle = yield from self.open(path)
        pieces = []
        while True:
            piece = yield from self.read(handle, chunk)
            if not piece:
                break
            pieces.append(piece)
        yield from self.close(handle)
        return b"".join(pieces)

    @_syscall
    def stat(self, path: str) -> Generator:
        """Return a copy of the inode's attributes."""
        yield from self._count("stat")
        yield from self.cpu.compute(self.costs.time("stat"))
        ip = yield from self.namei(path)
        din = ip.din.copy()
        self.iput(ip)
        return din

    @_syscall
    def readdir(self, path: str) -> Generator:
        """List the live entry names of a directory (excluding '.', '..')."""
        yield from self._count("readdir")
        dp = yield from self.namei(path)
        if not dp.is_dir:
            self.iput(dp)
            raise FsError("ENOTDIR", path)
        yield dp.lock.acquire()
        try:
            names = []
            for lblk in range(self._dir_nblocks(dp)):
                buf = yield from self._dir_block(dp, lblk)
                for entry in directory.iter_entries(buf.data):
                    if entry.live and entry.name not in (".", ".."):
                        names.append(entry.name)
                self.cache.brelse(buf)
            yield from self.cpu.compute(
                self.costs.time("readdir_entry", len(names)))
        finally:
            dp.lock.release()
            self.iput(dp)
        return names

    @_syscall
    def truncate(self, path: str) -> Generator:
        """Truncate a regular file to zero length (the O_TRUNC pattern)."""
        yield from self._count("truncate")
        ip = yield from self.namei(path)
        if ip.is_dir:
            self.iput(ip)
            raise FsError("EISDIR", path)
        yield ip.lock.acquire()
        try:
            runs = yield from self.collect_blocks(ip)
            self.clear_block_pointers(ip)
            ip.din.mtime = int(self.engine.now)
            for daddr, frags in runs:
                self.cache.invalidate(daddr, frags)
            yield from self.scheme.truncated(ip, runs)
        finally:
            ip.lock.release()
            self.iput(ip)

    @_syscall
    def fsync(self, handle: OpenFile) -> Generator:
        """SYNCIO: the handle's file is durable when this returns."""
        yield from self._count("fsync")
        yield from self.scheme.fsync(handle.ip)

    @_syscall
    def sync(self) -> Generator:
        """Flush all dirty state (deferred work included) to the disk."""
        yield from self.scheme.drain()
        yield from self.cache.sync()
