"""Tests for the Machine assembly and its setup conveniences."""

import pytest

from repro.driver import ChainsPolicy, FlagPolicy, FlagSemantics
from repro.machine import Machine, MachineConfig, default_policy_for
from repro.ordering import (
    ConventionalScheme,
    NoOrderScheme,
    SchedulerChainsScheme,
    SchedulerFlagScheme,
    SoftUpdatesScheme,
)
from tests.conftest import SMALL_GEOMETRY, make_machine, run_user


class TestDefaultPolicies:
    def test_chains_scheme_gets_chains_policy(self):
        assert isinstance(default_policy_for(SchedulerChainsScheme()),
                          ChainsPolicy)

    def test_flag_scheme_gets_part_nr(self):
        policy = default_policy_for(SchedulerFlagScheme())
        assert isinstance(policy, FlagPolicy)
        assert policy.semantics is FlagSemantics.PART
        assert policy.read_bypass

    def test_others_get_ignore(self):
        for scheme in (NoOrderScheme(), ConventionalScheme(),
                       SoftUpdatesScheme()):
            policy = default_policy_for(scheme)
            assert policy.semantics is FlagSemantics.IGNORE


class TestBlockCopyWiring:
    def test_scheme_preference_respected(self):
        machine = make_machine("conventional")
        assert machine.cache.block_copy is False
        machine = make_machine("softupdates")
        assert machine.cache.block_copy is True

    def test_override_wins(self):
        config = MachineConfig(scheme=ConventionalScheme(),
                               fs_geometry=SMALL_GEOMETRY, block_copy=True)
        machine = Machine(config)
        assert machine.cache.block_copy is True


class TestInstantMode:
    def test_populate_consumes_no_simulated_time(self):
        machine = make_machine("softupdates")

        def builder():
            for index in range(20):
                yield from machine.fs.write_file(f"/f{index}", b"x" * 4000)

        before = machine.engine.now
        machine.populate(builder())
        assert machine.engine.now == before
        # and the data is durable on the platters
        assert machine.disk.storage.sectors_written > 0

    def test_drop_caches_leaves_only_unevictable(self):
        machine = make_machine("noorder")

        def builder():
            yield from machine.fs.write_file("/f", b"x" * 8192)

        machine.populate(builder())
        assert machine.cache.used_bytes <= 2 * machine.fs.geometry.block_size

    def test_cold_read_after_populate(self):
        machine = make_machine("conventional")
        payload = b"p" * 5000

        def builder():
            yield from machine.fs.write_file("/cold", payload)

        machine.populate(builder())

        def reader():
            data = yield from machine.fs.read_file("/cold")
            return data

        assert run_user(machine, reader()) == payload
        assert machine.disk.stats.reads > 0  # really came from the platters


class TestRun:
    def test_run_multiple_processes(self):
        machine = make_machine("noorder")

        def worker(tag):
            yield from machine.fs.write_file(f"/w{tag}", b"y")
            return tag

        procs = [machine.spawn(worker(i), name=f"w{i}") for i in range(3)]
        assert machine.run(*procs) == [0, 1, 2]

    def test_sync_and_settle_flushes(self):
        machine = make_machine("softupdates")

        def worker():
            yield from machine.fs.write_file("/s", b"z" * 2048)

        machine.run(machine.spawn(worker()))
        machine.sync_and_settle()
        assert not machine.cache.dirty_buffers()
        assert machine.scheme.pending_work() == 0
