"""Shared benchmark infrastructure.

Every benchmark regenerates one of the paper's tables or figures: it runs
the workload on the simulator under each scheme configuration, prints the
rows in the paper's format, writes them to ``benchmarks/results/``, and
asserts the paper's qualitative findings (who wins, by roughly what factor).

Scale: ``REPRO_SCALE`` (default 0.15) scales file counts/bytes; 1.0 is
paper-scale.  Simulated seconds are reported, not wall seconds.

Parallelism: each benchmark's independent (scheme, config) cells run
through :func:`repro.harness.parallel.run_grid`, which fans them across a
process pool (``REPRO_JOBS`` workers, default: all cores; ``REPRO_JOBS=1``
forces serial).  Results are deterministic either way -- the regenerated
tables are byte-identical.  At session end the per-cell wall clock and
simulator event counts are appended to the ``BENCH_perf.json`` trajectory
at the repo root and summarized in ``benchmarks/results/perf_report.txt``
(both host-wall-clock artifacts: they vary run to run and are *not* part
of the deterministic table output).
"""

import pathlib
import time

import pytest

from repro.harness.parallel import (  # noqa: F401  (run_grid re-exported)
    GRID_REPORTS,
    default_jobs,
    run_grid,
)
from repro.harness.perflog import append_record, build_session_record
from repro.harness.report import format_table
from repro.disk import store_name
from repro.harness.runner import FULL_CACHE_BYTES, scale_factor
from repro.obs.observatory import append_ledger, snapshot_digest
from repro.obs.profiler import format_profile_report
from repro.sim import kernel_name

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
PERF_JSON = pathlib.Path(__file__).parent.parent / "BENCH_perf.json"

SCALE = scale_factor()


def scaled_cache() -> int:
    """Cache size shrunk with the workload to preserve memory pressure."""
    return max(1 * 1024 * 1024, int(FULL_CACHE_BYTES * SCALE))


def emit(name: str, text: str) -> None:
    """Print a regenerated table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


@pytest.fixture
def once(benchmark):
    """Run the experiment exactly once under pytest-benchmark timing."""

    def runner(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1)

    return runner


def pytest_sessionfinish(session, exitstatus):
    """Flush the session's grid statistics to the perf trajectory."""
    if not GRID_REPORTS:
        return
    record = build_session_record(
        GRID_REPORTS, scale=SCALE, jobs=default_jobs(),
        kernel=kernel_name(), store=store_name(),
        timestamp=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()))
    # keep the JSON trajectory bounded; older sessions rotate into
    # BENCH_perf.history.jsonl (see repro.harness.perflog)
    append_record(PERF_JSON, record)
    append_ledger("grid", {
        "scale": SCALE,
        "jobs": default_jobs(),
        "kernel": kernel_name(),
        "store": store_name(),
        "grids": [grid.name for grid in GRID_REPORTS],
        "cells": sum(len(grid.cells) for grid in GRID_REPORTS),
        "wall_seconds": record["wall_seconds"],
        "sim_events": record["sim_events"],
        "events_per_second": round(record["sim_events"]
                                   / max(record["cell_wall_seconds"], 1e-9)),
        "snapshot_digest": snapshot_digest(record),
        "exitstatus": int(exitstatus),
    })

    # profiled sessions (REPRO_PROFILE=1) additionally get the per-layer
    # breakdown table; cells without profile.* extras are skipped, and an
    # unprofiled session writes nothing
    profile_cells = [(f"{grid.name} / {cell.key}", cell.wall_seconds,
                      cell.extra)
                     for grid in GRID_REPORTS for cell in grid.cells
                     if any(key.startswith("profile.")
                            for key in cell.extra)]
    if profile_cells:
        results_dir = pathlib.Path("results")
        results_dir.mkdir(exist_ok=True)
        profile_report = format_profile_report(
            profile_cells,
            title=f"Per-layer profile (scale={SCALE}, "
                  f"kernel={kernel_name()}; sim self-time, "
                  f"wall prorated)")
        (results_dir / "profile_report.txt").write_text(
            profile_report + "\n")
        print()
        print(profile_report)

    rows = []
    for grid in GRID_REPORTS:
        for cell in grid.cells:
            rows.append([grid.name, cell.key, cell.wall_seconds,
                         cell.sim_events, cell.events_per_second])
        rows.append([grid.name, "(grid total)", grid.wall_seconds,
                     grid.sim_events,
                     grid.sim_events / grid.wall_seconds
                     if grid.wall_seconds else 0.0])
    report = format_table(
        f"Benchmark performance (scale={SCALE}, jobs={default_jobs()}, "
        f"host wall clock -- varies run to run)",
        ["Grid", "Cell", "Wall (s)", "Sim events", "Events/s"], rows)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "perf_report.txt").write_text(report + "\n")
    print()
    print(report)
