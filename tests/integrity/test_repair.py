"""Tests for fsck's repair mode (the recovery step the paper's schemes
require after a crash: 'each requires assistance provided by the fsck
utility when recovering from system failure')."""

import pytest

from repro.integrity import CrashScheduler, fsck, repair
from tests.conftest import SMALL_GEOMETRY, make_machine, run_user
from tests.integrity.test_crash import churn_workload


@pytest.mark.parametrize("scheme", ["conventional", "flag", "chains",
                                    "softupdates"])
def test_crashed_safe_scheme_repairs_to_pristine(scheme):
    """After repair, a crashed image is completely clean (no warnings)."""
    machine = make_machine(scheme)
    image = CrashScheduler(machine).run_and_crash(
        churn_workload(machine, seed=4, operations=35), crash_at=2.0)
    before = fsck(image, SMALL_GEOMETRY)
    assert before.clean
    after = repair(image, SMALL_GEOMETRY)
    assert after.clean
    assert not after.warnings, after.warnings[:5]


def test_repair_reclaims_orphans_and_space():
    """Conventional create leaves orphans if the entry never lands; repair
    must reclaim the inode and its blocks."""
    machine = make_machine("conventional")

    def user():
        yield from machine.fs.write_file("/ghost", b"g" * 5000)

    run_user(machine, user())
    from repro.integrity import crash_image
    image = crash_image(machine)
    before = fsck(image, SMALL_GEOMETRY)
    assert any("orphan" in w for w in before.warnings)
    after = repair(image, SMALL_GEOMETRY)
    assert not after.warnings
    # only the root remains
    assert list(after.inodes) == [2]


def test_repair_fixes_link_counts():
    machine = make_machine("noorder")

    def user():
        yield from machine.fs.write_file("/a", b"a")
        yield from machine.fs.link("/a", "/b")
        yield from machine.fs.sync()

    run_user(machine, user())
    # sabotage: undercount the link on disk
    import struct
    geo = machine.fs.geometry
    report = fsck(machine.disk.storage, SMALL_GEOMETRY)
    ino = next(i for i, d in report.inodes.items() if d.nlink == 2)
    daddr = geo.inode_block_daddr(ino)
    spf = 2
    block = bytearray(machine.disk.storage.read(daddr * spf, 16))
    struct.pack_into("<H", block, geo.inode_offset_in_block(ino) + 2, 1)
    machine.disk.storage.write(daddr * spf, bytes(block))

    image = machine.disk.storage.snapshot()
    after = repair(image, SMALL_GEOMETRY)
    assert not after.warnings
    assert after.inodes[ino].nlink == 2


def test_repaired_image_is_mountable_and_usable():
    """The whole recovery path: crash, repair, remount, keep working."""
    machine = make_machine("softupdates")
    image = CrashScheduler(machine).run_and_crash(
        churn_workload(machine, seed=9, operations=30), crash_at=1.5)
    repaired = repair(image, SMALL_GEOMETRY)
    assert repaired.clean and not repaired.warnings

    # boot a fresh machine on the repaired image
    from repro.costs import CostModel
    from repro.machine import Machine, MachineConfig
    from repro.ordering import SoftUpdatesScheme
    reborn = Machine(MachineConfig(scheme=SoftUpdatesScheme(),
                                   fs_geometry=SMALL_GEOMETRY,
                                   cache_bytes=2 * 1024 * 1024,
                                   costs=CostModel(scale=0.0)))
    reborn.adopt_image(image)

    def user():
        yield from reborn.fs.write_file("/after-recovery", b"alive")
        data = yield from reborn.fs.read_file("/after-recovery")
        yield from reborn.fs.sync()
        return data

    assert run_user(reborn, user()) == b"alive"
    final = fsck(reborn.disk.storage, SMALL_GEOMETRY)
    assert final.clean and not final.warnings
