"""Per-layer time attribution: a cheap counting profiler over the tracer.

The flame summary answers "where did simulated time go?" *after* a run, by
folding the retained span list -- which costs memory proportional to the
span count and dies with the span cap.  The profiler answers the same
question *online*: the tracer calls :meth:`LayerProfiler.close` as each
span closes (including spans the cap dropped), and the profiler folds the
duration into one of six fixed layers::

    vfs     syscall spans           (fs/vfs.py)
    cache   buffer-cache + syncer   (cache/)
    scheme  ordering decisions      (ordering/)
    driver  queue residency         (driver/, async -- counted, not folded)
    drive   mechanical phases       (disk/)
    kernel  anything uncategorized  (engine-side)

Attribution policy (documented in ``docs/performance.md``):

* **sim self-time** is exact: each closed sync span contributes its
  duration minus its closed children's durations, so a syscall's cache
  waits land under ``cache``, not ``vfs``.  Async spans (driver queue
  residencies overlap by design) are counted but never folded.
* **host wall** is an *estimate*: per-cell host wall is prorated over the
  layers by their sim self-time share at report time.  Real per-layer host
  time is unmeasurable from span stamps alone -- the driver/drive spans are
  recorded retrospectively in a single host instant -- and anything
  heavier would violate the "cheap" contract.

Everything lands in the machine's :class:`MetricsRegistry` under
``profile.<layer>.sim`` / ``profile.<layer>.spans``, so ``obs.snapshot()``
folds it into ``RunResult.extra`` with zero extra plumbing, grid cells
carry it into ``BENCH_perf.json``, and ``results/profile_report.txt``
renders the breakdown table.  The profiler reads clocks and adds floats --
it never touches the event heap, so a profiled run is simulation-identical
to a bare one (``tests/obs/test_profiler.py``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:
    from repro.obs.registry import MetricsRegistry
    from repro.obs.tracer import Span

__all__ = ["CATEGORY_LAYER", "LAYERS", "LayerProfiler",
           "format_profile_report", "profile_rows"]

#: the fixed attribution targets, pipeline order
LAYERS = ("vfs", "cache", "scheme", "driver", "drive", "kernel")

#: span category -> layer (the syncer is part of the cache layer: its
#: sweeps exist to push the cache's delayed writes)
CATEGORY_LAYER = {
    "syscall": "vfs",
    "cache": "cache",
    "syncer": "cache",
    "ordering": "scheme",
    "driver": "driver",
    "disk": "drive",
}

#: recently-closed parent ids retained for late-child subtraction (the
#: drive records its outer span before its seek/rotate/transfer children;
#: children always follow within a handful of spans)
_CLOSED_CAP = 4096


class LayerProfiler:
    """Online per-layer sim-time fold, registered as plain counters."""

    __slots__ = ("_sim", "_spans", "_child", "_closed_layer")

    def __init__(self, registry: "MetricsRegistry") -> None:
        self._sim = {layer: registry.counter(f"profile.{layer}.sim")
                     for layer in LAYERS}
        self._spans = {layer: registry.counter(f"profile.{layer}.spans")
                       for layer in LAYERS}
        #: open-parent id -> accumulated closed-child duration
        self._child: dict[int, float] = {}
        #: bounded map of recently closed span id -> layer
        self._closed_layer: dict[int, str] = {}

    def close(self, span: "Span") -> None:
        """Account one closing span (called by the tracer, cap or not)."""
        layer = CATEGORY_LAYER.get(span.cat, "kernel")
        self._spans[layer].inc()
        if span.async_id is not None:
            # overlapping queue residencies: counted, never folded
            return
        duration = span.duration
        self_time = duration - self._child.pop(span.id, 0.0)
        if self_time > 0.0:
            self._sim[layer].inc(self_time)
        parent = span.parent
        if parent is not None:
            parent_layer = self._closed_layer.get(parent)
            if parent_layer is not None:
                # retrospective pattern: the parent closed first and was
                # credited its full duration -- give this child's share back
                sim = self._sim[parent_layer]
                sim.value = max(0.0, sim.value - duration)
            else:
                self._child[parent] = self._child.get(parent, 0.0) + duration
        closed = self._closed_layer
        closed[span.id] = layer
        if len(closed) > _CLOSED_CAP:
            del closed[next(iter(closed))]


# ----------------------------------------------------------------------
# report rendering (pure functions over snapshot dicts)
# ----------------------------------------------------------------------
def profile_rows(extra: dict, wall_seconds: Optional[float] = None) -> list:
    """``[(layer, spans, sim_self, share, wall_est)]`` from a snapshot.

    *extra* is any mapping containing ``profile.*`` keys (RunResult.extra,
    a BENCH_perf cell record).  Returns [] when the cell was not profiled.
    ``wall_est`` is the prorated host-wall estimate (None without
    *wall_seconds*).
    """
    sims = {layer: extra.get(f"profile.{layer}.sim", 0.0) for layer in LAYERS}
    counts = {layer: extra.get(f"profile.{layer}.spans", 0)
              for layer in LAYERS}
    if not any(counts.values()) and not any(sims.values()):
        return []
    total = sum(sims.values())
    rows = []
    for layer in LAYERS:
        share = sims[layer] / total if total > 0 else 0.0
        wall_est = wall_seconds * share if wall_seconds is not None else None
        rows.append((layer, counts[layer], sims[layer], share, wall_est))
    return rows


def format_profile_report(cells: list, title: str = "") -> str:
    """The ``results/profile_report.txt`` breakdown table.

    *cells* is ``[(label, wall_seconds, extra)]``; cells without
    ``profile.*`` keys are skipped.  Deterministic in its inputs.
    """
    lines = []
    header = title or "Per-layer profile (sim self-time; wall is prorated)"
    lines.append(header)
    lines.append("=" * len(header))
    profiled = 0
    for label, wall_seconds, extra in cells:
        rows = profile_rows(extra, wall_seconds)
        if not rows:
            continue
        profiled += 1
        lines.append("")
        wall = f", host wall {wall_seconds:.3f}s" if wall_seconds else ""
        lines.append(f"{label}{wall}")
        lines.append(f"  {'layer':<8}{'spans':>9}{'sim self (s)':>14}"
                     f"{'share':>8}{'wall est (s)':>14}")
        for layer, spans, sim, share, wall_est in rows:
            est = f"{wall_est:.3f}" if wall_est is not None else "-"
            lines.append(f"  {layer:<8}{spans:>9}{sim:>14.6f}"
                         f"{100 * share:>7.1f}%{est:>14}")
    if not profiled:
        lines.append("")
        lines.append("(no profiled cells -- run with REPRO_PROFILE=1 or "
                     "MachineConfig(profile=True))")
    return "\n".join(lines) + "\n"
