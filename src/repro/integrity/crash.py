"""Crash injection: freeze the machine, keep only what the platters hold.

A "crash" here is a power failure (the paper's motivating event): the
machine stops mid-whatever, all memory contents evaporate, and the surviving
state is the sector store -- plus the prefix of any write whose transfer was
under way, because sectors are laid down in order and each sector is
individually protected by its ECC (paper, footnote 1).

This is the *replay oracle* of the crash-exploration pipeline: sweeps
normally synthesize each crash image from the media write-log
(:mod:`repro.integrity.medialog`) with no re-simulation, and the
equivalence suite proves those images byte-identical to the ones this
module produces by replaying to the crash instant.  Any change to the
in-flight prefix semantics here must be mirrored in
``MediaWrite.sectors_in_flight_by`` -- the two are intentionally the same
expression.
"""

from __future__ import annotations

from typing import Optional

from repro.disk.storage import SectorStore
from repro.machine import Machine


def crash_image(machine: Machine) -> SectorStore:
    """The disk image as it would survive a power failure right now."""
    image = machine.disk.storage.snapshot()
    in_flight = machine.disk.in_flight
    if in_flight is not None:
        applied = in_flight.sectors_applied_by(
            machine.engine.now, machine.disk.geometry.sector_size)
        image.write_partial(in_flight.lbn, in_flight.data, applied)
    # battery-backed survivors (the NVRAM extension) replay over the image
    apply_nvram = getattr(machine.scheme, "apply_to_image", None)
    if apply_nvram is not None:
        apply_nvram(image)
    return image


class CrashScheduler:
    """Run a workload and crash at a chosen simulated instant.

    The workload generator is spawned, the engine runs until ``crash_at``
    (absolute simulated seconds), and the surviving image is returned.  If
    the workload finishes first, the image is taken at completion time
    (still without any post-crash flushing -- dirty buffers are lost).
    """

    def __init__(self, machine: Machine) -> None:
        self.machine = machine

    def run_and_crash(self, workload, crash_at: float,
                      name: str = "victim",
                      max_events: Optional[int] = 5_000_000) -> SectorStore:
        engine = self.machine.engine
        process = engine.process(workload, name=name)
        target = engine.now + crash_at
        while True:
            upcoming = engine.next_event_time
            if upcoming is None or upcoming > target:
                break
            engine.step()
            if max_events is not None:
                max_events -= 1
                if max_events <= 0:
                    raise RuntimeError("crash workload ran away")
            if process.triggered and not process.ok:
                raise process.value
        engine.now = max(engine.now, target)
        return crash_image(self.machine)
