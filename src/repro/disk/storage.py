"""The persistent sector store: what the platters hold.

This is the ground truth that survives a simulated crash.  It is a sparse
map from sector number to ``bytes``; unwritten sectors read back as zeros.
Crash-consistency checking (``repro.integrity``) operates directly on a
snapshot of this store.
"""

from __future__ import annotations

from repro.disk.geometry import DiskGeometry


class SectorStore:
    """Sparse persistent storage addressed by sector (LBN)."""

    def __init__(self, geometry: DiskGeometry) -> None:
        self.geometry = geometry
        self._sectors: dict[int, bytes] = {}
        self._zero = bytes(geometry.sector_size)
        #: total sectors ever written (instrumentation)
        self.sectors_written = 0

    def read(self, lbn: int, nsectors: int = 1) -> bytes:
        """Read *nsectors* starting at *lbn*; holes read as zeros."""
        self._check_range(lbn, nsectors)
        return b"".join(self._sectors.get(lbn + i, self._zero)
                        for i in range(nsectors))

    def write(self, lbn: int, data: bytes) -> None:
        """Write *data* (a whole number of sectors) starting at *lbn*."""
        size = self.geometry.sector_size
        if len(data) % size != 0:
            raise ValueError(
                f"write of {len(data)} bytes is not sector-aligned ({size})")
        nsectors = len(data) // size
        self._check_range(lbn, nsectors)
        for i in range(nsectors):
            self._sectors[lbn + i] = bytes(data[i * size:(i + 1) * size])
        self.sectors_written += nsectors

    def write_partial(self, lbn: int, data: bytes, nsectors_applied: int) -> None:
        """Apply only the first *nsectors_applied* sectors of a write.

        Used by crash injection to model a request interrupted mid-transfer:
        sectors are laid down in LBN order, so a crash leaves a prefix.
        """
        size = self.geometry.sector_size
        prefix = data[:nsectors_applied * size]
        if prefix:
            self.write(lbn, prefix)

    def snapshot(self) -> "SectorStore":
        """An independent copy (the 'surviving image' for fsck)."""
        clone = SectorStore(self.geometry)
        clone._sectors = dict(self._sectors)
        return clone

    def digest(self) -> str:
        """Content fingerprint of the persistent state (hex).

        Two stores digest equal iff every sector reads back identical --
        all-zero sectors are canonicalized away, so a store that had zeros
        explicitly written equals one that never touched the sector.  The
        synthesis-vs-replay equivalence suite compares images this way.
        """
        import hashlib

        h = hashlib.sha256()
        zero = self._zero
        for lbn in sorted(self._sectors):
            data = self._sectors[lbn]
            if data == zero:
                continue
            h.update(lbn.to_bytes(8, "little"))
            h.update(data)
        return h.hexdigest()

    def __len__(self) -> int:
        """Number of distinct sectors ever written."""
        return len(self._sectors)

    def _check_range(self, lbn: int, nsectors: int) -> None:
        if nsectors <= 0:
            raise ValueError(f"sector count must be positive, got {nsectors}")
        if lbn < 0 or lbn + nsectors > self.geometry.total_sectors:
            raise ValueError(
                f"sector range [{lbn}, {lbn + nsectors}) outside disk")
