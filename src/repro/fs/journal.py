"""On-disk write-ahead metadata journal: codec, scan, and replay.

The journal lives in the fragment run ``[journal_start, journal_start +
journal_frags)`` reserved by :class:`~repro.fs.layout.FSGeometry`.  The
first fragment is the **header** (durable tail of the circular log); the
rest is the **log**, addressed by position ``p`` at fragment
``journal_start + 1 + p``.

One transaction is a contiguous record::

    descriptor frag | image payload frags ... | commit frag

* The descriptor carries a monotonically increasing sequence number and a
  list of entries: ``IMAGE`` (a metadata block image follows in the
  payload, destined for home fragment ``daddr``) or ``REVOKE`` (the run
  ``daddr..daddr+nfrags`` was freed -- images of it from this or any
  earlier transaction must not be replayed).
* The commit frag repeats the sequence number and a CRC-32 over the
  descriptor and payload bytes, so a torn or reordered record can never
  masquerade as committed.
* A record that would cross the log end skips to position 0 (the scanner
  mirrors the skip); sequence numbers never repeat, so stale records from
  an earlier lap can never be mistaken for the current one.

Recovery is a single forward scan from the durable tail: every
checksum-valid transaction in unbroken sequence order contributes its
images to an *overlay* (newest image of a fragment wins, revoked
fragments drop out); the crash image plus the overlay is the recovered
state.  ``repro.integrity.fsck`` checks that recovered state,
``repro.integrity.monitor`` tracks it online, and
:class:`repro.ordering.journal.JournalScheme` writes it.

Everything here is pure bytes-in/bytes-out: callers supply a
``read_frag(daddr, nfrags) -> bytes`` function, so the same scan serves
the live scheme (sector store), fsck (crash images), and the monitor
(its shadow image).
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.fs.layout import FSGeometry

J_HEADER_MAGIC = 0x4A524E48  # "JRNH"
J_DESC_MAGIC = 0x4A524E44    # "JRND"
J_COMMIT_MAGIC = 0x4A524E43  # "JRNC"

_HEADER_FMT = "<IIII"        # magic, version, tail_seq, tail_pos
_DESC_FMT = "<III"           # magic, seq, nentries
_ENTRY_FMT = "<II"           # daddr, kind << 24 | nfrags
_COMMIT_FMT = "<III"         # magic, seq, checksum
_VERSION = 1

IMAGE = 1
REVOKE = 2

#: entries one descriptor fragment can carry
def max_entries(frag_size: int) -> int:
    return (frag_size - struct.calcsize(_DESC_FMT)) // struct.calcsize(
        _ENTRY_FMT)


@dataclass(frozen=True)
class Entry:
    """One descriptor entry: an image destined for home, or a revoked run."""

    kind: int
    daddr: int
    nfrags: int


@dataclass
class Transaction:
    """A parsed, checksum-valid transaction."""

    seq: int
    pos: int
    entries: list[Entry]
    extent: int
    #: the record's whole payload, as the one contiguous read that
    #: validated the checksum -- the scan slices images out of it instead
    #: of re-reading the log fragment by fragment
    payload: bytes = b""


@dataclass
class ScanResult:
    """What a forward scan of the journal recovered."""

    #: recovered state: home fragment daddr -> committed image bytes
    overlay: dict[int, bytes] = field(default_factory=dict)
    #: home fragments named by a valid but *uncommitted* trailing
    #: descriptor (the transaction in flight when the image was taken)
    open_frags: frozenset[int] = frozenset()
    #: committed transactions applied, in sequence order
    transactions: list[Transaction] = field(default_factory=list)
    #: where the next record would begin (sequence, log position)
    head_seq: int = 0
    head_pos: int = 0


# ----------------------------------------------------------------------
# codec
# ----------------------------------------------------------------------
def header_bytes(frag_size: int, tail_seq: int, tail_pos: int) -> bytes:
    raw = struct.pack(_HEADER_FMT, J_HEADER_MAGIC, _VERSION, tail_seq,
                      tail_pos)
    return raw + bytes(frag_size - len(raw))


def parse_header(raw: bytes) -> Optional[tuple[int, int]]:
    """(tail_seq, tail_pos), or None if the header is unreadable."""
    try:
        magic, version, tail_seq, tail_pos = struct.unpack_from(
            _HEADER_FMT, raw)
    except struct.error:
        return None
    if magic != J_HEADER_MAGIC or version != _VERSION:
        return None
    return tail_seq, tail_pos


def descriptor_bytes(frag_size: int, seq: int,
                     entries: Iterable[Entry]) -> bytes:
    entries = list(entries)
    if len(entries) > max_entries(frag_size):
        raise ValueError(f"{len(entries)} entries exceed one descriptor")
    raw = bytearray(struct.pack(_DESC_FMT, J_DESC_MAGIC, seq, len(entries)))
    for entry in entries:
        if not (1 <= entry.nfrags < (1 << 24)):
            raise ValueError(f"bad entry run length {entry.nfrags}")
        raw += struct.pack(_ENTRY_FMT, entry.daddr,
                           (entry.kind << 24) | entry.nfrags)
    return bytes(raw) + bytes(frag_size - len(raw))


def parse_descriptor(raw: bytes, expect_seq: int) -> Optional[list[Entry]]:
    """Entries of a descriptor frag carrying *expect_seq*, else None."""
    try:
        magic, seq, nentries = struct.unpack_from(_DESC_FMT, raw)
    except struct.error:
        return None
    if magic != J_DESC_MAGIC or seq != expect_seq:
        return None
    if nentries > max_entries(len(raw)):
        return None
    entries = []
    at = struct.calcsize(_DESC_FMT)
    for _ in range(nentries):
        daddr, word = struct.unpack_from(_ENTRY_FMT, raw, at)
        at += struct.calcsize(_ENTRY_FMT)
        kind = word >> 24
        nfrags = word & 0xFFFFFF
        if kind not in (IMAGE, REVOKE) or nfrags == 0:
            return None
        entries.append(Entry(kind, daddr, nfrags))
    return entries


def txn_checksum(desc_raw: bytes, payload: bytes) -> int:
    return zlib.crc32(payload, zlib.crc32(desc_raw))


def commit_bytes(frag_size: int, seq: int, checksum: int) -> bytes:
    raw = struct.pack(_COMMIT_FMT, J_COMMIT_MAGIC, seq, checksum)
    return raw + bytes(frag_size - len(raw))


def commit_valid(raw: bytes, expect_seq: int, checksum: int) -> bool:
    try:
        magic, seq, stored = struct.unpack_from(_COMMIT_FMT, raw)
    except struct.error:
        return False
    return (magic == J_COMMIT_MAGIC and seq == expect_seq
            and stored == checksum)


def record_extent(entries: Iterable[Entry]) -> int:
    """Fragments one record occupies: descriptor + images + commit."""
    return 2 + sum(e.nfrags for e in entries if e.kind == IMAGE)


# ----------------------------------------------------------------------
# scan / replay
# ----------------------------------------------------------------------
ReadFrag = Callable[[int, int], bytes]


def scan_journal(read_frag: ReadFrag, geometry: FSGeometry) -> ScanResult:
    """Forward-scan the journal; returns the recovered overlay.

    Defensive throughout: anything unparseable simply ends the committed
    region (a crash can leave arbitrary torn bytes at the head).
    """
    result = ScanResult()
    if not geometry.journal_frags:
        return result
    log_frags = geometry.journal_frags - 1
    base = geometry.journal_start + 1
    header = parse_header(read_frag(geometry.journal_start, 1))
    if header is None:
        return result
    seq, pos = header
    if not (0 <= pos < log_frags):
        return result
    overlay = result.overlay
    while True:
        txn = _txn_at(read_frag, base, log_frags, pos, seq)
        if txn is None and pos != 0:
            txn = _txn_at(read_frag, base, log_frags, 0, seq)
        if txn is None:
            break
        pos = txn.pos
        for entry in txn.entries:
            if entry.kind == REVOKE:
                for frag in range(entry.daddr, entry.daddr + entry.nfrags):
                    overlay.pop(frag, None)
        # images come out of the payload the checksum pass already read --
        # whole records per slice, no second trip to the log
        at = 0
        frag_size = geometry.frag_size
        payload = txn.payload
        for entry in txn.entries:
            if entry.kind != IMAGE:
                continue
            for i in range(entry.nfrags):
                overlay[entry.daddr + i] = bytes(
                    payload[(at + i) * frag_size:(at + i + 1) * frag_size])
            at += entry.nfrags
        result.transactions.append(txn)
        pos += txn.extent
        if pos >= log_frags:
            pos = 0
        seq += 1
    result.head_seq = seq
    result.head_pos = pos
    result.open_frags = _open_frags(read_frag, base, log_frags, pos, seq)
    return result


def _txn_at(read_frag: ReadFrag, base: int, log_frags: int, pos: int,
            seq: int) -> Optional[Transaction]:
    """The committed transaction *seq* at log position *pos*, else None."""
    desc_raw = read_frag(base + pos, 1)
    entries = parse_descriptor(desc_raw, seq)
    if entries is None:
        return None
    extent = record_extent(entries)
    if pos + extent > log_frags:
        return None  # the writer would have skipped to 0 instead
    payload_frags = extent - 2
    payload = read_frag(base + pos + 1, payload_frags) if payload_frags \
        else b""
    commit_raw = read_frag(base + pos + extent - 1, 1)
    if not commit_valid(commit_raw, seq, txn_checksum(desc_raw, payload)):
        return None
    return Transaction(seq=seq, pos=pos, entries=entries, extent=extent,
                       payload=bytes(payload))


def _open_frags(read_frag: ReadFrag, base: int, log_frags: int, pos: int,
                seq: int) -> frozenset[int]:
    """Home frags of the in-flight (descriptor-only) record at the head."""
    for candidate in ((pos,) if pos == 0 else (pos, 0)):
        entries = parse_descriptor(read_frag(base + candidate, 1), seq)
        if entries is None:
            continue
        if candidate + record_extent(entries) > log_frags:
            continue
        frags: set[int] = set()
        for entry in entries:
            if entry.kind == IMAGE:
                frags.update(range(entry.daddr, entry.daddr + entry.nfrags))
        return frozenset(frags)
    return frozenset()


def replay_into(read_frag: ReadFrag,
                write_frag: Callable[[int, bytes], None],
                geometry: FSGeometry) -> ScanResult:
    """Physically apply the recovered overlay and retire the whole log.

    The header is rewritten with the tail *past* the head sequence, so a
    later scan (or a remount) finds an empty log -- replay is a one-shot.
    """
    result = scan_journal(read_frag, geometry)
    if not geometry.journal_frags:
        return result
    for frag in sorted(result.overlay):
        write_frag(frag, result.overlay[frag])
    write_frag(geometry.journal_start,
               header_bytes(geometry.frag_size, result.head_seq + 1,
                            result.head_pos))
    return result
