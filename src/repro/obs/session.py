"""The per-machine observability session: one tracer + one registry.

A :class:`Observability` instance is created by
:class:`~repro.machine.Machine` when ``MachineConfig.observe`` is set and
installed on the engine *before* any component is constructed, so every
component can capture it (or ``None``) once at build time.  Nothing here
touches the event heap; see ``tracer.py`` for the determinism argument.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from typing import Optional

from repro.obs.profiler import LayerProfiler
from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import Tracer

if TYPE_CHECKING:
    from repro.sim.engine import Engine


class Observability:
    """Tracing + metrics for one simulated machine.

    *max_spans* bounds tracer memory (None = ``REPRO_TRACE_MAX_SPANS`` /
    the module default; drops are counted in ``tracer.spans_dropped``).
    *profile* attaches the per-layer :class:`LayerProfiler`, whose
    ``profile.<layer>.*`` counters ride every snapshot.
    """

    def __init__(self, engine: "Engine", max_spans: Optional[int] = None,
                 profile: bool = False) -> None:
        self.engine = engine
        self.tracer = Tracer(engine, max_spans=max_spans)
        self.registry = MetricsRegistry()
        self._events = self.registry.counter("engine.events")
        self._heap_peak = self.registry.gauge("engine.heap_peak")
        self.tracer.dropped_counter = \
            self.registry.counter("tracer.spans_dropped")
        self.profiler = None
        if profile:
            self.profiler = LayerProfiler(self.registry)
            self.tracer.profiler = self.profiler

    def attach(self, engine: "Engine") -> "Observability":
        """Install on *engine*: components built afterwards see it, and the
        event-dispatch hook keeps the engine-level metrics."""
        engine.obs = self
        engine.trace_hook = self._on_event
        return self

    def _on_event(self, when: float, event) -> None:
        """Engine dispatch hook: per-event accounting (never blocks)."""
        self._events.inc()
        self._heap_peak.track_max(self.engine.pending_events)

    def snapshot(self) -> dict:
        """Flat ``{metric name: value}`` for ``RunResult.extra``."""
        return self.registry.snapshot()

    def __repr__(self) -> str:
        return f"<Observability {self.tracer!r} {self.registry!r}>"
