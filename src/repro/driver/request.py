"""Disk request objects and their instrumentation fields."""

from __future__ import annotations

import enum
from typing import Callable, Optional

from repro.sim.engine import Engine
from repro.sim.events import Event


class IOKind(enum.Enum):
    """Direction of a disk request."""

    READ = "read"
    WRITE = "write"


class DiskRequest:
    """One request issued to the device driver.

    Ordering metadata:

    * ``flag`` -- the one-bit ordering flag of section 3.1 (meaning decided
      by the driver's :class:`~repro.driver.ordering.FlagPolicy`).
    * ``depends_on`` -- request ids that must complete first (section 3.2
      scheduler chains).  Only previously issued requests may be named.

    Timestamps (simulated seconds) populated by the driver:

    * ``issue_time`` -- handed to the driver,
    * ``dispatch_time`` -- sent to the drive,
    * ``complete_time`` -- media operation finished.

    ``done`` fires at completion; ``on_complete`` callbacks run just before
    (this is the paper's "pre-defined procedure in the higher-level module",
    used by the buffer cache and by soft updates' ISR-time processing).
    """

    __slots__ = ("id", "kind", "lbn", "nsectors", "end_lbn", "data", "flag",
                 "depends_on", "issuer", "issue_time", "dispatch_time",
                 "complete_time", "done", "on_complete", "trace_parent",
                 "error")

    def __init__(self, engine: Engine, request_id: int, kind: IOKind,
                 lbn: int, nsectors: int, data: Optional[bytes] = None,
                 flag: bool = False,
                 depends_on: Optional[frozenset[int]] = None,
                 issuer: str = "") -> None:
        if nsectors <= 0:
            raise ValueError("request must cover at least one sector")
        if kind is IOKind.WRITE and data is None:
            raise ValueError("write request without data")
        if kind is IOKind.READ and flag:
            raise ValueError("ordering flags apply only to writes")
        self.id = request_id
        self.kind = kind
        self.lbn = lbn
        self.nsectors = nsectors
        #: one past the last sector; lbn/nsectors are immutable after issue,
        #: and overlap tests in the driver's hot loop read this constantly
        self.end_lbn = lbn + nsectors
        self.data = data
        self.flag = flag
        self.depends_on: frozenset[int] = depends_on or frozenset()
        self.issuer = issuer
        self.issue_time: float = -1.0
        self.dispatch_time: float = -1.0
        self.complete_time: float = -1.0
        self.done: Event = Event(engine)
        self.on_complete: list[Callable[["DiskRequest"], None]] = []
        #: id of the span that issued this request (tracing only; None when
        #: observability is off)
        self.trace_parent: Optional[int] = None
        #: None on success; a repro.faults error code ("EIO", "nospare",
        #: "exhausted") when the driver gave up on this request
        self.error: Optional[str] = None

    # -- derived metrics (valid once complete) ---------------------------
    @property
    def is_write(self) -> bool:
        return self.kind is IOKind.WRITE

    @property
    def queue_delay(self) -> float:
        """Seconds spent waiting in the driver queue."""
        return self.dispatch_time - self.issue_time

    @property
    def access_time(self) -> float:
        """Drive service time (the paper's 'disk access time')."""
        return self.complete_time - self.dispatch_time

    @property
    def response_time(self) -> float:
        """Issue-to-completion (the paper's 'driver response time')."""
        return self.complete_time - self.issue_time

    def overlaps(self, lbn: int, nsectors: int) -> bool:
        return self.lbn < lbn + nsectors and lbn < self.end_lbn

    def __repr__(self) -> str:
        tag = "F" if self.flag else ""
        dep = f" deps={sorted(self.depends_on)}" if self.depends_on else ""
        return (f"<DiskRequest #{self.id} {self.kind.value}{tag} "
                f"lbn={self.lbn}+{self.nsectors}{dep}>")
