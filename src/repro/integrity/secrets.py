"""Security-hole detection for allocation initialization (paper, section 1).

"If this ordering is not enforced, a system failure could result in the file
containing data from some previously deleted file, presenting both an
integrity weakness and a security hole."

``plant_secrets`` fills every free data fragment of an image with a marker
pattern (standing in for a deleted user's secrets still on the platters).
``find_secret_leaks`` then audits a crashed image: any *readable* byte range
of any file (within its on-disk size) that still shows the marker means a
crash exposed stale data -- exactly what allocation initialization prevents.
"""

from __future__ import annotations

import struct

from repro.disk.storage import SectorStore
from repro.fs.alloc import CgView
from repro.fs.layout import FileType, FSGeometry
from repro.integrity.fsck import fsck, journal_overlay_view, valid_data_frag

SECRET = b"\xde\xad\xf1\x1e"  # repeated to fill fragments


def _spf(image: SectorStore, geometry: FSGeometry) -> int:
    return geometry.frag_size // image.geometry.sector_size


def plant_secrets(image: SectorStore, geometry: FSGeometry) -> int:
    """Fill every free data fragment with the marker; returns count filled."""
    spf = _spf(image, geometry)
    marker = SECRET * (geometry.frag_size // len(SECRET))
    planted = 0
    for cg in range(geometry.ncg):
        raw = bytearray(image.read(geometry.cg_base(cg) * spf,
                                   geometry.frags_per_block * spf))
        view = CgView(raw, geometry)
        base = geometry.cg_data_start(cg)
        for index in range(geometry.dfrags_per_cg):
            if not view.frag_used(index):
                image.write((base + index) * spf, marker)
                planted += 1
    return planted


def find_secret_leaks(image: SectorStore,
                      geometry: FSGeometry | None = None) -> list[str]:
    """Files whose readable contents still contain the planted marker.

    The audit runs on the *recovered* view: journaling leaves committed
    metadata (indirect blocks included) in the log with home still
    holding a previous owner's bytes, and recovery replays the log before
    any file is readable -- so, like fsck, the walk reads through the
    committed overlay.  Pointers that leave the data area are skipped
    (fsck books them as corruption findings; dereferencing a torn
    pointer's garbage here would just crash the auditor).
    """
    geometry = geometry or FSGeometry()
    image = journal_overlay_view(image, geometry)
    spf = _spf(image, geometry)
    report = fsck(image, geometry)
    leaks: list[str] = []
    for ino, din in report.inodes.items():
        if din.ftype is not FileType.REGULAR:
            continue
        remaining = din.size
        lblk = 0
        while remaining > 0 and lblk < geometry.NDADDR:
            daddr = din.direct[lblk]
            take = min(remaining, geometry.block_size)
            if daddr and valid_data_frag(geometry, daddr):
                frags = (take + geometry.frag_size - 1) // geometry.frag_size
                raw = image.read(daddr * spf, frags * spf)[:take]
                if SECRET in raw:
                    leaks.append(
                        f"inode {ino} block {lblk} exposes stale data")
            remaining -= take
            lblk += 1
        if remaining > 0 and din.sindirect \
                and valid_data_frag(geometry, din.sindirect):
            raw = image.read(din.sindirect * spf,
                             geometry.frags_per_block * spf)
            for pointer in struct.unpack(f"<{geometry.nindir}I", raw):
                if remaining <= 0:
                    break
                take = min(remaining, geometry.block_size)
                if pointer and valid_data_frag(geometry, pointer):
                    data = image.read(pointer * spf,
                                      geometry.frags_per_block * spf)[:take]
                    if SECRET in data:
                        leaks.append(
                            f"inode {ino} indirect block exposes stale data")
                remaining -= take
    return leaks
