"""Extension (section 7): how much fsck repair work does a crash leave?

"each [scheme] requires assistance (provided by the fsck utility) when
recovering from system failure ... the file system can not be used during
this often time-consuming process."  The paper leaves fast recovery as
future work; this experiment quantifies the repair burden each scheme
leaves behind: the number of fsck-repairable inconsistencies (orphans,
stale bitmap bits, inflated link counts) across a sweep of crash instants.
"""

from repro.harness.report import format_table
from repro.harness.runner import STANDARD_SCHEMES, standard_scheme_config
from repro.integrity import CrashScheduler, fsck, repair
from repro.machine import Machine

from benchmarks.conftest import emit, run_grid
from tests.conftest import SMALL_GEOMETRY
from tests.integrity.test_crash import churn_workload

#: include late instants so the delayed-write schemes' flushes are on disk
CRASH_TIMES = (2.2, 5.5, 7.0)
SEEDS = (0, 1)


def test_ext_recovery_cost(once):
    def cell(name):
        def run():
            warnings = errors = 0
            repaired_clean = 0
            trials = 0
            for seed in SEEDS:
                for crash_at in CRASH_TIMES:
                    config = standard_scheme_config(
                        name, cache_bytes=2 * 1024 * 1024)
                    config.fs_geometry = SMALL_GEOMETRY
                    machine = Machine(config)
                    machine.format()
                    image = CrashScheduler(machine).run_and_crash(
                        churn_workload(machine, seed, operations=40),
                        crash_at=crash_at)
                    report = fsck(image, SMALL_GEOMETRY)
                    warnings += len(report.warnings)
                    errors += len(report.errors)
                    after = repair(image, SMALL_GEOMETRY)
                    repaired_clean += int(after.clean
                                          and not after.warnings)
                    trials += 1
            return (errors, warnings / trials, repaired_clean, trials)
        return name, run

    def experiment():
        return run_grid("ext_recovery_cost",
                        [cell(name) for name in STANDARD_SCHEMES])

    results = once(experiment)
    rows = [[name, errors, avg_warnings, f"{clean}/{trials}"]
            for name, (errors, avg_warnings, clean, trials)
            in results.items()]
    emit("ext_recovery_cost", format_table(
        "Extension: fsck repair burden after crashes "
        f"({len(SEEDS) * len(CRASH_TIMES)} crash trials per scheme)",
        ["Scheme", "Integrity errors (total)", "Avg repairs needed",
         "Repaired to pristine"], rows))

    for name, (errors, _avg, clean, trials) in results.items():
        if name == "No Order":
            continue
        # the safe schemes never lose integrity, and repair always restores
        assert errors == 0, name
        assert clean == trials, name
